// lbtop — live terminal dashboard for a running lbd daemon.
//
//   ./build/examples/lbtop --port 4817              # refresh every second
//   ./build/examples/lbtop --port 4817 --once       # one snapshot (scripts)
//   ./build/examples/lbtop --port 4817 --interval-ms 250
//
// Each refresh issues one `health` request (loop timings, queue depths,
// engine/cache counters, aggregated latency histogram, connection table)
// and one `history` request (the newest two ring samples, filtered to
// lb_server_requests_total) and renders a top(1)-style screen:
//
//   - requests/s from the time-series ring's counter deltas when the ring
//     is enabled, falling back to differencing successive health snapshots;
//   - p50/p95/p99 request latency recomputed client-side from the health
//     response's raw histogram buckets via the same bucket-interpolated
//     estimator the daemon uses (obs::histogramQuantile), so lbtop and
//     `lbcli health` can never disagree about a quantile;
//   - cache hit rate, job-queue and event-loop queue depths with high
//     watermarks, stall count, and the live per-connection table.
//
// Purely an observer: every verb it sends is read-only.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/quantile.hpp"
#include "service/client.hpp"
#include "service/parse.hpp"
#include "stats/table.hpp"

namespace {

using namespace lb;

/// Renders microseconds with an adaptive unit: "820us", "4.1ms", "1.2s".
std::string formatMicros(double us) {
  char buffer[32];
  if (us < 1000.0)
    std::snprintf(buffer, sizeof buffer, "%.0fus", us);
  else if (us < 1e6)
    std::snprintf(buffer, sizeof buffer, "%.1fms", us / 1000.0);
  else
    std::snprintf(buffer, sizeof buffer, "%.2fs", us / 1e6);
  return buffer;
}

std::string formatRate(double per_second) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f", per_second);
  return buffer;
}

/// Sum of lb_server_requests_total deltas in the newest history sample,
/// scaled to per-second by the ring's sampling interval.  Returns a
/// negative value when the ring is disabled or has no delta yet.
double rpsFromHistory(const service::Json& reply) {
  const service::Json* ok = reply.find("ok");
  if (ok == nullptr || !ok->asBool()) return -1.0;
  const service::Json& history = reply.at("history");
  const double interval_ms = history.at("interval_ms").asDouble();
  const auto& samples = history.at("samples").asArray();
  if (interval_ms <= 0 || samples.size() < 2) return -1.0;
  double delta = 0;
  for (const service::Json& point : samples.back().at("points").asArray())
    if (const service::Json* d = point.find("delta")) delta += d->asDouble();
  return delta * 1000.0 / interval_ms;
}

/// One rendered dashboard frame.  `local_rps` is the fallback estimate from
/// differencing successive health snapshots (negative = not available yet).
void renderFrame(std::ostream& out, std::uint16_t port,
                 const service::Json& health, double history_rps,
                 double local_rps, std::chrono::milliseconds interval,
                 bool once) {
  const service::Json& loop = health.at("loop");
  const service::Json& requests = health.at("requests");
  const service::Json& engine = health.at("engine");

  // Quantiles recomputed from the raw buckets with the shared estimator.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  const service::Json& histogram = health.at("latency_histogram");
  for (const service::Json& b : histogram.at("bounds").asArray())
    bounds.push_back(b.asDouble());
  for (const service::Json& c : histogram.at("counts").asArray())
    counts.push_back(c.asUint64());
  const double p50 = obs::histogramQuantile(bounds, counts, 0.50);
  const double p95 = obs::histogramQuantile(bounds, counts, 0.95);
  const double p99 = obs::histogramQuantile(bounds, counts, 0.99);

  const double rps = history_rps >= 0 ? history_rps : local_rps;
  const double hits = engine.at("cache_hits").asDouble();
  const double misses = engine.at("cache_misses").asDouble();
  const double lookups = hits + misses;

  out << "lbtop — 127.0.0.1:" << port << " (" << health.at("mode").asString()
      << ")  up " << formatMicros(health.at("uptime_ms").asDouble() * 1000.0);
  if (!once) out << "  [refresh " << interval.count() << " ms]";
  out << "\n\n";

  out << "requests   total " << requests.at("total").asUint64() << "   rps "
      << (rps >= 0 ? formatRate(rps) : "-") << "   slow "
      << requests.at("slow").asUint64() << "   protocol errors "
      << requests.at("protocol_errors").asUint64() << "\n";
  out << "latency    p50 " << formatMicros(p50) << "   p95 "
      << formatMicros(p95) << "   p99 " << formatMicros(p99) << "\n";
  out << "engine     queue " << engine.at("queue_depth").asUint64()
      << "   in-flight " << engine.at("in_flight").asUint64()
      << "   completed " << engine.at("jobs_completed").asUint64()
      << "   shed " << engine.at("jobs_shed").asUint64() << "\n";
  out << "cache      hits " << static_cast<std::uint64_t>(hits)
      << "   misses " << static_cast<std::uint64_t>(misses) << "   hit rate ";
  if (lookups > 0)
    out << stats::Table::pct(hits / lookups) << "\n";
  else
    out << "-\n";
  out << "loop       iters " << loop.at("iterations").asUint64()
      << "   stalls " << loop.at("stalls").asUint64() << "   iter p99 "
      << formatMicros(loop.at("iteration_p99_us").asDouble())
      << "   dispatch max " << loop.at("dispatch_queue_depth_max").asUint64()
      << "   completion max "
      << loop.at("completion_queue_depth_max").asUint64() << "\n\n";

  stats::Table table(
      {"conn", "in-flight", "rbuf", "wbuf", "age ms", "last verb"});
  for (const service::Json& conn : health.at("connections").asArray()) {
    const service::Json* verb = conn.find("last_verb");
    table.addRow({std::to_string(conn.at("id").asUint64()),
                  std::to_string(conn.at("in_flight").asUint64()),
                  std::to_string(conn.at("read_buffered").asUint64()),
                  std::to_string(conn.at("write_buffered").asUint64()),
                  std::to_string(conn.at("age_ms").asUint64()),
                  verb != nullptr ? verb->asString() : "-"});
  }
  table.printAscii(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::chrono::milliseconds interval(1000);
  bool once = false;

  service::OptionSet options("lbtop", "live dashboard for the lbd daemon");
  options
      .value({"--port"}, "N", "lbd port on 127.0.0.1 (required)",
             [&](const std::string& opt, const std::string& v) {
               port = static_cast<std::uint16_t>(
                   service::parseU64InRange(opt, v, 1, 65535));
             })
      .value({"--interval-ms"}, "N", "refresh period (default 1000)",
             [&](const std::string& opt, const std::string& v) {
               interval = std::chrono::milliseconds(
                   service::parseU64InRange(opt, v, 10, 3600000));
             })
      .flag({"--once"}, "print one snapshot and exit (no screen clearing)",
            &once);
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;
  if (port == 0) {
    std::cerr << "lbtop: --port is required (try --help)\n";
    return 2;
  }

  try {
    service::Client client(port);
    double prev_total = -1.0;
    auto prev_at = std::chrono::steady_clock::now();
    for (;;) {
      const service::Json health_reply = client.health();
      const service::Json* ok = health_reply.find("ok");
      if (ok == nullptr || !ok->asBool()) {
        const service::Json* error = health_reply.find("error");
        std::cerr << "lbtop: daemon rejected health: "
                  << (error != nullptr ? error->asString() : "unknown error")
                  << "\n";
        return 1;
      }
      const double history_rps =
          rpsFromHistory(client.history(2, {"lb_server_requests_total"}));

      const service::Json& health = health_reply.at("health");
      const auto now = std::chrono::steady_clock::now();
      const double total = health.at("requests").at("total").asDouble();
      double local_rps = -1.0;
      if (prev_total >= 0) {
        const double seconds =
            std::chrono::duration<double>(now - prev_at).count();
        if (seconds > 0) local_rps = (total - prev_total) / seconds;
      }
      prev_total = total;
      prev_at = now;

      if (!once) std::cout << "\x1b[2J\x1b[H";  // clear + home
      renderFrame(std::cout, port, health, history_rps, local_rps, interval,
                  once);
      std::cout.flush();
      if (once) break;
      std::this_thread::sleep_for(interval);
    }
  } catch (const std::exception& e) {
    std::cerr << "lbtop: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
