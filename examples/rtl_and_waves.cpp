// Example: exporting real hardware artifacts.
//
// 1. Emits synthesizable Verilog for a 4-master static lottery manager
//    (lottery_manager.v) plus a self-checking testbench
//    (lottery_manager_tb.v) — run them with any Verilog simulator:
//       iverilog -g2005 lottery_manager.v lottery_manager_tb.v && ./a.out
// 2. Runs a short bus simulation with grant tracing and writes the trace as
//    a VCD file (bus_trace.vcd) viewable in GTKWave, alongside the same
//    trace rendered as an ASCII waveform on stdout.
//
//   ./build/examples/rtl_and_waves [--out-dir DIR]
//
// Artifacts land under build/rtl_and_waves/ by default (never the
// repository root); pass --out-dir (or a bare directory argument, the old
// calling convention) to redirect them.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bus/bus.hpp"
#include "bus/waveform.hpp"
#include "core/lottery.hpp"
#include "hw/verilog_export.hpp"
#include "service/parse.hpp"
#include "sim/kernel.hpp"
#include "traffic/generator.hpp"

int main(int argc, char** argv) {
  using namespace lb;
  std::string out_dir = "build/rtl_and_waves";
  service::OptionSet options("rtl_and_waves",
                             "Verilog + VCD + ASCII waveform export");
  options
      .positional("DIR", "legacy form of --out-dir",
                  [&](const std::string& v) { out_dir = v; })
      .value({"--out-dir"}, "DIR",
             "artifact directory (default build/rtl_and_waves)",
             [&](const std::string&, const std::string& v) { out_dir = v; });
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::cerr << "error: cannot create " << out_dir << ": " << ec.message()
              << "\n";
    return 1;
  }
  const std::string dir = out_dir + "/";

  // --- 1. RTL export ---------------------------------------------------------
  const std::vector<std::uint32_t> tickets = {1, 2, 3, 4};
  {
    std::ofstream rtl(dir + "lottery_manager.v");
    rtl << hw::exportStaticManagerVerilog(tickets);
    std::ofstream tb(dir + "lottery_manager_tb.v");
    tb << hw::exportManagerTestbench(tickets);
  }
  std::cout << "wrote " << dir << "lottery_manager.v and "
            << dir << "lottery_manager_tb.v\n";

  // --- 2. simulate and dump waves ---------------------------------------------
  bus::BusConfig config;
  config.num_masters = 4;
  config.max_burst_words = 8;
  bus::Bus bus(config, std::make_unique<core::LotteryArbiter>(tickets));
  bus.setTraceEnabled(true);

  sim::CycleKernel kernel;
  std::vector<std::unique_ptr<traffic::TrafficSource>> sources;
  for (bus::MasterId m = 0; m < 4; ++m) {
    traffic::TrafficParams params;
    params.size = traffic::SizeDist::fixed(8);
    params.gap = traffic::GapDist::geometric(10);
    params.max_outstanding = 2;
    params.seed = 7 + static_cast<std::uint64_t>(m);
    sources.push_back(std::make_unique<traffic::TrafficSource>(bus, m, params));
    kernel.attach(*sources.back());
  }
  kernel.attach(bus);
  kernel.run(160);

  {
    std::ofstream vcd(dir + "bus_trace.vcd");
    vcd << bus::grantTraceToVcd(bus.trace(), 4);
  }
  std::cout << "wrote " << dir << "bus_trace.vcd (open with GTKWave)\n\n"
            << "same trace as ASCII (tickets 1:2:3:4 — note M4 owning the "
               "bus most often):\n"
            << bus::waveformToString(bus.trace(), 4);
  return 0;
}
