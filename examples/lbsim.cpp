// lbsim — command-line driver for one-off bus experiments.
//
// The quickest way to poke at the library without writing C++:
//
//   ./build/examples/lbsim --arbiter lottery --tickets 1,2,3,4 --class T2
//   ./build/examples/lbsim --arbiter tdma --weights 1,2,3,4 --class T6
//   ./build/examples/lbsim --arbiter priority --class T2 --cycles 500000
//   ./build/examples/lbsim --arbiter wrr --weights 5,1,1,1 --burst 32
//   ./build/examples/lbsim --help
//
// Prints the paper's two metrics (bandwidth fractions, cycles/word) for the
// chosen architecture over the chosen traffic class.

#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arbiters/round_robin.hpp"
#include "arbiters/simple.hpp"
#include "arbiters/static_priority.hpp"
#include "arbiters/tdma.hpp"
#include "arbiters/token_ring.hpp"
#include "arbiters/weighted_round_robin.hpp"
#include "core/lottery.hpp"
#include "stats/table.hpp"
#include "traffic/classes.hpp"
#include "traffic/testbed.hpp"

namespace {

using namespace lb;

struct Options {
  std::string arbiter = "lottery";
  std::vector<std::uint32_t> weights = {1, 2, 3, 4};
  std::string traffic_class = "T2";
  std::size_t masters = 4;
  sim::Cycle cycles = 200000;
  std::uint32_t burst = 16;
  std::uint64_t seed = 7;
  bool lfsr = false;
  bool csv = false;
  bool compare = false;  ///< run every architecture side by side
};

std::vector<std::uint32_t> parseList(const std::string& text) {
  std::vector<std::uint32_t> values;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ','))
    values.push_back(static_cast<std::uint32_t>(std::stoul(item)));
  return values;
}

void usage() {
  std::cout <<
      "lbsim — LOTTERYBUS experiment driver\n"
      "  --arbiter X    lottery | lottery-dynamic | priority | tdma | rr |\n"
      "                 wrr | token | random | fcfs        (default lottery)\n"
      "  --tickets L    comma list, also accepted as --weights / --priorities\n"
      "  --class TN     traffic class T1..T9               (default T2)\n"
      "  --masters N    number of bus masters              (default 4)\n"
      "  --cycles N     simulation length                  (default 200000)\n"
      "  --burst N      maximum burst words                (default 16)\n"
      "  --seed N       RNG seed                           (default 7)\n"
      "  --lfsr         use the hardware LFSR lottery variant\n"
      "  --csv          emit CSV instead of an ASCII table\n"
      "  --compare      run ALL architectures on the same traffic and print\n"
      "                 one summary row per (architecture, master)\n";
}

std::unique_ptr<bus::IArbiter> makeArbiter(const Options& options) {
  const auto& w = options.weights;
  if (options.arbiter == "lottery")
    return std::make_unique<core::LotteryArbiter>(
        w, options.lfsr ? core::LotteryRng::kLfsr : core::LotteryRng::kExact,
        options.seed);
  if (options.arbiter == "lottery-dynamic")
    return std::make_unique<core::DynamicLotteryArbiter>(options.seed);
  if (options.arbiter == "priority")
    return std::make_unique<arb::StaticPriorityArbiter>(
        std::vector<unsigned>(w.begin(), w.end()));
  if (options.arbiter == "tdma") {
    std::vector<unsigned> slots;
    for (const std::uint32_t v : w) slots.push_back(v * options.burst);
    return std::make_unique<arb::TdmaArbiter>(
        arb::TdmaArbiter::contiguousWheel(slots), w.size());
  }
  if (options.arbiter == "rr")
    return std::make_unique<arb::RoundRobinArbiter>(options.masters);
  if (options.arbiter == "wrr")
    return std::make_unique<arb::WeightedRoundRobinArbiter>(w, options.burst);
  if (options.arbiter == "token")
    return std::make_unique<arb::TokenRingArbiter>(options.masters, 0);
  if (options.arbiter == "random")
    return std::make_unique<arb::RandomArbiter>(options.masters, options.seed);
  if (options.arbiter == "fcfs")
    return std::make_unique<arb::FcfsArbiter>(options.masters);
  throw std::invalid_argument("unknown arbiter: " + options.arbiter);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--arbiter") {
        options.arbiter = value();
      } else if (arg == "--tickets" || arg == "--weights" ||
                 arg == "--priorities") {
        options.weights = parseList(value());
      } else if (arg == "--class") {
        options.traffic_class = value();
      } else if (arg == "--masters") {
        options.masters = std::stoul(value());
      } else if (arg == "--cycles") {
        options.cycles = std::stoull(value());
      } else if (arg == "--burst") {
        options.burst = static_cast<std::uint32_t>(std::stoul(value()));
      } else if (arg == "--seed") {
        options.seed = std::stoull(value());
      } else if (arg == "--lfsr") {
        options.lfsr = true;
      } else if (arg == "--csv") {
        options.csv = true;
      } else if (arg == "--compare") {
        options.compare = true;
      } else {
        std::cerr << "unknown option " << arg << "\n";
        usage();
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  try {
    if (options.weights.size() != options.masters) {
      // Re-derive: either the user set --masters or gave a list; prefer the
      // list's arity when one was provided.
      if (options.weights.size() > 1) {
        options.masters = options.weights.size();
      } else {
        options.weights.assign(options.masters, 1);
      }
    }

    bus::BusConfig config = traffic::defaultBusConfig(options.masters);
    config.max_burst_words = options.burst;

    if (options.compare) {
      stats::Table table({"arbiter", "master", "bandwidth", "cycles/word"});
      for (const char* kind :
           {"lottery", "lottery-dynamic", "priority", "tdma", "rr", "wrr",
            "token", "random", "fcfs"}) {
        Options variant = options;
        variant.arbiter = kind;
        const auto result = traffic::runTestbed(
            config, makeArbiter(variant),
            traffic::paramsFor(traffic::trafficClass(options.traffic_class),
                               options.masters, options.seed),
            options.cycles);
        for (std::size_t m = 0; m < options.masters; ++m)
          table.addRow({kind, "C" + std::to_string(m + 1),
                        stats::Table::pct(result.bandwidth_fraction[m]),
                        stats::Table::num(result.cycles_per_word[m])});
      }
      if (options.csv)
        table.printCsv(std::cout);
      else
        table.printAscii(std::cout);
      return 0;
    }

    const auto result = traffic::runTestbed(
        std::move(config), makeArbiter(options),
        traffic::paramsFor(traffic::trafficClass(options.traffic_class),
                           options.masters, options.seed),
        options.cycles);

    stats::Table table({"master", "weight", "bandwidth", "traffic share",
                        "cycles/word", "messages"});
    for (std::size_t m = 0; m < options.masters; ++m)
      table.addRow({"C" + std::to_string(m + 1),
                    std::to_string(options.weights[m]),
                    stats::Table::pct(result.bandwidth_fraction[m]),
                    stats::Table::pct(result.traffic_share[m]),
                    stats::Table::num(result.cycles_per_word[m]),
                    std::to_string(result.messages_completed[m])});
    if (options.csv)
      table.printCsv(std::cout);
    else
      table.printAscii(std::cout);
    std::cout << (options.csv ? "" : "\n")
              << "unutilized: " << stats::Table::pct(result.unutilized_fraction)
              << "  grants: " << result.grants << "  arbiter: "
              << options.arbiter << "  class: " << options.traffic_class
              << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
