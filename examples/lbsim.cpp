// lbsim — command-line driver for one-off bus experiments.
//
// The quickest way to poke at the library without writing C++:
//
//   ./build/examples/lbsim --arbiter lottery --tickets 1,2,3,4 --class T2
//   ./build/examples/lbsim --arbiter tdma --weights 1,2,3,4 --class T6
//   ./build/examples/lbsim --arbiter priority --class T2 --cycles 500000
//   ./build/examples/lbsim --arbiter wrr --weights 5,1,1,1 --burst 32
//   ./build/examples/lbsim --help
//
// Prints the paper's two metrics (bandwidth fractions, cycles/word) for the
// chosen architecture over the chosen traffic class.
//
// The command line builds a service::Scenario and runs it through the same
// service::runScenario path the lbd daemon uses, so
// `lbsim <flags>` and `lbcli run <flags>` print byte-identical reports.
// Option values are parsed with the strict service::parse* helpers: junk
// like `--masters x` gets a one-line error + usage and exit code 2, never
// an uncaught std::invalid_argument.

#include <iostream>
#include <string>

#include "service/parse.hpp"
#include "service/report.hpp"
#include "service/scenario.hpp"
#include "stats/table.hpp"

namespace {

using namespace lb;

void usage() {
  std::cout <<
      "lbsim — LOTTERYBUS experiment driver\n"
      "  --arbiter X    lottery | lottery-dynamic | priority | tdma | rr |\n"
      "                 wrr | token | random | fcfs        (default lottery)\n"
      "  --tickets L    comma list, also accepted as --weights / --priorities\n"
      "  --class TN     traffic class T1..T9               (default T2)\n"
      "  --masters N    number of bus masters              (default 4)\n"
      "  --cycles N     simulation length                  (default 200000)\n"
      "  --burst N      maximum burst words                (default 16)\n"
      "  --seed N       RNG seed                           (default 7)\n"
      "  --lfsr         use the hardware LFSR lottery variant\n"
      "  --csv          emit CSV instead of an ASCII table\n"
      "  --compare      run ALL architectures on the same traffic and print\n"
      "                 one summary row per (architecture, master)\n";
}

}  // namespace

int main(int argc, char** argv) {
  service::Scenario scenario;
  bool csv = false;
  bool compare = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--arbiter") {
        scenario.arbiter = value();
      } else if (arg == "--tickets" || arg == "--weights" ||
                 arg == "--priorities") {
        scenario.weights = service::parseU32List(arg, value());
      } else if (arg == "--class") {
        scenario.traffic_class = value();
      } else if (arg == "--masters") {
        scenario.masters = service::parseU64InRange(arg, value(), 1, 1 << 16);
      } else if (arg == "--cycles") {
        scenario.cycles = service::parseU64(arg, value());
      } else if (arg == "--burst") {
        scenario.burst = service::parseU32(arg, value());
      } else if (arg == "--seed") {
        scenario.seed = service::parseU64(arg, value());
      } else if (arg == "--lfsr") {
        scenario.lfsr = true;
      } else if (arg == "--csv") {
        csv = true;
      } else if (arg == "--compare") {
        compare = true;
      } else {
        std::cerr << "error: unknown option " << arg << "\n";
        usage();
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      usage();
      return 2;
    }
  }

  try {
    scenario = service::normalized(scenario);

    if (compare) {
      stats::Table table({"arbiter", "master", "bandwidth", "cycles/word"});
      for (const std::string& kind : service::knownArbiters()) {
        service::Scenario variant = scenario;
        variant.arbiter = kind;
        const auto result = service::runScenario(variant);
        for (std::size_t m = 0; m < scenario.masters; ++m)
          table.addRow({kind, "C" + std::to_string(m + 1),
                        stats::Table::pct(result.bandwidth_fraction[m]),
                        stats::Table::num(result.cycles_per_word[m])});
      }
      if (csv)
        table.printCsv(std::cout);
      else
        table.printAscii(std::cout);
      return 0;
    }

    const auto result = service::runScenario(scenario);
    service::writeResultReport(std::cout, scenario, result, csv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
