// lbsim — command-line driver for one-off bus experiments.
//
// The quickest way to poke at the library without writing C++:
//
//   ./build/examples/lbsim --arbiter lottery --tickets 1,2,3,4 --class T2
//   ./build/examples/lbsim --arbiter tdma --weights 1,2,3,4 --class T6
//   ./build/examples/lbsim --arbiter priority --class T2 --cycles 500000
//   ./build/examples/lbsim --arbiter wrr --weights 5,1,1,1 --burst 32
//   ./build/examples/lbsim --trace-out grants.json   # chrome://tracing
//   ./build/examples/lbsim --help
//
// Prints the paper's two metrics (bandwidth fractions, cycles/word) for the
// chosen architecture over the chosen traffic class.
//
// The command line builds a service::Scenario and runs it through the same
// service::runScenario path the lbd daemon uses, so
// `lbsim <flags>` and `lbcli run <flags>` print byte-identical reports.
// Options are declared on a service::OptionSet: junk like `--masters x`
// gets a one-line error + usage and exit code 2, never an uncaught
// std::invalid_argument.

#include <fstream>
#include <iostream>
#include <string>

#include "obs/trace.hpp"
#include "service/parse.hpp"
#include "service/report.hpp"
#include "service/scenario.hpp"
#include "stats/table.hpp"

namespace {

using namespace lb;

/// Renders executed grants as Chrome trace_event JSON: one lane per master,
/// one complete event per grant, one simulated cycle per microsecond.
void writeChromeTrace(std::ostream& out, const service::Scenario& scenario,
                      const std::vector<bus::GrantRecord>& grants) {
  obs::TraceRecorder recorder;
  recorder.setProcessName(0, "lbsim " + scenario.arbiter);
  for (std::size_t m = 0; m < scenario.masters; ++m)
    recorder.setThreadName(0, static_cast<std::uint32_t>(m),
                           "master " + std::to_string(m));
  for (const bus::GrantRecord& grant : grants) {
    if (grant.master < 0) continue;
    recorder.addComplete("grant", "bus",
                         /*pid=*/0,
                         /*tid=*/static_cast<std::uint32_t>(grant.master),
                         /*ts_us=*/static_cast<double>(grant.start),
                         /*dur_us=*/static_cast<double>(grant.words),
                         {{"words", static_cast<double>(grant.words)}});
  }
  recorder.writeJson(out);
}

/// Mesh analogue of writeChromeTrace: one process lane per router, one
/// thread lane per output port, one complete event per router grant
/// (ts = cycle, duration = flits).  Input port / VC / source / tag ride
/// along as event args so Perfetto's selection panel shows the full grant.
void writeMeshChromeTrace(std::ostream& out, const service::Scenario& scenario,
                          const std::vector<noc::NocGrantRecord>& grants) {
  obs::TraceRecorder recorder;
  const std::size_t routers = scenario.mesh.width * scenario.mesh.height;
  for (std::size_t r = 0; r < routers; ++r) {
    const std::uint32_t pid = static_cast<std::uint32_t>(r);
    recorder.setProcessName(pid, "router " + std::to_string(r));
    for (int port = 0; port < noc::kNumPorts; ++port)
      recorder.setThreadName(pid, static_cast<std::uint32_t>(port),
                             std::string("out ") + noc::portName(port));
  }
  for (const noc::NocGrantRecord& grant : grants)
    recorder.addComplete(
        std::string("grant ") + noc::portName(grant.input_port), "noc",
        /*pid=*/static_cast<std::uint32_t>(grant.router),
        /*tid=*/static_cast<std::uint32_t>(grant.output_port),
        /*ts_us=*/static_cast<double>(grant.cycle),
        /*dur_us=*/static_cast<double>(grant.flits),
        {{"input_port", static_cast<double>(grant.input_port)},
         {"vc", static_cast<double>(grant.vc)},
         {"source", static_cast<double>(grant.source)},
         {"tag", static_cast<double>(grant.tag)},
         {"flits", static_cast<double>(grant.flits)}});
  recorder.writeJson(out);
}

}  // namespace

int main(int argc, char** argv) {
  service::Scenario scenario;
  bool csv = false;
  bool compare = false;
  std::string trace_out;

  service::OptionSet options("lbsim", "LOTTERYBUS experiment driver");
  options
      .value({"--arbiter"}, "X",
             "lottery | lottery-dynamic | priority | tdma | rr |\n"
             "wrr | token | random | fcfs        (default lottery)",
             [&](const std::string&, const std::string& v) {
               scenario.arbiter = v;
             })
      .value({"--tickets", "--weights", "--priorities"}, "L",
             "comma list of per-master weights",
             [&](const std::string& opt, const std::string& v) {
               scenario.weights = service::parseU32List(opt, v);
             })
      .value({"--class"}, "TN", "traffic class T1..T9 (default T2)",
             [&](const std::string&, const std::string& v) {
               scenario.traffic_class = v;
             })
      .value({"--masters"}, "N", "number of bus masters (default 4)",
             [&](const std::string& opt, const std::string& v) {
               scenario.masters = service::parseU64InRange(opt, v, 1, 1 << 16);
             })
      .value({"--cycles"}, "N", "simulation length (default 200000)",
             [&](const std::string& opt, const std::string& v) {
               scenario.cycles = service::parseU64(opt, v);
             })
      .value({"--burst"}, "N", "maximum burst words (default 16)",
             [&](const std::string& opt, const std::string& v) {
               scenario.burst = service::parseU32(opt, v);
             })
      .value({"--seed"}, "N", "RNG seed (default 7)",
             [&](const std::string& opt, const std::string& v) {
               scenario.seed = service::parseU64(opt, v);
             })
      .flag({"--lfsr"}, "use the hardware LFSR lottery variant",
            &scenario.lfsr)
      .value({"--mesh"}, "WxH",
             "run on a WxH mesh NoC instead of the shared bus\n"
             "(one master per node; a bare N means NxN)",
             [&](const std::string& opt, const std::string& v) {
               const auto [w, h] = service::parseMeshDims(opt, v);
               scenario.mesh.width = w;
               scenario.mesh.height = h;
             })
      .value({"--mesh-pattern"}, "P",
             "mesh destination pattern: uniform | transpose |\n"
             "neighbor | hotspot | slave       (default uniform)",
             [&](const std::string&, const std::string& v) {
               scenario.mesh.pattern = v;
             })
      .value({"--preset"}, "NAME",
             "start from a named mesh preset (mesh4x4-lottery |\n"
             "mesh6x6-sesc); later flags override its fields",
             [&](const std::string&, const std::string& v) {
               scenario = service::meshPreset(v);
             })
      .value({"--kernel-mode"}, "M",
             "fast (skip provably dead cycles, default) | naive\n"
             "(step every cycle); results are bit-identical",
             [&](const std::string&, const std::string& v) {
               scenario.kernel_mode = v;
             })
      .value({"--replicas"}, "N",
             "run N independently-seeded replicas in lockstep\n"
             "and aggregate (means of rates, sums of counters)",
             [&](const std::string& opt, const std::string& v) {
               scenario.replicas = service::parseU32(opt, v);
             })
      .flag({"--csv"}, "emit CSV instead of an ASCII table", &csv)
      .flag({"--compare"},
            "run ALL architectures on the same traffic and print\n"
            "one summary row per (architecture, master)",
            &compare)
      .value({"--trace-out"}, "FILE",
             "write executed grants as Chrome trace_event JSON\n"
             "(load in chrome://tracing or ui.perfetto.dev)",
             [&](const std::string&, const std::string& v) { trace_out = v; });
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;

  try {
    scenario = service::normalized(scenario);

    if (compare) {
      stats::Table table({"arbiter", "master", "bandwidth", "cycles/word"});
      for (const std::string& kind : service::knownArbiters()) {
        service::Scenario variant = scenario;
        variant.arbiter = kind;
        const auto result = service::runScenario(variant);
        for (std::size_t m = 0; m < scenario.masters; ++m)
          table.addRow({kind, "C" + std::to_string(m + 1),
                        stats::Table::pct(result.bandwidth_fraction[m]),
                        stats::Table::num(result.cycles_per_word[m])});
      }
      if (csv)
        table.printCsv(std::cout);
      else
        table.printAscii(std::cout);
      return 0;
    }

    std::vector<bus::GrantRecord> grants;
    std::vector<noc::NocGrantRecord> mesh_grants;
    service::RunOptions run_options;
    if (!trace_out.empty()) {
      if (scenario.mesh.enabled())
        run_options.capture_mesh_trace = &mesh_grants;
      else
        run_options.capture_trace = &grants;
    }
    const auto result = service::runScenario(scenario, run_options);
    service::writeResultReport(std::cout, scenario, result, csv);
    if (!trace_out.empty()) {
      std::ofstream out(trace_out, std::ios::trunc);
      if (!out)
        throw std::runtime_error("cannot open --trace-out file " + trace_out);
      if (scenario.mesh.enabled()) {
        writeMeshChromeTrace(out, scenario, mesh_grants);
        std::cerr << "wrote " << mesh_grants.size() << " router grant spans to "
                  << trace_out << "\n";
      } else {
        writeChromeTrace(out, scenario, grants);
        std::cerr << "wrote " << grants.size() << " grant spans to "
                  << trace_out << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
