// lbcli — command-line client for the lbd daemon.
//
//   ./build/examples/lbcli --port 4817 run --arbiter lottery --tickets 1,2,3,4
//   ./build/examples/lbcli --port 4817 sweep --class T2 --seeds 10
//   ./build/examples/lbcli --port 4817 stats
//   ./build/examples/lbcli --port 4817 shutdown
//
// `run` accepts exactly the scenario flags lbsim takes and prints the same
// report from the daemon's response — same seed, byte-identical stdout —
// while cache/latency metadata goes to stderr.  `sweep` expands --seeds N
// into N scenarios (seed, seed+1, ...) submitted as one request; rerunning
// it is served from the daemon's result cache.

#include <iostream>
#include <sstream>
#include <string>

#include "service/client.hpp"
#include "service/parse.hpp"
#include "service/report.hpp"
#include "service/scenario.hpp"
#include "stats/table.hpp"

namespace {

using namespace lb;

void usage() {
  std::cout <<
      "lbcli — LOTTERYBUS daemon client\n"
      "  lbcli [--port N] run [scenario flags] [--csv] [--json]\n"
      "  lbcli [--port N] sweep [scenario flags] [--seeds N] [--csv]\n"
      "  lbcli [--port N] stats\n"
      "  lbcli [--port N] shutdown\n"
      "scenario flags (same as lbsim):\n"
      "  --arbiter X    lottery | lottery-dynamic | priority | tdma | rr |\n"
      "                 wrr | token | random | fcfs        (default lottery)\n"
      "  --tickets L    comma list, also accepted as --weights / --priorities\n"
      "  --class TN     traffic class T1..T9               (default T2)\n"
      "  --masters N    number of bus masters              (default 4)\n"
      "  --cycles N     simulation length                  (default 200000)\n"
      "  --burst N      maximum burst words                (default 16)\n"
      "  --seed N       RNG seed                           (default 7)\n"
      "  --lfsr         use the hardware LFSR lottery variant\n"
      "other:\n"
      "  --port N       daemon port                        (default 4817)\n"
      "  --seeds N      sweep: seeds seed..seed+N-1        (default 8)\n"
      "  --csv          emit CSV instead of an ASCII table\n"
      "  --json         run: print the raw response document\n";
}

int failProtocol(const service::Json& response) {
  const service::Json* error = response.find("error");
  std::cerr << "error: "
            << (error ? error->asString() : std::string("request failed"))
            << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 4817;
  std::string verb;
  service::Scenario scenario;
  std::uint64_t sweep_seeds = 8;
  bool csv = false;
  bool raw_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--port") {
        port = static_cast<std::uint16_t>(
            service::parseU64InRange(arg, value(), 1, 65535));
      } else if (arg == "--arbiter") {
        scenario.arbiter = value();
      } else if (arg == "--tickets" || arg == "--weights" ||
                 arg == "--priorities") {
        scenario.weights = service::parseU32List(arg, value());
      } else if (arg == "--class") {
        scenario.traffic_class = value();
      } else if (arg == "--masters") {
        scenario.masters = service::parseU64InRange(arg, value(), 1, 1 << 16);
      } else if (arg == "--cycles") {
        scenario.cycles = service::parseU64(arg, value());
      } else if (arg == "--burst") {
        scenario.burst = service::parseU32(arg, value());
      } else if (arg == "--seed") {
        scenario.seed = service::parseU64(arg, value());
      } else if (arg == "--seeds") {
        sweep_seeds = service::parseU64InRange(arg, value(), 1, 100000);
      } else if (arg == "--lfsr") {
        scenario.lfsr = true;
      } else if (arg == "--csv") {
        csv = true;
      } else if (arg == "--json") {
        raw_json = true;
      } else if (!arg.empty() && arg[0] != '-' && verb.empty()) {
        verb = arg;
      } else {
        std::cerr << "error: unknown option " << arg << "\n";
        usage();
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      usage();
      return 2;
    }
  }

  if (verb.empty()) {
    std::cerr << "error: no verb given (run | sweep | stats | shutdown)\n";
    usage();
    return 2;
  }

  try {
    service::Client client(port);

    if (verb == "run") {
      const service::Json response =
          client.run(service::toJson(service::normalized(scenario)));
      if (raw_json) {
        std::cout << response.dump() << "\n";
        return response.at("ok").asBool() ? 0 : 1;
      }
      if (!response.at("ok").asBool()) return failProtocol(response);
      const service::ScenarioResult result =
          service::resultFromJson(response.at("result"));
      service::writeResultReport(std::cout, scenario, result, csv);
      std::cerr << "[lbd " << response.at("hash").asString()
                << " cached=" << (response.at("cached").asBool() ? "yes" : "no")
                << " execute_us=" << response.at("execute_micros").asDouble()
                << "]\n";
      return 0;
    }

    if (verb == "sweep") {
      service::Json scenarios = service::Json::array();
      const std::uint64_t base = scenario.seed;
      for (std::uint64_t s = 0; s < sweep_seeds; ++s) {
        service::Scenario variant = scenario;
        variant.seed = base + s;
        scenarios.push(service::toJson(service::normalized(variant)));
      }
      const service::Json response = client.sweep(std::move(scenarios));
      if (!response.at("ok").asBool()) return failProtocol(response);
      stats::Table table({"seed", "cached", "bandwidth", "overall c/w"});
      std::uint64_t hits = 0;
      const auto& results = response.at("results").asArray();
      for (std::size_t s = 0; s < results.size(); ++s) {
        const service::Json& entry = results[s];
        if (!entry.at("ok").asBool()) {
          table.addRow({std::to_string(base + s), "error",
                        entry.at("error").asString(), "-"});
          continue;
        }
        const service::ScenarioResult result =
            service::resultFromJson(entry.at("result"));
        const bool cached = entry.at("cached").asBool();
        hits += cached ? 1 : 0;
        std::string shares;
        double words = 0, weighted = 0;
        for (std::size_t m = 0; m < result.bandwidth_fraction.size(); ++m) {
          shares += (m ? ":" : "") +
                    stats::Table::pct(result.bandwidth_fraction[m]);
          weighted += result.cycles_per_word[m] *
                      static_cast<double>(result.messages_completed[m]);
          words += static_cast<double>(result.messages_completed[m]);
        }
        table.addRow({std::to_string(base + s), cached ? "yes" : "no", shares,
                      stats::Table::num(words > 0 ? weighted / words : 0)});
      }
      if (csv)
        table.printCsv(std::cout);
      else
        table.printAscii(std::cout);
      std::cout << "cache hits: " << hits << "/" << results.size() << "\n";
      return 0;
    }

    if (verb == "stats") {
      const service::Json response = client.stats();
      if (!response.at("ok").asBool()) return failProtocol(response);
      for (const auto& [key, value] : response.at("stats").asObject())
        std::cout << key << ": " << value.dump() << "\n";
      return 0;
    }

    if (verb == "shutdown") {
      const service::Json response = client.shutdown();
      if (!response.at("ok").asBool()) return failProtocol(response);
      std::cout << "daemon stopping\n";
      return 0;
    }

    std::cerr << "error: unknown verb \"" << verb << "\"\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
