// lbcli — command-line client for the lbd daemon.
//
//   ./build/examples/lbcli --port 4817 run --arbiter lottery --tickets 1,2,3,4
//   ./build/examples/lbcli --port 4817 sweep --class T2 --seeds 10
//   ./build/examples/lbcli --port 4817 batch --class T2 --seeds 32
//   ./build/examples/lbcli --port 4817 stats
//   ./build/examples/lbcli --port 4817 metrics | grep lb_server
//   ./build/examples/lbcli --port 4817 trace > trace.json
//   ./build/examples/lbcli --port 4817 health
//   ./build/examples/lbcli --port 4817 history --last 5 --metric \
//       lb_server_requests_total
//   ./build/examples/lbcli --port 4817 shutdown
//
// `run` accepts exactly the scenario flags lbsim takes and prints the same
// report from the daemon's response — same seed, byte-identical stdout —
// while cache/latency metadata goes to stderr.  `sweep` expands --seeds N
// into N scenarios (seed, seed+1, ...) submitted as one request; rerunning
// it is served from the daemon's result cache.  `batch` expands --seeds
// the same way but streams one frame per scenario as the daemon finishes
// it (completion order, not request order — each frame carries its
// scenario index), ending in a summary line.  `metrics` prints the
// daemon's Prometheus text exposition verbatim, ready to pipe into
// promtool or a node_exporter textfile collector.
//
// Every response is checked for the wire protocol version ("v": 1); a
// daemon speaking a different protocol is reported as an error rather
// than mis-parsed.
//
// Robustness flags (docs/robustness.md): --deadline-ms bounds the whole
// request including reconnects and backoff; --retries / --retry-seed
// control the deterministic decorrelated-jitter retry schedule;
// --client-metrics dumps this process's metrics registry (including
// lb_client_retries_total) as Prometheus text on stderr before exiting,
// so soak scripts can count retries across many invocations.

#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/parse.hpp"
#include "service/protocol.hpp"
#include "service/report.hpp"
#include "service/scenario.hpp"
#include "stats/table.hpp"

namespace {

using namespace lb;

/// The verb list comes from the shared protocol registry, so lbcli's usage
/// text can never drift from what the daemon dispatches.
std::string verbList() {
  std::string out;
  for (const service::VerbSpec& spec : service::verbRegistry()) {
    if (!out.empty()) out += " | ";
    out += spec.name;
  }
  return out;
}

std::string verbSummaries() {
  std::string out;
  for (const service::VerbSpec& spec : service::verbRegistry()) {
    const std::size_t pad =
        spec.name.size() < 9 ? 9 - spec.name.size() : std::size_t{1};
    out += "  " + spec.name + std::string(pad, ' ') + spec.summary + "\n";
  }
  return out;
}

int failProtocol(const service::Json& response) {
  const service::Json* error = response.find("error");
  std::cerr << "error: "
            << (error ? error->asString() : std::string("request failed"))
            << "\n";
  return 1;
}

/// A verb the daemon does not know comes back with its supported_verbs
/// list; turn that into an explicit "daemon too old" diagnosis instead of
/// echoing "unknown verb" (which reads like a caller typo).
int failUnsupported(const std::string& verb, const service::Json& response) {
  const service::Json* verbs = response.find("supported_verbs");
  if (verbs == nullptr || !verbs->isArray()) return failProtocol(response);
  std::string supported;
  for (const service::Json& v : verbs->asArray()) {
    if (!supported.empty()) supported += ", ";
    supported += v.asString();
  }
  std::cerr << "error: daemon does not support " << verb
            << " (supported: " << supported << ")\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  service::ClientOptions client_options;
  client_options.port = 4817;
  std::string verb;
  service::Scenario scenario;
  std::uint64_t sweep_seeds = 8;
  std::uint64_t history_last = 0;
  std::vector<std::string> history_metrics;
  bool csv = false;
  bool raw_json = false;
  bool client_metrics = false;

  service::OptionSet options("lbcli", "LOTTERYBUS daemon client");
  options
      .positional("VERB", verbList(),
                  [&](const std::string& v) {
                    if (!verb.empty())
                      throw std::invalid_argument("more than one verb given (\"" +
                                                  verb + "\" and \"" + v + "\")");
                    verb = v;
                  })
      .value({"--port"}, "N", "daemon port (default 4817)",
             [&](const std::string& opt, const std::string& v) {
               client_options.port = static_cast<std::uint16_t>(
                   service::parseU64InRange(opt, v, 1, 65535));
             })
      .value({"--deadline-ms"}, "N",
             "total budget per request incl. retries; 0 = none (default)",
             [&](const std::string& opt, const std::string& v) {
               client_options.deadline = std::chrono::milliseconds(
                   service::parseU64InRange(opt, v, 0, 86400000));
             })
      .value({"--retries"}, "N",
             "retries after the first attempt (default 3; 0 disables)",
             [&](const std::string& opt, const std::string& v) {
               client_options.max_retries = static_cast<int>(
                   service::parseU64InRange(opt, v, 0, 1000));
             })
      .value({"--retry-seed"}, "N",
             "seed for the deterministic backoff jitter (default 1)",
             [&](const std::string& opt, const std::string& v) {
               client_options.retry_seed = service::parseU64(opt, v);
             })
      .value({"--arbiter"}, "X",
             "lottery | lottery-dynamic | priority | tdma | rr |\n"
             "wrr | token | random | fcfs        (default lottery)",
             [&](const std::string&, const std::string& v) {
               scenario.arbiter = v;
             })
      .value({"--tickets", "--weights", "--priorities"}, "L",
             "comma list of per-master weights",
             [&](const std::string& opt, const std::string& v) {
               scenario.weights = service::parseU32List(opt, v);
             })
      .value({"--class"}, "TN", "traffic class T1..T9 (default T2)",
             [&](const std::string&, const std::string& v) {
               scenario.traffic_class = v;
             })
      .value({"--masters"}, "N", "number of bus masters (default 4)",
             [&](const std::string& opt, const std::string& v) {
               scenario.masters = service::parseU64InRange(opt, v, 1, 1 << 16);
             })
      .value({"--cycles"}, "N", "simulation length (default 200000)",
             [&](const std::string& opt, const std::string& v) {
               scenario.cycles = service::parseU64(opt, v);
             })
      .value({"--burst"}, "N", "maximum burst words (default 16)",
             [&](const std::string& opt, const std::string& v) {
               scenario.burst = service::parseU32(opt, v);
             })
      .value({"--seed"}, "N", "RNG seed (default 7)",
             [&](const std::string& opt, const std::string& v) {
               scenario.seed = service::parseU64(opt, v);
             })
      .value({"--seeds"}, "N",
             "sweep/batch: seeds seed..seed+N-1 (default 8)",
             [&](const std::string& opt, const std::string& v) {
               sweep_seeds = service::parseU64InRange(opt, v, 1, 100000);
             })
      .flag({"--lfsr"}, "use the hardware LFSR lottery variant",
            &scenario.lfsr)
      .value({"--replicas"}, "N",
             "run N independently-seeded replicas in lockstep\n"
             "and aggregate (means of rates, sums of counters)",
             [&](const std::string& opt, const std::string& v) {
               scenario.replicas = service::parseU32(opt, v);
             })
      .value({"--mesh"}, "WxH",
             "run on a WxH mesh NoC instead of the shared bus\n"
             "(one master per node; a bare N means NxN)",
             [&](const std::string& opt, const std::string& v) {
               const auto [w, h] = service::parseMeshDims(opt, v);
               scenario.mesh.width = w;
               scenario.mesh.height = h;
             })
      .value({"--mesh-pattern"}, "P",
             "mesh destination pattern: uniform | transpose |\n"
             "neighbor | hotspot | slave       (default uniform)",
             [&](const std::string&, const std::string& v) {
               scenario.mesh.pattern = v;
             })
      .value({"--preset"}, "NAME",
             "start from a named mesh preset (mesh4x4-lottery |\n"
             "mesh6x6-sesc); later flags override its fields",
             [&](const std::string&, const std::string& v) {
               scenario = service::meshPreset(v);
             })
      .value({"--last"}, "N",
             "history: keep only the newest N samples (default: all)",
             [&](const std::string& opt, const std::string& v) {
               history_last = service::parseU64InRange(opt, v, 1, 1 << 20);
             })
      .value({"--metric"}, "NAME",
             "history: keep only points of this series (repeatable)",
             [&](const std::string&, const std::string& v) {
               history_metrics.push_back(v);
             })
      .flag({"--csv"}, "emit CSV instead of an ASCII table", &csv)
      .flag({"--json"}, "run/batch: print the raw response document(s)",
            &raw_json)
      .flag({"--client-metrics"},
            "dump this process's metrics registry (Prometheus text,\n"
            "incl. lb_client_retries_total) on stderr before exiting",
            &client_metrics);
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;

  if (verb.empty()) {
    std::cerr << "error: no verb given (" << verbList() << ")\n"
              << verbSummaries();
    options.printUsage(std::cerr);
    return 2;
  }

  // Dump the client-process registry on every exit path (including errors)
  // so soak scripts can sum lb_client_retries_total across invocations.
  struct MetricsDump {
    bool enabled;
    ~MetricsDump() {
      if (enabled) std::cerr << obs::registry().renderPrometheus();
    }
  } metrics_dump{client_metrics};

  try {
    service::Client client(client_options);

    if (verb == "run") {
      const service::Json response =
          client.run(service::toJson(service::normalized(scenario)));
      if (raw_json) {
        std::cout << response.dump() << "\n";
        return response.at("ok").asBool() ? 0 : 1;
      }
      if (!response.at("ok").asBool()) return failProtocol(response);
      const service::ScenarioResult result =
          service::resultFromJson(response.at("result"));
      service::writeResultReport(std::cout, scenario, result, csv);
      std::cerr << "[lbd " << response.at("hash").asString()
                << " cached=" << (response.at("cached").asBool() ? "yes" : "no")
                << " execute_us=" << response.at("execute_micros").asDouble()
                << " trace=" << obs::traceIdHex(client.lastTrace().trace_id)
                << "]\n";
      return 0;
    }

    if (verb == "sweep") {
      service::Json scenarios = service::Json::array();
      const std::uint64_t base = scenario.seed;
      for (std::uint64_t s = 0; s < sweep_seeds; ++s) {
        service::Scenario variant = scenario;
        variant.seed = base + s;
        scenarios.push(service::toJson(service::normalized(variant)));
      }
      const service::Json response = client.sweep(std::move(scenarios));
      if (!response.at("ok").asBool()) return failProtocol(response);
      stats::Table table({"seed", "cached", "bandwidth", "overall c/w"});
      std::uint64_t hits = 0;
      const auto& results = response.at("results").asArray();
      for (std::size_t s = 0; s < results.size(); ++s) {
        const service::Json& entry = results[s];
        if (!entry.at("ok").asBool()) {
          table.addRow({std::to_string(base + s), "error",
                        entry.at("error").asString(), "-"});
          continue;
        }
        const service::ScenarioResult result =
            service::resultFromJson(entry.at("result"));
        const bool cached = entry.at("cached").asBool();
        hits += cached ? 1 : 0;
        std::string shares;
        double words = 0, weighted = 0;
        for (std::size_t m = 0; m < result.bandwidth_fraction.size(); ++m) {
          shares += (m ? ":" : "") +
                    stats::Table::pct(result.bandwidth_fraction[m]);
          weighted += result.cycles_per_word[m] *
                      static_cast<double>(result.messages_completed[m]);
          words += static_cast<double>(result.messages_completed[m]);
        }
        table.addRow({std::to_string(base + s), cached ? "yes" : "no", shares,
                      stats::Table::num(words > 0 ? weighted / words : 0)});
      }
      if (csv)
        table.printCsv(std::cout);
      else
        table.printAscii(std::cout);
      std::cout << "cache hits: " << hits << "/" << results.size() << "\n";
      return 0;
    }

    if (verb == "batch") {
      // Same --seeds expansion as sweep, but submitted as one streaming
      // request: the daemon answers with one frame per scenario *in
      // completion order* (each stamped batch{index,seq,of}), then a
      // terminal summary.  Frames are printed as they arrive.
      service::Json scenarios = service::Json::array();
      const std::uint64_t base = scenario.seed;
      for (std::uint64_t s = 0; s < sweep_seeds; ++s) {
        service::Scenario variant = scenario;
        variant.seed = base + s;
        scenarios.push(service::toJson(service::normalized(variant)));
      }
      std::uint64_t hits = 0, frames = 0;
      const service::Json summary = client.batch(
          std::move(scenarios), [&](const service::Json& frame) {
            ++frames;
            const service::Json* cached = frame.find("cached");
            if (cached != nullptr && cached->asBool()) ++hits;
            if (raw_json) {
              std::cout << frame.dump() << "\n" << std::flush;
              return;
            }
            const service::Json& header = frame.at("batch");
            std::cout << "[" << header.at("seq").asUint64() + 1 << "/"
                      << header.at("of").asUint64() << "] seed="
                      << base + header.at("index").asUint64();
            if (frame.at("ok").asBool()) {
              std::cout << " cached="
                        << (cached != nullptr && cached->asBool() ? "yes"
                                                                  : "no")
                        << " hash=" << frame.at("hash").asString();
            } else {
              std::cout << " error: " << frame.at("error").asString();
            }
            std::cout << "\n" << std::flush;
          });
      if (!summary.at("ok").asBool()) return failUnsupported("batch", summary);
      if (raw_json) std::cout << summary.dump() << "\n";
      const service::Json& tail = summary.at("batch");
      std::cerr << "[batch " << tail.at("completed").asUint64() << "/"
                << tail.at("of").asUint64() << " ok, "
                << tail.at("errors").asUint64() << " errors, cache hits "
                << hits << "/" << frames << "]\n";
      return tail.at("errors").asUint64() == 0 ? 0 : 1;
    }

    if (verb == "stats") {
      const service::Json response = client.stats();
      if (!response.at("ok").asBool()) return failProtocol(response);
      for (const auto& [key, value] : response.at("stats").asObject())
        std::cout << key << ": " << value.dump() << "\n";
      return 0;
    }

    if (verb == "metrics") {
      const service::Json response = client.metrics();
      if (!response.at("ok").asBool())
        return failUnsupported("metrics", response);
      // Already newline-terminated Prometheus text; print verbatim.
      std::cout << response.at("metrics").asString();
      return 0;
    }

    if (verb == "trace") {
      const service::Json response = client.trace();
      if (!response.at("ok").asBool())
        return failUnsupported("trace", response);
      // Chrome trace_event JSON on stdout (pipe into a file and open it in
      // chrome://tracing or Perfetto); recorder stats on stderr.
      std::cout << response.at("chrome_trace").asString();
      std::cerr << "[flight recorder: " << response.at("spans").asUint64()
                << " spans, " << response.at("events").asUint64()
                << " events, " << response.at("dropped").asUint64()
                << " dropped]\n";
      return 0;
    }

    if (verb == "health") {
      const service::Json response = client.health();
      if (!response.at("ok").asBool())
        return failUnsupported("health", response);
      if (raw_json) {
        std::cout << response.dump() << "\n";
        return 0;
      }
      const service::Json& health = response.at("health");
      for (const auto& [key, value] : health.asObject()) {
        if (key == "connections" || key == "latency_histogram") continue;
        if (value.isObject()) {
          for (const auto& [sub, subvalue] : value.asObject())
            std::cout << key << "." << sub << ": " << subvalue.dump() << "\n";
        } else {
          std::cout << key << ": " << value.dump() << "\n";
        }
      }
      stats::Table table({"conn", "in-flight", "rbuf", "wbuf", "age ms",
                          "last verb", "oldest trace"});
      for (const service::Json& conn : health.at("connections").asArray()) {
        const service::Json* last_verb = conn.find("last_verb");
        const service::Json* oldest = conn.find("oldest_trace");
        table.addRow({std::to_string(conn.at("id").asUint64()),
                      std::to_string(conn.at("in_flight").asUint64()),
                      std::to_string(conn.at("read_buffered").asUint64()),
                      std::to_string(conn.at("write_buffered").asUint64()),
                      std::to_string(conn.at("age_ms").asUint64()),
                      last_verb != nullptr ? last_verb->asString() : "-",
                      oldest != nullptr ? oldest->asString() : "-"});
      }
      if (csv)
        table.printCsv(std::cout);
      else
        table.printAscii(std::cout);
      return 0;
    }

    if (verb == "history") {
      const service::Json response =
          client.history(history_last, history_metrics);
      if (!response.at("ok").asBool())
        return failUnsupported("history", response);
      if (raw_json) {
        std::cout << response.dump() << "\n";
        return 0;
      }
      const service::Json& history = response.at("history");
      const auto& samples = history.at("samples").asArray();
      std::cout << "interval_ms: " << history.at("interval_ms").asUint64()
                << "  capacity: " << history.at("capacity").asUint64()
                << "  samples: " << samples.size() << "\n";
      for (const service::Json& sample : samples) {
        std::cout << "-- seq " << sample.at("seq").asUint64() << " at_ms "
                  << sample.at("at_ms").asUint64() << "\n";
        for (const service::Json& point : sample.at("points").asArray()) {
          std::cout << "   " << point.at("name").asString();
          if (const service::Json* labels = point.find("labels"))
            std::cout << labels->asString();
          std::cout << " = " << point.at("value").dump();
          if (const service::Json* delta = point.find("delta"))
            std::cout << " (+" << delta->dump() << ")";
          std::cout << "\n";
        }
      }
      return 0;
    }

    if (verb == "shutdown") {
      const service::Json response = client.shutdown();
      if (!response.at("ok").asBool()) return failProtocol(response);
      std::cout << "daemon stopping\n";
      return 0;
    }

    std::cerr << "error: unknown verb \"" << verb << "\" (" << verbList()
              << ")\n";
    options.printUsage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
