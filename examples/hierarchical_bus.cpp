// Example: arbitrary topologies — a LOTTERYBUS segment bridged into a
// static-priority peripheral bus.
//
// Section 4.1: "the proposed architecture does not presume any fixed
// topology of communication channels; components may be interconnected by
// an arbitrary network of shared channels."  This example builds:
//
//   CPU0..CPU3  ==[ LOTTERYBUS, tickets 1:2:3:4 ]==>  {local SRAM, Bridge}
//                                                        |
//   Bridge, DMA ==[ static-priority peripheral bus ]==> {peripheral regs}
//
// CPU traffic targets either the local SRAM (stays on the fast bus) or a
// peripheral behind the bridge (crosses both buses); a DMA engine competes
// on the peripheral bus.
//
//   ./build/examples/hierarchical_bus

#include <iostream>
#include <memory>

#include "arbiters/static_priority.hpp"
#include "bus/bridge.hpp"
#include "bus/bus.hpp"
#include "core/lottery.hpp"
#include "service/parse.hpp"
#include "sim/kernel.hpp"
#include "stats/table.hpp"
#include "traffic/generator.hpp"
#include "traffic/testbed.hpp"

int main(int argc, char** argv) {
  using namespace lb;

  // No tunables — OptionSet still provides --help and strict flag
  // rejection consistent with the other example binaries.
  service::OptionSet options("hierarchical_bus", "LOTTERYBUS bridged into a priority peripheral bus");
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;

  // --- system bus: 4 CPUs, lottery arbitration ------------------------------
  bus::BusConfig system_config = traffic::defaultBusConfig(4);
  system_config.slaves = {bus::SlaveConfig{"sram", 0},
                          bus::SlaveConfig{"bridge", 0}};
  bus::Bus system_bus(system_config,
                      std::make_unique<core::LotteryArbiter>(
                          std::vector<std::uint32_t>{1, 2, 3, 4}));

  // --- peripheral bus: bridge (master 0) vs DMA (master 1), priority --------
  bus::BusConfig periph_config;
  periph_config.num_masters = 2;
  periph_config.max_burst_words = 8;
  periph_config.slaves = {bus::SlaveConfig{"periph-regs", 1}};  // 1 wait state
  bus::Bus periph_bus(periph_config,
                      std::make_unique<arb::StaticPriorityArbiter>(
                          std::vector<unsigned>{2, 1}));  // bridge wins

  bus::Bridge bridge(system_bus, /*upstream_slave=*/1, periph_bus,
                     /*downstream_master=*/0, /*downstream_slave=*/0);

  std::uint64_t end_to_end_done = 0;
  sim::Cycle last_finish = 0;
  bridge.onRemoteCompletion([&](std::uint64_t, sim::Cycle finish) {
    ++end_to_end_done;
    last_finish = finish;
  });

  // --- traffic ---------------------------------------------------------------
  sim::CycleKernel kernel;
  std::vector<std::unique_ptr<traffic::TrafficSource>> sources;
  for (bus::MasterId m = 0; m < 4; ++m) {
    // Each CPU: mostly local SRAM traffic ...
    traffic::TrafficParams local;
    local.size = traffic::SizeDist::fixed(16);
    local.gap = traffic::GapDist::geometric(30);
    local.max_outstanding = 2;
    local.slave = 0;
    local.seed = 100 + static_cast<std::uint64_t>(m);
    sources.push_back(
        std::make_unique<traffic::TrafficSource>(system_bus, m, local));
    kernel.attach(*sources.back());
  }
  // ... plus CPU3 periodically programming peripherals across the bridge.
  traffic::TrafficParams remote;
  remote.size = traffic::SizeDist::fixed(4);
  remote.gap = traffic::GapDist::geometric(100);
  remote.max_outstanding = 2;
  remote.slave = 1;
  remote.seed = 200;
  traffic::TrafficSource remote_source(system_bus, 3, remote);
  kernel.attach(remote_source);

  // DMA engine on the peripheral bus.
  traffic::TrafficParams dma;
  dma.size = traffic::SizeDist::fixed(8);
  dma.gap = traffic::GapDist::geometric(60);
  dma.max_outstanding = 2;
  dma.seed = 300;
  traffic::TrafficSource dma_source(periph_bus, 1, dma);
  kernel.attach(dma_source);

  kernel.attach(system_bus);
  kernel.attach(bridge);
  kernel.attach(periph_bus);
  kernel.run(200000);

  // --- report ----------------------------------------------------------------
  stats::Table table({"bus", "master", "bandwidth", "cycles/word"});
  for (bus::MasterId m = 0; m < 4; ++m)
    table.addRow({"system (lottery)", "CPU" + std::to_string(m),
                  stats::Table::pct(system_bus.bandwidth().fraction(m)),
                  stats::Table::num(system_bus.latency().cyclesPerWord(m))});
  table.addRow({"peripheral (priority)", "bridge",
                stats::Table::pct(periph_bus.bandwidth().fraction(0)),
                stats::Table::num(periph_bus.latency().cyclesPerWord(0))});
  table.addRow({"peripheral (priority)", "DMA",
                stats::Table::pct(periph_bus.bandwidth().fraction(1)),
                stats::Table::num(periph_bus.latency().cyclesPerWord(1))});
  table.printAscii(std::cout);

  std::cout << "\nBridge forwarded " << bridge.forwarded()
            << " messages; " << end_to_end_done
            << " completed end-to-end (last at cycle " << last_finish
            << ").\nEach bus keeps its own arbiter: lottery weights govern "
               "the CPUs while the bridge\noutranks the DMA on the "
               "peripheral side (1 wait-state register file).\n";
  return 0;
}
