// lbd — the lbserve daemon.
//
// Turns the simulator into a long-running service: listens on loopback,
// accepts newline-delimited JSON requests (run / sweep / stats / metrics /
// shutdown), executes scenarios on a persistent worker pool behind a
// bounded job queue, and serves repeated scenarios from a
// content-addressed result cache.  Every response carries the wire
// protocol version ("v": 1); the `metrics` verb exposes the process
// metrics registry as Prometheus text.
//
//   ./build/examples/lbd --port 4817
//   ./build/examples/lbd --port 0 --cache-dir build/lbd-cache  # ephemeral
//   ./build/examples/lbd --port 0 --fault-plan seed=42,torn_read=0.1 # chaos
//
// Prints "lbd listening on 127.0.0.1:<port>" once ready (scripts parse
// this line to discover ephemeral ports).  `lbcli shutdown` stops it.
//
// Degraded-mode behavior (docs/robustness.md): when the job queue is full
// the daemon answers {"ok":false,"overloaded":true,"retry_after_ms":N}
// instead of blocking the connection (disable with --block-when-full), and
// connections idle past --read-deadline-ms are closed.  --fault-plan
// installs a seeded fault injector across the socket, job, and cache
// layers for chaos testing.

#include <iostream>
#include <memory>
#include <string>

#include "fault/fault.hpp"
#include "service/parse.hpp"
#include "service/server.hpp"

int main(int argc, char** argv) {
  using namespace lb;

  service::ServerOptions server_options;
  server_options.port = 4817;
  // A daemon must not wedge its connection handlers: shed explicitly when
  // the queue is full, and drop connections idle for five minutes.
  server_options.engine.shed_when_full = true;
  server_options.read_deadline = std::chrono::milliseconds(300000);
  bool block_when_full = false;
  std::string fault_spec;

  service::OptionSet options("lbd", "LOTTERYBUS simulation daemon");
  options
      .value({"--port"}, "N",
             "TCP port on 127.0.0.1; 0 = ephemeral (default 4817)",
             [&](const std::string& opt, const std::string& v) {
               server_options.port = static_cast<std::uint16_t>(
                   service::parseU64InRange(opt, v, 0, 65535));
             })
      .value({"--threads"}, "N", "simulation workers (default: hardware)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.workers =
                   service::parseU64InRange(opt, v, 1, 4096);
             })
      .value({"--queue-depth"}, "N", "bounded job-queue length (default 64)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.queue_depth =
                   service::parseU64InRange(opt, v, 1, 1 << 20);
             })
      .value({"--timeout-ms"}, "N", "per-job wait budget (default 60000)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.timeout = std::chrono::milliseconds(
                   service::parseU64InRange(opt, v, 1, 86400000));
             })
      .value({"--cache-capacity"}, "N",
             "in-memory result entries (default 1024)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.cache_capacity =
                   service::parseU64InRange(opt, v, 1, 1 << 24);
             })
      .value({"--cache-dir"}, "DIR",
             "persist results as <hash>.json under DIR",
             [&](const std::string&, const std::string& v) {
               server_options.engine.cache_dir = v;
             })
      .value({"--retry-after-ms"}, "N",
             "retry hint attached to overloaded responses (default 50)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.retry_after_ms = static_cast<std::uint32_t>(
                   service::parseU64InRange(opt, v, 1, 600000));
             })
      .value({"--read-deadline-ms"}, "N",
             "close connections idle for N ms; 0 = never (default 300000)",
             [&](const std::string& opt, const std::string& v) {
               server_options.read_deadline = std::chrono::milliseconds(
                   service::parseU64InRange(opt, v, 0, 86400000));
             })
      .flag({"--block-when-full"},
            "block submitters when the job queue is full instead of\n"
            "answering overloaded + retry_after_ms",
            &block_when_full)
      .value({"--fault-plan"}, "SPEC",
             "seeded fault injection, e.g.\n"
             "seed=42,torn_read=0.1,read_reset=0.05,job_delay=0.1\n"
             "(see docs/robustness.md for the schema)",
             [&](const std::string& opt, const std::string& v) {
               try {
                 (void)fault::parseFaultPlan(v);
               } catch (const std::exception& e) {
                 throw std::invalid_argument(opt + ": " + e.what());
               }
               fault_spec = v;
             });
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;
  server_options.engine.shed_when_full = !block_when_full;

  std::unique_ptr<fault::FaultInjector> injector;
  if (!fault_spec.empty()) {
    const fault::FaultPlan plan = fault::parseFaultPlan(fault_spec);
    injector = std::make_unique<fault::FaultInjector>(plan);
    server_options.fault = injector.get();         // socket layer
    server_options.engine.fault = injector.get();  // job engine + cache
    std::cout << "lbd fault plan: " << fault::formatFaultPlan(plan)
              << std::endl;
  }

  try {
    service::Server server(server_options);
    std::cout << "lbd listening on 127.0.0.1:" << server.port() << std::endl;
    server.serve();
    std::cout << "lbd stopped\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
