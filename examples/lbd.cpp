// lbd — the lbserve daemon.
//
// Turns the simulator into a long-running service: a poll-based event
// loop listens on loopback, accepts newline-delimited JSON requests
// (run / sweep / batch / stats / metrics / health / history / shutdown)
// — pipelined freely
// on any connection — executes scenarios on a persistent worker pool
// behind a bounded job queue, and serves repeated scenarios from a
// content-addressed result cache.  Every response carries the wire
// protocol version ("v": 1); the `metrics` verb exposes the process
// metrics registry as Prometheus text.  See docs/service.md for the
// event-loop architecture and the streaming `batch` verb.
//
//   ./build/examples/lbd --port 4817
//   ./build/examples/lbd --port 0 --cache-dir build/lbd-cache  # ephemeral
//   ./build/examples/lbd --port 0 --fault-plan seed=42,torn_read=0.1 # chaos
//
// Prints "lbd listening on 127.0.0.1:<port>" once ready (scripts parse
// this line to discover ephemeral ports).  `lbcli shutdown` stops it.
//
// Degraded-mode behavior (docs/robustness.md): when the job queue is full
// the daemon answers {"ok":false,"overloaded":true,"retry_after_ms":N}
// instead of blocking the connection (disable with --block-when-full), and
// connections idle past --read-deadline-ms are closed.  --fault-plan
// installs a seeded fault injector across the socket, job, and cache
// layers for chaos testing.
//
// Observability (docs/observability.md): every request is traced into a
// bounded flight recorder (--flight-recorder N spans; 0 disables) and
// dumpable live via `lbcli trace` or at shutdown via --trace-out FILE
// (Chrome trace_event JSON).  Structured stderr logging is controlled by
// --log-level (debug|info|warn|error|off) and --log-json.

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "fault/fault.hpp"
#include "obs/log.hpp"
#include "service/parse.hpp"
#include "service/server.hpp"

int main(int argc, char** argv) {
  using namespace lb;

  service::ServerOptions server_options;
  server_options.port = 4817;
  // A daemon must not wedge its connection handlers: shed explicitly when
  // the queue is full, and drop connections idle for five minutes.
  server_options.engine.shed_when_full = true;
  server_options.read_deadline = std::chrono::milliseconds(300000);
  bool block_when_full = false;
  std::string fault_spec;
  std::size_t recorder_spans = 4096;
  std::string trace_out;
  bool log_json = false;

  service::OptionSet options("lbd", "LOTTERYBUS simulation daemon");
  options
      .value({"--port"}, "N",
             "TCP port on 127.0.0.1; 0 = ephemeral (default 4817)",
             [&](const std::string& opt, const std::string& v) {
               server_options.port = static_cast<std::uint16_t>(
                   service::parseU64InRange(opt, v, 0, 65535));
             })
      .value({"--threads"}, "N", "simulation workers (default: hardware)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.workers =
                   service::parseU64InRange(opt, v, 1, 4096);
             })
      .value({"--queue-depth"}, "N", "bounded job-queue length (default 64)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.queue_depth =
                   service::parseU64InRange(opt, v, 1, 1 << 20);
             })
      .value({"--timeout-ms"}, "N", "per-job wait budget (default 60000)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.timeout = std::chrono::milliseconds(
                   service::parseU64InRange(opt, v, 1, 86400000));
             })
      .value({"--cache-capacity"}, "N",
             "in-memory result entries (default 1024)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.cache_capacity =
                   service::parseU64InRange(opt, v, 1, 1 << 24);
             })
      .value({"--cache-dir"}, "DIR",
             "persist results as <hash>.json under DIR",
             [&](const std::string&, const std::string& v) {
               server_options.engine.cache_dir = v;
             })
      .value({"--retry-after-ms"}, "N",
             "retry hint attached to overloaded responses (default 50)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.retry_after_ms = static_cast<std::uint32_t>(
                   service::parseU64InRange(opt, v, 1, 600000));
             })
      .value({"--read-deadline-ms"}, "N",
             "close connections idle for N ms; 0 = never (default 300000)",
             [&](const std::string& opt, const std::string& v) {
               server_options.read_deadline = std::chrono::milliseconds(
                   service::parseU64InRange(opt, v, 0, 86400000));
             })
      .flag({"--block-when-full"},
            "block submitters when the job queue is full instead of\n"
            "answering overloaded + retry_after_ms",
            &block_when_full)
      .flag({"--thread-per-connection"},
            "legacy accept loop: one blocking thread per connection\n"
            "(the poll-based event loop is the default)",
            &server_options.thread_per_connection)
      .value({"--dispatch-threads"}, "N",
             "event-loop dispatch pool size (default: auto)",
             [&](const std::string& opt, const std::string& v) {
               server_options.dispatch_threads =
                   service::parseU64InRange(opt, v, 1, 4096);
             })
      .value({"--batch-window"}, "N",
             "fair-share cap on in-flight jobs per batch request\n"
             "(default: the worker count)",
             [&](const std::string& opt, const std::string& v) {
               server_options.batch_window =
                   service::parseU64InRange(opt, v, 1, 1 << 20);
             })
      .value({"--max-batch"}, "N",
             "largest accepted batch request (default 4096 scenarios)",
             [&](const std::string& opt, const std::string& v) {
               server_options.max_batch =
                   service::parseU64InRange(opt, v, 1, 1 << 20);
             })
      .value({"--fault-plan"}, "SPEC",
             "seeded fault injection, e.g.\n"
             "seed=42,torn_read=0.1,read_reset=0.05,job_delay=0.1\n"
             "(see docs/robustness.md for the schema)",
             [&](const std::string& opt, const std::string& v) {
               try {
                 (void)fault::parseFaultPlan(v);
               } catch (const std::exception& e) {
                 throw std::invalid_argument(opt + ": " + e.what());
               }
               fault_spec = v;
             })
      .value({"--flight-recorder"}, "N",
             "flight-recorder span capacity; 0 disables request tracing\n"
             "(default 4096)",
             [&](const std::string& opt, const std::string& v) {
               recorder_spans = service::parseU64InRange(opt, v, 0, 1 << 24);
             })
      .value({"--trace-out"}, "FILE",
             "write the flight recorder as Chrome trace_event JSON to\n"
             "FILE at shutdown (open in chrome://tracing or Perfetto)",
             [&](const std::string&, const std::string& v) { trace_out = v; })
      .value({"--history-interval-ms"}, "N",
             "metrics time-series sampling interval behind the `history`\n"
             "verb; 0 disables the ring (default 1000)",
             [&](const std::string& opt, const std::string& v) {
               server_options.history_interval = std::chrono::milliseconds(
                   service::parseU64InRange(opt, v, 0, 3600000));
             })
      .value({"--history-capacity"}, "N",
             "retained time-series samples (default 120)",
             [&](const std::string& opt, const std::string& v) {
               server_options.history_capacity =
                   service::parseU64InRange(opt, v, 1, 1 << 20);
             })
      .value({"--slow-request-us"}, "SPEC",
             "slow-request exemplar threshold in microseconds: either a\n"
             "single default (\"100000\") or per-verb overrides\n"
             "(\"run=100000,batch=1000000\"); 0 disables (default 0)",
             [&](const std::string& opt, const std::string& v) {
               std::size_t start = 0;
               while (start <= v.size()) {
                 std::size_t end = v.find(',', start);
                 if (end == std::string::npos) end = v.size();
                 const std::string item = v.substr(start, end - start);
                 const std::size_t eq = item.find('=');
                 if (eq == std::string::npos) {
                   server_options.slow_request_default_us =
                       service::parseU64InRange(opt, item, 0, 1ull << 40);
                 } else {
                   server_options.slow_request_us[item.substr(0, eq)] =
                       service::parseU64InRange(opt, item.substr(eq + 1), 0,
                                                1ull << 40);
                 }
                 start = end + 1;
               }
             })
      .value({"--stall-threshold-ms"}, "N",
             "event-loop stall detector threshold; 0 disables (default 100)",
             [&](const std::string& opt, const std::string& v) {
               server_options.stall_threshold = std::chrono::milliseconds(
                   service::parseU64InRange(opt, v, 0, 3600000));
             })
      .value({"--log-level"}, "L", "debug | info | warn | error | off\n"
             "(default info)",
             [&](const std::string& opt, const std::string& v) {
               try {
                 lb::obs::log().setLevel(lb::obs::parseLogLevel(v));
               } catch (const std::exception& e) {
                 throw std::invalid_argument(opt + ": " + e.what());
               }
             })
      .flag({"--log-json"}, "emit log lines as JSON instead of key=value",
            &log_json);
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;
  server_options.engine.shed_when_full = !block_when_full;
  obs::log().setJson(log_json);

  std::unique_ptr<fault::FaultInjector> injector;
  if (!fault_spec.empty()) {
    const fault::FaultPlan plan = fault::parseFaultPlan(fault_spec);
    injector = std::make_unique<fault::FaultInjector>(plan);
    server_options.fault = injector.get();         // socket layer
    server_options.engine.fault = injector.get();  // job engine + cache
    std::cout << "lbd fault plan: " << fault::formatFaultPlan(plan)
              << std::endl;
  }

  // 0 = no recorder at all: the `trace` verb reports it disabled and every
  // response stays byte-identical to a tracing-free build.
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (recorder_spans > 0) {
    recorder = std::make_unique<obs::FlightRecorder>(recorder_spans);
    server_options.recorder = recorder.get();
  }

  try {
    service::Server server(server_options);
    // Scripts parse this stdout line to discover ephemeral ports; the
    // structured log line carries the rest of the effective config.
    std::cout << "lbd listening on 127.0.0.1:" << server.port() << std::endl;
    obs::log().info(
        "lbd.start",
        {{"port", std::uint64_t{server.port()}},
         {"mode", server_options.thread_per_connection ? "thread-per-conn"
                                                       : "event-loop"},
         {"workers", std::uint64_t{server_options.engine.workers}},
         {"queue_depth", std::uint64_t{server_options.engine.queue_depth}},
         {"flight_recorder", std::uint64_t{recorder_spans}},
         {"fault_plan", fault_spec.empty() ? "none" : fault_spec}});
    server.serve();
    if (recorder != nullptr && !trace_out.empty()) {
      std::ofstream out(trace_out);
      if (out) {
        recorder->writeChromeTrace(out);
        obs::log().info("lbd.trace_written",
                        {{"file", trace_out},
                         {"spans", std::uint64_t{recorder->spanCount()}},
                         {"dropped", recorder->droppedSpans() +
                                         recorder->droppedEvents()}});
      } else {
        obs::log().error("lbd.trace_write_failed", {{"file", trace_out}});
      }
    }
    obs::log().info("lbd.stop", {{"port", std::uint64_t{server.port()}}});
    std::cout << "lbd stopped\n";
  } catch (const std::exception& e) {
    obs::log().error("lbd.fatal", {{"error", e.what()}});
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
