// lbd — the lbserve daemon.
//
// Turns the simulator into a long-running service: listens on loopback,
// accepts newline-delimited JSON requests (run / sweep / stats /
// shutdown), executes scenarios on a persistent worker pool behind a
// bounded job queue, and serves repeated scenarios from a
// content-addressed result cache.
//
//   ./build/examples/lbd --port 4817
//   ./build/examples/lbd --port 0 --cache-dir build/lbd-cache  # ephemeral
//
// Prints "lbd listening on 127.0.0.1:<port>" once ready (scripts parse
// this line to discover ephemeral ports).  `lbcli shutdown` stops it.

#include <iostream>
#include <string>

#include "service/parse.hpp"
#include "service/server.hpp"

namespace {

void usage() {
  std::cout <<
      "lbd — LOTTERYBUS simulation daemon\n"
      "  --port N            TCP port on 127.0.0.1; 0 = ephemeral (default 4817)\n"
      "  --threads N         simulation workers       (default: hardware)\n"
      "  --queue-depth N     bounded job-queue length (default 64)\n"
      "  --timeout-ms N      per-job wait budget      (default 60000)\n"
      "  --cache-capacity N  in-memory result entries (default 1024)\n"
      "  --cache-dir DIR     persist results as <hash>.json under DIR\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lb;

  service::ServerOptions options;
  options.port = 4817;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else if (arg == "--port") {
        options.port = static_cast<std::uint16_t>(
            service::parseU64InRange(arg, value(), 0, 65535));
      } else if (arg == "--threads") {
        options.engine.workers = service::parseU64InRange(arg, value(), 1, 4096);
      } else if (arg == "--queue-depth") {
        options.engine.queue_depth =
            service::parseU64InRange(arg, value(), 1, 1 << 20);
      } else if (arg == "--timeout-ms") {
        options.engine.timeout = std::chrono::milliseconds(
            service::parseU64InRange(arg, value(), 1, 86400000));
      } else if (arg == "--cache-capacity") {
        options.engine.cache_capacity =
            service::parseU64InRange(arg, value(), 1, 1 << 24);
      } else if (arg == "--cache-dir") {
        options.engine.cache_dir = value();
      } else {
        std::cerr << "error: unknown option " << arg << "\n";
        usage();
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      usage();
      return 2;
    }
  }

  try {
    service::Server server(options);
    std::cout << "lbd listening on 127.0.0.1:" << server.port() << std::endl;
    server.serve();
    std::cout << "lbd stopped\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
