// lbd — the lbserve daemon.
//
// Turns the simulator into a long-running service: listens on loopback,
// accepts newline-delimited JSON requests (run / sweep / stats / metrics /
// shutdown), executes scenarios on a persistent worker pool behind a
// bounded job queue, and serves repeated scenarios from a
// content-addressed result cache.  Every response carries the wire
// protocol version ("v": 1); the `metrics` verb exposes the process
// metrics registry as Prometheus text.
//
//   ./build/examples/lbd --port 4817
//   ./build/examples/lbd --port 0 --cache-dir build/lbd-cache  # ephemeral
//
// Prints "lbd listening on 127.0.0.1:<port>" once ready (scripts parse
// this line to discover ephemeral ports).  `lbcli shutdown` stops it.

#include <iostream>
#include <string>

#include "service/parse.hpp"
#include "service/server.hpp"

int main(int argc, char** argv) {
  using namespace lb;

  service::ServerOptions server_options;
  server_options.port = 4817;

  service::OptionSet options("lbd", "LOTTERYBUS simulation daemon");
  options
      .value({"--port"}, "N",
             "TCP port on 127.0.0.1; 0 = ephemeral (default 4817)",
             [&](const std::string& opt, const std::string& v) {
               server_options.port = static_cast<std::uint16_t>(
                   service::parseU64InRange(opt, v, 0, 65535));
             })
      .value({"--threads"}, "N", "simulation workers (default: hardware)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.workers =
                   service::parseU64InRange(opt, v, 1, 4096);
             })
      .value({"--queue-depth"}, "N", "bounded job-queue length (default 64)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.queue_depth =
                   service::parseU64InRange(opt, v, 1, 1 << 20);
             })
      .value({"--timeout-ms"}, "N", "per-job wait budget (default 60000)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.timeout = std::chrono::milliseconds(
                   service::parseU64InRange(opt, v, 1, 86400000));
             })
      .value({"--cache-capacity"}, "N",
             "in-memory result entries (default 1024)",
             [&](const std::string& opt, const std::string& v) {
               server_options.engine.cache_capacity =
                   service::parseU64InRange(opt, v, 1, 1 << 24);
             })
      .value({"--cache-dir"}, "DIR",
             "persist results as <hash>.json under DIR",
             [&](const std::string&, const std::string& v) {
               server_options.engine.cache_dir = v;
             });
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;

  try {
    service::Server server(server_options);
    std::cout << "lbd listening on 127.0.0.1:" << server.port() << std::endl;
    server.serve();
    std::cout << "lbd stopped\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
