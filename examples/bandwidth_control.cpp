// Example: the fine-grained bandwidth dial.
//
// Keeps three background masters at 1 ticket each and sweeps the tickets of
// a foreground master from 1 to 64, showing that its bandwidth share tracks
// t / (t + 3) — something neither static priority (all-or-nothing) nor
// round-robin (fixed 25%) can express.
//
//   ./build/examples/bandwidth_control

#include <iostream>
#include <memory>

#include "core/lottery.hpp"
#include "service/parse.hpp"
#include "stats/table.hpp"
#include "traffic/testbed.hpp"

int main(int argc, char** argv) {
  using namespace lb;

  // No tunables — OptionSet still provides --help and strict flag
  // rejection consistent with the other example binaries.
  service::OptionSet options("bandwidth_control", "lottery-ticket bandwidth dial sweep");
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;

  std::cout << "Sweeping master C1's lottery tickets against three 1-ticket "
               "background masters\n(all masters saturate the bus):\n\n";

  std::vector<traffic::TrafficParams> traffic(4);
  for (std::size_t m = 0; m < 4; ++m) {
    traffic[m].size = traffic::SizeDist::fixed(16);
    traffic[m].gap = traffic::GapDist::fixed(0);
    traffic[m].max_outstanding = 1;
    traffic[m].seed = 5 + m;
  }

  stats::Table table({"C1 tickets", "C1 share (measured)", "C1 share (ideal)",
                      "C1 cycles/word"});
  for (const std::uint32_t t : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    auto arbiter = std::make_unique<core::LotteryArbiter>(
        std::vector<std::uint32_t>{t, 1, 1, 1}, core::LotteryRng::kExact, 17);
    const auto result = traffic::runTestbed(
        traffic::defaultBusConfig(4), std::move(arbiter), traffic, 150000);
    const double ideal = static_cast<double>(t) / (t + 3.0);
    table.addRow({std::to_string(t),
                  stats::Table::pct(result.bandwidth_fraction[0]),
                  stats::Table::pct(ideal),
                  stats::Table::num(result.cycles_per_word[0])});
  }
  table.printAscii(std::cout);

  std::cout << "\nEvery intermediate share between 25% and ~95% is reachable "
               "by choosing tickets —\nthe knob the paper's Figure 6(a) "
               "demonstrates.\n";
  return 0;
}
