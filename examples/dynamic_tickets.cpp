// Example: the dynamic LOTTERYBUS variant (paper Section 4.4).
//
// A video DSP (master 0) alternates between idle and frame-burst phases.
// With static tickets you must choose between over-provisioning it (hurting
// everyone else while it idles) or under-provisioning it (missing frame
// deadlines).  The dynamic variant lets a policy re-assign tickets at run
// time; here a BacklogTicketPolicy raises the DSP's tickets exactly while
// its queue is deep.
//
//   ./build/examples/dynamic_tickets

#include <iostream>
#include <memory>

#include "bus/bus.hpp"
#include "core/lottery.hpp"
#include "core/ticket_policy.hpp"
#include "service/parse.hpp"
#include "sim/kernel.hpp"
#include "stats/table.hpp"
#include "traffic/generator.hpp"
#include "traffic/testbed.hpp"

namespace {

using namespace lb;

struct Outcome {
  double dsp_cpw;         // DSP cycles/word (its frame-burst latency)
  double background_cpw;  // mean cycles/word of the three CPUs
};

Outcome run(bool use_dynamic) {
  std::unique_ptr<bus::IArbiter> arbiter;
  if (use_dynamic) {
    arbiter = std::make_unique<core::DynamicLotteryArbiter>(9);
  } else {
    // Static compromise: permanently over-weight the DSP 4:1:1:1.
    arbiter = std::make_unique<core::LotteryArbiter>(
        std::vector<std::uint32_t>{4, 1, 1, 1}, core::LotteryRng::kExact, 9);
  }

  bus::Bus bus(traffic::defaultBusConfig(4), std::move(arbiter));
  sim::CycleKernel kernel;

  std::vector<std::unique_ptr<traffic::TrafficSource>> sources;
  // Master 0: the DSP — long OFF phases, intense frame bursts when ON.
  traffic::TrafficParams dsp;
  dsp.size = traffic::SizeDist::fixed(16);
  dsp.gap = traffic::GapDist::fixed(0);
  dsp.max_outstanding = 16;
  dsp.mean_on = 800;
  dsp.mean_off = 3200;
  dsp.seed = 1;
  sources.push_back(std::make_unique<traffic::TrafficSource>(bus, 0, dsp));
  kernel.attach(*sources.back());

  // Masters 1..3: steadily loaded CPUs (closed loop, shallow queues).
  for (bus::MasterId m = 1; m < 4; ++m) {
    traffic::TrafficParams cpu;
    cpu.size = traffic::SizeDist::fixed(16);
    cpu.gap = traffic::GapDist::geometric(8);
    cpu.max_outstanding = 1;
    cpu.seed = 10 + static_cast<std::uint64_t>(m);
    sources.push_back(std::make_unique<traffic::TrafficSource>(bus, m, cpu));
    kernel.attach(*sources.back());
  }

  std::unique_ptr<core::BacklogTicketPolicy> policy;
  if (use_dynamic) {
    policy = std::make_unique<core::BacklogTicketPolicy>(
        bus, std::vector<std::uint32_t>{1, 1, 1, 1}, /*weight=*/0.5,
        /*max=*/64, /*period=*/64);
    kernel.attach(*policy);
  }
  kernel.attach(bus);
  kernel.run(400000);

  Outcome outcome{};
  outcome.dsp_cpw = bus.latency().cyclesPerWord(0);
  outcome.background_cpw = (bus.latency().cyclesPerWord(1) +
                            bus.latency().cyclesPerWord(2) +
                            bus.latency().cyclesPerWord(3)) /
                           3.0;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {

  // No tunables — OptionSet still provides --help and strict flag
  // rejection consistent with the other example binaries.
  lb::service::OptionSet options("dynamic_tickets", "static vs dynamic backlog-driven tickets");
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;
  std::cout << "A bursty DSP against three steady CPUs — static over-weight "
               "vs dynamic backlog tickets:\n\n";

  const Outcome fixed = run(false);
  const Outcome dynamic = run(true);

  lb::stats::Table table({"policy", "DSP cycles/word",
                          "background CPUs cycles/word"});
  table.addRow({"static 4:1:1:1 (permanent over-weight)",
                lb::stats::Table::num(fixed.dsp_cpw),
                lb::stats::Table::num(fixed.background_cpw)});
  table.addRow({"dynamic backlog-proportional",
                lb::stats::Table::num(dynamic.dsp_cpw),
                lb::stats::Table::num(dynamic.background_cpw)});
  table.printAscii(std::cout);

  std::cout << "\nThe dynamic policy matches (or beats) the static DSP "
               "latency while treating the CPUs\nbetter whenever the DSP is "
               "idle — tickets flow to whoever is actually backlogged.\n";
  return 0;
}
