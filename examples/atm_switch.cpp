// Example: the paper's Section-5.3 case study — the cell-forwarding unit of
// a 4-port output-queued ATM switch — under all three communication
// architectures.  Shows how to assemble an AtmSwitch, pick an arbiter, run,
// and read QoS metrics.
//
//   ./build/examples/atm_switch

#include <iostream>

#include "atm/scenario.hpp"
#include "service/parse.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace lb;

  // No tunables — OptionSet still provides --help and strict flag
  // rejection consistent with the other example binaries.
  service::OptionSet options("atm_switch", "4-port ATM switch case study (paper Section 5.3)");
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;

  std::cout << "4-port output-queued ATM switch, QoS goals:\n"
               "  - port 4 cells forwarded with minimum latency\n"
               "  - ports 1..3 share bandwidth 1:2:4\n"
               "  - priorities / slots / tickets assigned 1:2:4:6\n\n";

  stats::Table table({"architecture", "port", "bandwidth", "cells out",
                      "cells dropped", "bus latency (cycles/word)",
                      "cell latency (cycles)"});

  for (const auto architecture :
       {atm::Architecture::kStaticPriority, atm::Architecture::kTdma,
        atm::Architecture::kLottery}) {
    auto sw = atm::makeTable1Switch(architecture);
    sw->run(/*cycles=*/400000, /*warmup=*/20000);
    for (std::size_t port = 0; port < 4; ++port) {
      const auto& counters = sw->counters(port);
      table.addRow({atm::architectureName(architecture),
                    "port" + std::to_string(port + 1),
                    stats::Table::pct(sw->bandwidthFraction(port)),
                    std::to_string(counters.cells_out),
                    std::to_string(counters.cells_dropped),
                    stats::Table::num(sw->cyclesPerWord(port)),
                    stats::Table::num(sw->meanCellLatency(port), 0)});
    }
  }
  table.printAscii(std::cout);

  std::cout
      << "\nReading the table:\n"
         "  - static priority starves port 1 outright (0% bandwidth);\n"
         "  - TDMA's timing wheel makes port-4 cells wait for their slot\n"
         "    block (high cycles/word) even though port 4 has the largest\n"
         "    reservation;\n"
         "  - the LOTTERYBUS keeps port-4 latency near the static-priority\n"
         "    optimum while ports 1..3 get their reserved 1:2:4 split.\n";
  return 0;
}
