// Quickstart: put four masters on a LOTTERYBUS with tickets 1:2:3:4,
// saturate it, and watch the bandwidth split follow the tickets.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>
#include <memory>

#include "core/lottery.hpp"
#include "service/parse.hpp"
#include "stats/table.hpp"
#include "traffic/testbed.hpp"

int main(int argc, char** argv) {
  using namespace lb;

  // No tunables — OptionSet still provides --help and strict flag
  // rejection consistent with the other example binaries.
  service::OptionSet options("quickstart", "saturated LOTTERYBUS with static tickets 1:2:3:4");
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;

  // 1. Describe the bus: 4 masters, bursts capped at 16 words, pipelined
  //    arbitration (the library's defaults, spelled out here).
  bus::BusConfig config = traffic::defaultBusConfig(/*num_masters=*/4);

  // 2. Choose the communication architecture: a LOTTERYBUS arbiter with
  //    statically assigned tickets 1:2:3:4.
  auto arbiter = std::make_unique<core::LotteryArbiter>(
      std::vector<std::uint32_t>{1, 2, 3, 4});

  // 3. Describe the traffic: every master streams back-to-back 16-word
  //    messages, so the bus is saturated and arbitration decides everything.
  std::vector<traffic::TrafficParams> traffic(4);
  for (std::size_t m = 0; m < 4; ++m) {
    traffic[m].size = traffic::SizeDist::fixed(16);
    traffic[m].gap = traffic::GapDist::fixed(0);
    traffic[m].max_outstanding = 1;
    traffic[m].seed = 100 + m;
  }

  // 4. Run 100k bus cycles and read the two metrics the paper cares about.
  const traffic::TestbedResult result = traffic::runTestbed(
      config, std::move(arbiter), traffic, /*cycles=*/100000);

  stats::Table table(
      {"master", "tickets", "bandwidth share", "avg latency (cycles/word)"});
  const char* tickets[] = {"1", "2", "3", "4"};
  for (std::size_t m = 0; m < 4; ++m)
    table.addRow({"C" + std::to_string(m + 1), tickets[m],
                  stats::Table::pct(result.bandwidth_fraction[m]),
                  stats::Table::num(result.cycles_per_word[m])});
  table.printAscii(std::cout);

  std::cout << "\nExpected: shares near 10% / 20% / 30% / 40% — the lottery\n"
               "tickets are a fine-grained bandwidth dial, which is the\n"
               "paper's headline property.\n";
  return 0;
}
