// Example: a trace-driven MPEG-2 decode pipeline on one shared bus.
//
// The paper's introduction motivates LOTTERYBUS with heterogeneous SoCs
// (CPUs, DSPs, application-specific cores) whose flows have mixed QoS
// needs.  This example builds the canonical one: an MPEG decoder whose
// stages share the memory bus
//
//   VLD     — bursty bitstream fetches at frame starts
//   IDCT/MC — steady macroblock traffic through the frame
//   DISPLAY — hard-periodic line refills that MUST finish before their
//             deadline or the screen tears
//
// Stage traffic is expressed as replayable traces (traffic::TraceSource), so
// the same workload runs bit-identically under every architecture.  The
// output counts display deadline misses per architecture: static priority
// protects the display but starves VLD at frame starts (decode falls
// behind); the lottery keeps the display safe AND moves the frame data.
//
//   ./build/examples/mpeg_pipeline

#include <iostream>
#include <memory>
#include <vector>

#include "arbiters/static_priority.hpp"
#include "arbiters/tdma.hpp"
#include "bus/bus.hpp"
#include "core/lottery.hpp"
#include "service/parse.hpp"
#include "sim/kernel.hpp"
#include "stats/table.hpp"
#include "traffic/trace_source.hpp"

namespace {

using namespace lb;

constexpr sim::Cycle kFrame = 4000;   // cycles per video frame
constexpr int kFrames = 40;
constexpr sim::Cycle kLinePeriod = 200;   // display refill cadence
constexpr std::uint32_t kLineWords = 16;  // words per refill
constexpr sim::Cycle kLineDeadline = 120; // refill must land within this

// VLD: a dense burst of bitstream reads in the first quarter of each frame.
std::vector<traffic::TraceEntry> vldTrace() {
  std::vector<traffic::TraceEntry> trace;
  for (int frame = 0; frame < kFrames; ++frame) {
    const sim::Cycle base = static_cast<sim::Cycle>(frame) * kFrame;
    for (sim::Cycle t = 0; t < kFrame / 4; t += 40)
      trace.push_back({base + t, 32, 0});
  }
  return trace;
}

// IDCT/MC: steady 16-word macroblock traffic through the whole frame.
std::vector<traffic::TraceEntry> idctTrace(sim::Cycle phase) {
  std::vector<traffic::TraceEntry> trace;
  for (int frame = 0; frame < kFrames; ++frame) {
    const sim::Cycle base = static_cast<sim::Cycle>(frame) * kFrame + phase;
    for (sim::Cycle t = 0; t < kFrame; t += 70)
      trace.push_back({base + t, 16, 0});
  }
  return trace;
}

// DISPLAY: strictly periodic line refills.
std::vector<traffic::TraceEntry> displayTrace() {
  std::vector<traffic::TraceEntry> trace;
  for (sim::Cycle t = 0; t < static_cast<sim::Cycle>(kFrames) * kFrame;
       t += kLinePeriod)
    trace.push_back({t, kLineWords, 0});
  return trace;
}

struct Outcome {
  std::uint64_t display_misses = 0;
  std::uint64_t display_total = 0;
  double vld_cpw = 0.0;
  double idct_cpw = 0.0;
  double bus_utilization = 0.0;
};

Outcome run(std::unique_ptr<bus::IArbiter> arbiter) {
  bus::BusConfig config;
  config.num_masters = 4;  // VLD, IDCT, MC, DISPLAY
  config.max_burst_words = 16;
  bus::Bus bus(config, std::move(arbiter));

  Outcome outcome;
  bus.onCompletion([&outcome](bus::MasterId master,
                              const bus::Message& message, sim::Cycle finish) {
    if (master != 3) return;
    ++outcome.display_total;
    if (finish - message.arrival + 1 > kLineDeadline)
      ++outcome.display_misses;
  });

  sim::CycleKernel kernel;
  traffic::TraceSource vld(bus, 0, vldTrace());
  traffic::TraceSource idct(bus, 1, idctTrace(15));
  traffic::TraceSource mc(bus, 2, idctTrace(45));
  traffic::TraceSource display(bus, 3, displayTrace());
  kernel.attach(vld);
  kernel.attach(idct);
  kernel.attach(mc);
  kernel.attach(display);
  kernel.attach(bus);
  kernel.run(static_cast<sim::Cycle>(kFrames) * kFrame + 2000);

  outcome.vld_cpw = bus.latency().cyclesPerWord(0);
  outcome.idct_cpw = (bus.latency().cyclesPerWord(1) +
                      bus.latency().cyclesPerWord(2)) /
                     2.0;
  outcome.bus_utilization = 1.0 - bus.bandwidth().unutilizedFraction();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {

  // No tunables — OptionSet still provides --help and strict flag
  // rejection consistent with the other example binaries.
  lb::service::OptionSet options("mpeg_pipeline", "trace-driven MPEG decode pipeline comparison");
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;
  std::cout << "MPEG decode pipeline (trace-driven), " << kFrames
            << " frames, display deadline " << kLineDeadline
            << " cycles per " << kLineWords << "-word line refill:\n\n";

  stats::Table table({"architecture", "display misses", "VLD cycles/word",
                      "IDCT/MC cycles/word", "bus utilization"});
  auto row = [&](const char* name, const Outcome& outcome) {
    table.addRow({name,
                  std::to_string(outcome.display_misses) + " / " +
                      std::to_string(outcome.display_total),
                  stats::Table::num(outcome.vld_cpw),
                  stats::Table::num(outcome.idct_cpw),
                  stats::Table::pct(outcome.bus_utilization)});
  };

  row("static-priority (display top)",
      run(std::make_unique<arb::StaticPriorityArbiter>(
          std::vector<unsigned>{1, 2, 3, 4})));
  row("tdma-2level (slots 1:2:2:3 x16)",
      run(std::make_unique<arb::TdmaArbiter>(
          arb::TdmaArbiter::contiguousWheel({16, 32, 32, 48}), 4)));
  row("lottery (tickets 2:3:3:8)",
      run(std::make_unique<core::LotteryArbiter>(
          std::vector<std::uint32_t>{2, 3, 3, 8}, core::LotteryRng::kExact,
          7)));
  table.printAscii(std::cout);

  std::cout << "\nReading: the frame-start bursts oversubscribe the bus, so "
               "every architecture backlogs\nVLD — what differs is how the "
               "pain is shared.  Static priority clears the display\n"
               "perfectly but makes VLD (lowest priority) wait out everyone; "
               "the lottery drains VLD\nfastest at the cost of a hair of "
               "display margin; TDMA sits between, paying its\nwheel-"
               "alignment tax on both.  Tighten kLineDeadline or densify "
               "vldTrace() to move\nthe crossover — the traces replay "
               "bit-identically under every architecture.\n";
  return 0;
}
