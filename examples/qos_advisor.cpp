// Example: from QoS goals to a validated communication architecture.
//
// An SoC integrator knows what each component NEEDS — "the display engine
// must average under 3 cycles/word, the NIC is owed 30% of the bus, ..." —
// not which arbiter delivers it.  The advisor derives candidate
// parameterizations (lottery tickets via ticketsForShares, DRR weights,
// TDMA slot blocks, a priority order), simulates each against the declared
// traffic, and reports the scorecards.
//
//   ./build/examples/qos_advisor

#include <iostream>

#include "advisor/advisor.hpp"
#include "service/parse.hpp"
#include "stats/table.hpp"
#include "traffic/testbed.hpp"

int main(int argc, char** argv) {
  using namespace lb;

  // No tunables — OptionSet still provides --help and strict flag
  // rejection consistent with the other example binaries.
  service::OptionSet options("qos_advisor", "derive and validate architectures from QoS goals");
  if (const int rc = options.parse(argc, argv); rc >= 0) return rc;

  // The system: CPU + GPU backlogged, NIC owed bandwidth, display engine
  // latency-critical with one outstanding request at a time.
  std::vector<traffic::TrafficParams> traffic(4);
  for (std::size_t m = 0; m < 4; ++m) {
    traffic[m].size = traffic::SizeDist::fixed(16);
    traffic[m].gap = traffic::GapDist::fixed(0);
    traffic[m].max_outstanding = 4;
    traffic[m].seed = 11 + m;
  }
  traffic[3].max_outstanding = 1;  // display engine: closed loop

  advisor::QosGoals goals;
  goals.min_bandwidth_share = {0.10, 0.20, 0.30, 0.0};  // CPU, GPU, NIC
  goals.max_cycles_per_word = {0, 0, 0, 3.0};           // display engine

  std::cout << "Goals: CPU >= 10% bw, GPU >= 20% bw, NIC >= 30% bw, "
               "display <= 3.0 cycles/word\n\n";

  const auto recommendation =
      advisor::advise(goals, traffic, traffic::defaultBusConfig(4),
                      /*cycles=*/120000, /*seed=*/5);

  stats::Table table({"architecture", "parameters", "verdict",
                      "CPU bw", "GPU bw", "NIC bw", "display cycles/word"});
  for (const auto& candidate : recommendation.candidates) {
    std::string params;
    for (std::size_t i = 0; i < candidate.parameters.size(); ++i)
      params += (i ? ":" : "") + std::to_string(candidate.parameters[i]);
    table.addRow(
        {candidate.architecture, params,
         candidate.satisfied
             ? "OK"
             : "violates (" + std::to_string(candidate.violations.size()) +
                   ")",
         stats::Table::pct(candidate.measured.bandwidth_fraction[0]),
         stats::Table::pct(candidate.measured.bandwidth_fraction[1]),
         stats::Table::pct(candidate.measured.bandwidth_fraction[2]),
         stats::Table::num(candidate.measured.cycles_per_word[3])});
  }
  table.printAscii(std::cout);

  if (recommendation.found) {
    std::cout << "\nRecommended: " << recommendation.best.architecture
              << " (worst goal margin "
              << stats::Table::pct(recommendation.best.worst_margin)
              << " of headroom)\n";
  } else {
    std::cout << "\nNo candidate satisfies all goals — first violations:\n";
    for (const auto& candidate : recommendation.candidates)
      if (!candidate.violations.empty())
        std::cout << "  " << candidate.architecture << ": "
                  << candidate.violations.front() << "\n";
  }
  return 0;
}
