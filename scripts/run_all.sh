#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, and regenerate every
# paper table/figure plus the ablations and extensions.  Outputs land in
# test_output.txt and bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# lbserve daemon/client loopback smoke test (run / cache hit / sweep /
# stats / shutdown against a real socket).
scripts/smoke_lbserve.sh build

: > bench_output.txt
for b in build/bench/*; do
  "$b" 2>&1 | tee -a bench_output.txt
done

echo
echo "Done.  See EXPERIMENTS.md for the paper-vs-measured discussion."
