#!/usr/bin/env bash
# Loopback smoke test for the lbserve subsystem: boots lbd on an ephemeral
# port, checks that lbcli run is bit-identical to lbsim, that a repeated
# run is a cache hit, that stats report hits and nonzero latency
# percentiles, that the metrics scrape carries every lb_server_*/
# lb_request_* family, that the `trace` verb dumps valid Chrome trace JSON,
# that a streamed `batch` delivers its frames in order with a terminal
# summary, and that shutdown terminates the daemon.  Exits nonzero on any
# failure.
# Usage: scripts/smoke_lbserve.sh [build-dir]
#
# When SMOKE_ARTIFACT_DIR is set, the metrics scrape and trace dump are
# copied there (CI uploads them as workflow artifacts).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
LBD="$BUILD/examples/lbd"
LBCLI="$BUILD/examples/lbcli"
LBSIM="$BUILD/examples/lbsim"
for bin in "$LBD" "$LBCLI" "$LBSIM"; do
  [[ -x "$bin" ]] || { echo "smoke_lbserve: missing $bin (build first)"; exit 1; }
done

WORK="$(mktemp -d)"
LBD_PID=""
cleanup() {
  [[ -n "$LBD_PID" ]] && kill "$LBD_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

LBTOP="$BUILD/examples/lbtop"
[[ -x "$LBTOP" ]] || { echo "smoke_lbserve: missing $LBTOP (build first)"; exit 1; }

# 200ms history sampling so the introspection checks below see fresh
# samples quickly; 1us slow threshold so every request leaves an exemplar.
"$LBD" --port 0 --cache-dir "$WORK/cache" \
       --history-interval-ms 200 --slow-request-us 1 > "$WORK/lbd.log" 2>&1 &
LBD_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/.*127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$WORK/lbd.log" | head -1)"
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "smoke_lbserve: lbd never reported its port"; cat "$WORK/lbd.log"; exit 1; }
echo "smoke_lbserve: lbd up on port $PORT"

SCENARIO=(--arbiter lottery --tickets 1,2,3,4 --class T2 --cycles 100000 --seed 11)

# 1. lbcli run == lbsim, byte for byte.
"$LBSIM" "${SCENARIO[@]}" > "$WORK/local.out"
"$LBCLI" --port "$PORT" run "${SCENARIO[@]}" > "$WORK/remote1.out" 2> "$WORK/remote1.err"
diff -u "$WORK/local.out" "$WORK/remote1.out" || { echo "smoke_lbserve: daemon result differs from local run"; exit 1; }
grep -q "cached=no" "$WORK/remote1.err" || { echo "smoke_lbserve: first run unexpectedly cached"; exit 1; }

# 2. The identical run again is a cache hit with the same payload.
"$LBCLI" --port "$PORT" run "${SCENARIO[@]}" > "$WORK/remote2.out" 2> "$WORK/remote2.err"
diff -u "$WORK/remote1.out" "$WORK/remote2.out" || { echo "smoke_lbserve: cached result differs"; exit 1; }
grep -q "cached=yes" "$WORK/remote2.err" || { echo "smoke_lbserve: repeat run was not a cache hit"; exit 1; }

# 3. A mesh scenario takes the same path: lbcli run == lbsim byte for
# byte, and the identical repeat is a cache hit (mesh scenarios are
# content-addressed exactly like bus scenarios).
MESH=(--preset mesh4x4-lottery --cycles 40000)
"$LBSIM" "${MESH[@]}" > "$WORK/mesh-local.out"
"$LBCLI" --port "$PORT" run "${MESH[@]}" > "$WORK/mesh1.out" 2> "$WORK/mesh1.err"
diff -u "$WORK/mesh-local.out" "$WORK/mesh1.out" || { echo "smoke_lbserve: daemon mesh result differs from local run"; exit 1; }
grep -q "cached=no" "$WORK/mesh1.err" || { echo "smoke_lbserve: first mesh run unexpectedly cached"; exit 1; }
"$LBCLI" --port "$PORT" run "${MESH[@]}" > "$WORK/mesh2.out" 2> "$WORK/mesh2.err"
diff -u "$WORK/mesh1.out" "$WORK/mesh2.out" || { echo "smoke_lbserve: cached mesh result differs"; exit 1; }
grep -q "cached=yes" "$WORK/mesh2.err" || { echo "smoke_lbserve: repeat mesh run was not a cache hit"; exit 1; }

# 4. A warm sweep is served from the cache.
"$LBCLI" --port "$PORT" sweep --class T3 --cycles 50000 --seeds 4 > /dev/null
"$LBCLI" --port "$PORT" sweep --class T3 --cycles 50000 --seeds 4 > "$WORK/sweep2.out"
grep -q "cache hits: 4/4" "$WORK/sweep2.out" || { echo "smoke_lbserve: warm sweep missed the cache"; cat "$WORK/sweep2.out"; exit 1; }

# 5. Stats: >= 1 hit and nonzero latency percentiles.
"$LBCLI" --port "$PORT" stats > "$WORK/stats.out"
HITS="$(awk -F': ' '$1 == "hits" {print $2}' "$WORK/stats.out")"
P50="$(awk -F': ' '$1 == "p50_us" {print $2}' "$WORK/stats.out")"
P95="$(awk -F': ' '$1 == "p95_us" {print $2}' "$WORK/stats.out")"
[[ "$HITS" -ge 1 ]] || { echo "smoke_lbserve: expected cache hits in stats, got '$HITS'"; cat "$WORK/stats.out"; exit 1; }
awk -v v="$P50" 'BEGIN { exit !(v > 0) }' || { echo "smoke_lbserve: p50_us not positive: '$P50'"; exit 1; }
awk -v v="$P95" 'BEGIN { exit !(v > 0) }' || { echo "smoke_lbserve: p95_us not positive: '$P95'"; exit 1; }

# 6. Metrics: the Prometheus scrape parses and the request counter is live.
"$LBCLI" --port "$PORT" metrics > "$WORK/metrics.out"
grep -q '^# TYPE lb_server_requests_total counter$' "$WORK/metrics.out" \
  || { echo "smoke_lbserve: metrics scrape missing lb_server_requests_total TYPE line"; cat "$WORK/metrics.out"; exit 1; }
RUNS="$(awk '$1 == "lb_server_requests_total{verb=\"run\"}" {print $2}' "$WORK/metrics.out")"
[[ -n "$RUNS" && "$RUNS" -ge 2 ]] \
  || { echo "smoke_lbserve: expected >=2 run requests in metrics, got '$RUNS'"; cat "$WORK/metrics.out"; exit 1; }
grep -q '^lb_bus_grants_total' "$WORK/metrics.out" \
  || { echo "smoke_lbserve: metrics scrape missing bus-layer counters"; exit 1; }
# Every server-side request family must be present (a scrape that silently
# lost one would blind the dashboards).
for family in lb_server_requests_total lb_server_protocol_errors_total \
              lb_server_shed_total lb_server_request_micros \
              lb_request_stage_micros; do
  grep -q "^# TYPE $family " "$WORK/metrics.out" \
    || { echo "smoke_lbserve: metrics scrape missing $family"; cat "$WORK/metrics.out"; exit 1; }
done
# The mesh run above must have populated every router-layer family.
for family in lb_noc_packets_delivered_total lb_noc_flits_delivered_total \
              lb_noc_grants_total lb_noc_vc_occupancy_flits \
              lb_noc_hop_latency_cycles lb_noc_packet_latency_cycles; do
  grep -q "^# TYPE $family " "$WORK/metrics.out" \
    || { echo "smoke_lbserve: metrics scrape missing $family"; cat "$WORK/metrics.out"; exit 1; }
done

# 7. Trace verb: the flight-recorder dump is valid Chrome trace JSON with a
# server.request root span for the runs above.
"$LBCLI" --port "$PORT" trace > "$WORK/trace.json" 2> "$WORK/trace.err"
python3 - "$WORK/trace.json" <<'PY' \
  || { echo "smoke_lbserve: trace dump is not valid Chrome trace JSON"; head -c 400 "$WORK/trace.json"; exit 1; }
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
events = doc["traceEvents"]
roots = [e for e in events if e.get("name") == "server.request"]
assert roots, "no server.request spans in the dump"
assert any(e.get("args", {}).get("note") == "run" for e in roots), \
    "no run-verb root span"
PY
echo "smoke_lbserve: trace dump OK ($(grep -o 'server\.request' "$WORK/trace.json" | wc -l) root spans)"

# 8. Live introspection: the health verb reports the event-loop mode, a
# live loop, the request totals, and (threshold 1us above) slow-request
# exemplars for every run so far.
"$LBCLI" --port "$PORT" health > "$WORK/health.out"
grep -q '^mode: "event-loop"$' "$WORK/health.out" \
  || { echo "smoke_lbserve: health verb missing event-loop mode"; cat "$WORK/health.out"; exit 1; }
for field in loop.iterations requests.total requests.slow engine.jobs_completed; do
  grep -q "^$field: " "$WORK/health.out" \
    || { echo "smoke_lbserve: health verb missing $field"; cat "$WORK/health.out"; exit 1; }
done
ITERS="$(awk -F': ' '$1 == "loop.iterations" {print $2}' "$WORK/health.out")"
TOTAL="$(awk -F': ' '$1 == "requests.total" {print $2}' "$WORK/health.out")"
SLOW="$(awk -F': ' '$1 == "requests.slow" {print $2}' "$WORK/health.out")"
[[ "$ITERS" -ge 1 ]] || { echo "smoke_lbserve: health loop.iterations not positive: '$ITERS'"; exit 1; }
[[ "$TOTAL" -ge 2 ]] || { echo "smoke_lbserve: health requests.total below the runs so far: '$TOTAL'"; exit 1; }
[[ "$SLOW" -ge 1 ]] || { echo "smoke_lbserve: no slow-request exemplars despite 1us threshold: '$SLOW'"; exit 1; }
grep -q '| conn ' "$WORK/health.out" \
  || { echo "smoke_lbserve: health verb missing the connection table"; cat "$WORK/health.out"; exit 1; }

# The history verb serves the time-series ring: wait out two 200ms
# sampling intervals, then ask for the newest two request-counter samples.
HISTORY_OK=""
for _ in $(seq 1 50); do
  "$LBCLI" --port "$PORT" history --last 2 --metric lb_server_requests_total > "$WORK/history.out"
  if grep -q "samples: 2" "$WORK/history.out" \
     && grep -q "lb_server_requests_total" "$WORK/history.out"; then
    HISTORY_OK=1
    break
  fi
  sleep 0.1
done
[[ -n "$HISTORY_OK" ]] \
  || { echo "smoke_lbserve: history verb never served 2 request-counter samples"; cat "$WORK/history.out"; exit 1; }
grep -q '^interval_ms: 200 ' "$WORK/history.out" \
  || { echo "smoke_lbserve: history verb reports wrong interval"; cat "$WORK/history.out"; exit 1; }

# One lbtop frame renders the same health + history data as a dashboard.
"$LBTOP" --port "$PORT" --once > "$WORK/lbtop.out" \
  || { echo "smoke_lbserve: lbtop --once failed"; cat "$WORK/lbtop.out"; exit 1; }
for line in "lbtop — " "requests " "latency " "engine " "cache " "loop "; do
  grep -q "$line" "$WORK/lbtop.out" \
    || { echo "smoke_lbserve: lbtop frame missing '$line'"; cat "$WORK/lbtop.out"; exit 1; }
done
echo "smoke_lbserve: introspection OK (health: $TOTAL requests, $SLOW slow; history + lbtop frame rendered)"

# Archive observability artifacts for CI before this daemon goes away.
if [[ -n "${SMOKE_ARTIFACT_DIR:-}" ]]; then
  mkdir -p "$SMOKE_ARTIFACT_DIR"
  cp "$WORK/metrics.out" "$SMOKE_ARTIFACT_DIR/smoke_metrics.prom"
  cp "$WORK/trace.json" "$SMOKE_ARTIFACT_DIR/smoke_trace.json"
fi

# 9. Streaming batch: one request, one streamed frame per scenario plus a
# terminal summary.  The seq stamps must count 0..N-1 in arrival order and
# the done frame must come last with completed+errors == N; rerunning the
# same batch must be served entirely from the cache.
"$LBCLI" --port "$PORT" batch --class T2 --cycles 30000 --seeds 6 --json > "$WORK/batch1.json"
python3 - "$WORK/batch1.json" <<'PY' \
  || { echo "smoke_lbserve: batch stream malformed"; cat "$WORK/batch1.json"; exit 1; }
import json, sys
frames = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
assert len(frames) == 7, f"expected 6 result frames + summary, got {len(frames)}"
body = frames[:-1]
done = frames[-1]
# Streamed responses arrive in order: seq counts 0..N-1 as received.
assert [f["batch"]["seq"] for f in body] == list(range(6)), \
    [f["batch"]["seq"] for f in body]
assert sorted(f["batch"]["index"] for f in body) == list(range(6))
assert all(f["ok"] and f["batch"]["of"] == 6 for f in body)
assert done["batch"]["done"] and done["ok"], done
assert done["batch"]["completed"] + done["batch"]["errors"] == 6, done
PY
"$LBCLI" --port "$PORT" batch --class T2 --cycles 30000 --seeds 6 > "$WORK/batch2.out" 2> "$WORK/batch2.err"
grep -q "cache hits 6/6" "$WORK/batch2.err" \
  || { echo "smoke_lbserve: warm batch missed the cache"; cat "$WORK/batch2.err"; exit 1; }
echo "smoke_lbserve: batch stream OK (6 in-order frames + summary, warm rerun fully cached)"

# 10. Clean shutdown.
"$LBCLI" --port "$PORT" shutdown > /dev/null
for _ in $(seq 1 50); do
  kill -0 "$LBD_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$LBD_PID" 2>/dev/null; then
  echo "smoke_lbserve: lbd still running after shutdown"; exit 1
fi
wait "$LBD_PID" 2>/dev/null || true
LBD_PID=""

# 11. Fault soak: a second daemon with a seeded chaos plan (15% torn reads
# and writes, 10% job delays, plus resets, sheds, and cache corruption).
# 200 lbcli runs must all complete (no hangs — every call is bounded by
# --deadline-ms and a belt-and-braces `timeout`), every result must stay
# bit-identical to the fault-free lbsim output, and the client-side
# Prometheus scrapes must show nonzero lb_client_retries_total.
FAULT_PLAN="seed=2026,torn_read=0.15,torn_write=0.15,read_reset=0.03,write_reset=0.03,job_delay=0.10,job_delay_ms=3,queue_reject=0.03,cache_corrupt=0.2,cache_enospc=0.2"
"$LBD" --port 0 --cache-dir "$WORK/chaos-cache" --fault-plan "$FAULT_PLAN" \
  > "$WORK/lbd-chaos.log" 2>&1 &
LBD_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/.*127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$WORK/lbd-chaos.log" | head -1)"
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "smoke_lbserve: chaos lbd never reported its port"; cat "$WORK/lbd-chaos.log"; exit 1; }
echo "smoke_lbserve: chaos lbd up on port $PORT ($FAULT_PLAN)"

SOAK_SEEDS=(21 22 23 24)
for seed in "${SOAK_SEEDS[@]}"; do
  "$LBSIM" --class T2 --cycles 20000 --seed "$seed" > "$WORK/expect-$seed.out"
done

: > "$WORK/soak.err"
for i in $(seq 1 200); do
  seed="${SOAK_SEEDS[$(( (i - 1) % 4 ))]}"
  timeout 60 "$LBCLI" --port "$PORT" run --class T2 --cycles 20000 --seed "$seed" \
      --deadline-ms 20000 --retries 8 --retry-seed "$i" --client-metrics \
      > "$WORK/soak.out" 2>> "$WORK/soak.err" \
    || { echo "smoke_lbserve: soak request $i (seed $seed) failed"; tail -5 "$WORK/soak.err"; exit 1; }
  diff -u "$WORK/expect-$seed.out" "$WORK/soak.out" \
    || { echo "smoke_lbserve: soak request $i returned a WRONG result under faults"; exit 1; }
done

RETRIES="$(awk '/^lb_client_retries_total\{/ {sum += $2} END {print sum + 0}' "$WORK/soak.err")"
[[ "$RETRIES" -gt 0 ]] \
  || { echo "smoke_lbserve: soak saw no client retries under the fault plan"; exit 1; }
echo "smoke_lbserve: soak OK (200/200 bit-identical under faults, $RETRIES client retries)"

# The chaos daemon may lose the shutdown exchange to an injected reset;
# fall back to SIGTERM.
timeout 30 "$LBCLI" --port "$PORT" --retries 8 shutdown > /dev/null 2>&1 || true
for _ in $(seq 1 50); do
  kill -0 "$LBD_PID" 2>/dev/null || break
  sleep 0.1
done
kill "$LBD_PID" 2>/dev/null || true
wait "$LBD_PID" 2>/dev/null || true
LBD_PID=""

echo "smoke_lbserve: OK (bit-identical run, cache hit, mesh run, warm sweep, stats, metrics, trace, batch stream, shutdown, fault soak)"
