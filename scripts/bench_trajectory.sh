#!/usr/bin/env bash
# Performance-trajectory capture: runs the benchmark harnesses with
# --json-out and writes machine-readable result files (lb-bench-v1 schema,
# see bench/bench_util.hpp) stamped with the current git revision, so CI
# can archive one point per commit and performance can be plotted over the
# repo's history.
#
#   scripts/bench_trajectory.sh [build-dir] [out-dir]
#
# Produces <out-dir>/BENCH_arbiters.json (arbiter_microbench: cost per
# arbitration decision + whole-testbed cycles/s),
# <out-dir>/BENCH_iqswitch.json (iq_switch_throughput: switch slots/s),
# <out-dir>/BENCH_service.json (server_saturation: lbd requests/sec vs
# connection count for the event loop and the legacy thread-per-connection
# accept loop; its --guard flag fails the run if the event loop falls
# below the documented floor of the threaded throughput at the highest
# connection count), <out-dir>/BENCH_kernel.json (kernel_fastforward:
# naive vs fast-forward kernel cycles/s plus the speedup per idle level;
# its --guard flag fails the run outright if the fast kernel is slower
# than the naive stepper on the highest-idle sweep, or if the two modes'
# statistics diverge) and
# <out-dir>/BENCH_noc.json (noc_mesh_latency: mesh simulation cycles/s per
# load-sweep point; its --guard flag fails the run if any sub-saturation
# point misses the analytical model by more than the documented 10%) and
# <out-dir>/BENCH_obs.json (obs_overhead: lbd requests/sec with the full
# introspection layer on vs off; its --guard flag fails the run if
# telemetry costs more than 3% of bare saturated throughput) and
# <out-dir>/BENCH_replication.json (replication_confidence: sequential vs
# lockstep-batched replica stepping in simulated cycles/s; its --guard
# flag fails the run if the aggregates diverge at all, or if the batched
# runner misses the 1.5x floor at 16 replicas on multi-core machines).
# All files are validated as JSON before the script exits 0.  Benchmarks
# run with reduced repetitions/slots — this is a trajectory smoke, not a
# publication-grade measurement.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
OUT="${2:-$BUILD/bench-results}"
MICRO="$BUILD/bench/arbiter_microbench"
IQ="$BUILD/bench/iq_switch_throughput"
SAT="$BUILD/bench/server_saturation"
KERNEL="$BUILD/bench/kernel_fastforward"
NOC="$BUILD/bench/noc_mesh_latency"
OBS="$BUILD/bench/obs_overhead"
REPL="$BUILD/bench/replication_confidence"
for bin in "$MICRO" "$IQ" "$SAT" "$KERNEL" "$NOC" "$OBS" "$REPL"; do
  [[ -x "$bin" ]] || { echo "bench_trajectory: missing $bin (build first)"; exit 1; }
done
mkdir -p "$OUT"

LB_GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export LB_GIT_REV
echo "bench_trajectory: rev $LB_GIT_REV -> $OUT"

# Per-decision arbiter cost for the 4-master configs plus the full-testbed
# cycles/s figure; min_time trimmed so the whole sweep stays in seconds.
"$MICRO" --benchmark_filter='/4$|BM_FullTestbed/10000$' \
         --benchmark_min_time=0.05 \
         --json-out "$OUT/BENCH_arbiters.json" \
  > "$OUT/arbiters.log" 2>&1 \
  || { echo "bench_trajectory: arbiter_microbench failed"; tail -20 "$OUT/arbiters.log"; exit 1; }

"$IQ" --slots 20000 --json-out "$OUT/BENCH_iqswitch.json" \
  > "$OUT/iqswitch.log" 2>&1 \
  || { echo "bench_trajectory: iq_switch_throughput failed"; tail -20 "$OUT/iqswitch.log"; exit 1; }

# lbserve saturation smoke: --guard fails this step if the event loop
# underperforms the legacy thread-per-connection loop at 128 connections.
"$SAT" --requests 1024 --guard --json-out "$OUT/BENCH_service.json" \
  > "$OUT/service.log" 2>&1 \
  || { echo "bench_trajectory: server_saturation failed"; tail -20 "$OUT/service.log"; exit 1; }

# Kernel stepping perf-smoke: --guard makes this step fail if fast mode is
# slower than naive on the highest-idle sweep or diverges from it at all.
"$KERNEL" --cycles 1000000 --guard --json-out "$OUT/BENCH_kernel.json" \
  > "$OUT/kernel.log" 2>&1 \
  || { echo "bench_trajectory: kernel_fastforward failed"; tail -20 "$OUT/kernel.log"; exit 1; }

# Mesh NoC accuracy + throughput smoke: --guard fails this step if any
# sub-saturation sweep point misses the analytical model by more than 10%.
"$NOC" --cycles 100000 --guard --json-out "$OUT/BENCH_noc.json" \
  > "$OUT/noc.log" 2>&1 \
  || { echo "bench_trajectory: noc_mesh_latency failed"; tail -20 "$OUT/noc.log"; exit 1; }

# Introspection overhead smoke: --guard fails this step if running with the
# flight recorder, history ring, slow-request exemplars, and a live
# health/history scraper costs more than 3% of bare requests/sec.
"$OBS" --requests 512 --conns 16 --trials 3 --guard \
       --json-out "$OUT/BENCH_obs.json" \
  > "$OUT/obs.log" 2>&1 \
  || { echo "bench_trajectory: obs_overhead failed"; tail -20 "$OUT/obs.log"; exit 1; }

# Replication runner smoke: --guard fails this step if lockstep-batched
# replication ever diverges from sequential replication, or if it misses
# the batched-speedup floor (1.5x at 16 replicas given >= 2 hardware
# threads; "not slower" on single-core machines).
"$REPL" --cycles 100000 --guard --json-out "$OUT/BENCH_replication.json" \
  > "$OUT/replication.log" 2>&1 \
  || { echo "bench_trajectory: replication_confidence failed"; tail -20 "$OUT/replication.log"; exit 1; }

validate() {
  local file="$1"
  [[ -s "$file" ]] || { echo "bench_trajectory: $file missing or empty"; exit 1; }
  python3 - "$file" <<'PY' || { echo "bench_trajectory: $file is not valid lb-bench-v1 JSON"; exit 1; }
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
assert doc["schema"] == "lb-bench-v1", doc.get("schema")
assert doc["git_rev"], "empty git_rev"
assert isinstance(doc["results"], list) and doc["results"], "no results"
for row in doc["results"]:
    # Derived rows (e.g. kernel_speedup/*) carry only a rate, no wall time.
    assert row["name"] and (row["wall_ns"] > 0 or row["items_per_sec"] > 0), row
PY
  echo "bench_trajectory: $file OK ($(python3 -c "import json;print(len(json.load(open('$file'))['results']))") results)"
}
validate "$OUT/BENCH_arbiters.json"
validate "$OUT/BENCH_iqswitch.json"
validate "$OUT/BENCH_service.json"
validate "$OUT/BENCH_kernel.json"
validate "$OUT/BENCH_noc.json"
validate "$OUT/BENCH_obs.json"
validate "$OUT/BENCH_replication.json"

echo "bench_trajectory: OK"
