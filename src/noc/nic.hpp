#pragma once
// Network interface (NI): the adapter that lets every existing workload —
// traffic::TrafficSource, traffic::TraceSource, the ATM/SESC test-beds —
// drive a mesh unchanged.  The NI implements bus::IMessageSink, so a traffic
// source binds to it exactly as it would to a Bus; each pushed message
// becomes one packet whose destination is derived from the mesh's traffic
// Pattern (or from the message's slave field under Pattern::kSlave).
//
// Injection mirrors a router output link: packets wait in an unbounded
// source queue (sources self-limit via max_outstanding against
// queueDepth()), the head starts its serialization onto the injection link
// only when the attached router's kLocal input VC has credit for the whole
// packet, and the link moves one flit per cycle.  Ejection is the terminal
// side: the local router's ejection link hands the NI a completed packet and
// the NI records delivery statistics (a packet completes the cycle after its
// last flit crosses the ejection link).

#include <cstdint>
#include <deque>
#include <vector>

#include "bus/message_sink.hpp"
#include "noc/metrics_sinks.hpp"
#include "noc/types.hpp"
#include "sim/kernel.hpp"

namespace lb::noc {

class Router;

class NetworkInterface final : public bus::IMessageSink,
                               public sim::ICycleComponent {
public:
  /// `config` must outlive the NI (MeshNetwork owns it).
  NetworkInterface(NodeId node, std::size_t width, std::size_t height,
                   const MeshConfig& config);

  NetworkInterface(const NetworkInterface&) = delete;
  NetworkInterface& operator=(const NetworkInterface&) = delete;

  /// Wires the injection link to the local router's kLocal input and
  /// registers our credit account as that input's upstream.
  void connectInjection(Router& router);

  // bus::IMessageSink — the traffic-source-facing contract.
  void push(bus::MasterId master, bus::Message message) override;
  std::size_t queueDepth(bus::MasterId master) const override;

  /// Terminal delivery from the local router's ejection link.
  void eject(const Packet& packet, Cycle now);

  void cycle(Cycle now) override;
  Cycle nextActivity(Cycle now) override;
  std::string name() const override;

  NodeId node() const noexcept { return node_; }

  void setStats(NocStats& stats) { stats_ = &stats; }
  void setMetricsSinks(const NocMetricsSinks* sinks) { sinks_ = sinks; }

  /// True when nothing is queued or in flight on the injection link.
  bool empty() const noexcept { return queue_.empty() && !busy_; }

private:
  NodeId node_;
  std::size_t width_;
  std::size_t height_;
  const MeshConfig& config_;
  Router* router_ = nullptr;
  /// Per-VC credits for the local router's kLocal input (we are the sender).
  std::vector<std::uint32_t> credits_;
  std::deque<Packet> queue_;
  std::uint64_t pushed_ = 0;
  // Active injection transfer, if any.
  bool busy_ = false;
  bool freed_this_cycle_ = false;
  Packet in_flight_;
  std::uint32_t dest_vc_ = 0;
  Cycle finish_ = 0;
  NocStats* stats_ = nullptr;
  const NocMetricsSinks* sinks_ = nullptr;
};

}  // namespace lb::noc
