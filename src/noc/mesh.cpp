#include "noc/mesh.hpp"

#include <stdexcept>

namespace lb::noc {

MeshNetwork::MeshNetwork(MeshConfig config) : config_(std::move(config)) {
  if (config_.width == 0 || config_.height == 0)
    throw std::invalid_argument("MeshNetwork: zero mesh dimension");
  if (config_.width * config_.height < 2)
    throw std::invalid_argument("MeshNetwork: mesh needs >= 2 nodes");
  if (config_.pattern == Pattern::kTranspose &&
      config_.width != config_.height)
    throw std::invalid_argument(
        "MeshNetwork: transpose pattern needs a square mesh");

  const auto n = static_cast<NodeId>(nodes());
  stats_.sources.resize(static_cast<std::size_t>(n));
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    routers_.push_back(
        std::make_unique<Router>(id, config_.width, config_.height, config_));
    nis_.push_back(std::make_unique<NetworkInterface>(
        id, config_.width, config_.height, config_));
  }
  const auto w = static_cast<NodeId>(config_.width);
  for (NodeId id = 0; id < n; ++id) {
    Router& r = *routers_[static_cast<std::size_t>(id)];
    const NodeId x = id % w;
    const NodeId y = id / w;
    // A link out our East port enters the neighbour's West port, etc.
    if (x + 1 < w) r.connectNeighbor(kEast, router(id + 1), kWest);
    if (x > 0) r.connectNeighbor(kWest, router(id - 1), kEast);
    if (y + 1 < static_cast<NodeId>(config_.height))
      r.connectNeighbor(kSouth, router(id + w), kNorth);
    if (y > 0) r.connectNeighbor(kNorth, router(id - w), kSouth);
    r.connectEjection(ni(id));
    ni(id).connectInjection(r);
    r.setStats(stats_);
    ni(id).setStats(stats_);
    if (config_.record_grant_trace) r.setGrantTrace(trace_);
  }
}

void MeshNetwork::attachTo(sim::CycleKernel& kernel) {
  for (auto& ni : nis_) kernel.attach(*ni);
  for (auto& router : routers_) kernel.attach(*router);
}

void MeshNetwork::setMetricsSinks(const NocMetricsSinks* sinks) {
  for (auto& router : routers_) router->setMetricsSinks(sinks);
  for (auto& ni : nis_) ni->setMetricsSinks(sinks);
}

bool MeshNetwork::drained() const {
  for (const auto& router : routers_)
    if (!router->empty()) return false;
  for (const auto& ni : nis_)
    if (!ni->empty()) return false;
  return true;
}

std::uint64_t MeshNetwork::totalFlitsDelivered() const {
  std::uint64_t total = 0;
  for (const NocStats::PerSource& s : stats_.sources)
    total += s.flits_delivered;
  return total;
}

}  // namespace lb::noc
