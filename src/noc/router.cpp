#include "noc/router.hpp"

#include <stdexcept>

#include "noc/nic.hpp"

namespace lb::noc {

Router::Router(NodeId id, std::size_t width, std::size_t height,
               const MeshConfig& config)
    : id_(id),
      x_(id % static_cast<int>(width)),
      y_(id / static_cast<int>(width)),
      width_(width),
      height_(height),
      config_(config) {
  if (!config.arbiter_factory)
    throw std::invalid_argument("Router: MeshConfig::arbiter_factory not set");
  if (config.vc_count == 0 || config.vc_depth == 0)
    throw std::invalid_argument("Router: vc_count and vc_depth must be >= 1");
  if (config.router_delay == 0)
    throw std::invalid_argument("Router: router_delay must be >= 1");
  for (auto& input : inputs_) input.vcs.resize(config.vc_count);
  for (int p = 0; p < kNumPorts; ++p) {
    outputs_[static_cast<std::size_t>(p)].arbiter =
        config.arbiter_factory(id_, p);
    if (!outputs_[static_cast<std::size_t>(p)].arbiter)
      throw std::invalid_argument("Router: arbiter_factory returned null");
  }
  if (!config.port_weights.empty() &&
      config.port_weights.size() != static_cast<std::size_t>(kNumPorts))
    throw std::invalid_argument("Router: port_weights must have 5 entries");
  for (int p = 0; p < kNumPorts; ++p)
    weights_[static_cast<std::size_t>(p)] =
        config.port_weights.empty()
            ? 1u
            : config.port_weights[static_cast<std::size_t>(p)];
}

void Router::connectNeighbor(int out_port, Router& down, int down_port) {
  OutputLink& out = outputs_[static_cast<std::size_t>(out_port)];
  out.exists = true;
  out.downstream = &down;
  out.downstream_port = down_port;
  out.credits.assign(config_.vc_count, config_.vc_depth);
  down.setUpstreamCredits(down_port, out.credits);
}

void Router::connectEjection(NetworkInterface& ni) {
  OutputLink& out = outputs_[kLocal];
  out.exists = true;
  out.eject = &ni;
}

void Router::receive(int port, std::uint32_t vc, Packet packet, Cycle now) {
  VirtualChannel& channel =
      inputs_[static_cast<std::size_t>(port)].vcs[vc];
  packet.ready = now + config_.router_delay;
  packet.enqueued = now;
  channel.used_flits += packet.flits;
  if (channel.used_flits > config_.vc_depth)
    throw std::logic_error("Router::receive: VC over capacity (credit bug)");
  channel.fifo.push_back(packet);
  if (sinks_ && sinks_->vc_occupancy_flits)
    sinks_->vc_occupancy_flits->observe(
        static_cast<double>(channel.used_flits));
}

int Router::route(NodeId dest) const noexcept {
  const int dx = dest % static_cast<int>(width_);
  const int dy = dest / static_cast<int>(width_);
  if (dx > x_) return kEast;
  if (dx < x_) return kWest;
  if (dy > y_) return kSouth;
  if (dy < y_) return kNorth;
  return kLocal;
}

bool Router::empty() const noexcept {
  for (const OutputLink& out : outputs_)
    if (out.busy) return false;
  for (const InputPort& input : inputs_)
    for (const VirtualChannel& vc : input.vcs)
      if (!vc.fifo.empty()) return false;
  return true;
}

void Router::cycle(Cycle now) {
  // Phase 1: land transfers whose last flit crosses the link this cycle.
  for (int p = 0; p < kNumPorts; ++p) {
    OutputLink& out = outputs_[static_cast<std::size_t>(p)];
    out.freed_this_cycle = false;
    if (out.busy && out.finish <= now) {
      deliver(p, out, now);
      out.busy = false;
      out.freed_this_cycle = true;
    }
  }
  // Phase 2: arbitrate each free link, fixed port order kLocal..kWest.
  for (int p = 0; p < kNumPorts; ++p) {
    OutputLink& out = outputs_[static_cast<std::size_t>(p)];
    if (out.exists && !out.busy) tryStart(p, out, now);
  }
}

Cycle Router::nextActivity(Cycle now) {
  // Conservative: active whenever any packet is buffered or in flight.
  // cycle() on an empty router is a no-op, so kNeverCycle is honest and
  // fastForward() has nothing to account.
  return empty() ? sim::kNeverCycle : now;
}

std::string Router::name() const {
  return "noc-router-" + std::to_string(id_);
}

void Router::deliver(int port, OutputLink& out, Cycle now) {
  if (port == kLocal) {
    out.eject->eject(out.packet, now);
    return;
  }
  out.downstream->receive(out.downstream_port, out.dest_vc, out.packet, now);
}

void Router::tryStart(int port, OutputLink& out, Cycle now) {
  std::array<bus::MasterRequest, kNumPorts> requests{};
  std::array<std::uint32_t, kNumPorts> input_vc{};
  std::array<std::uint32_t, kNumPorts> credit_vc{};
  bool any = false;
  for (int i = 0; i < kNumPorts; ++i) {
    const InputPort& input = inputs_[static_cast<std::size_t>(i)];
    // The candidate is the lowest-index VC whose ready head routes to this
    // output and whose whole packet fits the downstream credit balance.
    for (std::uint32_t v = 0; v < config_.vc_count; ++v) {
      const VirtualChannel& channel = input.vcs[v];
      if (channel.fifo.empty()) continue;
      const Packet& head = channel.fifo.front();
      if (head.ready > now || route(head.dest) != port) continue;
      std::uint32_t dest_vc = 0;
      if (!out.credits.empty()) {
        bool credit_ok = false;
        for (std::uint32_t w = 0; w < config_.vc_count; ++w)
          if (out.credits[w] >= head.flits) {
            dest_vc = w;
            credit_ok = true;
            break;
          }
        if (!credit_ok) continue;
      }
      bus::MasterRequest& req = requests[static_cast<std::size_t>(i)];
      req.pending = true;
      req.head_words_remaining = head.flits;
      req.tickets = weights_[static_cast<std::size_t>(i)];
      req.backlog_words = channel.used_flits;
      req.head_arrival = head.enqueued;
      input_vc[static_cast<std::size_t>(i)] = v;
      credit_vc[static_cast<std::size_t>(i)] = dest_vc;
      any = true;
      break;
    }
  }
  // No eligible input: skip the arbiter entirely so idle links never consume
  // randomness (the kFast/kNaive bit-identity hinges on this).
  if (!any) return;

  const bus::RequestView view{std::span<const bus::MasterRequest>(
      requests.data(), requests.size())};
  const bus::Grant grant = out.arbiter->arbitrate(view, now);
  // Slotted policies (TDMA) may withhold the link when the slot owner has
  // nothing eligible; max_words is a bus-burst concept and is ignored here —
  // store-and-forward transfers packets atomically.
  if (!grant.valid() ||
      !requests[static_cast<std::size_t>(grant.master)].pending)
    return;

  const auto m = static_cast<std::size_t>(grant.master);
  InputPort& input = inputs_[m];
  VirtualChannel& channel = input.vcs[input_vc[m]];
  const Packet packet = channel.fifo.front();
  channel.fifo.pop_front();
  channel.used_flits -= packet.flits;
  // The packet left our buffer: replenish the sender's credit for this VC.
  if (input.upstream_credits)
    (*input.upstream_credits)[input_vc[m]] += packet.flits;
  // Reserve the downstream slot for the whole transfer.
  if (!out.credits.empty()) out.credits[credit_vc[m]] -= packet.flits;

  out.busy = true;
  out.packet = packet;
  out.dest_vc = credit_vc[m];
  // A transfer on a link idle before this cycle moves its first flit now
  // (finish = now + flits - 1); one that follows a delivery this same cycle
  // starts next cycle (finish = now + flits), so back-to-back packets each
  // occupy the link for exactly `flits` cycles.
  out.finish = now + packet.flits - (out.freed_this_cycle ? 0 : 1);

  if (stats_) ++stats_->grants;
  if (sinks_) {
    const auto r = static_cast<std::size_t>(id_);
    if (r < sinks_->grants_by_router.size() && sinks_->grants_by_router[r])
      sinks_->grants_by_router[r]->inc();
    if (sinks_->hop_latency_cycles)
      sinks_->hop_latency_cycles->observe(
          static_cast<double>(now - packet.enqueued));
  }
  if (trace_)
    trace_->push_back(NocGrantRecord{
        now, id_, static_cast<std::uint8_t>(port),
        static_cast<std::uint8_t>(grant.master),
        static_cast<std::uint8_t>(input_vc[m]), packet.source, packet.tag,
        packet.flits});

  if (out.finish <= now) {  // single-flit packet on an idle link: lands now
    deliver(port, out, now);
    out.busy = false;
    out.freed_this_cycle = true;
  }
}

}  // namespace lb::noc
