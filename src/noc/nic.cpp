#include "noc/nic.hpp"

#include <stdexcept>

#include "noc/router.hpp"

namespace lb::noc {

NetworkInterface::NetworkInterface(NodeId node, std::size_t width,
                                   std::size_t height,
                                   const MeshConfig& config)
    : node_(node), width_(width), height_(height), config_(config) {}

void NetworkInterface::connectInjection(Router& router) {
  router_ = &router;
  credits_.assign(config_.vc_count, config_.vc_depth);
  router.setUpstreamCredits(kLocal, credits_);
}

void NetworkInterface::push(bus::MasterId master, bus::Message message) {
  if (master != node_)
    throw std::invalid_argument(
        "NetworkInterface::push: master " + std::to_string(master) +
        " bound to NI of node " + std::to_string(node_));
  if (message.words == 0)
    throw std::invalid_argument("NetworkInterface::push: zero-word message");
  if (message.words > config_.vc_depth)
    throw std::invalid_argument(
        "NetworkInterface::push: message of " + std::to_string(message.words) +
        " words exceeds vc_depth " + std::to_string(config_.vc_depth) +
        " (packets are never segmented)");
  Packet packet;
  packet.source = node_;
  packet.dest = destinationFor(config_.pattern, config_.pattern_seed, width_,
                               height_, node_, message.tag, message.slave);
  packet.flits = message.words;
  packet.arrival = message.arrival;
  packet.tag = message.tag;
  queue_.push_back(packet);
  ++pushed_;
  if (stats_) {
    NocStats::PerSource& s = stats_->sources[static_cast<std::size_t>(node_)];
    ++s.packets_injected;
    s.flits_injected += packet.flits;
  }
}

std::size_t NetworkInterface::queueDepth(bus::MasterId master) const {
  if (master != node_)
    throw std::invalid_argument("NetworkInterface::queueDepth: wrong master");
  // Like Bus::queueDepth, a message counts until fully transferred: the
  // packet serializing on the injection link is still outstanding.
  return queue_.size() + (busy_ ? 1u : 0u);
}

void NetworkInterface::eject(const Packet& packet, Cycle now) {
  // Completion spans arrival..now inclusive, matching the bus's message
  // latency convention (bus.cpp records now - arrival + 1).
  const Cycle latency = now - packet.arrival + 1;
  if (stats_) {
    NocStats::PerSource& s =
        stats_->sources[static_cast<std::size_t>(packet.source)];
    ++s.packets_delivered;
    s.flits_delivered += packet.flits;
    s.latency_sum += static_cast<double>(latency);
  }
  if (sinks_) {
    if (sinks_->packets_delivered) sinks_->packets_delivered->inc();
    if (sinks_->flits_delivered) sinks_->flits_delivered->inc(packet.flits);
    if (sinks_->packet_latency_cycles)
      sinks_->packet_latency_cycles->observe(static_cast<double>(latency));
  }
}

void NetworkInterface::cycle(Cycle now) {
  // Phase 1: land the injection transfer whose last flit crosses now.
  freed_this_cycle_ = false;
  if (busy_ && finish_ <= now) {
    router_->receive(kLocal, dest_vc_, in_flight_, now);
    busy_ = false;
    freed_this_cycle_ = true;
  }
  // Phase 2: start serializing the head packet once the local router's
  // kLocal input has credit for all of it.
  if (busy_ || queue_.empty()) return;
  const Packet& head = queue_.front();
  for (std::uint32_t v = 0; v < config_.vc_count; ++v) {
    if (credits_[v] < head.flits) continue;
    credits_[v] -= head.flits;
    in_flight_ = head;
    dest_vc_ = v;
    queue_.pop_front();
    busy_ = true;
    finish_ = now + in_flight_.flits - (freed_this_cycle_ ? 0 : 1);
    if (finish_ <= now) {  // single-flit packet on an idle link
      router_->receive(kLocal, dest_vc_, in_flight_, now);
      busy_ = false;
    }
    return;
  }
}

Cycle NetworkInterface::nextActivity(Cycle now) {
  // Conservative: active whenever a packet is queued or serializing; a
  // cycle() call with neither is a no-op, so kNeverCycle is honest.
  return empty() ? sim::kNeverCycle : now;
}

std::string NetworkInterface::name() const {
  return "noc-ni-" + std::to_string(node_);
}

}  // namespace lb::noc
