#pragma once
// One mesh router: five ports (local NI + four compass neighbours), bounded
// input VCs with credit backpressure, dimension-ordered XY routing, and one
// bus::IArbiter per output port deciding which input port drives the link.
//
// Switching is store-and-forward at packet granularity.  A link transfer
// serializes one flit per cycle; while it runs the packet has already left
// its input VC (freeing that buffer — the credit returns upstream at grant
// time) and the reserved downstream VC slot is held by the credit that was
// consumed when the transfer started.  On completion the packet is delivered
// into the downstream VC (or ejected into the NI) and becomes eligible for
// the next hop `router_delay` cycles later, which models the router pipeline
// and — because router_delay >= 1 — makes every cross-component handoff take
// effect strictly after the current cycle, so results are independent of
// component registration order.
//
// Determinism/bit-identity rules (tests/kernel_diff_test.cpp):
//  - the output-port arbiter is consulted only when at least one input is
//    eligible, so no RNG is consumed on idle links;
//  - nextActivity() is conservative: `now` whenever the router holds any
//    packet (buffered or in flight), kNeverCycle when completely empty.
//    cycle() on an empty router is a no-op, so fastForward() has nothing to
//    account.

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "bus/arbiter.hpp"
#include "noc/metrics_sinks.hpp"
#include "noc/types.hpp"
#include "sim/kernel.hpp"

namespace lb::noc {

class NetworkInterface;

class Router final : public sim::ICycleComponent {
public:
  /// `config` must outlive the router (MeshNetwork owns it).  Builds one
  /// arbiter per output port via config.arbiter_factory, port order
  /// kLocal..kWest.
  Router(NodeId id, std::size_t width, std::size_t height,
         const MeshConfig& config);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Wires output port `out_port` to neighbour `down`'s input `down_port`
  /// and registers our credit account as that input's upstream.
  void connectNeighbor(int out_port, Router& down, int down_port);

  /// Wires the kLocal output (ejection) to `ni`.  Ejection has no VC and
  /// infinite credits: the NI consumes delivered packets immediately.
  void connectEjection(NetworkInterface& ni);

  /// Registers `credits` (owned by the upstream sender, one entry per VC of
  /// input `port` here) to be replenished when this router drains that VC.
  void setUpstreamCredits(int port, std::vector<std::uint32_t>& credits) {
    inputs_[static_cast<std::size_t>(port)].upstream_credits = &credits;
  }

  /// Accepts a packet into input `port`, VC `vc`.  The sender must have
  /// reserved the space via this input's credit account.  The head becomes
  /// arbitration-eligible at `now + router_delay`.
  void receive(int port, std::uint32_t vc, Packet packet, Cycle now);

  void cycle(Cycle now) override;
  Cycle nextActivity(Cycle now) override;
  std::string name() const override;

  NodeId id() const noexcept { return id_; }

  /// Shared stats/trace sinks, installed by MeshNetwork before the run.
  void setStats(NocStats& stats) { stats_ = &stats; }
  void setGrantTrace(std::vector<NocGrantRecord>& trace) { trace_ = &trace; }
  void setMetricsSinks(const NocMetricsSinks* sinks) { sinks_ = sinks; }

  /// XY route for a packet at this router: x first, then y, else kLocal.
  int route(NodeId dest) const noexcept;

  /// Output-port arbiter, for tests and diagnostics (e.g. RNG draw-count
  /// differential checks); never null for a valid port.
  const bus::IArbiter& arbiter(int port) const {
    return *outputs_[static_cast<std::size_t>(port)].arbiter;
  }

  /// True when no packet is buffered or in flight anywhere in this router.
  bool empty() const noexcept;

private:
  struct VirtualChannel {
    std::deque<Packet> fifo;
    std::uint32_t used_flits = 0;
  };

  struct InputPort {
    std::vector<VirtualChannel> vcs;
    /// Sender-owned per-VC credit account to replenish on drain (null for
    /// unconnected mesh-edge ports).
    std::vector<std::uint32_t>* upstream_credits = nullptr;
  };

  struct OutputLink {
    bool exists = false;
    Router* downstream = nullptr;  ///< null for the ejection link
    int downstream_port = 0;
    NetworkInterface* eject = nullptr;
    /// Our per-downstream-VC credit balance, in flits; empty == infinite
    /// (ejection).  Addresses stay stable (routers are heap-allocated and
    /// never moved), so downstream holds a pointer to this vector.
    std::vector<std::uint32_t> credits;
    std::unique_ptr<bus::IArbiter> arbiter;
    // Active transfer, if any.
    bool busy = false;
    bool freed_this_cycle = false;  ///< transient within one cycle()
    Packet packet;
    std::uint32_t dest_vc = 0;
    Cycle finish = 0;
  };

  /// Delivers the completed transfer on `out` downstream (or ejects it).
  void deliver(int port, OutputLink& out, Cycle now);

  /// Arbitrates the free link `out` among eligible input heads and starts a
  /// transfer if someone wins.  Calls the arbiter only when >= 1 input is
  /// eligible (routing matches, head ready, downstream credits suffice).
  void tryStart(int port, OutputLink& out, Cycle now);

  NodeId id_;
  int x_;
  int y_;
  std::size_t width_;
  std::size_t height_;
  const MeshConfig& config_;
  std::array<InputPort, kNumPorts> inputs_;
  std::array<OutputLink, kNumPorts> outputs_;
  std::array<std::uint32_t, kNumPorts> weights_;
  NocStats* stats_ = nullptr;
  std::vector<NocGrantRecord>* trace_ = nullptr;
  const NocMetricsSinks* sinks_ = nullptr;
};

}  // namespace lb::noc
