#pragma once
// MeshNetwork: owns and wires a W x H grid of Routers plus one
// NetworkInterface per node, exposes the NIs as bus::IMessageSink endpoints
// for the existing traffic layer, and aggregates statistics.
//
// Topology (row-major node ids, y grows southward):
//
//       0 --- 1 --- 2
//       |     |     |
//       3 --- 4 --- 5     node = y * width + x
//       |     |     |
//       6 --- 7 --- 8
//
// Usage: construct, bind each traffic source to ni(node), then
// attachTo(kernel) AFTER the sources so pushes land before the NI's cycle.

#include <memory>
#include <vector>

#include "noc/metrics_sinks.hpp"
#include "noc/nic.hpp"
#include "noc/router.hpp"
#include "noc/types.hpp"
#include "sim/kernel.hpp"

namespace lb::noc {

class MeshNetwork {
public:
  explicit MeshNetwork(MeshConfig config);

  MeshNetwork(const MeshNetwork&) = delete;
  MeshNetwork& operator=(const MeshNetwork&) = delete;

  std::size_t width() const noexcept { return config_.width; }
  std::size_t height() const noexcept { return config_.height; }
  std::size_t nodes() const noexcept { return config_.width * config_.height; }
  const MeshConfig& config() const noexcept { return config_; }

  NetworkInterface& ni(NodeId node) {
    return *nis_.at(static_cast<std::size_t>(node));
  }
  Router& router(NodeId node) {
    return *routers_.at(static_cast<std::size_t>(node));
  }

  /// Registers all NIs, then all routers, with the kernel (sources must be
  /// attached beforehand; see the header comment).
  void attachTo(sim::CycleKernel& kernel);

  /// Propagates pre-resolved observability instruments to every router and
  /// NI.  `sinks` must outlive the simulation; pass nullptr to detach.
  void setMetricsSinks(const NocMetricsSinks* sinks);

  const NocStats& stats() const noexcept { return stats_; }
  /// Zeroes the aggregated statistics (warmup discard).  Does not clear the
  /// grant trace.
  void clearStats() { stats_.clear(); }

  /// Grant trace, populated only when MeshConfig::record_grant_trace is set.
  const std::vector<NocGrantRecord>& grantTrace() const noexcept {
    return trace_;
  }

  /// True when no packet is buffered or in flight anywhere in the mesh.
  bool drained() const;

  /// Flits delivered across all sources (convenience for ScenarioResult).
  std::uint64_t totalFlitsDelivered() const;

private:
  MeshConfig config_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  NocStats stats_;
  std::vector<NocGrantRecord> trace_;
};

}  // namespace lb::noc
