#include "noc/types.hpp"

#include <stdexcept>

namespace lb::noc {

namespace {

/// SplitMix64 finalizer: the stateless mixer behind destinationFor().
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

const char* portName(int port) {
  switch (port) {
    case kLocal: return "local";
    case kNorth: return "north";
    case kEast: return "east";
    case kSouth: return "south";
    case kWest: return "west";
    default: return "?";
  }
}

Pattern patternFromString(const std::string& name) {
  if (name == "uniform") return Pattern::kUniform;
  if (name == "transpose") return Pattern::kTranspose;
  if (name == "neighbor") return Pattern::kNeighbor;
  if (name == "hotspot") return Pattern::kHotspot;
  if (name == "slave") return Pattern::kSlave;
  throw std::invalid_argument("unknown mesh traffic pattern: " + name);
}

std::string patternToString(Pattern pattern) {
  switch (pattern) {
    case Pattern::kUniform: return "uniform";
    case Pattern::kTranspose: return "transpose";
    case Pattern::kNeighbor: return "neighbor";
    case Pattern::kHotspot: return "hotspot";
    case Pattern::kSlave: return "slave";
  }
  throw std::logic_error("patternToString: bad pattern");
}

NodeId destinationFor(Pattern pattern, std::uint64_t seed, std::size_t width,
                      std::size_t height, NodeId source, std::uint64_t tag,
                      int slave) {
  const auto nodes = static_cast<NodeId>(width * height);
  if (nodes < 2)
    throw std::invalid_argument("destinationFor: mesh needs >= 2 nodes");
  const auto w = static_cast<NodeId>(width);
  const NodeId x = source % w;
  const NodeId y = source / w;
  // (x+1) wraps in x; degenerate 1-wide meshes wrap in y instead.
  const NodeId neighbor =
      width > 1 ? y * w + (x + 1) % w
                : ((y + 1) % static_cast<NodeId>(height)) * w + x;
  switch (pattern) {
    case Pattern::kUniform: {
      const std::uint64_t h =
          mix64(seed ^ (static_cast<std::uint64_t>(source) * 0x100000001b3ull) ^
                (tag + 1) * 0xc2b2ae3d27d4eb4full);
      // Uniform over the other nodes: draw from [0, nodes-1) and skip self.
      const auto draw =
          static_cast<NodeId>(h % static_cast<std::uint64_t>(nodes - 1));
      return draw >= source ? draw + 1 : draw;
    }
    case Pattern::kTranspose: {
      const NodeId dest = x * w + y;  // requires a square mesh (validated
                                      // by MeshNetwork)
      return dest == source ? neighbor : dest;
    }
    case Pattern::kNeighbor:
      return neighbor;
    case Pattern::kHotspot:
      return source == 0 ? 1 : 0;
    case Pattern::kSlave: {
      const NodeId dest = static_cast<NodeId>(
          ((slave % nodes) + nodes) % nodes);
      return dest == source ? (dest + 1) % nodes : dest;
    }
  }
  throw std::logic_error("destinationFor: bad pattern");
}

}  // namespace lb::noc
