#pragma once
// Shared vocabulary for the 2D mesh network-on-chip (src/noc).
//
// The mesh extends the paper's single/bridged shared channels (ROADMAP item
// 3) to a multi-hop interconnect: W x H routers, one network interface (NI)
// per node, dimension-ordered XY routing, per-output-port arbitration that
// reuses the existing bus::IArbiter policies, and credit-based backpressure
// over bounded input VCs.  Switching is store-and-forward at packet
// granularity: a packet (one bus message) is fully buffered in an input VC
// before competing for its output link, and a link serializes one flit
// (= one bus word) per cycle.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bus/arbiter.hpp"
#include "bus/types.hpp"
#include "sim/kernel.hpp"

namespace lb::noc {

using sim::Cycle;

/// Node index, row-major: node = y * width + x.
using NodeId = int;

/// Router port roles.  kLocal is the NI side (injection on input,
/// ejection on output); the four compass ports connect neighbours.
enum Port : int {
  kLocal = 0,
  kNorth = 1,
  kEast = 2,
  kSouth = 3,
  kWest = 4,
  kNumPorts = 5,
};

const char* portName(int port);

/// One packet in flight: a bus::Message plus mesh addressing.  Packets are
/// never segmented — a message travels as one packet (the NI validates that
/// it fits in a VC), so `flits == message.words`.
struct Packet {
  NodeId source = 0;
  NodeId dest = 0;
  std::uint32_t flits = 1;
  Cycle arrival = 0;        ///< cycle the message entered the source NI
  std::uint64_t tag = 0;    ///< source-local message tag
  /// First cycle the head is eligible at the current hop (stamped on every
  /// enqueue: delivery cycle + router_delay).  Models the router pipeline.
  Cycle ready = 0;
  /// Enqueue cycle at the current hop, for the hop-latency histogram.
  Cycle enqueued = 0;
};

/// Synthetic destination patterns for NI-injected traffic.  All patterns
/// are pure functions of (seed, source, tag) — no RNG stream is consumed,
/// so enabling a pattern never perturbs the traffic generators' draws.
enum class Pattern {
  kUniform,    ///< uniform over all nodes except the source (hash-based)
  kTranspose,  ///< (x,y) -> (y,x); diagonal nodes fall back to kNeighbor
  kNeighbor,   ///< (x,y) -> ((x+1) mod W, y)
  kHotspot,    ///< everything to node 0 (node 0 sends to node 1)
  kSlave,      ///< honor the message's slave field: dest = slave mod N
};

Pattern patternFromString(const std::string& name);
std::string patternToString(Pattern pattern);

/// Destination for a message injected at `source` with tag `tag`;
/// deterministic, never equal to `source` (N >= 2 required).
NodeId destinationFor(Pattern pattern, std::uint64_t seed, std::size_t width,
                      std::size_t height, NodeId source, std::uint64_t tag,
                      int slave);

/// Builds the arbitration policy for one router output port.  Called once
/// per (router, port) during mesh construction, in row-major router order,
/// port order kLocal..kWest; the arbiter sees kNumPorts masters (one per
/// input port).
using RouterArbiterFactory = std::function<std::unique_ptr<bus::IArbiter>(
    NodeId router, int output_port)>;

struct MeshConfig {
  std::size_t width = 4;
  std::size_t height = 4;
  /// Virtual channels (independent FIFOs) per input port.
  std::uint32_t vc_count = 1;
  /// Capacity of each VC in flits; also the maximum packet size.
  std::uint32_t vc_depth = 64;
  /// Cycles between a packet's delivery into an input VC and its head
  /// becoming eligible for arbitration (router pipeline depth, >= 1).
  std::uint32_t router_delay = 1;
  Pattern pattern = Pattern::kUniform;
  std::uint64_t pattern_seed = 1;
  /// Required; see RouterArbiterFactory.
  RouterArbiterFactory arbiter_factory;
  /// Per-input-port weights exposed to dynamic arbiters through
  /// MasterRequest::tickets (size kNumPorts; empty = all ones).
  std::vector<std::uint32_t> port_weights;
  /// Record every router grant (tests and trace tooling; off by default).
  bool record_grant_trace = false;
};

/// One router grant as it executed, for differential tests and traces.
struct NocGrantRecord {
  Cycle cycle = 0;
  NodeId router = 0;
  std::uint8_t output_port = 0;
  std::uint8_t input_port = 0;
  std::uint8_t vc = 0;
  NodeId source = 0;
  std::uint64_t tag = 0;
  std::uint32_t flits = 0;
};

/// Aggregated mesh statistics, cleared by MeshNetwork::clearStats().
struct NocStats {
  struct PerSource {
    std::uint64_t packets_injected = 0;
    std::uint64_t flits_injected = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t flits_delivered = 0;
    /// Sum of end-to-end latencies (delivery - arrival) of delivered
    /// packets; exact for latencies summing below 2^53.
    double latency_sum = 0.0;
  };
  std::vector<PerSource> sources;
  std::uint64_t grants = 0;

  void clear() {
    for (PerSource& s : sources) s = PerSource{};
    grants = 0;
  }
};

}  // namespace lb::noc
