#pragma once
// Pre-resolved observability instruments for the mesh NoC hot path.
//
// Mirrors bus/metrics_sinks.hpp: the noc layer knows nothing about metric
// names or label conventions — the obs consumer (src/service/metrics.hpp)
// resolves instruments out of a MetricsRegistry once, bundles raw pointers
// here, and hands the bundle to MeshNetwork::setMetricsSinks().  Instruments
// are observation-only (nothing in the noc reads them back), so attaching
// sinks cannot perturb simulation results.

#include <vector>

#include "obs/metrics.hpp"

namespace lb::noc {

struct NocMetricsSinks {
  obs::Counter* packets_delivered = nullptr;
  obs::Counter* flits_delivered = nullptr;
  /// Input-VC occupancy in flits, observed at each enqueue (after the
  /// arriving packet is counted).
  obs::Histogram* vc_occupancy_flits = nullptr;
  /// Per-hop queueing delay: cycles between a packet entering an input VC
  /// and winning output arbitration there.
  obs::Histogram* hop_latency_cycles = nullptr;
  /// End-to-end packet latency (ejection completion - source arrival).
  obs::Histogram* packet_latency_cycles = nullptr;
  /// Indexed by router id; entries may alias (label-capped "other" bucket).
  std::vector<obs::Counter*> grants_by_router;
};

}  // namespace lb::noc
