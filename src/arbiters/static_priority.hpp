#pragma once
// Static priority based shared bus arbitration (paper Section 2.1).
//
// Each master holds a unique, fixed priority; the arbiter always grants the
// highest-priority pending master a burst of up to the bus's maximum transfer
// size.  This is the architecture whose bandwidth-starvation behaviour
// Figure 4 of the paper demonstrates.

#include <vector>

#include "bus/arbiter.hpp"

namespace lb::arb {

class StaticPriorityArbiter final : public bus::IArbiter {
public:
  /// @param priorities  one value per master; *larger is more important*.
  /// Values must be unique so the ordering is total.
  explicit StaticPriorityArbiter(std::vector<unsigned> priorities);

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle now) override;
  std::string name() const override { return "static-priority"; }
  void reset() override {}  // stateless: priorities are fixed at build time

  /// With BusConfig::allow_preemption, a strictly higher-priority pending
  /// master aborts the current burst at the next word boundary.
  bool shouldPreempt(bus::MasterId current, const bus::RequestView& requests,
                     bus::Cycle now) override;

  unsigned priorityOf(std::size_t master) const {
    return priorities_.at(master);
  }

private:
  std::vector<unsigned> priorities_;
};

}  // namespace lb::arb
