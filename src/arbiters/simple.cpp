#include "arbiters/simple.hpp"

#include <stdexcept>

namespace lb::arb {

RandomArbiter::RandomArbiter(std::size_t num_masters, std::uint64_t seed)
    : num_masters_(num_masters), seed_(seed), rng_(seed) {
  if (num_masters == 0)
    throw std::invalid_argument("RandomArbiter: no masters");
}

bus::Grant RandomArbiter::decide(const bus::RequestView& requests,
                                 bus::Cycle /*now*/) {
  if (requests.size() != num_masters_)
    throw std::logic_error("RandomArbiter: master count mismatch");
  const std::size_t pending = requests.pendingCount();
  if (pending == 0) return bus::Grant{};
  std::uint64_t pick = rng_.below(pending);
  for (std::size_t m = 0; m < num_masters_; ++m) {
    if (!requests[m].pending) continue;
    if (pick == 0) return bus::Grant{static_cast<bus::MasterId>(m), 0};
    --pick;
  }
  throw std::logic_error("RandomArbiter: pick out of range");
}

FcfsArbiter::FcfsArbiter(std::size_t num_masters)
    : num_masters_(num_masters) {
  if (num_masters == 0) throw std::invalid_argument("FcfsArbiter: no masters");
}

bus::Grant FcfsArbiter::decide(const bus::RequestView& requests,
                               bus::Cycle /*now*/) {
  if (requests.size() != num_masters_)
    throw std::logic_error("FcfsArbiter: master count mismatch");
  bus::Grant grant;
  bus::Cycle oldest = 0;
  for (std::size_t m = 0; m < num_masters_; ++m) {
    if (!requests[m].pending) continue;
    if (!grant.valid() || requests[m].head_arrival < oldest) {
      grant.master = static_cast<bus::MasterId>(m);
      oldest = requests[m].head_arrival;
    }
  }
  return grant;
}

}  // namespace lb::arb
