#pragma once
// Deficit-weighted round-robin arbitration.
//
// The deterministic alternative to LOTTERYBUS for proportional bandwidth:
// each master holds a quantum proportional to its weight; a master's
// deficit counter accumulates its quantum once per round and is spent as it
// transfers words.  Long-run shares converge to the weight ratio exactly
// (like lottery tickets) but the schedule is deterministic — so, like TDMA,
// it carries ordering/alignment artifacts that the randomized lottery does
// not (compared head-to-head in bench/ablation_weighted_alternatives).

#include <cstdint>
#include <vector>

#include "bus/arbiter.hpp"

namespace lb::arb {

class WeightedRoundRobinArbiter final : public bus::IArbiter {
public:
  /// @param weights         per-master weights (>= 1).
  /// @param quantum_scale   words of quantum per weight unit per round; also
  ///                        the per-grant cap, so keep it <= the bus's
  ///                        max_burst_words for exact deficit accounting.
  explicit WeightedRoundRobinArbiter(std::vector<std::uint32_t> weights,
                                     std::uint32_t quantum_scale = 16);

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle now) override;
  std::string name() const override { return "weighted-rr"; }
  void reset() override;

  std::int64_t deficit(std::size_t master) const {
    return deficit_.at(master);
  }

private:
  std::vector<std::uint32_t> weights_;
  std::uint32_t quantum_scale_;
  std::vector<std::int64_t> deficit_;
  std::size_t cursor_ = 0;
};

}  // namespace lb::arb
