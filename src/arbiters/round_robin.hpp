#pragma once
// Plain round-robin burst arbitration, one of the "currently used
// communication architecture protocols" the paper lists in Section 2.
// Serves as a fairness baseline: equal long-run shares regardless of demand,
// with no mechanism for weighting components.

#include "bus/arbiter.hpp"

namespace lb::arb {

class RoundRobinArbiter final : public bus::IArbiter {
public:
  explicit RoundRobinArbiter(std::size_t num_masters);

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle now) override;
  std::string name() const override { return "round-robin"; }
  void reset() override { next_ = 0; }

private:
  std::size_t num_masters_;
  std::size_t next_ = 0;  ///< first master to consider on the next grant
};

}  // namespace lb::arb
