#include "arbiters/tdma.hpp"

#include <numeric>
#include <stdexcept>

namespace lb::arb {

TdmaArbiter::TdmaArbiter(std::vector<int> wheel, std::size_t num_masters,
                         bool two_level)
    : wheel_(std::move(wheel)), num_masters_(num_masters),
      two_level_(two_level) {
  if (wheel_.empty()) throw std::invalid_argument("TdmaArbiter: empty wheel");
  if (num_masters_ == 0)
    throw std::invalid_argument("TdmaArbiter: no masters");
  for (const int owner : wheel_)
    if (owner < -1 || owner >= static_cast<int>(num_masters_))
      throw std::invalid_argument("TdmaArbiter: slot owner out of range");
}

std::vector<int> TdmaArbiter::contiguousWheel(
    const std::vector<unsigned>& slots_per_master) {
  std::vector<int> wheel;
  for (std::size_t master = 0; master < slots_per_master.size(); ++master)
    wheel.insert(wheel.end(), slots_per_master[master],
                 static_cast<int>(master));
  if (wheel.empty())
    throw std::invalid_argument("TdmaArbiter: zero total slots");
  return wheel;
}

std::vector<int> TdmaArbiter::interleavedWheel(
    const std::vector<unsigned>& slots_per_master) {
  const unsigned total = std::accumulate(slots_per_master.begin(),
                                         slots_per_master.end(), 0u);
  if (total == 0) throw std::invalid_argument("TdmaArbiter: zero total slots");
  // Largest-remainder spreading: each master claims the slots where its
  // running quota crosses an integer boundary.
  std::vector<int> wheel(total, -1);
  std::vector<double> credit(slots_per_master.size(), 0.0);
  for (unsigned slot = 0; slot < total; ++slot) {
    std::size_t best = 0;
    double best_credit = -1.0;
    for (std::size_t m = 0; m < slots_per_master.size(); ++m) {
      credit[m] += static_cast<double>(slots_per_master[m]) / total;
      if (credit[m] > best_credit) {
        best_credit = credit[m];
        best = m;
      }
    }
    wheel[slot] = static_cast<int>(best);
    credit[best] -= 1.0;
  }
  return wheel;
}

bus::Grant TdmaArbiter::decide(const bus::RequestView& requests,
                               bus::Cycle now) {
  if (requests.size() != num_masters_)
    throw std::logic_error("TdmaArbiter: master count mismatch");

  const int owner = wheel_[currentSlot(now)];
  if (owner >= 0 && requests[static_cast<std::size_t>(owner)].pending)
    return bus::Grant{owner, 1};  // level 1: slot owner, single word

  if (!two_level_) return bus::Grant{};

  // Level 2: grant the idle slot to the next pending master round-robin.
  for (std::size_t offset = 0; offset < num_masters_; ++offset) {
    const std::size_t candidate = (rr_ + offset) % num_masters_;
    if (requests[candidate].pending) {
      rr_ = (candidate + 1) % num_masters_;
      return bus::Grant{static_cast<bus::MasterId>(candidate), 1};
    }
  }
  return bus::Grant{};
}

bus::Cycle TdmaArbiter::nextGrantOpportunity(const bus::RequestView& requests,
                                             bus::Cycle now) const {
  if (!requests.anyPending()) return sim::kNeverCycle;
  if (two_level_) return now;  // slot reclaiming grants any pending master
  for (std::size_t offset = 0; offset < wheel_.size(); ++offset) {
    const int owner = wheel_[(currentSlot(now) + offset) % wheel_.size()];
    if (owner >= 0 && requests[static_cast<std::size_t>(owner)].pending)
      return now + offset;
  }
  // A pending master that owns no slot can never be served without
  // reclaiming; the bus idles until its request view changes.
  return sim::kNeverCycle;
}

}  // namespace lb::arb
