#include "arbiters/round_robin.hpp"

#include <stdexcept>

namespace lb::arb {

RoundRobinArbiter::RoundRobinArbiter(std::size_t num_masters)
    : num_masters_(num_masters) {
  if (num_masters == 0)
    throw std::invalid_argument("RoundRobinArbiter: no masters");
}

bus::Grant RoundRobinArbiter::decide(const bus::RequestView& requests,
                                     bus::Cycle /*now*/) {
  if (requests.size() != num_masters_)
    throw std::logic_error("RoundRobinArbiter: master count mismatch");

  for (std::size_t offset = 0; offset < num_masters_; ++offset) {
    const std::size_t candidate = (next_ + offset) % num_masters_;
    if (requests[candidate].pending) {
      next_ = (candidate + 1) % num_masters_;
      return bus::Grant{static_cast<bus::MasterId>(candidate), 0};
    }
  }
  return bus::Grant{};
}

}  // namespace lb::arb
