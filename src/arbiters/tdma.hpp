#pragma once
// Two-level TDMA based shared bus arbitration (paper Section 2.2, Figure 2).
//
// Level 1: a timing wheel whose slots are statically reserved for masters.
// The wheel rotates one slot per bus cycle; if the current slot's owner has a
// pending request it is granted a single-word transfer.
// Level 2 (slot reclaiming): if the owner is idle, a round-robin pointer
// scans the other masters and grants the next pending one a single word, so
// reserved-but-unused slots are not wasted.
//
// Bandwidth guarantees come from the slot reservation ratios; the latency
// pathology the paper demonstrates (Figure 5, Figure 12(b)) comes from the
// sensitivity of waiting time to the phase alignment between request arrivals
// and reserved slots.  `setPhase` exists precisely to reproduce that
// experiment.

#include <vector>

#include "bus/arbiter.hpp"

namespace lb::arb {

class TdmaArbiter final : public bus::IArbiter {
public:
  /// @param wheel       slot -> owning master id (-1 for an unowned slot).
  /// @param num_masters total masters on the bus (for validation).
  /// @param two_level   enable round-robin reclaiming of idle slots.
  TdmaArbiter(std::vector<int> wheel, std::size_t num_masters,
              bool two_level = true);

  /// Builds a wheel with contiguous blocks: `slots_per_master[i]` adjacent
  /// slots for master i, in master order — the reservation style of Figure 5,
  /// where contiguous slots let a burst transfer back-to-back.
  static std::vector<int> contiguousWheel(
      const std::vector<unsigned>& slots_per_master);

  /// Builds a maximally interleaved wheel with the same per-master counts
  /// (largest-remainder spreading), for the wheel-layout ablation.
  static std::vector<int> interleavedWheel(
      const std::vector<unsigned>& slots_per_master);

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle now) override;

  /// Quiescence hint: with slot reclaiming any pending master is grantable
  /// immediately; pure single-level TDMA must wait for the next slot whose
  /// owner is pending — the wheel scan below — which is exactly why the
  /// Fig. 5 alignment experiments step through long dead stretches in the
  /// naive kernel.
  bus::Cycle nextGrantOpportunity(const bus::RequestView& requests,
                                  bus::Cycle now) const override;

  std::string name() const override {
    return two_level_ ? "tdma-2level" : "tdma";
  }
  void reset() override { rr_ = 0; }

  /// Rotates the wheel origin: slot index = (now + phase) mod wheel size.
  void setPhase(bus::Cycle phase) { phase_ = phase; }

  std::size_t wheelSize() const { return wheel_.size(); }
  int slotOwner(std::size_t slot) const { return wheel_.at(slot); }
  std::size_t currentSlot(bus::Cycle now) const {
    return static_cast<std::size_t>((now + phase_) % wheel_.size());
  }

private:
  std::vector<int> wheel_;
  std::size_t num_masters_;
  bool two_level_;
  bus::Cycle phase_ = 0;
  std::size_t rr_ = 0;  ///< second-level round-robin pointer
};

}  // namespace lb::arb
