#pragma once
// Two simple reference arbiters used as experimental controls:
//
//  - RandomArbiter: uniformly random among pending masters — a lottery with
//    all ticket holdings equal.  Separates "what randomization buys"
//    (phase-insensitivity) from "what tickets buy" (weighting).
//  - FcfsArbiter: grants the pending master whose head-of-line message is
//    oldest — globally first-come-first-served, the latency-optimal
//    unweighted discipline for symmetric traffic.

#include <cstdint>

#include "bus/arbiter.hpp"
#include "sim/rng.hpp"

namespace lb::arb {

class RandomArbiter final : public bus::IArbiter {
public:
  explicit RandomArbiter(std::size_t num_masters, std::uint64_t seed = 1);

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle now) override;
  std::string name() const override { return "random"; }
  void reset() override { rng_ = sim::Xoshiro256ss(seed_); }

private:
  std::size_t num_masters_;
  std::uint64_t seed_;
  sim::Xoshiro256ss rng_;
};

class FcfsArbiter final : public bus::IArbiter {
public:
  explicit FcfsArbiter(std::size_t num_masters);

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle now) override;
  std::string name() const override { return "fcfs"; }
  void reset() override {}  // stateless: ages come from the request view

private:
  std::size_t num_masters_;
};

}  // namespace lb::arb
