#include "arbiters/token_ring.hpp"

#include <stdexcept>

namespace lb::arb {

TokenRingArbiter::TokenRingArbiter(std::size_t num_masters,
                                   unsigned hop_cycles)
    : num_masters_(num_masters), hop_cycles_(hop_cycles) {
  if (num_masters == 0)
    throw std::invalid_argument("TokenRingArbiter: no masters");
}

bus::Grant TokenRingArbiter::decide(const bus::RequestView& requests,
                                    bus::Cycle now) {
  if (requests.size() != num_masters_)
    throw std::logic_error("TokenRingArbiter: master count mismatch");
  if (now < hop_budget_ready_at_) return bus::Grant{};  // token in flight

  for (std::size_t hops = 0; hops < num_masters_; ++hops) {
    const std::size_t candidate = (holder_ + hops) % num_masters_;
    if (requests[candidate].pending) {
      if (hop_cycles_ > 0 && hops > 0) {
        // The token physically travels `hops` segments before this master
        // can transmit; stall the bus for that long, then grant.
        hop_budget_ready_at_ = now + static_cast<bus::Cycle>(hops) * hop_cycles_;
        holder_ = candidate;
        return bus::Grant{};
      }
      holder_ = (candidate + 1) % num_masters_;
      return bus::Grant{static_cast<bus::MasterId>(candidate), 0};
    }
  }
  return bus::Grant{};
}

}  // namespace lb::arb
