#include "arbiters/weighted_round_robin.hpp"

#include <algorithm>
#include <stdexcept>

namespace lb::arb {

WeightedRoundRobinArbiter::WeightedRoundRobinArbiter(
    std::vector<std::uint32_t> weights, std::uint32_t quantum_scale)
    : weights_(std::move(weights)),
      quantum_scale_(quantum_scale),
      deficit_(weights_.size(), 0) {
  if (weights_.empty())
    throw std::invalid_argument("WeightedRoundRobinArbiter: no masters");
  if (quantum_scale_ == 0)
    throw std::invalid_argument("WeightedRoundRobinArbiter: zero quantum");
  for (const std::uint32_t w : weights_)
    if (w == 0)
      throw std::invalid_argument(
          "WeightedRoundRobinArbiter: zero-weight master");
}

bus::Grant WeightedRoundRobinArbiter::decide(
 const bus::RequestView& requests, bus::Cycle /*now*/) {
  if (requests.size() != weights_.size())
    throw std::logic_error("WeightedRoundRobinArbiter: master count mismatch");
  if (!requests.anyPending()) return bus::Grant{};

  // At most two sweeps: the first may only replenish deficits; the second is
  // then guaranteed to find a servable pending master.
  for (std::size_t visit = 0; visit < 2 * weights_.size(); ++visit) {
    const std::size_t m = cursor_;
    if (!requests[m].pending) {
      deficit_[m] = 0;  // classic DRR: no banking credit while idle
      cursor_ = (cursor_ + 1) % weights_.size();
      continue;
    }
    if (deficit_[m] <= 0)
      deficit_[m] +=
          static_cast<std::int64_t>(weights_[m]) * quantum_scale_;

    const std::uint64_t budget = static_cast<std::uint64_t>(deficit_[m]);
    const std::uint32_t words = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {requests[m].head_words_remaining, budget, quantum_scale_}));
    if (words >= 1) {
      deficit_[m] -= words;
      // Keep serving this master (its next queued message, if any) until its
      // quantum is spent; an emptied queue is detected on the next visit and
      // advances the cursor via the idle branch above.
      if (deficit_[m] <= 0) cursor_ = (cursor_ + 1) % weights_.size();
      return bus::Grant{static_cast<bus::MasterId>(m), words};
    }
    cursor_ = (cursor_ + 1) % weights_.size();
  }
  return bus::Grant{};
}

void WeightedRoundRobinArbiter::reset() {
  std::fill(deficit_.begin(), deficit_.end(), 0);
  cursor_ = 0;
}

}  // namespace lb::arb
