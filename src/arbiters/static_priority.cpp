#include "arbiters/static_priority.hpp"

#include <set>
#include <stdexcept>

namespace lb::arb {

StaticPriorityArbiter::StaticPriorityArbiter(std::vector<unsigned> priorities)
    : priorities_(std::move(priorities)) {
  if (priorities_.empty())
    throw std::invalid_argument("StaticPriorityArbiter: no masters");
  const std::set<unsigned> unique(priorities_.begin(), priorities_.end());
  if (unique.size() != priorities_.size())
    throw std::invalid_argument(
        "StaticPriorityArbiter: priorities must be unique");
}

bus::Grant StaticPriorityArbiter::decide(const bus::RequestView& requests,
                                         bus::Cycle /*now*/) {
  if (requests.size() != priorities_.size())
    throw std::logic_error("StaticPriorityArbiter: master count mismatch");

  bus::Grant grant;
  unsigned best = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i].pending) continue;
    if (!grant.valid() || priorities_[i] > best) {
      grant.master = static_cast<bus::MasterId>(i);
      best = priorities_[i];
    }
  }
  return grant;  // max_words == 0: burst up to the bus limit
}

bool StaticPriorityArbiter::shouldPreempt(bus::MasterId current,
                                          const bus::RequestView& requests,
                                          bus::Cycle /*now*/) {
  const unsigned held = priorities_.at(static_cast<std::size_t>(current));
  for (std::size_t i = 0; i < requests.size(); ++i)
    if (requests[i].pending && priorities_[i] > held) return true;
  return false;
}

}  // namespace lb::arb
