#pragma once
// Token-ring style arbitration (paper Section 2.3: "another common
// architecture is based on token rings", attractive for ATM switches).
//
// A token circulates among the masters; only the token holder may transmit.
// If the holder has no pending request the token hops to the next master,
// each hop costing `hop_cycles` bus cycles (0 models an idealized centralized
// emulation, >0 models the physical pass latency of a real ring).  After a
// transfer the token always moves on, so the ring is fair but — like
// round-robin — cannot weight components.

#include "bus/arbiter.hpp"

namespace lb::arb {

class TokenRingArbiter final : public bus::IArbiter {
public:
  TokenRingArbiter(std::size_t num_masters, unsigned hop_cycles = 0);

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle now) override;

  /// Quiescence hint: while the token is physically hopping the ring the
  /// bus cannot be granted until the hop budget elapses; the decision cycle
  /// that *starts* a hop sequence (or grants) must still execute, so the
  /// hint never reaches past hop_budget_ready_at_.
  bus::Cycle nextGrantOpportunity(const bus::RequestView& requests,
                                  bus::Cycle now) const override {
    if (!requests.anyPending()) return sim::kNeverCycle;
    return now < hop_budget_ready_at_ ? hop_budget_ready_at_ : now;
  }

  std::string name() const override { return "token-ring"; }
  void reset() override {
    holder_ = 0;
    hop_budget_ready_at_ = 0;
  }

  std::size_t tokenHolder() const { return holder_; }

private:
  std::size_t num_masters_;
  unsigned hop_cycles_;
  std::size_t holder_ = 0;
  bus::Cycle hop_budget_ready_at_ = 0;  ///< ring busy hopping until this cycle
};

}  // namespace lb::arb
