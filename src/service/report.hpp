#pragma once
// Human-readable rendering of scenario results — shared by lbsim (local
// execution) and lbcli (daemon execution) so that the two print
// byte-identical reports for the same scenario.  That equality is the
// acceptance check that the wire codec is lossless.

#include <iosfwd>

#include "service/scenario.hpp"

namespace lb::service {

/// The per-master metric table plus the one-line footer lbsim has always
/// printed.  `csv` selects CSV rows instead of the ASCII box.
void writeResultReport(std::ostream& out, const Scenario& scenario,
                       const ScenarioResult& result, bool csv);

}  // namespace lb::service
