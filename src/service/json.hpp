#pragma once
// Minimal JSON value / parser / serializer for the lbserve wire protocol
// and the scenario codec.  Deliberately small and dependency-free:
//
//   - objects preserve insertion order (vector of pairs), so a value
//     serialized from code has a *deterministic* byte representation —
//     the scenario hash (scenario.hpp) relies on this;
//   - numbers remember whether they were written as integers, and integral
//     values round-trip exactly (seeds are uint64 and must not pass through
//     a double);
//   - doubles serialize with 17 significant digits, so results round-trip
//     bit-identically through the daemon (lbcli output == lbsim output);
//   - parse errors throw JsonError with a byte offset, never assert.
//
// Supported: null, true/false, numbers, strings (with \uXXXX escapes for
// BMP code points), arrays, objects.  Not supported (not needed on a
// loopback wire format we also produce): surrogate pairs, NaN/Inf.

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace lb::service {

class JsonError : public std::runtime_error {
public:
  JsonError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at byte " + std::to_string(offset) +
                           ")"),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

private:
  std::size_t offset_;
};

class Json {
public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : Json(static_cast<std::int64_t>(value)) {}
  Json(std::int64_t value)
      : type_(Type::kNumber),
        number_(static_cast<double>(value)),
        integer_(value),
        is_integer_(true) {}
  Json(std::uint64_t value)
      : type_(Type::kNumber),
        number_(static_cast<double>(value)),
        integer_(static_cast<std::int64_t>(value)),
        is_integer_(true),
        is_unsigned_(true) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const { return type_ == Type::kNumber; }
  /// True for numbers written without fraction/exponent that fit an int64
  /// or uint64.
  bool isInteger() const { return type_ == Type::kNumber && is_integer_; }
  bool isString() const { return type_ == Type::kString; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError on type mismatch so codec callers get
  /// uniform "malformed input" failures.
  bool asBool() const;
  double asDouble() const;
  std::int64_t asInt64() const;
  std::uint64_t asUint64() const;  ///< throws on negatives and fractions
  const std::string& asString() const;
  const Array& asArray() const;
  const Object& asObject() const;

  // -- object helpers --------------------------------------------------------

  /// Appends (or replaces) a member, preserving first-insertion order.
  Json& set(const std::string& key, Json value);

  /// Member lookup; nullptr when absent (throws if not an object).
  const Json* find(const std::string& key) const;

  /// Member lookup; throws JsonError when absent.
  const Json& at(const std::string& key) const;

  // -- array helpers ---------------------------------------------------------

  Json& push(Json value);
  std::size_t size() const;

  // -- codec -----------------------------------------------------------------

  /// Compact serialization (no whitespace); objects in insertion order.
  std::string dump() const;

  /// Strict parse of exactly one JSON document (trailing garbage rejected).
  static Json parse(const std::string& text);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

private:
  void dumpTo(std::string& out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  bool is_integer_ = false;
  bool is_unsigned_ = false;  ///< integer_ holds a reinterpreted uint64
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace lb::service
