#include "service/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

namespace lb::service {

namespace {

obs::MetricsRegistry& resolve(obs::MetricsRegistry* registry) {
  return registry != nullptr ? *registry : obs::registry();
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::string persist_dir,
                         obs::MetricsRegistry* registry)
    : capacity_(capacity == 0 ? 1 : capacity),
      persist_dir_(std::move(persist_dir)),
      memory_hits_(resolve(registry)
                       .counter("lb_cache_hits_total", "Cache hits by tier")
                       .withLabels({{"tier", "memory"}})),
      disk_hits_(resolve(registry)
                     .counter("lb_cache_hits_total", "Cache hits by tier")
                     .withLabels({{"tier", "disk"}})),
      misses_(resolve(registry)
                  .counter("lb_cache_misses_total", "Cache misses")
                  .get()),
      insertions_(resolve(registry)
                      .counter("lb_cache_insertions_total",
                               "Entries inserted or refreshed")
                      .get()),
      evictions_(resolve(registry)
                     .counter("lb_cache_evictions_total",
                              "LRU entries evicted")
                     .get()),
      disk_reads_(resolve(registry)
                      .counter("lb_cache_disk_reads_total",
                               "Persistence-directory load attempts")
                      .get()),
      disk_writes_(resolve(registry)
                       .counter("lb_cache_disk_writes_total",
                                "Entries written through to disk")
                       .get()),
      entries_gauge_(resolve(registry)
                         .gauge("lb_cache_entries", "In-memory cache entries")
                         .get()) {
  stats_.capacity = capacity_;
  if (!persist_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(persist_dir_, ec);
    // A failure surfaces later as load/store misses; the cache still works
    // in-memory.
  }
}

std::string ResultCache::pathFor(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.json",
                static_cast<unsigned long long>(hash));
  return persist_dir_ + "/" + name;
}

std::optional<ScenarioResult> ResultCache::get(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    entries_.splice(entries_.begin(), entries_, it->second);
    ++stats_.hits;
    memory_hits_.inc();
    return it->second->second;
  }
  if (!persist_dir_.empty()) {
    disk_reads_.inc();
    if (auto loaded = loadFromDisk(hash)) {
      insertLocked(hash, *loaded);
      ++stats_.disk_hits;
      disk_hits_.inc();
      return loaded;
    }
  }
  ++stats_.misses;
  misses_.inc();
  return std::nullopt;
}

void ResultCache::put(std::uint64_t hash, const Scenario& scenario,
                      const ScenarioResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  insertLocked(hash, result);
  ++stats_.insertions;
  insertions_.inc();
  if (!persist_dir_.empty()) storeToDisk(hash, scenario, result);
}

void ResultCache::insertLocked(std::uint64_t hash,
                               const ScenarioResult& result) {
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    it->second->second = result;
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.emplace_front(hash, result);
  index_[hash] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++stats_.evictions;
    evictions_.inc();
  }
  entries_gauge_.set(static_cast<std::int64_t>(entries_.size()));
}

std::optional<ScenarioResult> ResultCache::loadFromDisk(std::uint64_t hash) {
  std::ifstream in(pathFor(hash));
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const Json doc = Json::parse(buffer.str());
    return resultFromJson(doc.at("result"));
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt file == miss; will be overwritten
  }
}

void ResultCache::storeToDisk(std::uint64_t hash, const Scenario& scenario,
                              const ScenarioResult& result) {
  Json doc = Json::object();
  doc.set("scenario", toJson(scenario)).set("result", toJson(result));
  const std::string path = pathFor(hash);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << doc.dump() << "\n";
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);  // atomic publish on POSIX
  if (!ec) disk_writes_.inc();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats snapshot = stats_;
  snapshot.size = entries_.size();
  return snapshot;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace lb::service
