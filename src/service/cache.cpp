#include "service/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/log.hpp"

namespace lb::service {

namespace {

obs::MetricsRegistry& resolve(obs::MetricsRegistry* registry) {
  return registry != nullptr ? *registry : obs::registry();
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::string persist_dir,
                         obs::MetricsRegistry* registry,
                         fault::FaultInjector* fault)
    : capacity_(capacity == 0 ? 1 : capacity),
      persist_dir_(std::move(persist_dir)),
      fault_(fault),
      memory_hits_(resolve(registry)
                       .counter("lb_cache_hits_total", "Cache hits by tier")
                       .withLabels({{"tier", "memory"}})),
      disk_hits_(resolve(registry)
                     .counter("lb_cache_hits_total", "Cache hits by tier")
                     .withLabels({{"tier", "disk"}})),
      misses_(resolve(registry)
                  .counter("lb_cache_misses_total", "Cache misses")
                  .get()),
      insertions_(resolve(registry)
                      .counter("lb_cache_insertions_total",
                               "Entries inserted or refreshed")
                      .get()),
      evictions_(resolve(registry)
                     .counter("lb_cache_evictions_total",
                              "LRU entries evicted")
                     .get()),
      disk_reads_(resolve(registry)
                      .counter("lb_cache_disk_reads_total",
                               "Persistence-directory load attempts")
                      .get()),
      disk_writes_(resolve(registry)
                       .counter("lb_cache_disk_writes_total",
                                "Entries written through to disk")
                       .get()),
      corrupt_evictions_(
          resolve(registry)
              .counter("lb_cache_corrupt_evictions_total",
                       "Disk entries evicted after failing the FNV-1a "
                       "integrity check")
              .get()),
      entries_gauge_(resolve(registry)
                         .gauge("lb_cache_entries", "In-memory cache entries")
                         .get()) {
  stats_.capacity = capacity_;
  if (!persist_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(persist_dir_, ec);
    // A failure surfaces later as load/store misses; the cache still works
    // in-memory.
  }
}

std::string ResultCache::pathFor(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.json",
                static_cast<unsigned long long>(hash));
  return persist_dir_ + "/" + name;
}

std::optional<ScenarioResult> ResultCache::get(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    entries_.splice(entries_.begin(), entries_, it->second);
    ++stats_.hits;
    memory_hits_.inc();
    return it->second->second;
  }
  if (!persist_dir_.empty()) {
    disk_reads_.inc();
    if (auto loaded = loadFromDisk(hash)) {
      insertLocked(hash, *loaded);
      ++stats_.disk_hits;
      disk_hits_.inc();
      return loaded;
    }
  }
  ++stats_.misses;
  misses_.inc();
  return std::nullopt;
}

void ResultCache::put(std::uint64_t hash, const Scenario& scenario,
                      const ScenarioResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  insertLocked(hash, result);
  ++stats_.insertions;
  insertions_.inc();
  if (!persist_dir_.empty()) storeToDisk(hash, scenario, result);
}

void ResultCache::insertLocked(std::uint64_t hash,
                               const ScenarioResult& result) {
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    it->second->second = result;
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.emplace_front(hash, result);
  index_[hash] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++stats_.evictions;
    evictions_.inc();
  }
  entries_gauge_.set(static_cast<std::int64_t>(entries_.size()));
}

std::optional<ScenarioResult> ResultCache::loadFromDisk(std::uint64_t hash) {
  std::ifstream in(pathFor(hash));
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  if (fault_ != nullptr && fault_->corruptCacheLoad() && !text.empty()) {
    // Chaos hook: damage one byte of the loaded image, deterministically
    // chosen from the plan seed.  The integrity check below must catch it.
    const std::uint64_t pattern = fault_->corruptionPattern();
    text[pattern % text.size()] ^=
        static_cast<char>((pattern >> 8 & 0xFF) | 0x01);
  }
  try {
    const Json doc = Json::parse(text);
    // Integrity gate 1: the result bytes must match the stored FNV-1a
    // checksum (catches bit rot inside the result payload).
    const std::uint64_t stored_fnv = doc.at("result_fnv").asUint64();
    const Json& result_json = doc.at("result");
    if (fault::fnv1a64(result_json.dump()) != stored_fnv) {
      evictCorrupt(hash);
      return std::nullopt;
    }
    // Integrity gate 2: the scenario bytes must match their own checksum
    // (callers may store under any key, so the filename cannot be
    // re-derived from the scenario — but the bytes must be undamaged).
    if (fault::fnv1a64(doc.at("scenario").dump()) !=
        doc.at("scenario_fnv").asUint64()) {
      evictCorrupt(hash);
      return std::nullopt;
    }
    return resultFromJson(result_json);
  } catch (const std::exception&) {
    evictCorrupt(hash);  // unparseable == corrupt; self-heal by recompute
    return std::nullopt;
  }
}

void ResultCache::evictCorrupt(std::uint64_t hash) {
  std::error_code ec;
  std::filesystem::remove(pathFor(hash), ec);
  ++stats_.corrupt_evictions;
  corrupt_evictions_.inc();
  obs::log().warn("cache.corrupt_eviction",
                  {{"hash", obs::traceIdHex(hash)}});
}

void ResultCache::storeToDisk(std::uint64_t hash, const Scenario& scenario,
                              const ScenarioResult& result) {
  if (fault_ != nullptr && fault_->failCacheStore()) return;  // "ENOSPC"
  Json doc = Json::object();
  const Json scenario_json = toJson(scenario);
  const Json result_json = toJson(result);
  doc.set("scenario", scenario_json)
      .set("scenario_fnv", Json(fault::fnv1a64(scenario_json.dump())))
      .set("result", result_json)
      .set("result_fnv", Json(fault::fnv1a64(result_json.dump())));
  const std::string path = pathFor(hash);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << doc.dump() << "\n";
    out.flush();
    if (!out) {  // short write (disk full): drop the temp, keep the old file
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);  // atomic publish on POSIX
  if (!ec) disk_writes_.inc();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats snapshot = stats_;
  snapshot.size = entries_.size();
  return snapshot;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace lb::service
