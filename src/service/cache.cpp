#include "service/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

namespace lb::service {

ResultCache::ResultCache(std::size_t capacity, std::string persist_dir)
    : capacity_(capacity == 0 ? 1 : capacity),
      persist_dir_(std::move(persist_dir)) {
  stats_.capacity = capacity_;
  if (!persist_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(persist_dir_, ec);
    // A failure surfaces later as load/store misses; the cache still works
    // in-memory.
  }
}

std::string ResultCache::pathFor(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.json",
                static_cast<unsigned long long>(hash));
  return persist_dir_ + "/" + name;
}

std::optional<ScenarioResult> ResultCache::get(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    entries_.splice(entries_.begin(), entries_, it->second);
    ++stats_.hits;
    return it->second->second;
  }
  if (!persist_dir_.empty()) {
    if (auto loaded = loadFromDisk(hash)) {
      insertLocked(hash, *loaded);
      ++stats_.disk_hits;
      return loaded;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::put(std::uint64_t hash, const Scenario& scenario,
                      const ScenarioResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  insertLocked(hash, result);
  ++stats_.insertions;
  if (!persist_dir_.empty()) storeToDisk(hash, scenario, result);
}

void ResultCache::insertLocked(std::uint64_t hash,
                               const ScenarioResult& result) {
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    it->second->second = result;
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  entries_.emplace_front(hash, result);
  index_[hash] = entries_.begin();
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
    ++stats_.evictions;
  }
}

std::optional<ScenarioResult> ResultCache::loadFromDisk(std::uint64_t hash) {
  std::ifstream in(pathFor(hash));
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const Json doc = Json::parse(buffer.str());
    return resultFromJson(doc.at("result"));
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt file == miss; will be overwritten
  }
}

void ResultCache::storeToDisk(std::uint64_t hash, const Scenario& scenario,
                              const ScenarioResult& result) {
  Json doc = Json::object();
  doc.set("scenario", toJson(scenario)).set("result", toJson(result));
  const std::string path = pathFor(hash);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << doc.dump() << "\n";
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);  // atomic publish on POSIX
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats snapshot = stats_;
  snapshot.size = entries_.size();
  return snapshot;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace lb::service
