#include "service/report.hpp"

#include <ostream>

#include "stats/table.hpp"

namespace lb::service {

void writeResultReport(std::ostream& out, const Scenario& raw,
                       const ScenarioResult& result, bool csv) {
  const Scenario scenario = normalized(raw);
  stats::Table table({"master", "weight", "bandwidth", "traffic share",
                      "cycles/word", "messages"});
  for (std::size_t m = 0; m < scenario.masters; ++m)
    table.addRow({"C" + std::to_string(m + 1),
                  std::to_string(scenario.weights[m]),
                  stats::Table::pct(result.bandwidth_fraction[m]),
                  stats::Table::pct(result.traffic_share[m]),
                  stats::Table::num(result.cycles_per_word[m]),
                  std::to_string(result.messages_completed[m])});
  if (csv)
    table.printCsv(out);
  else
    table.printAscii(out);
  out << (csv ? "" : "\n")
      << "unutilized: " << stats::Table::pct(result.unutilized_fraction)
      << "  grants: " << result.grants << "  arbiter: " << scenario.arbiter
      << "  class: " << scenario.traffic_class << "\n";
}

}  // namespace lb::service
