#include "service/report.hpp"

#include <ostream>

#include "stats/table.hpp"

namespace lb::service {

void writeResultReport(std::ostream& out, const Scenario& raw,
                       const ScenarioResult& result, bool csv) {
  const Scenario scenario = normalized(raw);
  // On a mesh, weights are per router input port, not per master; the
  // per-master column would read out of bounds (and mislead).
  const bool mesh = scenario.mesh.enabled();
  stats::Table table(mesh ? std::vector<std::string>{"node", "bandwidth",
                                                     "traffic share",
                                                     "cycles/word", "messages"}
                          : std::vector<std::string>{
                                "master", "weight", "bandwidth",
                                "traffic share", "cycles/word", "messages"});
  for (std::size_t m = 0; m < scenario.masters; ++m) {
    std::vector<std::string> row{"C" + std::to_string(m + 1)};
    if (!mesh) row.push_back(std::to_string(scenario.weights[m]));
    row.push_back(stats::Table::pct(result.bandwidth_fraction[m]));
    row.push_back(stats::Table::pct(result.traffic_share[m]));
    row.push_back(stats::Table::num(result.cycles_per_word[m]));
    row.push_back(std::to_string(result.messages_completed[m]));
    table.addRow(std::move(row));
  }
  if (csv)
    table.printCsv(out);
  else
    table.printAscii(out);
  out << (csv ? "" : "\n")
      << "unutilized: " << stats::Table::pct(result.unutilized_fraction)
      << "  grants: " << result.grants << "  arbiter: " << scenario.arbiter
      << "  class: " << scenario.traffic_class;
  if (mesh)
    out << "  mesh: " << scenario.mesh.width << "x" << scenario.mesh.height
        << " " << scenario.mesh.pattern;
  out << "\n";
}

}  // namespace lb::service
