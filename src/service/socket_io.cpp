#include "service/socket_io.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>

namespace lb::service::net {

namespace {

/// Waits for `events` (POLLIN/POLLOUT) on fd up to the deadline.
IoStatus waitReady(int fd, short events, const IoDeadline& deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline) {
      const auto remaining = *deadline - std::chrono::steady_clock::now();
      const auto ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count();
      if (ms <= 0) return IoStatus::kTimeout;
      timeout_ms = static_cast<int>(
          ms > 0x7fffffff ? 0x7fffffff : ms);
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return IoStatus::kOk;
    if (rc == 0) return IoStatus::kTimeout;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

}  // namespace

IoDeadline deadlineAfter(std::chrono::milliseconds budget) {
  if (budget.count() <= 0) return std::nullopt;
  return std::chrono::steady_clock::now() + budget;
}

IoStatus sendAll(int fd, const std::string& data, const IoDeadline& deadline,
                 fault::FaultInjector* fault) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    std::size_t chunk = data.size() - sent;
    if (fault != nullptr) {
      switch (fault->onSocketWrite()) {
        case fault::SocketFault::kReset:
          return IoStatus::kError;
        case fault::SocketFault::kShort:
          chunk = 1;  // torn write: dribble one byte this call
          break;
        case fault::SocketFault::kNone:
          break;
      }
    }
    if (const IoStatus ready = waitReady(fd, POLLOUT, deadline);
        ready != IoStatus::kOk)
      return ready;
    const ssize_t n = ::send(fd, data.data() + sent, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoStatus::kError;
    }
    if (n == 0) return IoStatus::kError;
    sent += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus recvSome(int fd, std::string& buffer, std::size_t max_bytes,
                  const IoDeadline& deadline, fault::FaultInjector* fault) {
  if (max_bytes == 0) return IoStatus::kOk;
  std::size_t want = max_bytes;
  if (fault != nullptr) {
    switch (fault->onSocketRead()) {
      case fault::SocketFault::kReset:
        return IoStatus::kError;
      case fault::SocketFault::kShort:
        want = 1;  // torn read: deliver one byte this call
        break;
      case fault::SocketFault::kNone:
        break;
    }
  }
  char chunk[4096];
  if (want > sizeof chunk) want = sizeof chunk;
  for (;;) {
    if (const IoStatus ready = waitReady(fd, POLLIN, deadline);
        ready != IoStatus::kOk)
      return ready;
    const ssize_t n = ::recv(fd, chunk, want, 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return IoStatus::kError;
  }
}

bool setNonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

IoStatus sendNonblock(int fd, const std::string& data, std::size_t& offset,
                      fault::FaultInjector* fault) {
  bool progressed = false;
  while (offset < data.size()) {
    std::size_t chunk = data.size() - offset;
    if (fault != nullptr) {
      switch (fault->onSocketWrite()) {
        case fault::SocketFault::kReset:
          return IoStatus::kError;
        case fault::SocketFault::kShort:
          chunk = 1;  // torn write: dribble one byte this call
          break;
        case fault::SocketFault::kNone:
          break;
      }
    }
    const ssize_t n = ::send(fd, data.data() + offset, chunk, MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<std::size_t>(n);
      progressed = true;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return progressed ? IoStatus::kOk : IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus recvNonblock(int fd, std::string& buffer, std::size_t max_bytes,
                      fault::FaultInjector* fault) {
  if (max_bytes == 0) return IoStatus::kOk;
  std::size_t want = max_bytes;
  if (fault != nullptr) {
    switch (fault->onSocketRead()) {
      case fault::SocketFault::kReset:
        return IoStatus::kError;
      case fault::SocketFault::kShort:
        want = 1;  // torn read: deliver one byte this call
        break;
      case fault::SocketFault::kNone:
        break;
    }
  }
  char chunk[4096];
  if (want > sizeof chunk) want = sizeof chunk;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, want, 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
}

}  // namespace lb::service::net
