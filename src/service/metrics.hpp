#pragma once
// Service-side bindings between the domain layers and the obs registry.
//
// This is the one translation unit that knows the metric *names* and label
// conventions (documented in docs/observability.md).  The bus layer exports
// a raw-pointer sink bundle (bus/metrics_sinks.hpp) and a single arbiter
// observer hook (bus/arbiter.hpp); everything here resolves instruments out
// of a MetricsRegistry and plugs them in.
//
// Label cardinality is capped: per-master series use master="0".."15" and
// collapse the rest into master="other", so a pathological 1000-master
// scenario cannot blow up the exposition.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bus/arbiter.hpp"
#include "bus/metrics_sinks.hpp"
#include "noc/metrics_sinks.hpp"
#include "obs/metrics.hpp"

namespace lb::service {

/// Highest master id that gets its own label value; above it, "other".
inline constexpr std::size_t kMaxMasterLabel = 15;

/// "0".."15" for small ids, "other" beyond kMaxMasterLabel.
std::string masterLabel(std::size_t master);

/// Resolves the bus hot-path instruments (lb_bus_* families, labeled with
/// the arbiter name) against `registry` for a bus of `num_masters`.
std::shared_ptr<bus::BusMetricsSinks> makeBusSinks(
    obs::MetricsRegistry& registry, const std::string& arbiter_name,
    std::size_t num_masters);

/// Resolves the mesh-NoC instruments (lb_noc_* families, labeled with the
/// router arbiter kind) for a mesh of `num_routers`.  Per-router grant
/// counters reuse the master label cap: router="0".."15" then "other".
std::shared_ptr<noc::NocMetricsSinks> makeNocSinks(
    obs::MetricsRegistry& registry, const std::string& arbiter_name,
    std::size_t num_routers);

/// Arbiter observer tallying decisions and per-master wins locally during a
/// run; publish() folds the tallies into lb_arbiter_* counters afterwards.
/// Tallying locally (two integer bumps per decision) keeps the per-decision
/// cost trivial and the publication atomic per run.
class GrantTally final : public bus::IArbiterObserver {
public:
  explicit GrantTally(std::size_t num_masters) : wins_(num_masters, 0) {}

  void onArbitration(const bus::IArbiter& arbiter,
                     const bus::RequestView& requests, bus::Cycle now,
                     const bus::Grant& grant) override;

  /// O(1) bulk form for fast-forwarded idle stretches: `to - from` fruitless
  /// decisions, no wins.  Keeps lb_arbiter_decisions_total bit-identical
  /// between kernel modes without per-skipped-cycle callbacks.
  void onQuiescentArbitrations(const bus::IArbiter& arbiter,
                               const bus::RequestView& requests,
                               bus::Cycle from, bus::Cycle to) override;

  std::uint64_t decisions() const { return decisions_; }
  const std::vector<std::uint64_t>& wins() const { return wins_; }

  /// Adds the tallies to lb_arbiter_decisions_total{arbiter} and
  /// lb_arbiter_wins_total{arbiter,master}.
  void publish(obs::MetricsRegistry& registry,
               const std::string& arbiter_name) const;

private:
  std::uint64_t decisions_ = 0;
  std::vector<std::uint64_t> wins_;
};

}  // namespace lb::service
