#include "service/metrics.hpp"

namespace lb::service {

std::string masterLabel(std::size_t master) {
  if (master > kMaxMasterLabel) return "other";
  return std::to_string(master);
}

std::shared_ptr<bus::BusMetricsSinks> makeBusSinks(
    obs::MetricsRegistry& registry, const std::string& arbiter_name,
    std::size_t num_masters) {
  auto sinks = std::make_shared<bus::BusMetricsSinks>();
  const obs::Labels arb{{"arbiter", arbiter_name}};
  sinks->grants =
      &registry.counter("lb_bus_grants_total", "Bus grants issued")
           .withLabels(arb);
  sinks->preemptions =
      &registry.counter("lb_bus_preemptions_total", "Bursts preempted")
           .withLabels(arb);
  sinks->idle_cycles =
      &registry
           .counter("lb_bus_idle_cycles_total",
                    "Cycles with no pending request")
           .withLabels(arb);
  sinks->overhead_cycles =
      &registry
           .counter("lb_bus_overhead_cycles_total",
                    "Arbitration, slave-setup and wait-state cycles")
           .withLabels(arb);
  sinks->grant_wait_cycles =
      &registry
           .histogram("lb_bus_grant_wait_cycles",
                      "Cycles between head-of-line arrival and grant",
                      obs::cycleBuckets())
           .withLabels(arb);
  auto& words = registry.counter("lb_bus_words_total",
                                 "Data words transferred per master");
  sinks->words_by_master.reserve(num_masters);
  for (std::size_t m = 0; m < num_masters; ++m) {
    obs::Labels labels = arb;
    labels.emplace_back("master", masterLabel(m));
    sinks->words_by_master.push_back(&words.withLabels(std::move(labels)));
  }
  return sinks;
}

void GrantTally::onArbitration(const bus::IArbiter& /*arbiter*/,
                               const bus::RequestView& /*requests*/,
                               bus::Cycle /*now*/, const bus::Grant& grant) {
  ++decisions_;
  if (grant.valid()) {
    const auto m = static_cast<std::size_t>(grant.master);
    if (m < wins_.size()) ++wins_[m];
  }
}

void GrantTally::onQuiescentArbitrations(const bus::IArbiter& /*arbiter*/,
                                         const bus::RequestView& /*requests*/,
                                         bus::Cycle from, bus::Cycle to) {
  decisions_ += to - from;
}

void GrantTally::publish(obs::MetricsRegistry& registry,
                         const std::string& arbiter_name) const {
  const obs::Labels arb{{"arbiter", arbiter_name}};
  registry
      .counter("lb_arbiter_decisions_total",
               "Arbitration decisions (granted or not)")
      .withLabels(arb)
      .inc(decisions_);
  auto& wins = registry.counter("lb_arbiter_wins_total",
                                "Grants won per master");
  for (std::size_t m = 0; m < wins_.size(); ++m) {
    if (wins_[m] == 0) continue;
    obs::Labels labels = arb;
    labels.emplace_back("master", masterLabel(m));
    wins.withLabels(std::move(labels)).inc(wins_[m]);
  }
}

}  // namespace lb::service
