#include "service/metrics.hpp"

namespace lb::service {

std::string masterLabel(std::size_t master) {
  if (master > kMaxMasterLabel) return "other";
  return std::to_string(master);
}

std::shared_ptr<bus::BusMetricsSinks> makeBusSinks(
    obs::MetricsRegistry& registry, const std::string& arbiter_name,
    std::size_t num_masters) {
  auto sinks = std::make_shared<bus::BusMetricsSinks>();
  const obs::Labels arb{{"arbiter", arbiter_name}};
  sinks->grants =
      &registry.counter("lb_bus_grants_total", "Bus grants issued")
           .withLabels(arb);
  sinks->preemptions =
      &registry.counter("lb_bus_preemptions_total", "Bursts preempted")
           .withLabels(arb);
  sinks->idle_cycles =
      &registry
           .counter("lb_bus_idle_cycles_total",
                    "Cycles with no pending request")
           .withLabels(arb);
  sinks->overhead_cycles =
      &registry
           .counter("lb_bus_overhead_cycles_total",
                    "Arbitration, slave-setup and wait-state cycles")
           .withLabels(arb);
  sinks->grant_wait_cycles =
      &registry
           .histogram("lb_bus_grant_wait_cycles",
                      "Cycles between head-of-line arrival and grant",
                      obs::cycleBuckets())
           .withLabels(arb);
  auto& words = registry.counter("lb_bus_words_total",
                                 "Data words transferred per master");
  sinks->words_by_master.reserve(num_masters);
  for (std::size_t m = 0; m < num_masters; ++m) {
    obs::Labels labels = arb;
    labels.emplace_back("master", masterLabel(m));
    sinks->words_by_master.push_back(&words.withLabels(std::move(labels)));
  }
  return sinks;
}

std::shared_ptr<noc::NocMetricsSinks> makeNocSinks(
    obs::MetricsRegistry& registry, const std::string& arbiter_name,
    std::size_t num_routers) {
  auto sinks = std::make_shared<noc::NocMetricsSinks>();
  const obs::Labels arb{{"arbiter", arbiter_name}};
  sinks->packets_delivered =
      &registry
           .counter("lb_noc_packets_delivered_total",
                    "Packets ejected at their destination NI")
           .withLabels(arb);
  sinks->flits_delivered =
      &registry
           .counter("lb_noc_flits_delivered_total",
                    "Flits ejected at their destination NI")
           .withLabels(arb);
  sinks->vc_occupancy_flits =
      &registry
           .histogram("lb_noc_vc_occupancy_flits",
                      "Input-VC occupancy in flits, sampled at each enqueue",
                      obs::cycleBuckets())
           .withLabels(arb);
  sinks->hop_latency_cycles =
      &registry
           .histogram("lb_noc_hop_latency_cycles",
                      "Cycles from input-VC enqueue to output grant",
                      obs::cycleBuckets())
           .withLabels(arb);
  sinks->packet_latency_cycles =
      &registry
           .histogram("lb_noc_packet_latency_cycles",
                      "End-to-end packet latency (injection to ejection)",
                      obs::cycleBuckets())
           .withLabels(arb);
  auto& grants =
      registry.counter("lb_noc_grants_total", "Output-port grants per router");
  sinks->grants_by_router.reserve(num_routers);
  for (std::size_t r = 0; r < num_routers; ++r) {
    obs::Labels labels = arb;
    labels.emplace_back("router", masterLabel(r));
    sinks->grants_by_router.push_back(&grants.withLabels(std::move(labels)));
  }
  return sinks;
}

void GrantTally::onArbitration(const bus::IArbiter& /*arbiter*/,
                               const bus::RequestView& /*requests*/,
                               bus::Cycle /*now*/, const bus::Grant& grant) {
  ++decisions_;
  if (grant.valid()) {
    const auto m = static_cast<std::size_t>(grant.master);
    if (m < wins_.size()) ++wins_[m];
  }
}

void GrantTally::onQuiescentArbitrations(const bus::IArbiter& /*arbiter*/,
                                         const bus::RequestView& /*requests*/,
                                         bus::Cycle from, bus::Cycle to) {
  decisions_ += to - from;
}

void GrantTally::publish(obs::MetricsRegistry& registry,
                         const std::string& arbiter_name) const {
  const obs::Labels arb{{"arbiter", arbiter_name}};
  registry
      .counter("lb_arbiter_decisions_total",
               "Arbitration decisions (granted or not)")
      .withLabels(arb)
      .inc(decisions_);
  auto& wins = registry.counter("lb_arbiter_wins_total",
                                "Grants won per master");
  for (std::size_t m = 0; m < wins_.size(); ++m) {
    if (wins_[m] == 0) continue;
    obs::Labels labels = arb;
    labels.emplace_back("master", masterLabel(m));
    wins.withLabels(std::move(labels)).inc(wins_[m]);
  }
}

}  // namespace lb::service
