#pragma once
// Deadline- and fault-aware socket I/O shared by Client and Server.
//
// Both sides of the lbserve wire used to open-code send/recv loops; this
// module is the single implementation, adding three things the raw loops
// lacked:
//
//   - deadlines: every operation takes an optional absolute steady_clock
//     deadline, enforced with poll(), so a stuck peer can no longer wedge
//     a connection handler or a client call forever;
//   - fault hooks: an optional fault::FaultInjector shortens or resets
//     individual reads/writes (torn-frame chaos testing).  A null injector
//     costs one pointer test — the hooks are inert by default;
//   - MSG_NOSIGNAL on every send, so a peer that disappears mid-response
//     surfaces as an error return instead of a process-killing SIGPIPE.

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>

#include "fault/fault.hpp"

namespace lb::service::net {

/// Absolute deadline for an I/O operation; nullopt = wait forever.
using IoDeadline = std::optional<std::chrono::steady_clock::time_point>;

enum class IoStatus {
  kOk,          ///< operation completed (possibly partially, nonblocking)
  kClosed,      ///< orderly EOF from the peer (reads only)
  kTimeout,     ///< deadline expired before the operation completed
  kError,       ///< transport error (including injected connection resets)
  kWouldBlock,  ///< nonblocking op made no progress; poll and retry
};

/// Builds a deadline `budget` from now; a zero/negative budget means none.
IoDeadline deadlineAfter(std::chrono::milliseconds budget);

/// Sends all of `data`, honoring short-write/reset injections and the
/// deadline.  Returns kOk, kTimeout, or kError.
IoStatus sendAll(int fd, const std::string& data, const IoDeadline& deadline,
                 fault::FaultInjector* fault = nullptr);

/// Receives at least one byte, appending to `buffer` (up to `max_bytes` per
/// call).  Returns kOk on data, kClosed on EOF, kTimeout, or kError.
IoStatus recvSome(int fd, std::string& buffer, std::size_t max_bytes,
                  const IoDeadline& deadline,
                  fault::FaultInjector* fault = nullptr);

// ---------------------------------------------------------------------------
// Nonblocking primitives for the event-loop server (docs/service.md)
// ---------------------------------------------------------------------------
//
// Same fault semantics as the blocking calls — an injected reset surfaces
// as kError, an injected short read/write dribbles one byte — but these
// never sleep: when the kernel buffer is empty/full they return
// kWouldBlock and the caller's poll() loop decides when to retry.

/// Puts fd into O_NONBLOCK mode.  Returns false on fcntl failure.
bool setNonblocking(int fd);

/// Sends as much of data[offset..] as the socket accepts right now and
/// advances `offset`.  Returns kOk on any progress, kWouldBlock on none,
/// kError on transport error or injected reset.
IoStatus sendNonblock(int fd, const std::string& data, std::size_t& offset,
                      fault::FaultInjector* fault = nullptr);

/// Receives at most `max_bytes` (clamped to one internal chunk), appending
/// to `buffer`.  Returns kOk on data, kClosed on EOF, kWouldBlock when the
/// socket has nothing, kError on transport error or injected reset.
IoStatus recvNonblock(int fd, std::string& buffer, std::size_t max_bytes,
                      fault::FaultInjector* fault = nullptr);

}  // namespace lb::service::net
