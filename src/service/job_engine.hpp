#pragma once
// The lbserve job engine: a bounded FIFO of scenario jobs executed by
// persistent sim::ThreadPool workers, fronted by the content-addressed
// result cache.
//
// Request flow for run()/sweep():
//
//   normalize + hash ──> cache?  ──hit──> outcome (cache_hit)
//                         │miss
//                         ├─> identical job already in flight?
//                         │      └─yes─> wait on its future (coalesced)
//                         └─> enqueue (blocks when the FIFO is full —
//                             bounded-queue backpressure), worker runs
//                             runScenario, result enters the cache
//
// Per-job timeout: callers wait on the job future for at most
// `options.timeout`; expiry yields a kTimeout outcome.  The simulation is
// not preempted (cycle-accurate kernels have no safe cancellation point) —
// it finishes in the background and still populates the cache, so a retry
// is typically a hit.  Exceptions thrown by a job (bad scenario reaching
// the testbed, bugs) are captured into kError outcomes with the what()
// string; they never take down a worker.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "obs/flight_recorder.hpp"
#include "service/cache.hpp"
#include "service/scenario.hpp"
#include "sim/thread_pool.hpp"

namespace lb::service {

enum class JobStatus { kOk, kError, kTimeout, kShed };

struct JobOutcome {
  JobStatus status = JobStatus::kOk;
  std::string error;          ///< populated for kError / kTimeout / kShed
  ScenarioResult result;      ///< valid when status == kOk
  std::uint64_t hash = 0;     ///< scenario content-address
  bool cache_hit = false;     ///< served from the cache (memory or disk)
  bool coalesced = false;     ///< waited on an identical in-flight job
  double execute_micros = 0;  ///< simulation time (0 for pure cache hits)
  std::uint32_t retry_after_ms = 0;  ///< shed hint (kShed only)
};

struct JobEngineOptions {
  std::size_t workers = 0;       ///< 0 = hardware concurrency
  std::size_t queue_depth = 64;  ///< bounded FIFO capacity
  std::chrono::milliseconds timeout{60000};  ///< per-job wait budget
  std::size_t cache_capacity = 1024;
  std::string cache_dir;  ///< empty = memory-only cache
  /// Load shedding: when true, a full queue yields an immediate kShed
  /// outcome (explicit `overloaded` + retry_after_ms on the wire) instead
  /// of blocking the submitter until space frees up.  Default false keeps
  /// the seed backpressure behavior for embedded/batch users; lbd turns it
  /// on (a daemon must not wedge connection handlers).
  bool shed_when_full = false;
  /// retry_after_ms hint attached to shed outcomes.
  std::uint32_t retry_after_ms = 50;
  /// Registry receiving lb_job_* / lb_cache_* / lb_bus_* metrics for this
  /// engine and the scenarios it runs (nullptr: process-wide
  /// obs::registry()).  Injectable so tests can reconcile counters against
  /// a fresh registry.
  obs::MetricsRegistry* registry = nullptr;
  /// Fault injector threaded into admission, execution, and the cache
  /// (nullptr: no injection; every hook is a single pointer test).
  fault::FaultInjector* fault = nullptr;
  /// Flight recorder receiving cache.lookup / job.queue_wait / job.execute
  /// spans for traced requests (nullptr or disabled: zero-cost — span
  /// construction is guarded on recorder->enabled()).
  obs::FlightRecorder* recorder = nullptr;
};

struct JobEngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t shed = 0;  ///< admissions rejected (queue full / injected)
  std::size_t queue_depth = 0;  ///< jobs waiting for a worker right now
  std::size_t in_flight = 0;    ///< queued + executing
  CacheStats cache;
};

class JobEngine {
public:
  explicit JobEngine(JobEngineOptions options = {});

  /// Drains the queue (every accepted job completes) and joins the workers.
  ~JobEngine();

  JobEngine(const JobEngine&) = delete;
  JobEngine& operator=(const JobEngine&) = delete;

  /// Cache-or-execute, blocking up to the per-job timeout.  Scenario
  /// validation errors come back as kError outcomes, not exceptions.
  /// `trace` (optional) parents this job's spans under the caller's span —
  /// the server passes its root server.request span here.
  JobOutcome run(const Scenario& scenario,
                 const obs::TraceContext& trace = {});

  /// Submits every scenario, then collects outcomes in input order.
  /// Duplicate scenarios within one sweep coalesce onto a single job.
  std::vector<JobOutcome> sweep(const std::vector<Scenario>& scenarios,
                                const obs::TraceContext& trace = {});

  /// Outcome delivery for submitAsync.  Invoked exactly once — either
  /// synchronously inside submitAsync (cache hit, validation error, shed,
  /// engine stopping) or later on the worker thread that finished the job
  /// (coalesced followers included, with `coalesced` set).  Callbacks run
  /// with no engine lock held and may re-enter submitAsync.
  using Completion = std::function<void(JobOutcome)>;

  /// Nonblocking cache-or-execute for the event-loop server: never waits on
  /// execution and never applies the per-job timeout (the caller owns its
  /// own deadline; see timeoutOutcome()).  With shed_when_full it never
  /// blocks at all; without it, it can still block on queue space exactly
  /// like submit().
  void submitAsync(const Scenario& scenario, const obs::TraceContext& trace,
                   Completion done);

  /// The kTimeout outcome a caller should report when its own wait budget
  /// expires (counts stats_.timeouts / lb_jobs_timeout_total, same as the
  /// blocking await path).  The job is not preempted — it finishes in the
  /// background and still populates the cache.
  JobOutcome timeoutOutcome();

  JobEngineStats stats() const;
  const JobEngineOptions& options() const { return options_; }
  ResultCache& cache() { return cache_; }
  obs::MetricsRegistry& metricsRegistry() { return registry_; }

private:
  struct Job {
    Scenario scenario;
    std::uint64_t hash = 0;
    std::promise<JobOutcome> promise;
    std::shared_future<JobOutcome> future;
    /// Trace of the submission that created the job (coalesced followers
    /// share it); {0,0} when the request is untraced.
    obs::TraceContext trace;
    std::chrono::steady_clock::time_point enqueued_at;
    /// Async completions to invoke when the job finishes (guarded by the
    /// engine mutex until execute() extracts them; coalesced followers'
    /// callbacks are wrapped to set `coalesced`).
    std::vector<Completion> callbacks;
  };

  /// Cache lookup / coalesce / enqueue; never blocks on execution (only on
  /// queue space).  Ready outcomes are returned via immediately-ready
  /// futures.  `.second` is true when the caller was coalesced onto an
  /// already-in-flight identical job.
  std::pair<std::shared_future<JobOutcome>, bool> submit(
      const Scenario& scenario, const obs::TraceContext& trace);
  JobOutcome await(std::shared_future<JobOutcome> future);
  /// Builds a kShed outcome and counts it (stats_ + lb_jobs_shed_total).
  JobOutcome shedOutcome(std::uint64_t hash, const std::string& reason);
  void workerLoop();
  void execute(const std::shared_ptr<Job>& job);
  /// Records one completed span under `trace` (no-op when the recorder is
  /// off or the request is untraced — nothing is even constructed).
  void recordSpan(const obs::TraceContext& trace, const char* name,
                  const std::string& note,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end);

  JobEngineOptions options_;
  obs::MetricsRegistry& registry_;  ///< resolved from options_.registry
  ResultCache cache_;

  // Pre-resolved obs instruments (mirror stats_).
  obs::Counter& submitted_counter_;
  obs::Counter& completed_counter_;
  obs::Counter& failed_counter_;
  obs::Counter& timeout_counter_;
  obs::Counter& coalesced_counter_;
  obs::Counter& shed_counter_;
  obs::Gauge& queue_depth_gauge_;
  obs::Gauge& in_flight_gauge_;
  obs::Histogram& execute_micros_;
  /// lb_request_stage_micros{stage=...} children for the engine-side stages
  /// of a request (the server owns parse/read/write).
  obs::Histogram& stage_cache_lookup_;
  obs::Histogram& stage_queue_wait_;
  obs::Histogram& stage_execute_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< space freed / job available
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> in_flight_;
  bool stopping_ = false;
  JobEngineStats stats_;

  /// Owns the worker threads; last member so it joins before the queue and
  /// maps are destroyed.
  std::unique_ptr<sim::ThreadPool> pool_;
};

}  // namespace lb::service
