#pragma once
// Strict command-line number parsing shared by lbsim, lbd, and lbcli.
//
// std::stoul("7x") happily returns 7 and std::stoul("x") throws a bare
// std::invalid_argument whose what() is just "stoul" — neither is an
// acceptable CLI experience.  These helpers parse the *entire* token or
// throw std::invalid_argument with a message that names the offending
// option and value, so drivers can print one line and exit 2.

#include <cstdint>
#include <string>
#include <vector>

namespace lb::service {

/// Parses a full decimal token into a uint64; throws std::invalid_argument
/// ("--cycles expects a non-negative integer, got \"x\"") on junk, partial
/// parses, or overflow.  `option` only decorates the error message.
std::uint64_t parseU64(const std::string& option, const std::string& text);

/// parseU64 restricted to uint32 range.
std::uint32_t parseU32(const std::string& option, const std::string& text);

/// parseU64 restricted to [min, max]; use for counts that must be >= 1.
std::uint64_t parseU64InRange(const std::string& option,
                              const std::string& text, std::uint64_t min,
                              std::uint64_t max);

/// Parses a comma-separated list of uint32s ("1,2,3,4"); rejects empty
/// items and junk with the same contract as parseU64.
std::vector<std::uint32_t> parseU32List(const std::string& option,
                                        const std::string& text);

}  // namespace lb::service
