#pragma once
// Strict command-line parsing shared by every binary in examples/.
//
// Two layers:
//
//  - parse* value helpers.  std::stoul("7x") happily returns 7 and
//    std::stoul("x") throws a bare std::invalid_argument whose what() is
//    just "stoul" — neither is an acceptable CLI experience.  These parse
//    the *entire* token or throw std::invalid_argument with a message that
//    names the offending option and value.
//
//  - OptionSet, the declarative driver loop.  Each tool registers its
//    flags/options/positionals once and gets uniform behaviour for free:
//    `--help`/`-h` prints a generated usage page and exits 0; junk flags,
//    missing values, and handler rejections print one `error: ...` line
//    plus the usage to stderr and exit 2.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace lb::service {

/// Parses a full decimal token into a uint64; throws std::invalid_argument
/// ("--cycles expects a non-negative integer, got \"x\"") on junk, partial
/// parses, or overflow.  `option` only decorates the error message.
std::uint64_t parseU64(const std::string& option, const std::string& text);

/// parseU64 restricted to uint32 range.
std::uint32_t parseU32(const std::string& option, const std::string& text);

/// parseU64 restricted to [min, max]; use for counts that must be >= 1.
std::uint64_t parseU64InRange(const std::string& option,
                              const std::string& text, std::uint64_t min,
                              std::uint64_t max);

/// Parses a comma-separated list of uint32s ("1,2,3,4"); rejects empty
/// items and junk with the same contract as parseU64.
/// Parses mesh dimensions: "WxH" (e.g. "4x4") or a single "N" meaning a
/// square NxN mesh.  Both dimensions must be in [1, 256].
std::pair<std::size_t, std::size_t> parseMeshDims(const std::string& option,
                                                  const std::string& text);

std::vector<std::uint32_t> parseU32List(const std::string& option,
                                        const std::string& text);

// ---------------------------------------------------------------------------
// OptionSet
// ---------------------------------------------------------------------------

/// Declarative option table + parse loop for the example binaries.
///
///   service::OptionSet options("lbsim", "LOTTERYBUS experiment driver");
///   options.value({"--cycles"}, "N", "simulation length",
///                 [&](const std::string& opt, const std::string& v) {
///                   scenario.cycles = service::parseU64(opt, v);
///                 });
///   options.flag({"--csv"}, "emit CSV instead of an ASCII table", &csv);
///   if (const int rc = options.parse(argc, argv); rc >= 0) return rc;
///
/// parse() returns -1 when the tool should proceed, 0 after printing
/// `--help` (exit success), or 2 after reporting a bad command line.
/// Handlers signal rejection by throwing std::exception (the parse*
/// helpers already do); the message is printed as `error: <what>`.
class OptionSet {
public:
  using ValueHandler =
      std::function<void(const std::string& option, const std::string& value)>;
  using PositionalHandler = std::function<void(const std::string& value)>;

  /// `tool` is the binary name shown in the usage header; `summary` the
  /// one-line description after the em dash.
  OptionSet(std::string tool, std::string summary);

  /// Boolean switch; any name in `names` ("--lfsr", "-l", ...) sets
  /// *target to true.  Help lines may contain '\n' for continuations.
  OptionSet& flag(std::vector<std::string> names, std::string help,
                  bool* target);

  /// Option taking one value ("--cycles N"); `handler` is called with the
  /// matched option name and the raw value token.
  OptionSet& value(std::vector<std::string> names, std::string metavar,
                   std::string help, ValueHandler handler);

  /// Accepts non-option arguments ("lbcli <verb>", "rtl_and_waves DIR");
  /// without a registered positional handler they are rejected.
  OptionSet& positional(std::string metavar, std::string help,
                        PositionalHandler handler);

  /// The generated usage page (also printed by parse() on --help/errors).
  void printUsage(std::ostream& out) const;

  /// Parses argv[1..argc); see the class comment for the return contract.
  int parse(int argc, char** argv) const;

private:
  struct Entry {
    std::vector<std::string> names;
    std::string metavar;  ///< empty for flags
    std::string help;
    bool* flag_target = nullptr;
    ValueHandler handler;
  };

  const Entry* findEntry(const std::string& name) const;
  int fail(const std::string& message) const;

  std::string tool_;
  std::string summary_;
  std::vector<Entry> entries_;
  std::string positional_metavar_;
  std::string positional_help_;
  PositionalHandler positional_;
};

}  // namespace lb::service
