#include "service/parse.hpp"

#include <cctype>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lb::service {

std::uint64_t parseU64(const std::string& option, const std::string& text) {
  if (text.empty())
    throw std::invalid_argument(option + " expects a non-negative integer, "
                                         "got an empty value");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c)))
      throw std::invalid_argument(option +
                                  " expects a non-negative integer, got \"" +
                                  text + "\"");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      throw std::invalid_argument(option + " value \"" + text +
                                  "\" is out of range");
    value = value * 10 + digit;
  }
  return value;
}

std::uint32_t parseU32(const std::string& option, const std::string& text) {
  const std::uint64_t value = parseU64(option, text);
  if (value > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument(option + " value \"" + text +
                                "\" is out of range");
  return static_cast<std::uint32_t>(value);
}

std::uint64_t parseU64InRange(const std::string& option,
                              const std::string& text, std::uint64_t min,
                              std::uint64_t max) {
  const std::uint64_t value = parseU64(option, text);
  if (value < min || value > max)
    throw std::invalid_argument(option + " value \"" + text +
                                "\" must be in [" + std::to_string(min) +
                                ", " + std::to_string(max) + "]");
  return value;
}

std::vector<std::uint32_t> parseU32List(const std::string& option,
                                        const std::string& text) {
  std::vector<std::uint32_t> values;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ','))
    values.push_back(parseU32(option, item));
  if (values.empty())
    throw std::invalid_argument(option + " expects a comma-separated list, "
                                         "got \"" + text + "\"");
  return values;
}

}  // namespace lb::service
