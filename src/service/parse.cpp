#include "service/parse.hpp"

#include <algorithm>
#include <cctype>
#include <iostream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace lb::service {

std::uint64_t parseU64(const std::string& option, const std::string& text) {
  if (text.empty())
    throw std::invalid_argument(option + " expects a non-negative integer, "
                                         "got an empty value");
  std::uint64_t value = 0;
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c)))
      throw std::invalid_argument(option +
                                  " expects a non-negative integer, got \"" +
                                  text + "\"");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      throw std::invalid_argument(option + " value \"" + text +
                                  "\" is out of range");
    value = value * 10 + digit;
  }
  return value;
}

std::uint32_t parseU32(const std::string& option, const std::string& text) {
  const std::uint64_t value = parseU64(option, text);
  if (value > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument(option + " value \"" + text +
                                "\" is out of range");
  return static_cast<std::uint32_t>(value);
}

std::uint64_t parseU64InRange(const std::string& option,
                              const std::string& text, std::uint64_t min,
                              std::uint64_t max) {
  const std::uint64_t value = parseU64(option, text);
  if (value < min || value > max)
    throw std::invalid_argument(option + " value \"" + text +
                                "\" must be in [" + std::to_string(min) +
                                ", " + std::to_string(max) + "]");
  return value;
}

std::pair<std::size_t, std::size_t> parseMeshDims(const std::string& option,
                                                  const std::string& text) {
  const std::size_t cross = text.find('x');
  if (cross == std::string::npos) {
    const auto side =
        static_cast<std::size_t>(parseU64InRange(option, text, 1, 256));
    return {side, side};
  }
  const auto width = static_cast<std::size_t>(
      parseU64InRange(option, text.substr(0, cross), 1, 256));
  const auto height = static_cast<std::size_t>(
      parseU64InRange(option, text.substr(cross + 1), 1, 256));
  return {width, height};
}

std::vector<std::uint32_t> parseU32List(const std::string& option,
                                        const std::string& text) {
  std::vector<std::uint32_t> values;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ','))
    values.push_back(parseU32(option, item));
  if (values.empty())
    throw std::invalid_argument(option + " expects a comma-separated list, "
                                         "got \"" + text + "\"");
  return values;
}

// ---------------------------------------------------------------------------
// OptionSet
// ---------------------------------------------------------------------------

OptionSet::OptionSet(std::string tool, std::string summary)
    : tool_(std::move(tool)), summary_(std::move(summary)) {}

OptionSet& OptionSet::flag(std::vector<std::string> names, std::string help,
                           bool* target) {
  Entry entry;
  entry.names = std::move(names);
  entry.help = std::move(help);
  entry.flag_target = target;
  entries_.push_back(std::move(entry));
  return *this;
}

OptionSet& OptionSet::value(std::vector<std::string> names,
                            std::string metavar, std::string help,
                            ValueHandler handler) {
  Entry entry;
  entry.names = std::move(names);
  entry.metavar = std::move(metavar);
  entry.help = std::move(help);
  entry.handler = std::move(handler);
  entries_.push_back(std::move(entry));
  return *this;
}

OptionSet& OptionSet::positional(std::string metavar, std::string help,
                                 PositionalHandler handler) {
  positional_metavar_ = std::move(metavar);
  positional_help_ = std::move(help);
  positional_ = std::move(handler);
  return *this;
}

const OptionSet::Entry* OptionSet::findEntry(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (std::find(entry.names.begin(), entry.names.end(), name) !=
        entry.names.end())
      return &entry;
  }
  return nullptr;
}

void OptionSet::printUsage(std::ostream& out) const {
  out << tool_ << " — " << summary_ << "\n";
  if (!positional_metavar_.empty()) {
    out << "  usage: " << tool_ << " " << positional_metavar_
        << " [options]\n";
    if (!positional_help_.empty()) {
      out << "  " << positional_metavar_;
      for (std::size_t i = positional_metavar_.size(); i < 13; ++i)
        out << ' ';
      out << ' ' << positional_help_ << "\n";
    }
  }

  // Left column: "  --name, -n METAVAR", padded to the widest entry.
  std::vector<std::string> left;
  std::size_t width = 0;
  for (const Entry& entry : entries_) {
    std::string column;
    for (std::size_t i = 0; i < entry.names.size(); ++i) {
      if (i) column += ", ";
      column += entry.names[i];
    }
    if (!entry.metavar.empty()) column += " " + entry.metavar;
    width = std::max(width, column.size());
    left.push_back(std::move(column));
  }
  width = std::max<std::size_t>(width, 13);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out << "  " << left[i];
    for (std::size_t pad = left[i].size(); pad < width; ++pad) out << ' ';
    // '\n' inside help continues aligned under the help column.
    std::string line;
    std::stringstream help(entries_[i].help);
    bool first = true;
    while (std::getline(help, line)) {
      if (!first) {
        out << "  ";
        for (std::size_t pad = 0; pad < width; ++pad) out << ' ';
      }
      first = false;
      out << ' ' << line << "\n";
    }
    if (first) out << "\n";  // empty help string
  }
  out << "  --help, -h";
  for (std::size_t pad = 10; pad < width; ++pad) out << ' ';
  out << " print this help and exit\n";
}

int OptionSet::fail(const std::string& message) const {
  std::cerr << "error: " << message << "\n";
  printUsage(std::cerr);
  return 2;
}

int OptionSet::parse(int argc, char** argv) const {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    }
    const Entry* entry = findEntry(arg);
    if (entry == nullptr) {
      if (!arg.empty() && arg[0] == '-')
        return fail("unknown option " + arg);
      if (!positional_) return fail("unexpected argument \"" + arg + "\"");
      try {
        positional_(arg);
      } catch (const std::exception& e) {
        return fail(e.what());
      }
      continue;
    }
    if (entry->flag_target != nullptr) {
      *entry->flag_target = true;
      continue;
    }
    if (i + 1 >= argc) return fail(arg + " needs a value");
    try {
      entry->handler(arg, argv[++i]);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  }
  return -1;
}

}  // namespace lb::service
