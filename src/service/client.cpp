#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "service/protocol.hpp"

namespace lb::service {

Client::Client(std::uint16_t port, const std::string& host) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(err) +
                             " (is lbd running?)");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::exchangeLine(const std::string& line) {
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, 0);
    if (n <= 0) throw std::runtime_error("send() failed (daemon gone?)");
    sent += static_cast<std::size_t>(n);
  }
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0)
      throw std::runtime_error("connection closed before a response arrived");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Json Client::call(const Json& request) {
  Json response = Json::parse(exchangeLine(request.dump()));
  requireProtocolVersion(response);
  return response;
}

Json Client::run(const Json& scenario) {
  Json request = Json::object();
  request.set("verb", Json("run")).set("scenario", scenario);
  return call(request);
}

Json Client::sweep(Json scenarios) {
  Json request = Json::object();
  request.set("verb", Json("sweep")).set("scenarios", std::move(scenarios));
  return call(request);
}

Json Client::stats() {
  Json request = Json::object();
  request.set("verb", Json("stats"));
  return call(request);
}

Json Client::metrics() {
  Json request = Json::object();
  request.set("verb", Json("metrics"));
  return call(request);
}

Json Client::shutdown() {
  Json request = Json::object();
  request.set("verb", Json("shutdown"));
  return call(request);
}

}  // namespace lb::service
