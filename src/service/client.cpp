#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "obs/log.hpp"
#include "service/protocol.hpp"
#include "service/socket_io.hpp"

namespace lb::service {

namespace {

obs::MetricsRegistry& resolve(obs::MetricsRegistry* registry) {
  return registry != nullptr ? *registry : obs::registry();
}

std::string requestVerb(const Json& request) {
  if (!request.isObject()) return "";
  const Json* verb = request.find("verb");
  return verb != nullptr && verb->isString() ? verb->asString() : "";
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      policy_(options_.backoff_base, options_.backoff_cap,
              options_.retry_seed),
      retries_family_(resolve(options_.registry)
                          .counter("lb_client_retries_total",
                                   "Client retries by reason")) {
  connectSocket(callDeadline());
}

Client::Client(std::uint16_t port, const std::string& host)
    : Client([&] {
        ClientOptions options;
        options.host = host;
        options.port = port;
        return options;
      }()) {}

Client::~Client() { closeSocket(); }

std::optional<std::chrono::steady_clock::time_point> Client::callDeadline()
    const {
  if (options_.deadline.count() <= 0) return std::nullopt;
  return std::chrono::steady_clock::now() + options_.deadline;
}

void Client::closeSocket() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();  // a new connection starts a new framing stream
}

void Client::connectSocket(
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  if (deadline && std::chrono::steady_clock::now() >= *deadline)
    throw DeadlineError("deadline expired before connecting to " +
                        options_.host + ":" + std::to_string(options_.port));
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw TransportError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    closeSocket();
    throw TransportError("bad host address: " + options_.host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    closeSocket();
    throw TransportError("cannot connect to " + options_.host + ":" +
                         std::to_string(options_.port) + ": " +
                         std::strerror(err) + " (is lbd running?)");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

std::string Client::readLine(
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return response;
    }
    switch (net::recvSome(fd_, buffer_, 4096, deadline, options_.fault)) {
      case net::IoStatus::kOk:
        break;
      case net::IoStatus::kTimeout:
        throw DeadlineError("deadline expired before a response arrived");
      case net::IoStatus::kClosed:
        throw TransportError("connection closed before a response arrived");
      default:
        throw TransportError("recv() failed (daemon gone?)");
    }
  }
}

std::string Client::exchangeLine(
    const std::string& line,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  const std::string framed = line + "\n";
  switch (net::sendAll(fd_, framed, deadline, options_.fault)) {
    case net::IoStatus::kOk:
      break;
    case net::IoStatus::kTimeout:
      throw DeadlineError("deadline expired while sending the request");
    default:
      throw TransportError("send() failed (daemon gone?)");
  }
  return readLine(deadline);
}

bool Client::backoff(
    int attempt, const char* reason, std::chrono::milliseconds floor,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  std::chrono::milliseconds delay =
      std::max(policy_.delay(attempt), floor);
  if (deadline) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            *deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return false;  // budget exhausted
    delay = std::min(delay, remaining);
  }
  retries_family_.withLabels({{"reason", reason}}).inc();
  ++retries_;
  obs::log().debug("client.retry",
                   {{"reason", reason},
                    {"attempt", std::int64_t{attempt}},
                    {"delay_ms", static_cast<std::uint64_t>(delay.count())},
                    {"trace", last_trace_}});
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  return true;
}

Json Client::callCore(
    const std::string& verb, const std::string& line,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    const FrameHandler& on_frame) {
  // The registry decides the retry contract: transport-failure resends are
  // allowed only for idempotent verbs — once bytes hit the wire the daemon
  // may have executed the request.  Connect failures happen strictly
  // before that, so any verb may retry those.
  const VerbSpec* spec = findVerb(verb);
  const bool resendable = spec != nullptr && spec->idempotent;
  const bool streaming = spec != nullptr && spec->streaming;
  int attempt = 0;
  for (;;) {
    bool exchanged = false;
    bool streamed = false;  // frames already delivered to the caller
    try {
      if (fd_ < 0) connectSocket(deadline);
      exchanged = true;
      Json response = Json::parse(exchangeLine(line, deadline));
      requireProtocolVersion(response);
      if (streaming && isBatchFrame(response)) {
        // Stream until the terminal summary.  Once a frame reaches the
        // caller the request is never resent — a duplicate stream would
        // double-deliver results — so a mid-stream transport failure
        // surfaces directly.
        while (!isBatchSummaryFrame(response)) {
          if (on_frame) on_frame(response);
          streamed = true;
          response = Json::parse(readLine(deadline));
          requireProtocolVersion(response);
        }
        return response;
      }
      if (isOverloadedResponse(response)) {
        // An explicit shed is always retryable: the daemon rejected the
        // request before executing it.  Honor its retry_after_ms as the
        // backoff floor; when the budget runs out, surface the typed shed
        // document to the caller.
        const auto floor = std::chrono::milliseconds(
            std::min<std::uint64_t>(retryAfterMs(response), 60000));
        if (attempt < options_.max_retries &&
            backoff(attempt, "overloaded", floor, deadline)) {
          ++attempt;
          continue;
        }
        return response;
      }
      // For streaming verbs this is a terminal non-stream document — e.g.
      // an older daemon answering with unknown-verb — returned as-is.
      return response;
    } catch (const DeadlineError&) {
      closeSocket();
      throw;
    } catch (const TransportError&) {
      closeSocket();
      if (!streamed && (!exchanged || resendable) &&
          attempt < options_.max_retries &&
          backoff(attempt, "transport", std::chrono::milliseconds(0),
                  deadline)) {
        ++attempt;
        continue;
      }
      throw;
    } catch (const JsonError&) {
      // A mis-framed response desynchronizes the stream; drop the
      // connection so the next call starts clean, then surface the error.
      closeSocket();
      throw;
    } catch (...) {
      // Anything else (e.g. a protocol-version mismatch) mid-stream leaves
      // unread frames buffered; drop the connection so the next call
      // starts clean.
      if (streamed) closeSocket();
      throw;
    }
  }
}

Json Client::call(const Json& request) {
  // Attach a trace identity unless the caller brought one.  Minted once per
  // logical request: retries resend the identical line, so server-side
  // spans from every attempt share one trace id.
  Json traced = request;
  obs::TraceContext ctx = traceContextFromRequest(traced);
  if (!ctx.valid() && traced.isObject()) {
    ctx.trace_id = obs::mintTraceId();
    ctx.span_id = obs::mintTraceId();
    traced.set("trace", traceContextJson(ctx));
  }
  last_trace_ = ctx;
  return callCore(requestVerb(request), traced.dump(), callDeadline(), {});
}

Client::Response Client::exchange(const Request& request,
                                  const FrameHandler& on_frame) {
  Json wire = Json::object();
  wire.set("verb", Json(request.verb));
  if (request.payload.isObject()) {
    for (const auto& member : request.payload.asObject())
      if (member.first != "verb" && member.first != "trace")
        wire.set(member.first, member.second);
  }
  obs::TraceContext ctx = request.trace;
  if (!ctx.valid()) {
    ctx.trace_id = obs::mintTraceId();
    ctx.span_id = obs::mintTraceId();
  }
  wire.set("trace", traceContextJson(ctx));
  last_trace_ = ctx;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (request.deadline.count() < 0)
    deadline = callDeadline();
  else if (request.deadline.count() > 0)
    deadline = std::chrono::steady_clock::now() + request.deadline;
  Response out;
  out.trace = ctx;
  out.body = callCore(request.verb, wire.dump(), deadline, on_frame);
  const Json* ok = out.body.isObject() ? out.body.find("ok") : nullptr;
  out.ok = ok != nullptr && ok->isBool() && ok->asBool();
  return out;
}

Json Client::run(const Json& scenario) {
  Request request;
  request.verb = "run";
  request.payload.set("scenario", scenario);
  return exchange(request).body;
}

Json Client::sweep(Json scenarios) {
  Request request;
  request.verb = "sweep";
  request.payload.set("scenarios", std::move(scenarios));
  return exchange(request).body;
}

Json Client::batch(Json scenarios, const FrameHandler& on_frame) {
  Request request;
  request.verb = "batch";
  request.payload.set("scenarios", std::move(scenarios));
  return exchange(request, on_frame).body;
}

Json Client::stats() {
  Request request;
  request.verb = "stats";
  return exchange(request).body;
}

Json Client::metrics() {
  Request request;
  request.verb = "metrics";
  return exchange(request).body;
}

Json Client::trace() {
  Request request;
  request.verb = "trace";
  return exchange(request).body;
}

Json Client::health() {
  Request request;
  request.verb = "health";
  return exchange(request).body;
}

Json Client::history(std::uint64_t last,
                     const std::vector<std::string>& metrics) {
  Request request;
  request.verb = "history";
  if (last != 0) request.payload.set("last", Json(last));
  if (!metrics.empty()) {
    Json names = Json::array();
    for (const std::string& name : metrics) names.push(Json(name));
    request.payload.set("metrics", std::move(names));
  }
  return exchange(request).body;
}

Json Client::shutdown() {
  Request request;
  request.verb = "shutdown";
  return exchange(request).body;
}

}  // namespace lb::service
