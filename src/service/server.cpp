#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "service/protocol.hpp"
#include "service/socket_io.hpp"

namespace lb::service {

namespace {

constexpr std::size_t kLatencyReservoir = 4096;
constexpr std::size_t kMaxLineBytes = 4 << 20;  // 4 MiB guards the parser

Json errorResponse(const std::string& message) {
  Json response = Json::object();
  response.set("ok", Json(false)).set("error", Json(message));
  return response;
}

}  // namespace

Json Server::outcomeResponse(const JobOutcome& outcome) {
  if (outcome.status == JobStatus::kShed) {
    shed_counter_.inc();
    return makeOverloadedResponse(outcome.error, outcome.retry_after_ms);
  }
  if (outcome.status != JobStatus::kOk) {
    Json response = errorResponse(outcome.error);
    response.set("timeout", Json(outcome.status == JobStatus::kTimeout));
    return response;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(outcome.hash));
  Json response = Json::object();
  response.set("ok", Json(true))
      .set("hash", Json(std::string(hex)))
      .set("cached", Json(outcome.cache_hit))
      .set("coalesced", Json(outcome.coalesced))
      .set("execute_micros", Json(outcome.execute_micros))
      .set("result", toJson(outcome.result));
  return response;
}

Server::Server(ServerOptions options)
    : options_(options),
      engine_(options.engine),
      requests_family_(engine_.metricsRegistry().counter(
          "lb_server_requests_total", "Requests handled per verb")),
      protocol_errors_counter_(
          engine_.metricsRegistry()
              .counter("lb_server_protocol_errors_total",
                       "Malformed or unknown requests")
              .get()),
      shed_counter_(engine_.metricsRegistry()
                        .counter("lb_server_shed_total",
                                 "Requests answered with an explicit "
                                 "overloaded response")
                        .get()) {
  latency_reservoir_.reserve(kLatencyReservoir);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("bind() failed on 127.0.0.1:" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("listen() failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  serve_thread_ = std::thread([this] { serve(); });
}

void Server::pokeListener() {
  // Unblock accept() by connecting to ourselves; shutdown() on the listen
  // fd is not portable enough to rely on.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::close(fd);
  }
}

void Server::stop() {
  if (!stopping_.exchange(true)) pokeListener();
  if (serve_thread_.joinable() &&
      serve_thread_.get_id() != std::this_thread::get_id())
    serve_thread_.join();
}

void Server::serve() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load()) {
      if (fd >= 0) ::close(fd);
      break;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener broken; shut down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back([this, fd] { handleConnection(fd); });
  }
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (std::thread& thread : connection_threads_)
    if (thread.joinable()) thread.join();
  connection_threads_.clear();
}

void Server::handleConnection(int fd) {
  std::string buffer;
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = handleRequest(line) + "\n";
      // No deadline on the response write (loopback sends are bounded by
      // the kernel buffer), but fault injection and MSG_NOSIGNAL apply: a
      // peer that vanished mid-frame surfaces as kError, never a SIGPIPE.
      if (net::sendAll(fd, response, std::nullopt, options_.fault) !=
          net::IoStatus::kOk) {
        ::close(fd);
        return;
      }
      if (stopping_.load()) break;  // shutdown verb answered on this line
      continue;
    }
    if (buffer.size() > kMaxLineBytes) break;
    // Per-connection idle read deadline: a silent peer is disconnected so
    // it cannot pin this handler thread forever.
    const net::IoDeadline deadline = net::deadlineAfter(options_.read_deadline);
    const net::IoStatus status =
        net::recvSome(fd, buffer, 4096, deadline, options_.fault);
    if (status != net::IoStatus::kOk) break;  // EOF, deadline, or error
  }
  ::close(fd);
}

std::string Server::handleRequest(const std::string& line) {
  const auto started = std::chrono::steady_clock::now();
  ++requests_;
  Json response;
  try {
    const Json request = Json::parse(line);
    const std::string& verb = request.at("verb").asString();
    requests_family_
        .withLabels({{"verb", isProtocolVerb(verb) ? verb : "unknown"}})
        .inc();
    if (verb == "run") {
      const Scenario scenario = scenarioFromJson(request.at("scenario"));
      response = outcomeResponse(engine_.run(scenario));
    } else if (verb == "sweep") {
      std::vector<Scenario> scenarios;
      for (const Json& item : request.at("scenarios").asArray())
        scenarios.push_back(scenarioFromJson(item));
      Json results = Json::array();
      for (const JobOutcome& outcome : engine_.sweep(scenarios))
        results.push(outcomeResponse(outcome));
      response = Json::object();
      response.set("ok", Json(true)).set("results", std::move(results));
    } else if (verb == "stats") {
      response = Json::object();
      response.set("ok", Json(true)).set("stats", statsJson());
    } else if (verb == "metrics") {
      response = Json::object();
      response.set("ok", Json(true))
          .set("metrics", Json(engine_.metricsRegistry().renderPrometheus()));
    } else if (verb == "shutdown") {
      if (!stopping_.exchange(true)) pokeListener();
      response = Json::object();
      response.set("ok", Json(true)).set("stopping", Json(true));
    } else {
      ++protocol_errors_;
      protocol_errors_counter_.inc();
      response = errorResponse("unknown verb \"" + verb + "\"");
      response.set("supported_verbs", protocolVerbsJson());
    }
  } catch (const std::exception& e) {
    ++protocol_errors_;
    protocol_errors_counter_.inc();
    response = errorResponse(e.what());
  }
  stampProtocolVersion(response);
  recordLatency(std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - started)
                    .count());
  return response.dump();
}

void Server::recordLatency(double micros) {
  // Latency resolution is nanoseconds via steady_clock, but clamp away
  // exact zeros so percentile reports are always nonzero for served
  // requests.
  micros = std::max(micros, 1e-3);
  std::lock_guard<std::mutex> lock(latency_mutex_);
  if (latency_reservoir_.size() < kLatencyReservoir) {
    latency_reservoir_.push_back(micros);
  } else {
    latency_reservoir_[latency_next_] = micros;
    latency_next_ = (latency_next_ + 1) % kLatencyReservoir;
  }
  ++latency_count_;
}

namespace {

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

Json Server::statsJson() {
  std::vector<double> latencies;
  std::uint64_t observed = 0;
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    latencies = latency_reservoir_;
    observed = latency_count_;
  }
  const JobEngineStats engine = engine_.stats();
  Json json = Json::object();
  json.set("requests", Json(requests_.load()))
      .set("protocol_errors", Json(protocol_errors_.load()))
      .set("hits", Json(engine.cache.hits))
      .set("disk_hits", Json(engine.cache.disk_hits))
      .set("misses", Json(engine.cache.misses))
      .set("evictions", Json(engine.cache.evictions))
      .set("cache_size", Json(static_cast<std::uint64_t>(engine.cache.size)))
      .set("cache_capacity",
           Json(static_cast<std::uint64_t>(engine.cache.capacity)))
      .set("jobs_submitted", Json(engine.submitted))
      .set("jobs_completed", Json(engine.completed))
      .set("jobs_failed", Json(engine.failed))
      .set("jobs_timed_out", Json(engine.timeouts))
      .set("jobs_coalesced", Json(engine.coalesced))
      .set("jobs_shed", Json(engine.shed))
      .set("corrupt_evictions", Json(engine.cache.corrupt_evictions))
      .set("queue_depth", Json(static_cast<std::uint64_t>(engine.queue_depth)))
      .set("in_flight", Json(static_cast<std::uint64_t>(engine.in_flight)))
      .set("latency_samples", Json(observed))
      .set("p50_us", Json(percentile(latencies, 0.50)))
      .set("p95_us", Json(percentile(std::move(latencies), 0.95)));
  return json;
}

}  // namespace lb::service
