#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "service/protocol.hpp"
#include "service/socket_io.hpp"

namespace lb::service {

namespace {

constexpr std::size_t kLatencyReservoir = 4096;
constexpr std::size_t kMaxLineBytes = 4 << 20;  // 4 MiB guards the parser

Json errorResponse(const std::string& message) {
  Json response = Json::object();
  response.set("ok", Json(false)).set("error", Json(message));
  return response;
}

/// The engine inherits the server's recorder unless one was set explicitly.
JobEngineOptions engineOptions(const ServerOptions& options) {
  JobEngineOptions engine = options.engine;
  if (engine.recorder == nullptr) engine.recorder = options.recorder;
  return engine;
}

double elapsedMicros(std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

}  // namespace

void Server::recordSpan(const obs::TraceContext& trace, std::uint64_t span_id,
                        std::uint64_t parent_id, const char* name,
                        const std::string& note,
                        std::chrono::steady_clock::time_point start,
                        std::chrono::steady_clock::time_point end) {
  obs::FlightRecorder* recorder = options_.recorder;
  if (recorder == nullptr || !recorder->enabled() || !trace.valid()) return;
  obs::FlightRecorder::Span span;
  span.trace_id = trace.trace_id;
  span.span_id = span_id;
  span.parent_id = parent_id;
  span.name = name;
  span.note = note;
  span.ts_us = recorder->toMicros(start);
  span.dur_us = elapsedMicros(start, end);
  span.tid = obs::FlightRecorder::currentTid();
  recorder->record(std::move(span));
}

Json Server::outcomeResponse(const JobOutcome& outcome,
                             const obs::TraceContext& ctx) {
  if (outcome.status == JobStatus::kShed) {
    shed_counter_.inc();
    if (options_.recorder != nullptr)
      options_.recorder->annotateTrace(ctx.trace_id, "server.shed",
                                       outcome.error);
    log_.warn("server.shed",
              {{"error", outcome.error},
               {"retry_after_ms", std::uint64_t{outcome.retry_after_ms}},
               {"trace", ctx}});
    return makeOverloadedResponse(outcome.error, outcome.retry_after_ms);
  }
  if (outcome.status != JobStatus::kOk) {
    if (options_.recorder != nullptr)
      options_.recorder->annotateTrace(ctx.trace_id, "server.job_error",
                                       outcome.error);
    log_.warn("server.job_error",
              {{"error", outcome.error},
               {"timeout", outcome.status == JobStatus::kTimeout},
               {"trace", ctx}});
    Json response = errorResponse(outcome.error);
    response.set("timeout", Json(outcome.status == JobStatus::kTimeout));
    return response;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(outcome.hash));
  Json response = Json::object();
  response.set("ok", Json(true))
      .set("hash", Json(std::string(hex)))
      .set("cached", Json(outcome.cache_hit))
      .set("coalesced", Json(outcome.coalesced))
      .set("execute_micros", Json(outcome.execute_micros))
      .set("result", toJson(outcome.result));
  return response;
}

Server::Server(ServerOptions options)
    : options_(options),
      engine_(engineOptions(options)),
      log_(options.log != nullptr ? *options.log : obs::log()),
      requests_family_(engine_.metricsRegistry().counter(
          "lb_server_requests_total", "Requests handled per verb")),
      protocol_errors_counter_(
          engine_.metricsRegistry()
              .counter("lb_server_protocol_errors_total",
                       "Malformed or unknown requests")
              .get()),
      shed_counter_(engine_.metricsRegistry()
                        .counter("lb_server_shed_total",
                                 "Requests answered with an explicit "
                                 "overloaded response")
                        .get()),
      request_micros_family_(engine_.metricsRegistry().histogram(
          "lb_server_request_micros",
          "Wall-clock service time per request, by verb",
          obs::microsBuckets())),
      stage_read_(engine_.metricsRegistry()
                      .histogram("lb_request_stage_micros",
                                 "Per-stage request latency",
                                 obs::microsBuckets())
                      .withLabels({{"stage", "read"}})),
      stage_parse_(engine_.metricsRegistry()
                       .histogram("lb_request_stage_micros",
                                  "Per-stage request latency",
                                  obs::microsBuckets())
                       .withLabels({{"stage", "parse"}})),
      stage_write_(engine_.metricsRegistry()
                       .histogram("lb_request_stage_micros",
                                  "Per-stage request latency",
                                  obs::microsBuckets())
                       .withLabels({{"stage", "write"}})) {
  latency_reservoir_.reserve(kLatencyReservoir);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("bind() failed on 127.0.0.1:" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("listen() failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  serve_thread_ = std::thread([this] { serve(); });
}

void Server::pokeListener() {
  // Unblock accept() by connecting to ourselves; shutdown() on the listen
  // fd is not portable enough to rely on.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::close(fd);
  }
}

void Server::stop() {
  if (!stopping_.exchange(true)) pokeListener();
  if (serve_thread_.joinable() &&
      serve_thread_.get_id() != std::this_thread::get_id())
    serve_thread_.join();
}

void Server::serve() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load()) {
      if (fd >= 0) ::close(fd);
      break;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener broken; shut down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back([this, fd] { handleConnection(fd); });
  }
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (std::thread& thread : connection_threads_)
    if (thread.joinable()) thread.join();
  connection_threads_.clear();
}

void Server::handleConnection(int fd) {
  log_.debug("server.conn_open", {{"fd", std::int64_t{fd}}});
  std::string buffer;
  // server.read spans cover the wait for each request's bytes: from the
  // moment this handler was ready for a new request until its full line
  // arrived (near-zero for pipelined lines already buffered).
  auto read_started = std::chrono::steady_clock::now();
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const auto read_finished = std::chrono::steady_clock::now();
      stage_read_.observe(elapsedMicros(read_started, read_finished));
      obs::TraceContext root;
      const std::string response = handleRequest(line, &root) + "\n";
      recordSpan(root, obs::mintTraceId(), root.span_id, "server.read", "",
                 read_started, read_finished);
      // No deadline on the response write (loopback sends are bounded by
      // the kernel buffer), but fault injection and MSG_NOSIGNAL apply: a
      // peer that vanished mid-frame surfaces as kError, never a SIGPIPE.
      const auto write_started = std::chrono::steady_clock::now();
      const net::IoStatus write_status =
          net::sendAll(fd, response, std::nullopt, options_.fault);
      const auto write_finished = std::chrono::steady_clock::now();
      stage_write_.observe(elapsedMicros(write_started, write_finished));
      recordSpan(root, obs::mintTraceId(), root.span_id, "server.write",
                 write_status == net::IoStatus::kOk ? "" : "failed",
                 write_started, write_finished);
      if (write_status != net::IoStatus::kOk) {
        log_.debug("server.conn_close",
                   {{"fd", std::int64_t{fd}}, {"reason", "write failed"}});
        ::close(fd);
        return;
      }
      if (stopping_.load()) break;  // shutdown verb answered on this line
      read_started = std::chrono::steady_clock::now();
      continue;
    }
    if (buffer.size() > kMaxLineBytes) break;
    // Per-connection idle read deadline: a silent peer is disconnected so
    // it cannot pin this handler thread forever.
    const net::IoDeadline deadline = net::deadlineAfter(options_.read_deadline);
    const net::IoStatus status =
        net::recvSome(fd, buffer, 4096, deadline, options_.fault);
    if (status != net::IoStatus::kOk) break;  // EOF, deadline, or error
  }
  log_.debug("server.conn_close", {{"fd", std::int64_t{fd}}});
  ::close(fd);
}

std::string Server::handleRequest(const std::string& line,
                                  obs::TraceContext* root_out) {
  const auto started = std::chrono::steady_clock::now();
  ++requests_;
  obs::FlightRecorder* recorder = options_.recorder;
  const bool tracing = recorder != nullptr && recorder->enabled();
  obs::TraceContext client_ctx;  // trace block from the wire, if any
  obs::TraceContext root_ctx;    // this request's server.request span
  std::string verb_label = "unknown";
  Json response;
  try {
    const Json request = Json::parse(line);
    client_ctx = traceContextFromRequest(request);
    root_ctx.trace_id = client_ctx.valid() ? client_ctx.trace_id
                        : tracing         ? obs::mintTraceId()
                                          : 0;
    if (tracing) root_ctx.span_id = obs::mintTraceId();
    const auto parsed = std::chrono::steady_clock::now();
    stage_parse_.observe(elapsedMicros(started, parsed));
    recordSpan(root_ctx, obs::mintTraceId(), root_ctx.span_id, "server.parse",
               "", started, parsed);
    const std::string& verb = request.at("verb").asString();
    if (isProtocolVerb(verb)) verb_label = verb;
    requests_family_.withLabels({{"verb", verb_label}}).inc();
    if (verb == "run") {
      const Scenario scenario = scenarioFromJson(request.at("scenario"));
      response = outcomeResponse(engine_.run(scenario, root_ctx), root_ctx);
    } else if (verb == "sweep") {
      std::vector<Scenario> scenarios;
      for (const Json& item : request.at("scenarios").asArray())
        scenarios.push_back(scenarioFromJson(item));
      Json results = Json::array();
      for (const JobOutcome& outcome : engine_.sweep(scenarios, root_ctx))
        results.push(outcomeResponse(outcome, root_ctx));
      response = Json::object();
      response.set("ok", Json(true)).set("results", std::move(results));
    } else if (verb == "stats") {
      response = Json::object();
      response.set("ok", Json(true)).set("stats", statsJson());
    } else if (verb == "metrics") {
      response = Json::object();
      response.set("ok", Json(true))
          .set("metrics", Json(engine_.metricsRegistry().renderPrometheus()));
    } else if (verb == "trace") {
      response = Json::object();
      if (recorder == nullptr) {
        response.set("ok", Json(false))
            .set("error",
                 Json("flight recorder is disabled (start lbd with "
                      "--flight-recorder N)"));
      } else {
        std::ostringstream dump;
        recorder->writeChromeTrace(dump);
        response.set("ok", Json(true))
            .set("spans",
                 Json(static_cast<std::uint64_t>(recorder->spanCount())))
            .set("events",
                 Json(static_cast<std::uint64_t>(recorder->eventCount())))
            .set("dropped", Json(recorder->droppedSpans() +
                                 recorder->droppedEvents()))
            .set("chrome_trace", Json(dump.str()));
      }
    } else if (verb == "shutdown") {
      if (!stopping_.exchange(true)) pokeListener();
      log_.debug("server.shutdown", {{"trace", root_ctx}});
      response = Json::object();
      response.set("ok", Json(true)).set("stopping", Json(true));
    } else {
      ++protocol_errors_;
      protocol_errors_counter_.inc();
      if (recorder != nullptr)
        recorder->annotateTrace(root_ctx.trace_id, "server.protocol_error",
                                "unknown verb \"" + verb + "\"");
      log_.warn("server.protocol_error",
                {{"error", "unknown verb \"" + verb + "\""},
                 {"trace", root_ctx}});
      response = errorResponse("unknown verb \"" + verb + "\"");
      response.set("supported_verbs", protocolVerbsJson());
    }
  } catch (const std::exception& e) {
    ++protocol_errors_;
    protocol_errors_counter_.inc();
    // A request that failed before minting ids (parse error) still gets a
    // root span, keeping lb_server_request_micros observations and
    // server.request spans 1:1 whenever tracing is on.
    if (tracing && !root_ctx.valid()) {
      root_ctx.trace_id =
          client_ctx.valid() ? client_ctx.trace_id : obs::mintTraceId();
      root_ctx.span_id = obs::mintTraceId();
    }
    if (recorder != nullptr)
      recorder->annotateTrace(root_ctx.trace_id, "server.protocol_error",
                              e.what());
    log_.warn("server.protocol_error",
              {{"error", e.what()}, {"trace", root_ctx}});
    response = errorResponse(e.what());
  }
  stampProtocolVersion(response);
  // Echo the trace identity when the client asked for (sent) one or the
  // recorder minted one; requests with neither keep byte-identical
  // responses (the goldens in fuzz_codec_test pin them).
  if (client_ctx.valid() || tracing) stampTraceContext(response, root_ctx);
  const auto finished = std::chrono::steady_clock::now();
  const double total_micros = elapsedMicros(started, finished);
  request_micros_family_.withLabels({{"verb", verb_label}})
      .observe(total_micros);
  recordLatency(total_micros);
  recordSpan(root_ctx, root_ctx.span_id, client_ctx.span_id, "server.request",
             verb_label, started, finished);
  if (root_out != nullptr) *root_out = root_ctx;
  return response.dump();
}

void Server::recordLatency(double micros) {
  // Latency resolution is nanoseconds via steady_clock, but clamp away
  // exact zeros so percentile reports are always nonzero for served
  // requests.
  micros = std::max(micros, 1e-3);
  std::lock_guard<std::mutex> lock(latency_mutex_);
  if (latency_reservoir_.size() < kLatencyReservoir) {
    latency_reservoir_.push_back(micros);
  } else {
    latency_reservoir_[latency_next_] = micros;
    latency_next_ = (latency_next_ + 1) % kLatencyReservoir;
  }
  ++latency_count_;
}

namespace {

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

Json Server::statsJson() {
  std::vector<double> latencies;
  std::uint64_t observed = 0;
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    latencies = latency_reservoir_;
    observed = latency_count_;
  }
  const JobEngineStats engine = engine_.stats();
  Json json = Json::object();
  json.set("requests", Json(requests_.load()))
      .set("protocol_errors", Json(protocol_errors_.load()))
      .set("hits", Json(engine.cache.hits))
      .set("disk_hits", Json(engine.cache.disk_hits))
      .set("misses", Json(engine.cache.misses))
      .set("evictions", Json(engine.cache.evictions))
      .set("cache_size", Json(static_cast<std::uint64_t>(engine.cache.size)))
      .set("cache_capacity",
           Json(static_cast<std::uint64_t>(engine.cache.capacity)))
      .set("jobs_submitted", Json(engine.submitted))
      .set("jobs_completed", Json(engine.completed))
      .set("jobs_failed", Json(engine.failed))
      .set("jobs_timed_out", Json(engine.timeouts))
      .set("jobs_coalesced", Json(engine.coalesced))
      .set("jobs_shed", Json(engine.shed))
      .set("corrupt_evictions", Json(engine.cache.corrupt_evictions))
      .set("queue_depth", Json(static_cast<std::uint64_t>(engine.queue_depth)))
      .set("in_flight", Json(static_cast<std::uint64_t>(engine.in_flight)))
      .set("latency_samples", Json(observed))
      .set("p50_us", Json(percentile(latencies, 0.50)))
      .set("p95_us", Json(percentile(std::move(latencies), 0.95)));
  return json;
}

}  // namespace lb::service
