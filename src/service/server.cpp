#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "obs/quantile.hpp"
#include "service/protocol.hpp"
#include "service/socket_io.hpp"

namespace lb::service {

namespace {

constexpr std::size_t kLatencyReservoir = 4096;
constexpr std::size_t kMaxLineBytes = 4 << 20;  // 4 MiB guards the parser
/// Requests one connection may have in flight before the loop stops
/// reading from it (pipelining backpressure; responses drain the window).
constexpr std::size_t kMaxPipeline = 1024;
/// Unflushed response bytes that pause reads from a connection (a slow
/// reader cannot make the server buffer an unbounded batch stream).
constexpr std::size_t kMaxWriteBuffer = 16 << 20;
/// Bytes one connection may receive per loop visit (fairness: a firehose
/// peer cannot starve the other connections; poll() re-arms it).
constexpr std::size_t kReadBudget = 256 << 10;

Json errorResponse(const std::string& message) {
  Json response = Json::object();
  response.set("ok", Json(false)).set("error", Json(message));
  return response;
}

/// The engine inherits the server's recorder unless one was set explicitly.
JobEngineOptions engineOptions(const ServerOptions& options) {
  JobEngineOptions engine = options.engine;
  if (engine.recorder == nullptr) engine.recorder = options.recorder;
  return engine;
}

double elapsedMicros(std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

/// Raises `watermark` to at least `value` and mirrors it into `gauge`.
void bumpWatermark(std::atomic<std::int64_t>& watermark, obs::Gauge& gauge,
                   std::int64_t value) {
  std::int64_t seen = watermark.load(std::memory_order_relaxed);
  while (value > seen && !watermark.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  gauge.set(watermark.load(std::memory_order_relaxed));
}

}  // namespace

// ---------------------------------------------------------------------------
// Streaming batch bookkeeping
// ---------------------------------------------------------------------------

/// Shared between the dispatch thread that admits a `batch` request, the
/// engine workers finishing its jobs, and the loop-side timeout handler.
/// `mutex` orders them; completions are posted while holding it so frame
/// `seq` numbers hit the wire monotonically.
struct Server::BatchState {
  std::mutex mutex;
  RequestCtx ctx;
  std::vector<Scenario> scenarios;
  /// Content hashes for the dedup hold (has_hash false when normalization
  /// failed — those items are submitted anyway and fail in-engine, exactly
  /// like a sequential run of the same scenario).
  std::vector<std::uint64_t> hashes;
  std::vector<char> has_hash;
  std::vector<char> item_done;
  /// Indices not yet handed to the engine, in request order.  Items whose
  /// hash twin is in flight are skipped (held) until the twin finishes, so
  /// an intra-batch duplicate becomes a cache hit — bit-identical to N
  /// sequential runs — instead of a coalesced wait.
  std::deque<std::size_t> pending;
  std::unordered_set<std::uint64_t> inflight;  ///< this batch's hashes in engine
  std::size_t in_window = 0;  ///< jobs currently submitted to the engine
  std::size_t window = 1;     ///< fair-share cap on in_window
  std::size_t remaining = 0;  ///< items without a stream frame yet
  std::uint64_t seq = 0;      ///< next stream-frame sequence number
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  bool finished = false;  ///< summary posted (or the deadline fired)
  // pumpBatch re-entrancy: submitAsync may invoke its callback inline
  // (cache hit), which calls back into pumpBatch; the nested call just
  // marks `dirty` and the outer iteration picks the work up — bounded
  // stack depth even for an all-cached batch of thousands.
  bool pumping = false;
  bool dirty = false;
};

void Server::recordSpan(const obs::TraceContext& trace, std::uint64_t span_id,
                        std::uint64_t parent_id, const char* name,
                        const std::string& note,
                        std::chrono::steady_clock::time_point start,
                        std::chrono::steady_clock::time_point end) {
  obs::FlightRecorder* recorder = options_.recorder;
  if (recorder == nullptr || !recorder->enabled() || !trace.valid()) return;
  obs::FlightRecorder::Span span;
  span.trace_id = trace.trace_id;
  span.span_id = span_id;
  span.parent_id = parent_id;
  span.name = name;
  span.note = note;
  span.ts_us = recorder->toMicros(start);
  span.dur_us = elapsedMicros(start, end);
  span.tid = obs::FlightRecorder::currentTid();
  recorder->record(std::move(span));
}

Json Server::outcomeResponse(const JobOutcome& outcome,
                             const obs::TraceContext& ctx) {
  if (outcome.status == JobStatus::kShed) {
    shed_counter_.inc();
    if (options_.recorder != nullptr)
      options_.recorder->annotateTrace(ctx.trace_id, "server.shed",
                                       outcome.error);
    log_.warn("server.shed",
              {{"error", outcome.error},
               {"retry_after_ms", std::uint64_t{outcome.retry_after_ms}},
               {"trace", ctx}});
    return makeOverloadedResponse(outcome.error, outcome.retry_after_ms);
  }
  if (outcome.status != JobStatus::kOk) {
    if (options_.recorder != nullptr)
      options_.recorder->annotateTrace(ctx.trace_id, "server.job_error",
                                       outcome.error);
    log_.warn("server.job_error",
              {{"error", outcome.error},
               {"timeout", outcome.status == JobStatus::kTimeout},
               {"trace", ctx}});
    Json response = errorResponse(outcome.error);
    response.set("timeout", Json(outcome.status == JobStatus::kTimeout));
    return response;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(outcome.hash));
  Json response = Json::object();
  response.set("ok", Json(true))
      .set("hash", Json(std::string(hex)))
      .set("cached", Json(outcome.cache_hit))
      .set("coalesced", Json(outcome.coalesced))
      .set("execute_micros", Json(outcome.execute_micros))
      .set("result", toJson(outcome.result));
  return response;
}

Server::Server(ServerOptions options)
    : options_(options),
      log_(options.log != nullptr ? *options.log : obs::log()),
      engine_(engineOptions(options)),
      requests_family_(engine_.metricsRegistry().counter(
          "lb_server_requests_total", "Requests handled per verb")),
      protocol_errors_counter_(
          engine_.metricsRegistry()
              .counter("lb_server_protocol_errors_total",
                       "Malformed or unknown requests")
              .get()),
      shed_counter_(engine_.metricsRegistry()
                        .counter("lb_server_shed_total",
                                 "Requests answered with an explicit "
                                 "overloaded response")
                        .get()),
      request_micros_family_(engine_.metricsRegistry().histogram(
          "lb_server_request_micros",
          "Wall-clock service time per request, by verb",
          obs::microsBuckets())),
      stage_read_(engine_.metricsRegistry()
                      .histogram("lb_request_stage_micros",
                                 "Per-stage request latency",
                                 obs::microsBuckets())
                      .withLabels({{"stage", "read"}})),
      stage_parse_(engine_.metricsRegistry()
                       .histogram("lb_request_stage_micros",
                                  "Per-stage request latency",
                                  obs::microsBuckets())
                       .withLabels({{"stage", "parse"}})),
      stage_write_(engine_.metricsRegistry()
                       .histogram("lb_request_stage_micros",
                                  "Per-stage request latency",
                                  obs::microsBuckets())
                       .withLabels({{"stage", "write"}})),
      loop_iteration_micros_(
          engine_.metricsRegistry()
              .histogram("lb_loop_iteration_micros",
                         "Event-loop time spent outside poll() per "
                         "iteration",
                         obs::microsBuckets())
              .get()),
      wakeup_to_dispatch_micros_(
          engine_.metricsRegistry()
              .histogram("lb_loop_wakeup_to_dispatch_micros",
                         "Delay between the loop posting a parsed line and "
                         "a dispatch thread picking it up",
                         obs::microsBuckets())
              .get()),
      dispatch_depth_gauge_(engine_.metricsRegistry()
                                .gauge("lb_loop_dispatch_queue_depth",
                                       "Requests posted to the dispatch "
                                       "pool, not yet picked up")
                                .get()),
      dispatch_depth_max_gauge_(
          engine_.metricsRegistry()
              .gauge("lb_loop_dispatch_queue_depth_max",
                     "High watermark of lb_loop_dispatch_queue_depth")
              .get()),
      completion_depth_gauge_(engine_.metricsRegistry()
                                  .gauge("lb_loop_completion_queue_depth",
                                         "Completions awaiting the loop "
                                         "thread")
                                  .get()),
      completion_depth_max_gauge_(
          engine_.metricsRegistry()
              .gauge("lb_loop_completion_queue_depth_max",
                     "High watermark of lb_loop_completion_queue_depth")
              .get()),
      connections_gauge_(engine_.metricsRegistry()
                             .gauge("lb_loop_connections",
                                    "Open event-loop connections")
                             .get()),
      loop_stalls_counter_(
          engine_.metricsRegistry()
              .counter("lb_loop_stalls_total",
                       "Event-loop iterations that exceeded the stall "
                       "threshold outside poll()")
              .get()),
      slow_requests_family_(engine_.metricsRegistry().counter(
          "lb_server_slow_requests_total",
          "Requests slower than their verb's exemplar threshold")) {
  // Every wire verb must have a server binding (and nothing beyond the
  // registry): the registry is the single source of truth, so a missing
  // handler is a programming error caught at the first construction.
  const auto& bindings = verbBindings();
  for (const VerbSpec& spec : verbRegistry())
    if (bindings.find(spec.name) == bindings.end())
      throw std::logic_error("no server handler bound for verb \"" +
                             spec.name + "\"");
  if (bindings.size() != verbRegistry().size())
    throw std::logic_error("server binds a verb the registry does not list");

  latency_reservoir_.reserve(kLatencyReservoir);

  if (options_.history_interval.count() > 0) {
    obs::TimeSeriesRing::Options ring;
    ring.interval = options_.history_interval;
    ring.capacity = options_.history_capacity;
    history_ = std::make_unique<obs::TimeSeriesRing>(engine_.metricsRegistry(),
                                                     ring);
    history_->start();
  }

  int wake[2];
  if (::pipe(wake) != 0) throw std::runtime_error("pipe() failed");
  wake_read_fd_ = wake[0];
  wake_write_fd_ = wake[1];
  net::setNonblocking(wake_read_fd_);
  net::setNonblocking(wake_write_fd_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("bind() failed on 127.0.0.1:" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 256) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("listen() failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

Server::~Server() {
  stop();
  {
    // Engine workers may still invoke async completions while engine_ is
    // being destroyed; they post under this mutex and skip the wake write
    // once the fds are gone.
    std::lock_guard<std::mutex> lock(completions_mutex_);
    if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
    if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
    wake_read_fd_ = -1;
    wake_write_fd_ = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  serve_thread_ = std::thread([this] { serve(); });
}

void Server::pokeListener() {
  // Unblock accept() by connecting to ourselves; shutdown() on the listen
  // fd is not portable enough to rely on.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::close(fd);
  }
}

void Server::wakeLoop() {
  std::lock_guard<std::mutex> lock(completions_mutex_);
  if (wake_write_fd_ >= 0) {
    const char byte = 'w';
    // A full pipe means a wakeup is already pending — EAGAIN is success.
    (void)!::write(wake_write_fd_, &byte, 1);
  }
}

void Server::postCompletion(Completion completion) {
  std::int64_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(std::move(completion));
    depth = static_cast<std::int64_t>(completions_.size());
    if (wake_write_fd_ >= 0) {
      const char byte = 'w';
      (void)!::write(wake_write_fd_, &byte, 1);
    }
  }
  completion_depth_gauge_.set(depth);
  bumpWatermark(completion_depth_max_, completion_depth_max_gauge_, depth);
}

void Server::stop() {
  if (!stopping_.exchange(true)) {
    if (options_.thread_per_connection)
      pokeListener();
    else
      wakeLoop();
  }
  if (serve_thread_.joinable() &&
      serve_thread_.get_id() != std::this_thread::get_id())
    serve_thread_.join();
}

void Server::serve() {
  if (options_.thread_per_connection)
    serveThreaded();
  else
    serveEventLoop();
}

// ---------------------------------------------------------------------------
// Verb dispatch (shared by both connection models)
// ---------------------------------------------------------------------------

const std::unordered_map<std::string, Server::VerbBinding>&
Server::verbBindings() {
  static const std::unordered_map<std::string, VerbBinding> bindings = {
      {"run", {&Server::verbRun, &Server::asyncRun}},
      {"sweep", {&Server::verbSweep, &Server::asyncSweep}},
      {"batch", {&Server::verbBatch, &Server::asyncBatch}},
      {"stats", {&Server::verbStats, nullptr}},
      {"metrics", {&Server::verbMetrics, nullptr}},
      {"trace", {&Server::verbTrace, nullptr}},
      {"health", {&Server::verbHealth, nullptr}},
      {"history", {&Server::verbHistory, nullptr}},
      {"shutdown", {&Server::verbShutdown, nullptr}},
  };
  return bindings;
}

Json Server::unknownVerbResponse(const std::string& verb,
                                 const obs::TraceContext& root) {
  ++protocol_errors_;
  protocol_errors_counter_.inc();
  if (options_.recorder != nullptr)
    options_.recorder->annotateTrace(root.trace_id, "server.protocol_error",
                                     "unknown verb \"" + verb + "\"");
  log_.warn("server.protocol_error",
            {{"error", "unknown verb \"" + verb + "\""}, {"trace", root}});
  Json response = errorResponse("unknown verb \"" + verb + "\"");
  response.set("supported_verbs", protocolVerbsJson());
  return response;
}

void Server::verbRun(const Json& request, RequestCtx& ctx,
                     std::vector<Json>& out) {
  const Scenario scenario = scenarioFromJson(request.at("scenario"));
  out.push_back(outcomeResponse(engine_.run(scenario, ctx.root_ctx),
                                ctx.root_ctx));
}

void Server::verbSweep(const Json& request, RequestCtx& ctx,
                       std::vector<Json>& out) {
  std::vector<Scenario> scenarios;
  for (const Json& item : request.at("scenarios").asArray())
    scenarios.push_back(scenarioFromJson(item));
  Json results = Json::array();
  for (const JobOutcome& outcome : engine_.sweep(scenarios, ctx.root_ctx))
    results.push(outcomeResponse(outcome, ctx.root_ctx));
  Json response = Json::object();
  response.set("ok", Json(true)).set("results", std::move(results));
  out.push_back(std::move(response));
}

void Server::verbBatch(const Json& request, RequestCtx& ctx,
                       std::vector<Json>& out) {
  // Synchronous batch (handleRequest / legacy connections): sequential
  // runs, so completion order equals request order and seq == index.  The
  // event loop uses asyncBatch instead, which interleaves jobs but streams
  // per-result frames carrying the same members.
  std::vector<Scenario> scenarios;
  for (const Json& item : request.at("scenarios").asArray())
    scenarios.push_back(scenarioFromJson(item));
  if (scenarios.size() > options_.max_batch)
    throw std::runtime_error(
        "batch of " + std::to_string(scenarios.size()) +
        " scenarios exceeds the server limit of " +
        std::to_string(options_.max_batch));
  const std::uint64_t n = scenarios.size();
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const JobOutcome outcome = engine_.run(scenarios[i], ctx.root_ctx);
    outcome.status == JobStatus::kOk ? ++completed : ++errors;
    Json frame = outcomeResponse(outcome, ctx.root_ctx);
    frame.set("batch", makeBatchFrameHeader(i, i, n));
    out.push_back(std::move(frame));
  }
  Json summary = Json::object();
  summary.set("ok", Json(true))
      .set("batch", makeBatchSummaryHeader(n, completed, errors));
  out.push_back(std::move(summary));
}

void Server::verbStats(const Json&, RequestCtx&, std::vector<Json>& out) {
  Json response = Json::object();
  response.set("ok", Json(true)).set("stats", statsJson());
  out.push_back(std::move(response));
}

void Server::verbMetrics(const Json&, RequestCtx&, std::vector<Json>& out) {
  Json response = Json::object();
  response.set("ok", Json(true))
      .set("metrics", Json(engine_.metricsRegistry().renderPrometheus()));
  out.push_back(std::move(response));
}

void Server::verbTrace(const Json&, RequestCtx&, std::vector<Json>& out) {
  obs::FlightRecorder* recorder = options_.recorder;
  Json response = Json::object();
  if (recorder == nullptr) {
    response.set("ok", Json(false))
        .set("error",
             Json("flight recorder is disabled (start lbd with "
                  "--flight-recorder N)"));
  } else {
    std::ostringstream dump;
    recorder->writeChromeTrace(dump);
    response.set("ok", Json(true))
        .set("spans", Json(static_cast<std::uint64_t>(recorder->spanCount())))
        .set("events",
             Json(static_cast<std::uint64_t>(recorder->eventCount())))
        .set("dropped",
             Json(recorder->droppedSpans() + recorder->droppedEvents()))
        .set("chrome_trace", Json(dump.str()));
  }
  out.push_back(std::move(response));
}

void Server::verbHealth(const Json&, RequestCtx&, std::vector<Json>& out) {
  const auto now = std::chrono::steady_clock::now();
  Json health = Json::object();
  health.set("mode", Json(options_.thread_per_connection
                              ? std::string("thread-per-connection")
                              : std::string("event-loop")));
  health.set("uptime_ms",
             Json(static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::milliseconds>(
                     now - started_at_)
                     .count())));

  Json loop = Json::object();
  loop.set("iterations", Json(loop_iteration_micros_.count()))
      .set("stalls", Json(loop_stalls_counter_.value()))
      .set("iteration_p50_us",
           Json(obs::histogramQuantile(loop_iteration_micros_, 0.50)))
      .set("iteration_p99_us",
           Json(obs::histogramQuantile(loop_iteration_micros_, 0.99)))
      .set("wakeup_to_dispatch_p99_us",
           Json(obs::histogramQuantile(wakeup_to_dispatch_micros_, 0.99)))
      .set("dispatch_queue_depth", Json(dispatch_depth_gauge_.value()))
      .set("dispatch_queue_depth_max", Json(dispatch_depth_max_gauge_.value()))
      .set("completion_queue_depth", Json(completion_depth_gauge_.value()))
      .set("completion_queue_depth_max",
           Json(completion_depth_max_gauge_.value()));
  health.set("loop", std::move(loop));

  // Aggregate the per-verb service-time histograms into one distribution:
  // every child shares microsBuckets(), so the bucket vectors add.
  const std::vector<double> bounds = obs::microsBuckets();
  std::vector<std::uint64_t> counts(bounds.size() + 1, 0);
  std::uint64_t total_requests = 0;
  for (const auto& [labels, histogram] : request_micros_family_.children()) {
    for (std::size_t i = 0; i <= bounds.size(); ++i)
      counts[i] += histogram->bucketCount(i);
    total_requests += histogram->count();
  }
  std::uint64_t slow = 0;
  for (const auto& [labels, counter] : slow_requests_family_.children())
    slow += counter->value();
  Json requests = Json::object();
  requests.set("total", Json(total_requests))
      .set("protocol_errors", Json(protocol_errors_.load()))
      .set("slow", Json(slow))
      .set("p50_us", Json(obs::histogramQuantile(bounds, counts, 0.50)))
      .set("p95_us", Json(obs::histogramQuantile(bounds, counts, 0.95)))
      .set("p99_us", Json(obs::histogramQuantile(bounds, counts, 0.99)));
  health.set("requests", std::move(requests));

  // The raw aggregated buckets, so clients (lbtop) can compute any
  // quantile with the same shared estimator instead of new wire fields.
  Json histogram_json = Json::object();
  Json bounds_json = Json::array();
  for (const double bound : bounds) bounds_json.push(Json(bound));
  Json counts_json = Json::array();
  for (const std::uint64_t count : counts) counts_json.push(Json(count));
  histogram_json.set("bounds", std::move(bounds_json))
      .set("counts", std::move(counts_json));
  health.set("latency_histogram", std::move(histogram_json));

  const JobEngineStats engine = engine_.stats();
  Json engine_json = Json::object();
  engine_json
      .set("queue_depth", Json(static_cast<std::uint64_t>(engine.queue_depth)))
      .set("in_flight", Json(static_cast<std::uint64_t>(engine.in_flight)))
      .set("jobs_completed", Json(engine.completed))
      .set("jobs_shed", Json(engine.shed))
      .set("cache_hits", Json(engine.cache.hits))
      .set("cache_misses", Json(engine.cache.misses));
  health.set("engine", std::move(engine_json));

  health.set("connections", connectionsJson());

  Json response = Json::object();
  response.set("ok", Json(true)).set("health", std::move(health));
  out.push_back(std::move(response));
}

Json Server::connectionsJson() {
  std::lock_guard<std::mutex> lock(introspect_mutex_);
  Json connections = Json::array();
  for (const ConnSnapshot& conn : conn_table_) {
    Json row = Json::object();
    row.set("id", Json(conn.id))
        .set("in_flight", Json(conn.in_flight))
        .set("read_buffered", Json(conn.read_buffered))
        .set("write_buffered", Json(conn.write_buffered))
        .set("age_ms", Json(conn.age_ms));
    const auto verb_it = conn_last_verb_.find(conn.id);
    if (verb_it != conn_last_verb_.end())
      row.set("last_verb", Json(verb_it->second));
    if (conn.oldest_slot != 0) {
      const auto trace_it =
          inflight_traces_.find({conn.id, conn.oldest_slot});
      if (trace_it != inflight_traces_.end() && trace_it->second != 0)
        row.set("oldest_trace", Json(obs::traceIdHex(trace_it->second)));
    }
    connections.push(std::move(row));
  }
  return connections;
}

void Server::verbHistory(const Json& request, RequestCtx&,
                         std::vector<Json>& out) {
  Json response = Json::object();
  if (history_ == nullptr) {
    response.set("ok", Json(false))
        .set("error", Json("history is disabled (start lbd with "
                           "--history-interval-ms N)"));
    out.push_back(std::move(response));
    return;
  }
  std::size_t last = 0;
  if (const Json* n = request.find("last"))
    last = static_cast<std::size_t>(n->asUint64());
  std::vector<std::string> filter;
  if (const Json* names = request.find("metrics"))
    for (const Json& name : names->asArray())
      filter.push_back(name.asString());

  const std::vector<obs::TimeSeriesRing::Snapshot> samples =
      history_->history(last);

  Json samples_json = Json::array();
  for (const obs::TimeSeriesRing::Snapshot& sample : samples) {
    Json sample_json = Json::object();
    sample_json.set("seq", Json(sample.seq)).set("at_ms", Json(sample.at_ms));
    Json points = Json::array();
    for (const obs::TimeSeriesRing::Point& point : sample.points) {
      if (!filter.empty() &&
          std::find(filter.begin(), filter.end(), point.name) == filter.end())
        continue;
      Json point_json = Json::object();
      point_json.set("name", Json(point.name));
      if (!point.labels.empty()) point_json.set("labels", Json(point.labels));
      point_json.set("value", Json(point.value));
      if (point.monotone) point_json.set("delta", Json(point.delta));
      points.push(std::move(point_json));
    }
    sample_json.set("points", std::move(points));
    samples_json.push(std::move(sample_json));
  }

  Json history = Json::object();
  history
      .set("interval_ms", Json(static_cast<std::uint64_t>(
                              history_->options().interval.count())))
      .set("capacity",
           Json(static_cast<std::uint64_t>(history_->options().capacity)))
      .set("samples", std::move(samples_json));
  response.set("ok", Json(true)).set("history", std::move(history));
  out.push_back(std::move(response));
}

void Server::verbShutdown(const Json&, RequestCtx& ctx,
                          std::vector<Json>& out) {
  if (!stopping_.exchange(true)) {
    if (options_.thread_per_connection)
      pokeListener();
    else
      wakeLoop();
  }
  log_.debug("server.shutdown", {{"trace", ctx.root_ctx}});
  Json response = Json::object();
  response.set("ok", Json(true)).set("stopping", Json(true));
  out.push_back(std::move(response));
}

std::string Server::handleRequest(const std::string& line,
                                  obs::TraceContext* root_out) {
  const auto started = std::chrono::steady_clock::now();
  ++requests_;
  obs::FlightRecorder* recorder = options_.recorder;
  const bool tracing = recorder != nullptr && recorder->enabled();
  RequestCtx ctx;
  ctx.tracing = tracing;
  ctx.started = started;
  std::vector<Json> frames;
  try {
    const Json request = Json::parse(line);
    ctx.client_ctx = traceContextFromRequest(request);
    ctx.root_ctx.trace_id = ctx.client_ctx.valid() ? ctx.client_ctx.trace_id
                            : tracing              ? obs::mintTraceId()
                                                   : 0;
    if (tracing) ctx.root_ctx.span_id = obs::mintTraceId();
    const auto parsed = std::chrono::steady_clock::now();
    stage_parse_.observe(elapsedMicros(started, parsed));
    recordSpan(ctx.root_ctx, obs::mintTraceId(), ctx.root_ctx.span_id,
               "server.parse", "", started, parsed);
    const std::string& verb = request.at("verb").asString();
    const auto& bindings = verbBindings();
    const auto binding = bindings.find(verb);
    if (binding != bindings.end()) ctx.verb_label = verb;
    requests_family_.withLabels({{"verb", ctx.verb_label}}).inc();
    if (binding != bindings.end()) {
      (this->*(binding->second.sync))(request, ctx, frames);
    } else {
      frames.push_back(unknownVerbResponse(verb, ctx.root_ctx));
    }
  } catch (const std::exception& e) {
    ++protocol_errors_;
    protocol_errors_counter_.inc();
    // A request that failed before minting ids (parse error) still gets a
    // root span, keeping lb_server_request_micros observations and
    // server.request spans 1:1 whenever tracing is on.
    if (tracing && !ctx.root_ctx.valid()) {
      ctx.root_ctx.trace_id =
          ctx.client_ctx.valid() ? ctx.client_ctx.trace_id : obs::mintTraceId();
      ctx.root_ctx.span_id = obs::mintTraceId();
    }
    if (recorder != nullptr)
      options_.recorder->annotateTrace(ctx.root_ctx.trace_id,
                                       "server.protocol_error", e.what());
    log_.warn("server.protocol_error",
              {{"error", e.what()}, {"trace", ctx.root_ctx}});
    frames.clear();
    frames.push_back(errorResponse(e.what()));
  }
  std::string wire;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    stampProtocolVersion(frames[i]);
    // Echo the trace identity when the client sent one or the recorder
    // minted one; requests with neither keep byte-identical responses (the
    // goldens in fuzz_codec_test pin them).
    if (ctx.client_ctx.valid() || ctx.tracing)
      stampTraceContext(frames[i], ctx.root_ctx);
    if (i != 0) wire += '\n';
    wire += frames[i].dump();
  }
  const auto finished = std::chrono::steady_clock::now();
  const double total_micros = elapsedMicros(started, finished);
  request_micros_family_.withLabels({{"verb", ctx.verb_label}})
      .observe(total_micros);
  recordLatency(total_micros);
  noteSlowRequest(ctx.verb_label, total_micros, ctx.root_ctx);
  recordSpan(ctx.root_ctx, ctx.root_ctx.span_id, ctx.client_ctx.span_id,
             "server.request", ctx.verb_label, started, finished);
  if (root_out != nullptr) *root_out = ctx.root_ctx;
  return wire;
}

// ---------------------------------------------------------------------------
// Legacy thread-per-connection path
// ---------------------------------------------------------------------------

void Server::serveThreaded() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load()) {
      if (fd >= 0) ::close(fd);
      break;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener broken; shut down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back([this, fd] { handleConnection(fd); });
  }
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (std::thread& thread : connection_threads_)
    if (thread.joinable()) thread.join();
  connection_threads_.clear();
}

void Server::handleConnection(int fd) {
  log_.debug("server.conn_open", {{"fd", std::int64_t{fd}}});
  std::string buffer;
  // server.read spans cover the wait for each request's bytes: from the
  // moment this handler was ready for a new request until its full line
  // arrived (near-zero for pipelined lines already buffered).
  auto read_started = std::chrono::steady_clock::now();
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const auto read_finished = std::chrono::steady_clock::now();
      stage_read_.observe(elapsedMicros(read_started, read_finished));
      obs::TraceContext root;
      const std::string response = handleRequest(line, &root) + "\n";
      recordSpan(root, obs::mintTraceId(), root.span_id, "server.read", "",
                 read_started, read_finished);
      // No deadline on the response write (loopback sends are bounded by
      // the kernel buffer), but fault injection and MSG_NOSIGNAL apply: a
      // peer that vanished mid-frame surfaces as kError, never a SIGPIPE.
      const auto write_started = std::chrono::steady_clock::now();
      const net::IoStatus write_status =
          net::sendAll(fd, response, std::nullopt, options_.fault);
      const auto write_finished = std::chrono::steady_clock::now();
      stage_write_.observe(elapsedMicros(write_started, write_finished));
      recordSpan(root, obs::mintTraceId(), root.span_id, "server.write",
                 write_status == net::IoStatus::kOk ? "" : "failed",
                 write_started, write_finished);
      if (write_status != net::IoStatus::kOk) {
        log_.debug("server.conn_close",
                   {{"fd", std::int64_t{fd}}, {"reason", "write failed"}});
        ::close(fd);
        return;
      }
      if (stopping_.load()) break;  // shutdown verb answered on this line
      read_started = std::chrono::steady_clock::now();
      continue;
    }
    if (buffer.size() > kMaxLineBytes) break;
    // Per-connection idle read deadline: a silent peer is disconnected so
    // it cannot pin this handler thread forever.
    const net::IoDeadline deadline = net::deadlineAfter(options_.read_deadline);
    const net::IoStatus status =
        net::recvSome(fd, buffer, 4096, deadline, options_.fault);
    if (status != net::IoStatus::kOk) break;  // EOF, deadline, or error
  }
  log_.debug("server.conn_close", {{"fd", std::int64_t{fd}}});
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Event-loop path: dispatch side
// ---------------------------------------------------------------------------

std::string Server::wireFrame(Json response, const RequestCtx& ctx) {
  stampProtocolVersion(response);
  if (ctx.client_ctx.valid() || ctx.tracing)
    stampTraceContext(response, ctx.root_ctx);
  return response.dump() + "\n";
}

Server::Finish Server::makeFinish(const RequestCtx& ctx) const {
  Finish finish;
  finish.valid = true;
  finish.verb_label = ctx.verb_label;
  finish.client_ctx = ctx.client_ctx;
  finish.root_ctx = ctx.root_ctx;
  finish.started = ctx.started;
  return finish;
}

void Server::applyFinish(const Finish& finish) {
  if (!finish.valid) return;
  const auto finished = std::chrono::steady_clock::now();
  const double total_micros = elapsedMicros(finish.started, finished);
  request_micros_family_.withLabels({{"verb", finish.verb_label}})
      .observe(total_micros);
  recordLatency(total_micros);
  noteSlowRequest(finish.verb_label, total_micros, finish.root_ctx);
  recordSpan(finish.root_ctx, finish.root_ctx.span_id,
             finish.client_ctx.span_id, "server.request", finish.verb_label,
             finish.started, finished);
}

void Server::noteSlowRequest(const std::string& verb_label,
                             double total_micros,
                             const obs::TraceContext& root) {
  std::uint64_t threshold = options_.slow_request_default_us;
  const auto it = options_.slow_request_us.find(verb_label);
  if (it != options_.slow_request_us.end()) threshold = it->second;
  if (threshold == 0 || total_micros <= static_cast<double>(threshold))
    return;
  slow_requests_family_.withLabels({{"verb", verb_label}}).inc();
  if (options_.recorder != nullptr)
    options_.recorder->annotateTrace(
        root.trace_id, "server.slow_request",
        verb_label + " took " +
            std::to_string(static_cast<std::uint64_t>(total_micros)) +
            "us (threshold " + std::to_string(threshold) + "us)");
}

void Server::respondLast(const RequestCtx& ctx, Json response, bool shutdown) {
  Completion completion;
  completion.conn_id = ctx.conn_id;
  completion.slot_id = ctx.slot_id;
  completion.frames = wireFrame(std::move(response), ctx);
  completion.last = true;
  completion.shutdown = shutdown;
  completion.finish = makeFinish(ctx);
  postCompletion(std::move(completion));
}

void Server::dispatchLine(std::uint64_t conn_id, std::uint64_t slot_id,
                          std::string line,
                          std::chrono::steady_clock::time_point read_started,
                          std::chrono::steady_clock::time_point read_finished) {
  const auto started = std::chrono::steady_clock::now();
  // `read_finished` is the loop's post timestamp, so this histogram is the
  // dispatch pool's pickup delay (queueing, not parsing).
  wakeup_to_dispatch_micros_.observe(elapsedMicros(read_finished, started));
  dispatch_depth_gauge_.set(
      dispatch_depth_.fetch_sub(1, std::memory_order_relaxed) - 1);
  ++requests_;
  stage_read_.observe(elapsedMicros(read_started, read_finished));
  obs::FlightRecorder* recorder = options_.recorder;
  const bool tracing = recorder != nullptr && recorder->enabled();
  RequestCtx ctx;
  ctx.conn_id = conn_id;
  ctx.slot_id = slot_id;
  ctx.tracing = tracing;
  ctx.started = started;
  try {
    const Json request = Json::parse(line);
    ctx.client_ctx = traceContextFromRequest(request);
    ctx.root_ctx.trace_id = ctx.client_ctx.valid() ? ctx.client_ctx.trace_id
                            : tracing              ? obs::mintTraceId()
                                                   : 0;
    if (tracing) ctx.root_ctx.span_id = obs::mintTraceId();
    const auto parsed = std::chrono::steady_clock::now();
    stage_parse_.observe(elapsedMicros(started, parsed));
    recordSpan(ctx.root_ctx, obs::mintTraceId(), ctx.root_ctx.span_id,
               "server.parse", "", started, parsed);
    const std::string& verb = request.at("verb").asString();
    const auto& bindings = verbBindings();
    const auto binding = bindings.find(verb);
    if (binding != bindings.end()) ctx.verb_label = verb;
    requests_family_.withLabels({{"verb", ctx.verb_label}}).inc();
    {
      // Feed the `health` verb's connection table: the verb this
      // connection most recently issued plus the trace id of each
      // in-flight slot (erased by the loop when the slot completes).
      std::lock_guard<std::mutex> lock(introspect_mutex_);
      conn_last_verb_[conn_id] = ctx.verb_label;
      inflight_traces_[{conn_id, slot_id}] = ctx.root_ctx.trace_id;
    }
    if (binding == bindings.end()) {
      respondLast(ctx, unknownVerbResponse(verb, ctx.root_ctx));
    } else if (binding->second.async != nullptr) {
      // Job verbs: submit and return.  The engine's completion (or the
      // loop-side deadline) posts the response; this dispatch thread never
      // blocks on simulation.
      (this->*(binding->second.async))(request, ctx);
    } else {
      std::vector<Json> frames;
      (this->*(binding->second.sync))(request, ctx, frames);
      Completion completion;
      completion.conn_id = ctx.conn_id;
      completion.slot_id = ctx.slot_id;
      for (Json& frame : frames)
        completion.frames += wireFrame(std::move(frame), ctx);
      completion.last = true;
      completion.shutdown = ctx.verb_label == "shutdown";
      completion.finish = makeFinish(ctx);
      postCompletion(std::move(completion));
    }
  } catch (const std::exception& e) {
    ++protocol_errors_;
    protocol_errors_counter_.inc();
    if (tracing && !ctx.root_ctx.valid()) {
      ctx.root_ctx.trace_id =
          ctx.client_ctx.valid() ? ctx.client_ctx.trace_id : obs::mintTraceId();
      ctx.root_ctx.span_id = obs::mintTraceId();
    }
    if (recorder != nullptr)
      recorder->annotateTrace(ctx.root_ctx.trace_id, "server.protocol_error",
                              e.what());
    log_.warn("server.protocol_error",
              {{"error", e.what()}, {"trace", ctx.root_ctx}});
    respondLast(ctx, errorResponse(e.what()));
  }
  recordSpan(ctx.root_ctx, obs::mintTraceId(), ctx.root_ctx.span_id,
             "server.read", "", read_started, read_finished);
}

void Server::asyncRun(const Json& request, const RequestCtx& ctx) {
  const Scenario scenario = scenarioFromJson(request.at("scenario"));
  // The loop owns the wait budget the blocking path spent in await():
  // register the slot deadline first so it is in place before any worker
  // can finish the job.  `job_done` arbitrates the completion-vs-deadline
  // race: the worker sets it before posting, and a deadline that observes
  // it answers "spurious" so the real response is never lost.
  auto job_done = std::make_shared<std::atomic<bool>>(false);
  const RequestCtx ctx_copy = ctx;
  Completion reg;
  reg.conn_id = ctx.conn_id;
  reg.slot_id = ctx.slot_id;
  reg.set_deadline = true;
  reg.deadline = std::chrono::steady_clock::now() + engine_.options().timeout;
  reg.on_timeout = [this, ctx_copy,
                    job_done]() -> std::pair<std::string, Finish> {
    if (job_done->load()) return {std::string(), Finish{}};
    Json response = outcomeResponse(engine_.timeoutOutcome(),
                                    ctx_copy.root_ctx);
    return {wireFrame(std::move(response), ctx_copy), makeFinish(ctx_copy)};
  };
  postCompletion(std::move(reg));
  engine_.submitAsync(scenario, ctx.root_ctx,
                      [this, ctx_copy, job_done](JobOutcome outcome) {
                        job_done->store(true);
                        respondLast(ctx_copy,
                                    outcomeResponse(outcome,
                                                    ctx_copy.root_ctx));
                      });
}

void Server::asyncSweep(const Json& request, const RequestCtx& ctx) {
  std::vector<Scenario> scenarios;
  for (const Json& item : request.at("scenarios").asArray())
    scenarios.push_back(scenarioFromJson(item));

  struct SweepState {
    std::mutex mutex;
    std::vector<JobOutcome> outcomes;
    std::vector<char> done;
    std::size_t remaining = 0;
    bool finished = false;  ///< response posted (or the deadline fired)
  };
  const RequestCtx ctx_copy = ctx;
  auto build = [this, ctx_copy](const SweepState& state) -> Json {
    Json results = Json::array();
    for (const JobOutcome& outcome : state.outcomes)
      results.push(outcomeResponse(outcome, ctx_copy.root_ctx));
    Json response = Json::object();
    response.set("ok", Json(true)).set("results", std::move(results));
    return response;
  };

  if (scenarios.empty()) {
    SweepState empty;
    respondLast(ctx, build(empty));
    return;
  }

  auto state = std::make_shared<SweepState>();
  state->outcomes.resize(scenarios.size());
  state->done.assign(scenarios.size(), 0);
  state->remaining = scenarios.size();

  // The blocking path awaits each future with a full per-job budget, so
  // the worst-case wall clock is timeout x N — mirror that here.
  Completion reg;
  reg.conn_id = ctx.conn_id;
  reg.slot_id = ctx.slot_id;
  reg.set_deadline = true;
  reg.deadline = std::chrono::steady_clock::now() +
                 engine_.options().timeout *
                     static_cast<std::int64_t>(scenarios.size());
  reg.on_timeout = [this, ctx_copy, state,
                    build]() -> std::pair<std::string, Finish> {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->finished) return {std::string(), Finish{}};
    state->finished = true;
    for (std::size_t i = 0; i < state->outcomes.size(); ++i)
      if (!state->done[i]) state->outcomes[i] = engine_.timeoutOutcome();
    return {wireFrame(build(*state), ctx_copy), makeFinish(ctx_copy)};
  };
  postCompletion(std::move(reg));

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    engine_.submitAsync(
        scenarios[i], ctx.root_ctx,
        [this, state, ctx_copy, build, i](JobOutcome outcome) {
          bool respond_now = false;
          {
            std::lock_guard<std::mutex> lock(state->mutex);
            if (state->finished) return;  // deadline already answered
            if (!state->done[i]) {
              state->done[i] = 1;
              state->outcomes[i] = std::move(outcome);
              --state->remaining;
            }
            if (state->remaining == 0) {
              state->finished = true;
              respond_now = true;
            }
          }
          if (respond_now) respondLast(ctx_copy, build(*state));
        });
  }
}

void Server::asyncBatch(const Json& request, const RequestCtx& ctx) {
  std::vector<Scenario> scenarios;
  for (const Json& item : request.at("scenarios").asArray())
    scenarios.push_back(scenarioFromJson(item));
  if (scenarios.size() > options_.max_batch)
    throw std::runtime_error(
        "batch of " + std::to_string(scenarios.size()) +
        " scenarios exceeds the server limit of " +
        std::to_string(options_.max_batch));

  if (scenarios.empty()) {
    Json summary = Json::object();
    summary.set("ok", Json(true)).set("batch", makeBatchSummaryHeader(0, 0, 0));
    respondLast(ctx, std::move(summary));
    return;
  }

  auto state = std::make_shared<BatchState>();
  state->ctx = ctx;
  state->scenarios = std::move(scenarios);
  const std::size_t n = state->scenarios.size();
  state->hashes.assign(n, 0);
  state->has_hash.assign(n, 0);
  state->item_done.assign(n, 0);
  state->remaining = n;
  for (std::size_t i = 0; i < n; ++i) {
    state->pending.push_back(i);
    try {
      state->hashes[i] = scenarioHash(normalized(state->scenarios[i]));
      state->has_hash[i] = 1;
    } catch (const std::exception&) {
      // Invalid scenario: no content address.  Submit it anyway; the
      // engine converts the validation failure into a kError outcome,
      // exactly as a sequential run would.
    }
  }
  std::size_t window = options_.batch_window;
  if (window == 0) {
    window = options_.engine.workers != 0
                 ? options_.engine.workers
                 : std::max(1u, std::thread::hardware_concurrency());
  }
  state->window = std::max<std::size_t>(1, window);

  Completion reg;
  reg.conn_id = ctx.conn_id;
  reg.slot_id = ctx.slot_id;
  reg.set_deadline = true;
  reg.deadline = std::chrono::steady_clock::now() +
                 engine_.options().timeout * static_cast<std::int64_t>(n);
  reg.on_timeout = [this, state]() { return timeoutBatch(state); };
  postCompletion(std::move(reg));

  pumpBatch(state);
}

void Server::pumpBatch(const std::shared_ptr<BatchState>& state) {
  std::unique_lock<std::mutex> lock(state->mutex);
  if (state->pumping) {
    state->dirty = true;
    return;
  }
  state->pumping = true;
  for (;;) {
    state->dirty = false;
    while (!state->finished && state->in_window < state->window &&
           !state->pending.empty()) {
      // First pending item whose hash twin is not in flight; duplicates
      // stay held so they land as cache hits once the twin finishes.
      std::size_t index = state->scenarios.size();
      for (auto it = state->pending.begin(); it != state->pending.end();
           ++it) {
        if (state->has_hash[*it] &&
            state->inflight.count(state->hashes[*it]) != 0)
          continue;
        index = *it;
        state->pending.erase(it);
        break;
      }
      if (index == state->scenarios.size()) break;  // everything held
      ++state->in_window;
      if (state->has_hash[index]) state->inflight.insert(state->hashes[index]);
      const Scenario scenario = state->scenarios[index];
      const obs::TraceContext trace = state->ctx.root_ctx;
      lock.unlock();
      engine_.submitAsync(scenario, trace,
                          [this, state, index](JobOutcome outcome) {
                            finishBatchItem(state, index, outcome);
                          });
      lock.lock();
    }
    if (!state->dirty) break;
  }
  state->pumping = false;
}

void Server::finishBatchItem(const std::shared_ptr<BatchState>& state,
                             std::size_t index, const JobOutcome& outcome) {
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->in_window > 0) --state->in_window;
    if (state->has_hash[index]) state->inflight.erase(state->hashes[index]);
    if (!state->finished && !state->item_done[index]) {
      state->item_done[index] = 1;
      --state->remaining;
      outcome.status == JobStatus::kOk ? ++state->completed : ++state->errors;
      const std::uint64_t n = state->scenarios.size();
      Json frame = outcomeResponse(outcome, state->ctx.root_ctx);
      frame.set("batch", makeBatchFrameHeader(index, state->seq++, n));
      Completion completion;
      completion.conn_id = state->ctx.conn_id;
      completion.slot_id = state->ctx.slot_id;
      completion.frames = wireFrame(std::move(frame), state->ctx);
      if (state->remaining == 0) {
        Json summary = Json::object();
        summary.set("ok", Json(true))
            .set("batch", makeBatchSummaryHeader(n, state->completed,
                                                 state->errors));
        completion.frames += wireFrame(std::move(summary), state->ctx);
        completion.last = true;
        completion.finish = makeFinish(state->ctx);
        state->finished = true;
      }
      // Posted under the state mutex so stream frames enter the loop's
      // completion queue in `seq` order (lock order is always state ->
      // completions, never the reverse).
      postCompletion(std::move(completion));
    }
  }
  pumpBatch(state);
}

std::pair<std::string, Server::Finish> Server::timeoutBatch(
    const std::shared_ptr<BatchState>& state) {
  std::lock_guard<std::mutex> lock(state->mutex);
  if (state->finished) return {std::string(), Finish{}};
  state->finished = true;
  const std::uint64_t n = state->scenarios.size();
  std::string frames;
  for (std::size_t i = 0; i < state->scenarios.size(); ++i) {
    if (state->item_done[i]) continue;
    ++state->errors;
    Json frame = outcomeResponse(engine_.timeoutOutcome(),
                                 state->ctx.root_ctx);
    frame.set("batch", makeBatchFrameHeader(i, state->seq++, n));
    frames += wireFrame(std::move(frame), state->ctx);
  }
  Json summary = Json::object();
  summary.set("ok", Json(true))
      .set("batch",
           makeBatchSummaryHeader(n, state->completed, state->errors));
  frames += wireFrame(std::move(summary), state->ctx);
  return {std::move(frames), makeFinish(state->ctx)};
}

// ---------------------------------------------------------------------------
// Event-loop path: the loop itself
// ---------------------------------------------------------------------------

void Server::serveEventLoop() {
  if (dispatch_pool_ == nullptr) {
    std::size_t threads = options_.dispatch_threads;
    if (threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = std::max<std::size_t>(2, std::min<std::size_t>(8, hw / 2));
    }
    dispatch_pool_ = std::make_unique<sim::ThreadPool>(threads);
  }
  net::setNonblocking(listen_fd_);

  using Clock = std::chrono::steady_clock;

  /// Response slot for one pipelined request.  Slots live in request order;
  /// only the front slot's frames reach the wire, so responses (and batch
  /// streams) come back in the order the requests arrived.
  struct Slot {
    std::uint64_t id = 0;
    std::string frames;      ///< wire bytes not yet promoted to the conn
    bool complete = false;   ///< final frames arrived (or synthesized)
    bool timed_out = false;  ///< deadline answered; drop the real completion
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::function<std::pair<std::string, Finish>()> on_timeout;
    obs::TraceContext root;  ///< for the server.write span
  };
  /// One queued server.write measurement: fires when flushed_total passes
  /// end_offset (the last byte of that request's response frames).
  struct WriteMark {
    std::uint64_t end_offset = 0;
    obs::TraceContext root;
    Clock::time_point started{};
  };
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::string rbuf;
    std::string wbuf;
    std::size_t woff = 0;           ///< send offset into wbuf
    std::uint64_t queued_total = 0;   ///< bytes ever promoted to wbuf
    std::uint64_t flushed_total = 0;  ///< bytes the kernel accepted
    std::deque<Slot> slots;
    std::uint64_t next_slot = 1;
    std::deque<WriteMark> marks;
    Clock::time_point read_started{};
    Clock::time_point opened{};  ///< accept time, for the health verb's age
    bool eof = false;   ///< peer half-closed; finish pending work then close
    bool dead = false;  ///< closed; reaped by the per-iteration sweep
  };
  /// A request whose connection died before its completion arrived.  The
  /// Finish must still be applied exactly once (metrics/span reconcile), so
  /// the entry absorbs the eventual real completion — or its deadline.
  struct OrphanSlot {
    bool finished = false;  ///< deadline already applied the Finish
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::function<std::pair<std::string, Finish>()> on_timeout;
  };

  std::unordered_map<std::uint64_t, Conn> conns;
  std::map<std::pair<std::uint64_t, std::uint64_t>, OrphanSlot> orphans;
  std::uint64_t next_conn = 1;

  auto closeConn = [&](Conn& conn, const char* reason) {
    if (conn.dead) return;
    log_.debug("server.conn_close",
               {{"fd", std::int64_t{conn.fd}}, {"reason", reason}});
    {
      std::lock_guard<std::mutex> lock(introspect_mutex_);
      conn_last_verb_.erase(conn.id);
      inflight_traces_.erase(
          inflight_traces_.lower_bound({conn.id, 0}),
          inflight_traces_.lower_bound({conn.id + 1, 0}));
    }
    for (Slot& slot : conn.slots) {
      if (slot.complete) continue;
      OrphanSlot orphan;
      orphan.has_deadline = slot.has_deadline;
      orphan.deadline = slot.deadline;
      orphan.on_timeout = std::move(slot.on_timeout);
      orphans[{conn.id, slot.id}] = std::move(orphan);
    }
    conn.slots.clear();
    ::close(conn.fd);
    conn.dead = true;
  };

  auto flushConn = [&](Conn& conn) {
    if (conn.dead) return;
    if (conn.woff < conn.wbuf.size()) {
      const net::IoStatus status =
          net::sendNonblock(conn.fd, conn.wbuf, conn.woff, options_.fault);
      if (status == net::IoStatus::kError) {
        closeConn(conn, "write failed");
        return;
      }
    }
    conn.flushed_total = conn.queued_total - (conn.wbuf.size() - conn.woff);
    while (!conn.marks.empty() &&
           conn.flushed_total >= conn.marks.front().end_offset) {
      const WriteMark& mark = conn.marks.front();
      const auto now = Clock::now();
      stage_write_.observe(elapsedMicros(mark.started, now));
      recordSpan(mark.root, obs::mintTraceId(), mark.root.span_id,
                 "server.write", "", mark.started, now);
      conn.marks.pop_front();
    }
    if (conn.woff == conn.wbuf.size()) {
      conn.wbuf.clear();
      conn.woff = 0;
    }
  };

  /// Moves the ordered frames that may legally hit the wire into wbuf: the
  /// front slot streams as frames arrive; completed front slots retire and
  /// unblock the next one.
  auto promote = [&](Conn& conn) {
    if (conn.dead) return;
    const auto now = Clock::now();
    while (!conn.slots.empty()) {
      Slot& front = conn.slots.front();
      if (!front.frames.empty()) {
        conn.wbuf += front.frames;
        conn.queued_total += front.frames.size();
        front.frames.clear();
      }
      if (!front.complete) break;
      conn.marks.push_back({conn.queued_total, front.root, now});
      conn.slots.pop_front();
      if (conn.slots.empty()) conn.read_started = now;  // idle clock restarts
    }
    flushConn(conn);
  };

  auto handleReadable = [&](Conn& conn) {
    std::size_t budget = kReadBudget;
    for (;;) {
      for (;;) {
        const std::size_t newline = conn.rbuf.find('\n');
        if (newline == std::string::npos) break;
        std::string line = conn.rbuf.substr(0, newline);
        conn.rbuf.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        const auto now = Clock::now();
        if (line.empty()) {
          conn.read_started = now;
          continue;
        }
        // Drain semantics match the legacy loop: requests pipelined after
        // a shutdown was answered are dropped, not executed.
        if (stopping_.load()) continue;
        const auto read_started = conn.read_started;
        conn.read_started = now;
        Slot slot;
        slot.id = conn.next_slot++;
        const std::uint64_t conn_id = conn.id;
        const std::uint64_t slot_id = slot.id;
        conn.slots.push_back(std::move(slot));
        const std::int64_t depth =
            dispatch_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
        dispatch_depth_gauge_.set(depth);
        bumpWatermark(dispatch_depth_max_, dispatch_depth_max_gauge_, depth);
        dispatch_pool_->post(
            [this, conn_id, slot_id, line = std::move(line), read_started,
             now]() mutable {
              dispatchLine(conn_id, slot_id, std::move(line), read_started,
                           now);
            });
      }
      if (conn.rbuf.size() > kMaxLineBytes) {
        closeConn(conn, "request line too long");
        return;
      }
      if (budget == 0) return;  // fairness: poll() re-arms this conn
      if (conn.slots.size() >= kMaxPipeline) return;  // backpressure
      const std::size_t before = conn.rbuf.size();
      const net::IoStatus status =
          net::recvNonblock(conn.fd, conn.rbuf, 4096, options_.fault);
      if (status == net::IoStatus::kOk) {
        budget -= std::min(budget, conn.rbuf.size() - before);
        continue;
      }
      if (status == net::IoStatus::kWouldBlock) return;
      if (status == net::IoStatus::kClosed) {
        conn.eof = true;
        return;
      }
      closeConn(conn, "read failed");
      return;
    }
  };

  auto processCompletions = [&]() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      batch.swap(completions_);
    }
    completion_depth_gauge_.set(0);
    for (Completion& completion : batch) {
      if (completion.shutdown) stopping_.store(true);
      const auto conn_it = conns.find(completion.conn_id);
      if (conn_it == conns.end() || conn_it->second.dead) {
        const auto orphan_it =
            orphans.find({completion.conn_id, completion.slot_id});
        if (orphan_it == orphans.end()) continue;  // slot long retired
        OrphanSlot& orphan = orphan_it->second;
        if (completion.set_deadline) {
          orphan.has_deadline = true;
          orphan.deadline = completion.deadline;
          orphan.on_timeout = std::move(completion.on_timeout);
          continue;
        }
        if (completion.last) {
          if (!orphan.finished) applyFinish(completion.finish);
          orphans.erase(orphan_it);
        }
        continue;  // stream frames to a dead conn are dropped
      }
      Conn& conn = conn_it->second;
      Slot* slot = nullptr;
      for (Slot& candidate : conn.slots)
        if (candidate.id == completion.slot_id) {
          slot = &candidate;
          break;
        }
      if (slot == nullptr) continue;  // timed out and already retired
      if (completion.set_deadline) {
        slot->has_deadline = true;
        slot->deadline = completion.deadline;
        slot->on_timeout = std::move(completion.on_timeout);
        continue;
      }
      if (slot->timed_out) continue;  // synthesized response already queued
      slot->frames += completion.frames;
      if (completion.last) {
        slot->complete = true;
        slot->has_deadline = false;
        slot->root = completion.finish.root_ctx;
        applyFinish(completion.finish);
        std::lock_guard<std::mutex> lock(introspect_mutex_);
        inflight_traces_.erase({completion.conn_id, completion.slot_id});
      }
      promote(conn);
    }
  };

  auto fireDeadlines = [&](Clock::time_point now) {
    for (auto& entry : conns) {
      Conn& conn = entry.second;
      if (conn.dead) continue;
      bool fired = false;
      for (Slot& slot : conn.slots) {
        if (!slot.has_deadline || slot.complete || now < slot.deadline)
          continue;
        slot.has_deadline = false;
        std::pair<std::string, Finish> synthesized;
        if (slot.on_timeout) synthesized = slot.on_timeout();
        // Empty frames + invalid Finish: the real completion raced in and
        // is already queued — treat the deadline as spurious.
        if (synthesized.first.empty() && !synthesized.second.valid) continue;
        slot.frames += synthesized.first;
        slot.complete = true;
        slot.timed_out = true;
        slot.root = synthesized.second.root_ctx;
        applyFinish(synthesized.second);
        fired = true;
      }
      if (fired) promote(conn);
      if (!conn.dead && options_.read_deadline.count() > 0 &&
          conn.slots.empty() && conn.woff == conn.wbuf.size() &&
          now - conn.read_started >= options_.read_deadline)
        closeConn(conn, "idle");
    }
    for (auto& entry : orphans) {
      OrphanSlot& orphan = entry.second;
      if (orphan.finished || !orphan.has_deadline || now < orphan.deadline)
        continue;
      orphan.has_deadline = false;
      std::pair<std::string, Finish> synthesized;
      if (orphan.on_timeout) synthesized = orphan.on_timeout();
      if (!synthesized.second.valid) continue;  // real completion will erase
      applyFinish(synthesized.second);
      orphan.finished = true;  // entry stays to absorb the real completion
    }
  };

  auto nextTimeoutMs = [&](Clock::time_point now) -> int {
    std::optional<Clock::time_point> next;
    auto consider = [&](Clock::time_point t) {
      if (!next || t < *next) next = t;
    };
    for (auto& entry : conns) {
      Conn& conn = entry.second;
      if (conn.dead) continue;
      for (Slot& slot : conn.slots)
        if (slot.has_deadline && !slot.complete) consider(slot.deadline);
      if (options_.read_deadline.count() > 0 && conn.slots.empty() &&
          conn.woff == conn.wbuf.size())
        consider(conn.read_started + options_.read_deadline);
    }
    for (auto& entry : orphans)
      if (!entry.second.finished && entry.second.has_deadline)
        consider(entry.second.deadline);
    if (!next) return -1;
    const auto remaining = *next - now;
    if (remaining.count() <= 0) return 0;
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count() +
        1;
    return static_cast<int>(std::min<long long>(ms, 60000));
  };

  /// Publishes the `health` verb's connection table.  Runs once per
  /// iteration, after accepts and before any request read in the iteration
  /// is dispatched — so a `health` request always sees its own connection.
  auto publishConnTable = [&](Clock::time_point now) {
    connections_gauge_.set(static_cast<std::int64_t>(conns.size()));
    std::lock_guard<std::mutex> lock(introspect_mutex_);
    conn_table_.clear();
    conn_table_.reserve(conns.size());
    for (auto& entry : conns) {
      Conn& conn = entry.second;
      if (conn.dead) continue;
      ConnSnapshot snap;
      snap.id = conn.id;
      snap.in_flight = conn.slots.size();
      snap.read_buffered = conn.rbuf.size();
      snap.write_buffered = conn.wbuf.size() - conn.woff;
      snap.age_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - conn.opened)
              .count());
      snap.oldest_slot = conn.slots.empty() ? 0 : conn.slots.front().id;
      conn_table_.push_back(snap);
    }
    conn_table_at_ = now;
  };

  const double stall_threshold_us =
      std::chrono::duration<double, std::micro>(options_.stall_threshold)
          .count();
  Clock::time_point last_stall_log{};
  Clock::time_point work_started = Clock::now();

  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn;
  for (;;) {
    processCompletions();
    const auto now = Clock::now();
    fireDeadlines(now);

    // Reap: normal EOF / shutdown drain closes once a conn has answered
    // everything and flushed it.
    for (auto it = conns.begin(); it != conns.end();) {
      Conn& conn = it->second;
      if (!conn.dead && (conn.eof || stopping_.load()) &&
          conn.slots.empty() && conn.woff == conn.wbuf.size())
        closeConn(conn, conn.eof ? "eof" : "shutdown");
      if (conn.dead)
        it = conns.erase(it);
      else
        ++it;
    }

    if (stopping_.load() && conns.empty() && orphans.empty()) {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      if (completions_.empty()) break;
      continue;  // late completions to apply before exiting
    }

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_read_fd_, POLLIN, 0});
    const bool accepting = !stopping_.load();
    if (accepting) pfds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t conn_base = pfds.size();
    for (auto& entry : conns) {
      Conn& conn = entry.second;
      short events = 0;
      const bool backpressured =
          conn.slots.size() >= kMaxPipeline ||
          conn.wbuf.size() - conn.woff > kMaxWriteBuffer;
      if (!conn.eof && !stopping_.load() && !backpressured) events |= POLLIN;
      if (conn.woff < conn.wbuf.size()) events |= POLLOUT;
      if (events == 0) continue;  // waits on completions, not the socket
      pfds.push_back({conn.fd, events, 0});
      pfd_conn.push_back(conn.id);
    }

    // One "iteration" for health purposes is the time spent outside
    // poll(): everything between the previous poll() return and this call.
    const auto before_poll = Clock::now();
    const double outside_us = elapsedMicros(work_started, before_poll);
    loop_iteration_micros_.observe(outside_us);
    if (stall_threshold_us > 0 && outside_us > stall_threshold_us) {
      loop_stalls_counter_.inc();
      if (last_stall_log == Clock::time_point{} ||
          before_poll - last_stall_log >= std::chrono::seconds(1)) {
        last_stall_log = before_poll;
        log_.warn("server.loop_stall",
                  {{"busy_us", outside_us},
                   {"threshold_us", stall_threshold_us},
                   {"connections",
                    std::uint64_t{conns.size()}}});
      }
    }

    const int rc =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
               nextTimeoutMs(now));
    work_started = Clock::now();
    if (rc < 0 && errno != EINTR) break;  // poll broken; shut down
    if (rc <= 0) continue;                // timeout (deadlines fire above)

    if (pfds[0].revents != 0) {
      char drain[256];
      while (::read(wake_read_fd_, drain, sizeof drain) > 0) {
      }
    }
    if (accepting && pfds[1].revents != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN: backlog drained
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        net::setNonblocking(fd);
        Conn conn;
        conn.fd = fd;
        conn.id = next_conn++;
        conn.read_started = Clock::now();
        conn.opened = conn.read_started;
        log_.debug("server.conn_open", {{"fd", std::int64_t{fd}}});
        conns.emplace(conn.id, std::move(conn));
      }
    }
    publishConnTable(Clock::now());
    for (std::size_t i = conn_base; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      const auto conn_it = conns.find(pfd_conn[i - conn_base]);
      if (conn_it == conns.end() || conn_it->second.dead) continue;
      Conn& conn = conn_it->second;
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) handleReadable(conn);
      if (!conn.dead && (pfds[i].revents & POLLOUT)) flushConn(conn);
    }
  }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

void Server::recordLatency(double micros) {
  // Latency resolution is nanoseconds via steady_clock, but clamp away
  // exact zeros so percentile reports are always nonzero for served
  // requests.
  micros = std::max(micros, 1e-3);
  std::lock_guard<std::mutex> lock(latency_mutex_);
  if (latency_reservoir_.size() < kLatencyReservoir) {
    latency_reservoir_.push_back(micros);
  } else {
    latency_reservoir_[latency_next_] = micros;
    latency_next_ = (latency_next_ + 1) % kLatencyReservoir;
  }
  ++latency_count_;
}

Json Server::statsJson() {
  std::vector<double> latencies;
  std::uint64_t observed = 0;
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    latencies = latency_reservoir_;
    observed = latency_count_;
  }
  const JobEngineStats engine = engine_.stats();
  Json json = Json::object();
  json.set("requests", Json(requests_.load()))
      .set("protocol_errors", Json(protocol_errors_.load()))
      .set("hits", Json(engine.cache.hits))
      .set("disk_hits", Json(engine.cache.disk_hits))
      .set("misses", Json(engine.cache.misses))
      .set("evictions", Json(engine.cache.evictions))
      .set("cache_size", Json(static_cast<std::uint64_t>(engine.cache.size)))
      .set("cache_capacity",
           Json(static_cast<std::uint64_t>(engine.cache.capacity)))
      .set("jobs_submitted", Json(engine.submitted))
      .set("jobs_completed", Json(engine.completed))
      .set("jobs_failed", Json(engine.failed))
      .set("jobs_timed_out", Json(engine.timeouts))
      .set("jobs_coalesced", Json(engine.coalesced))
      .set("jobs_shed", Json(engine.shed))
      .set("corrupt_evictions", Json(engine.cache.corrupt_evictions))
      .set("queue_depth", Json(static_cast<std::uint64_t>(engine.queue_depth)))
      .set("in_flight", Json(static_cast<std::uint64_t>(engine.in_flight)))
      .set("latency_samples", Json(observed))
      .set("p50_us", Json(obs::samplePercentile(latencies, 0.50)))
      .set("p95_us", Json(obs::samplePercentile(std::move(latencies), 0.95)));
  return json;
}

}  // namespace lb::service
