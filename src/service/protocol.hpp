#pragma once
// lbd wire-protocol surface: the version stamp and the verb table.
//
// Every response the daemon writes carries `"v":1`.  Clients must check it
// (Client::call does) so that a future incompatible protocol bump fails
// loudly at the first response instead of mis-parsing fields.  Unknown
// verbs come back as structured errors listing the supported verbs, so a
// client talking to an older/newer daemon can see exactly what it offers.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "service/json.hpp"

namespace lb::service {

/// Wire protocol generation.  Bump only on incompatible response changes;
/// adding fields or verbs is compatible and does not bump it.
inline constexpr std::uint64_t kProtocolVersion = 1;

// ---------------------------------------------------------------------------
// Verb registry (docs/service.md)
// ---------------------------------------------------------------------------
//
// One declarative table is the single source of truth for everything that
// enumerates or classifies verbs: the daemon's dispatch map, the
// unknown-verb `supported_verbs` payload, lbcli's verb discovery/usage
// text, and the client's idempotent-resend decision.  Adding a verb means
// adding one VerbSpec row (plus a server handler); nothing else needs to
// stay in sync by hand.

struct VerbSpec {
  std::string name;
  /// Safe to *resend* after a transport failure mid-exchange (the request
  /// may or may not have executed).  All read/compute verbs qualify —
  /// identical scenarios are content-addressed, so a re-run is a cache
  /// hit.  `shutdown` does not: a lost response may mean the daemon is
  /// already stopping, and the resend would report a spurious connect
  /// failure.
  bool idempotent = false;
  /// The response is a *stream* of newline-delimited v1 frames ending in a
  /// terminal summary frame, not a single frame (only `batch` today).
  bool streaming = false;
  /// One-line description for usage/help text.
  std::string summary;
};

/// The verbs the daemon understands, in documentation order.
const std::vector<VerbSpec>& verbRegistry();

/// Registry row for `verb`, or nullptr when unknown.
const VerbSpec* findVerb(const std::string& verb);

/// Verb names from the registry, in documentation order.
const std::vector<std::string>& protocolVerbs();
bool isProtocolVerb(const std::string& verb);

/// protocolVerbs() as a JSON array (for unknown-verb error responses).
Json protocolVerbsJson();

/// Stamps "v" onto a response object (server side, every response).
Json& stampProtocolVersion(Json& response);

/// Validates a response's "v" member (client side).  Throws
/// std::runtime_error when it is missing or not kProtocolVersion.
void requireProtocolVersion(const Json& response);

// ---------------------------------------------------------------------------
// Degraded-mode contract (docs/robustness.md)
// ---------------------------------------------------------------------------
//
// A daemon under load pressure answers with an explicit shed instead of
// silently dropping or indefinitely blocking:
//
//   {"ok":false,"error":"overloaded: ...","overloaded":true,
//    "retry_after_ms":N,"v":1}
//
// Clients treat it as retryable after >= retry_after_ms (Client::call does,
// bounded by its retry budget and per-request deadline).

/// True when the registry marks `verb` idempotent (see VerbSpec::idempotent).
/// Unknown verbs are not idempotent.
bool isIdempotentVerb(const std::string& verb);

/// Builds the overloaded response body (without the version stamp).
Json makeOverloadedResponse(const std::string& reason,
                            std::uint32_t retry_after_ms);

/// True when `response` is an explicit load-shed ({"overloaded":true}).
bool isOverloadedResponse(const Json& response);

/// The shed's retry hint in milliseconds; 0 when absent.
std::uint64_t retryAfterMs(const Json& response);

// ---------------------------------------------------------------------------
// Request tracing on the wire (docs/observability.md)
// ---------------------------------------------------------------------------
//
// Every v1 request may carry `"trace":{"id":<u64>,"span":<u64>}` — minted
// by service::Client, ignored by daemons that predate tracing (unknown
// top-level request members are skipped).  The daemon echoes a trace block
// on the response: `id` is the request's trace id (or a server-minted one
// when the client sent none and the flight recorder is on) and `span` is
// the server-side root span covering the request, so a client can join its
// own records against a later `trace`-verb dump.

/// The request's trace block as a TraceContext; {0, 0} when absent or
/// malformed (tracing is best-effort — a bad block never fails a request).
obs::TraceContext traceContextFromRequest(const Json& request);

/// {"id":...,"span":...} for the wire.
Json traceContextJson(const obs::TraceContext& context);

/// Stamps the echoed trace block onto a response object.
Json& stampTraceContext(Json& response, const obs::TraceContext& context);

/// The response's echoed trace block; {0, 0} when absent.
obs::TraceContext traceContextFromResponse(const Json& response);

// ---------------------------------------------------------------------------
// Streaming `batch` frames (docs/service.md)
// ---------------------------------------------------------------------------
//
// A `batch` request carries `"scenarios":[...]` and is answered by a
// *stream* of v1 frames on the same connection, in completion order:
//
//   per-result frame:  normal run-response members (ok/hash/cached/...)
//                      plus `"batch":{"index":i,"seq":k,"of":N}` where
//                      `index` is the scenario's position in the request,
//                      `seq` is the 0-based frame sequence number, and
//                      `of` is the scenario count;
//   terminal frame:    {"ok":true,"batch":{"done":true,"of":N,
//                      "completed":C,"errors":E}}.
//
// Every frame is version-stamped and trace-echoed like any v1 response.

/// The `"batch"` block for a per-result stream frame.
Json makeBatchFrameHeader(std::uint64_t index, std::uint64_t seq,
                          std::uint64_t of);

/// The `"batch"` block for the terminal summary frame.
Json makeBatchSummaryHeader(std::uint64_t of, std::uint64_t completed,
                            std::uint64_t errors);

/// True when `response` carries a `"batch"` block (stream or terminal).
bool isBatchFrame(const Json& response);

/// True for the terminal summary frame ({"batch":{"done":true,...}}).
bool isBatchSummaryFrame(const Json& response);

/// The stream frame's scenario index; throws JsonError on a summary frame
/// or a non-batch response.
std::uint64_t batchFrameIndex(const Json& response);

}  // namespace lb::service
