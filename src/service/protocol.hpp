#pragma once
// lbd wire-protocol surface: the version stamp and the verb table.
//
// Every response the daemon writes carries `"v":1`.  Clients must check it
// (Client::call does) so that a future incompatible protocol bump fails
// loudly at the first response instead of mis-parsing fields.  Unknown
// verbs come back as structured errors listing the supported verbs, so a
// client talking to an older/newer daemon can see exactly what it offers.

#include <cstdint>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace lb::service {

/// Wire protocol generation.  Bump only on incompatible response changes;
/// adding fields or verbs is compatible and does not bump it.
inline constexpr std::uint64_t kProtocolVersion = 1;

/// Verbs the daemon understands, in documentation order.
const std::vector<std::string>& protocolVerbs();
bool isProtocolVerb(const std::string& verb);

/// protocolVerbs() as a JSON array (for unknown-verb error responses).
Json protocolVerbsJson();

/// Stamps "v" onto a response object (server side, every response).
Json& stampProtocolVersion(Json& response);

/// Validates a response's "v" member (client side).  Throws
/// std::runtime_error when it is missing or not kProtocolVersion.
void requireProtocolVersion(const Json& response);

}  // namespace lb::service
