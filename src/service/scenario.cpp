#include "service/scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "arbiters/round_robin.hpp"
#include "arbiters/simple.hpp"
#include "arbiters/static_priority.hpp"
#include "arbiters/tdma.hpp"
#include "arbiters/token_ring.hpp"
#include "arbiters/weighted_round_robin.hpp"
#include "core/lottery.hpp"
#include "noc/mesh.hpp"
#include "service/metrics.hpp"
#include "sim/batched.hpp"
#include "traffic/classes.hpp"
#include "traffic/generator.hpp"
#include "traffic/testbed.hpp"

namespace lb::service {

const std::vector<std::string>& knownArbiters() {
  static const std::vector<std::string> kinds = {
      "lottery", "lottery-dynamic", "priority", "tdma", "rr",
      "wrr",     "token",           "random",   "fcfs"};
  return kinds;
}

bool isKnownArbiter(const std::string& kind) {
  const auto& kinds = knownArbiters();
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

const std::vector<std::string>& meshPresetNames() {
  static const std::vector<std::string> names = {"mesh4x4-lottery",
                                                 "mesh6x6-sesc"};
  return names;
}

Scenario meshPreset(const std::string& name) {
  Scenario scenario;
  if (name == "mesh4x4-lottery") {
    // The paper's lottery arbitration, scaled out: a 4x4 mesh whose router
    // ports hold per-port lotteries, driven by the saturating T2 class.
    scenario.arbiter = "lottery";
    scenario.traffic_class = "T2";
    scenario.mesh.width = 4;
    scenario.mesh.height = 4;
  } else if (name == "mesh6x6-sesc") {
    // SESC-style "bus as NoC" CMP configuration (ROADMAP item 3): 36 cores
    // on a 6x6 mesh with WRR routers, bursty ON/OFF memory-ish traffic.
    scenario.arbiter = "wrr";
    scenario.traffic_class = "T6";
    scenario.mesh.width = 6;
    scenario.mesh.height = 6;
  } else {
    throw ScenarioError("unknown mesh preset: " + name);
  }
  return normalized(scenario);
}

Scenario normalized(Scenario scenario) {
  if (!isKnownArbiter(scenario.arbiter))
    throw ScenarioError("unknown arbiter: " + scenario.arbiter);
  bool class_ok = false;
  for (const auto& cls : traffic::allTrafficClasses())
    class_ok = class_ok || cls.name == scenario.traffic_class;
  if (!class_ok)
    throw ScenarioError("unknown traffic class: " + scenario.traffic_class);
  if (scenario.masters == 0) throw ScenarioError("masters must be >= 1");
  if (scenario.cycles == 0) throw ScenarioError("cycles must be >= 1");
  if (scenario.burst == 0) throw ScenarioError("burst must be >= 1");
  if (scenario.mesh.enabled()) {
    MeshSpec& mesh = scenario.mesh;
    if (mesh.height == 0) mesh.height = mesh.width;
    if (mesh.width * mesh.height < 2)
      throw ScenarioError("mesh needs at least 2 nodes");
    noc::Pattern pattern;
    try {
      pattern = noc::patternFromString(mesh.pattern);
    } catch (const std::exception& e) {
      throw ScenarioError(std::string("bad mesh pattern: ") + e.what());
    }
    mesh.pattern = noc::patternToString(pattern);  // canonical spelling
    if (pattern == noc::Pattern::kTranspose && mesh.width != mesh.height)
      throw ScenarioError("transpose pattern needs a square mesh");
    if (mesh.vc_count == 0 || mesh.vc_depth == 0 || mesh.router_delay == 0)
      throw ScenarioError("mesh vc_count/vc_depth/router_delay must be >= 1");
    // The mesh defines the master count (one NI per node), and weights are
    // the per-input-port weights of every router's output arbiters.  The
    // untouched struct default (the bus's {1,2,3,4}) means "unspecified".
    scenario.masters = mesh.width * mesh.height;
    if (scenario.weights.size() != noc::kNumPorts) {
      if (scenario.weights.size() == 1)
        scenario.weights.assign(noc::kNumPorts, scenario.weights[0]);
      else if (scenario.weights.empty() ||
               scenario.weights == Scenario{}.weights)
        scenario.weights.assign(noc::kNumPorts, 1);
      else
        throw ScenarioError(
            "mesh scenarios take 1 or 5 weights (per router input port)");
    }
  } else if (scenario.weights.size() != scenario.masters) {
    // lbsim's historical reconciliation: an explicit multi-element weight
    // list defines the master count; otherwise weights broadcast to 1s.
    if (scenario.weights.size() > 1)
      scenario.masters = scenario.weights.size();
    else
      scenario.weights.assign(scenario.masters, 1);
  }
  for (const std::uint32_t w : scenario.weights)
    if (w == 0) throw ScenarioError("weights must be >= 1");
  if (scenario.kernel_mode != "fast" && scenario.kernel_mode != "naive")
    throw ScenarioError("unknown kernel_mode: " + scenario.kernel_mode);
  if (scenario.replicas == 0) throw ScenarioError("replicas must be >= 1");
  return scenario;
}

Json toJson(const Scenario& scenario) {
  Json weights = Json::array();
  for (const std::uint32_t w : scenario.weights)
    weights.push(Json(static_cast<std::uint64_t>(w)));
  Json json = Json::object();
  json.set("arbiter", Json(scenario.arbiter))
      .set("weights", std::move(weights))
      .set("class", Json(scenario.traffic_class))
      .set("masters", Json(static_cast<std::uint64_t>(scenario.masters)))
      .set("cycles", Json(static_cast<std::uint64_t>(scenario.cycles)))
      .set("burst", Json(static_cast<std::uint64_t>(scenario.burst)))
      .set("seed", Json(scenario.seed))
      .set("lfsr", Json(scenario.lfsr));
  // Emitted only when non-default so pre-existing content hashes (and every
  // cached result keyed by them) stay valid.
  if (scenario.kernel_mode != "fast")
    json.set("kernel_mode", Json(scenario.kernel_mode));
  // Same contract: the replication count enters the canonical bytes only
  // when the scenario actually is a replicated run.
  if (scenario.replicas != 1)
    json.set("replicas", Json(static_cast<std::uint64_t>(scenario.replicas)));
  // Same contract: the mesh extension appears in the canonical bytes only
  // when the scenario actually is a mesh.
  if (scenario.mesh.enabled()) {
    Json mesh = Json::object();
    mesh.set("width", Json(static_cast<std::uint64_t>(scenario.mesh.width)))
        .set("height", Json(static_cast<std::uint64_t>(scenario.mesh.height)))
        .set("pattern", Json(scenario.mesh.pattern))
        .set("vc_count",
             Json(static_cast<std::uint64_t>(scenario.mesh.vc_count)))
        .set("vc_depth",
             Json(static_cast<std::uint64_t>(scenario.mesh.vc_depth)))
        .set("router_delay",
             Json(static_cast<std::uint64_t>(scenario.mesh.router_delay)));
    json.set("mesh", std::move(mesh));
  }
  return json;
}

namespace {

std::uint32_t smallUint(const Json& value, const char* what) {
  const std::uint64_t v = value.asUint64();
  if (v > 0xFFFFFFFFull)
    throw ScenarioError(std::string(what) + " out of range");
  return static_cast<std::uint32_t>(v);
}

MeshSpec meshFromJson(const Json& json) {
  MeshSpec mesh;
  for (const auto& [key, value] : json.asObject()) {
    if (key == "width") {
      mesh.width = static_cast<std::size_t>(value.asUint64());
    } else if (key == "height") {
      mesh.height = static_cast<std::size_t>(value.asUint64());
    } else if (key == "pattern") {
      mesh.pattern = value.asString();
    } else if (key == "vc_count") {
      mesh.vc_count = smallUint(value, "vc_count");
    } else if (key == "vc_depth") {
      mesh.vc_depth = smallUint(value, "vc_depth");
    } else if (key == "router_delay") {
      mesh.router_delay = smallUint(value, "router_delay");
    } else {
      throw ScenarioError("unknown mesh member \"" + key + "\"");
    }
  }
  if (!mesh.enabled()) throw ScenarioError("mesh width must be >= 1");
  return mesh;
}

}  // namespace

Scenario scenarioFromJson(const Json& json) {
  Scenario scenario;
  bool weights_given = false;
  for (const auto& [key, value] : json.asObject()) {
    if (key == "arbiter") {
      scenario.arbiter = value.asString();
    } else if (key == "weights" || key == "tickets" || key == "priorities") {
      if (weights_given)
        throw ScenarioError("weights given more than once");
      weights_given = true;
      scenario.weights.clear();
      for (const Json& item : value.asArray()) {
        const std::uint64_t w = item.asUint64();
        if (w > 0xFFFFFFFFull) throw ScenarioError("weight out of range");
        scenario.weights.push_back(static_cast<std::uint32_t>(w));
      }
    } else if (key == "class") {
      scenario.traffic_class = value.asString();
    } else if (key == "masters") {
      scenario.masters = static_cast<std::size_t>(value.asUint64());
    } else if (key == "cycles") {
      scenario.cycles = value.asUint64();
    } else if (key == "burst") {
      const std::uint64_t b = value.asUint64();
      if (b > 0xFFFFFFFFull) throw ScenarioError("burst out of range");
      scenario.burst = static_cast<std::uint32_t>(b);
    } else if (key == "seed") {
      scenario.seed = value.asUint64();
    } else if (key == "lfsr") {
      scenario.lfsr = value.asBool();
    } else if (key == "kernel_mode") {
      scenario.kernel_mode = value.asString();
    } else if (key == "replicas") {
      scenario.replicas = smallUint(value, "replicas");
    } else if (key == "mesh") {
      scenario.mesh = meshFromJson(value);
    } else {
      throw ScenarioError("unknown scenario member \"" + key + "\"");
    }
  }
  return normalized(scenario);
}

std::string canonicalJson(const Scenario& scenario) {
  return toJson(normalized(scenario)).dump();
}

std::uint64_t scenarioHash(const Scenario& scenario) {
  const std::string bytes = canonicalJson(scenario);
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::string scenarioHashHex(const Scenario& scenario) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(scenarioHash(scenario)));
  return buffer;
}

// ---------------------------------------------------------------------------
// Result codec
// ---------------------------------------------------------------------------

namespace {

Json doublesToJson(const std::vector<double>& values) {
  Json array = Json::array();
  for (const double v : values) array.push(Json(v));
  return array;
}

std::vector<double> doublesFromJson(const Json& json) {
  std::vector<double> values;
  for (const Json& item : json.asArray()) values.push_back(item.asDouble());
  return values;
}

}  // namespace

Json toJson(const ScenarioResult& result) {
  Json messages = Json::array();
  for (const std::uint64_t m : result.messages_completed)
    messages.push(Json(m));
  Json json = Json::object();
  json.set("bandwidth_fraction", doublesToJson(result.bandwidth_fraction))
      .set("traffic_share", doublesToJson(result.traffic_share))
      .set("cycles_per_word", doublesToJson(result.cycles_per_word))
      .set("mean_message_latency",
           doublesToJson(result.mean_message_latency))
      .set("messages_completed", std::move(messages))
      .set("unutilized_fraction", Json(result.unutilized_fraction))
      .set("grants", Json(result.grants))
      .set("preemptions", Json(result.preemptions))
      .set("cycles", Json(static_cast<std::uint64_t>(result.cycles)));
  return json;
}

ScenarioResult resultFromJson(const Json& json) {
  ScenarioResult result;
  result.bandwidth_fraction = doublesFromJson(json.at("bandwidth_fraction"));
  result.traffic_share = doublesFromJson(json.at("traffic_share"));
  result.cycles_per_word = doublesFromJson(json.at("cycles_per_word"));
  result.mean_message_latency =
      doublesFromJson(json.at("mean_message_latency"));
  for (const Json& item : json.at("messages_completed").asArray())
    result.messages_completed.push_back(item.asUint64());
  result.unutilized_fraction = json.at("unutilized_fraction").asDouble();
  result.grants = json.at("grants").asUint64();
  result.preemptions = json.at("preemptions").asUint64();
  result.cycles = json.at("cycles").asUint64();
  return result;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

std::unique_ptr<bus::IArbiter> makeArbiter(const Scenario& scenario) {
  const auto& w = scenario.weights;
  if (scenario.arbiter == "lottery")
    return std::make_unique<core::LotteryArbiter>(
        w, scenario.lfsr ? core::LotteryRng::kLfsr : core::LotteryRng::kExact,
        scenario.seed);
  if (scenario.arbiter == "lottery-dynamic")
    return std::make_unique<core::DynamicLotteryArbiter>(scenario.seed);
  if (scenario.arbiter == "priority")
    return std::make_unique<arb::StaticPriorityArbiter>(
        std::vector<unsigned>(w.begin(), w.end()));
  if (scenario.arbiter == "tdma") {
    std::vector<unsigned> slots;
    for (const std::uint32_t v : w) slots.push_back(v * scenario.burst);
    return std::make_unique<arb::TdmaArbiter>(
        arb::TdmaArbiter::contiguousWheel(slots), w.size());
  }
  if (scenario.arbiter == "rr")
    return std::make_unique<arb::RoundRobinArbiter>(scenario.masters);
  if (scenario.arbiter == "wrr")
    return std::make_unique<arb::WeightedRoundRobinArbiter>(w, scenario.burst);
  if (scenario.arbiter == "token")
    return std::make_unique<arb::TokenRingArbiter>(scenario.masters, 0);
  if (scenario.arbiter == "random")
    return std::make_unique<arb::RandomArbiter>(scenario.masters,
                                                scenario.seed);
  if (scenario.arbiter == "fcfs")
    return std::make_unique<arb::FcfsArbiter>(scenario.masters);
  throw ScenarioError("unknown arbiter: " + scenario.arbiter);
}

namespace {

/// SplitMix64 finalizer; decorrelates per-(router, port) arbiter seeds so
/// adjacent instances never share low-bit-correlated RNG streams.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

noc::RouterArbiterFactory makeRouterArbiterFactory(const Scenario& scenario) {
  // Captured by value: the factory outlives the Scenario it was built from
  // (MeshNetwork holds it for the whole run).
  const std::string kind = scenario.arbiter;
  const std::vector<std::uint32_t> weights = scenario.weights;
  const std::uint32_t burst = scenario.burst;
  const bool lfsr = scenario.lfsr;
  const std::uint64_t seed = scenario.seed;
  return [kind, weights, burst, lfsr,
          seed](noc::NodeId router, int port) -> std::unique_ptr<bus::IArbiter> {
    const std::uint64_t instance = mix64(
        seed ^ mix64(static_cast<std::uint64_t>(router) * noc::kNumPorts +
                     static_cast<std::uint64_t>(port) + 1));
    if (kind == "lottery")
      return std::make_unique<core::LotteryArbiter>(
          weights, lfsr ? core::LotteryRng::kLfsr : core::LotteryRng::kExact,
          instance);
    if (kind == "lottery-dynamic")
      return std::make_unique<core::DynamicLotteryArbiter>(instance);
    if (kind == "priority")
      return std::make_unique<arb::StaticPriorityArbiter>(
          std::vector<unsigned>(weights.begin(), weights.end()));
    if (kind == "tdma") {
      std::vector<unsigned> slots;
      for (const std::uint32_t v : weights) slots.push_back(v * burst);
      return std::make_unique<arb::TdmaArbiter>(
          arb::TdmaArbiter::contiguousWheel(slots), weights.size());
    }
    if (kind == "rr")
      return std::make_unique<arb::RoundRobinArbiter>(noc::kNumPorts);
    if (kind == "wrr")
      return std::make_unique<arb::WeightedRoundRobinArbiter>(weights, burst);
    if (kind == "token")
      return std::make_unique<arb::TokenRingArbiter>(noc::kNumPorts, 0);
    if (kind == "random")
      return std::make_unique<arb::RandomArbiter>(noc::kNumPorts, instance);
    if (kind == "fcfs")
      return std::make_unique<arb::FcfsArbiter>(noc::kNumPorts);
    throw ScenarioError("unknown arbiter: " + kind);
  };
}

std::uint64_t replicaSeed(std::uint64_t base, std::uint32_t replica) {
  // Replica 0 keeps the base seed so a 1-replica run is the historical
  // single run byte for byte; later replicas pass through the SplitMix64
  // finalizer to decorrelate every derived RNG stream.
  if (replica == 0) return base;
  return mix64(base + static_cast<std::uint64_t>(replica));
}

namespace {

/// One live mesh replica: fabric + kernel + sources, built but not yet run.
/// The mesh leg's analogue of traffic::TestbedInstance.
struct MeshInstance {
  std::unique_ptr<noc::MeshNetwork> mesh;
  std::unique_ptr<sim::CycleKernel> kernel;
  std::vector<std::unique_ptr<traffic::TrafficSource>> sources;
  std::shared_ptr<noc::NocMetricsSinks> sinks;
};

MeshInstance buildMeshInstance(const Scenario& scenario,
                               const RunOptions& options, bool capture) {
  noc::MeshConfig config;
  config.width = scenario.mesh.width;
  config.height = scenario.mesh.height;
  config.vc_count = scenario.mesh.vc_count;
  config.vc_depth = scenario.mesh.vc_depth;
  config.router_delay = scenario.mesh.router_delay;
  config.pattern = noc::patternFromString(scenario.mesh.pattern);
  config.pattern_seed = scenario.seed;
  config.port_weights = scenario.weights;
  config.arbiter_factory = makeRouterArbiterFactory(scenario);
  config.record_grant_trace = capture;

  MeshInstance instance;
  instance.mesh = std::make_unique<noc::MeshNetwork>(config);
  instance.kernel = std::make_unique<sim::CycleKernel>();
  instance.kernel->setMode(scenario.kernel_mode == "naive"
                               ? sim::KernelMode::kNaive
                               : sim::KernelMode::kFast);

  const std::vector<traffic::TrafficParams> params = traffic::paramsFor(
      traffic::trafficClass(scenario.traffic_class), scenario.masters,
      scenario.seed);
  instance.sources.reserve(scenario.masters);
  for (std::size_t n = 0; n < scenario.masters; ++n) {
    instance.sources.push_back(std::make_unique<traffic::TrafficSource>(
        instance.mesh->ni(static_cast<noc::NodeId>(n)),
        static_cast<bus::MasterId>(n), params[n]));
    instance.kernel->attach(*instance.sources.back());
  }
  instance.mesh->attachTo(*instance.kernel);

  if (options.instrument) {
    obs::MetricsRegistry& registry =
        options.registry != nullptr ? *options.registry : obs::registry();
    instance.sinks = makeNocSinks(registry, scenario.arbiter, scenario.masters);
    instance.mesh->setMetricsSinks(instance.sinks.get());
  }
  return instance;
}

/// Summarizes a finished mesh replica (and copies out its grant trace when
/// `capture` targets this replica).
ScenarioResult collectMesh(MeshInstance& instance, const Scenario& scenario,
                           std::vector<noc::NocGrantRecord>* capture) {
  if (capture != nullptr) *capture = instance.mesh->grantTrace();

  const noc::NocStats& stats = instance.mesh->stats();
  std::uint64_t total_flits = 0;
  for (const noc::NocStats::PerSource& s : stats.sources)
    total_flits += s.flits_delivered;

  ScenarioResult result;
  result.cycles = scenario.cycles;
  result.grants = stats.grants;
  result.preemptions = 0;  // packets are atomic on mesh links
  const auto cycles = static_cast<double>(scenario.cycles);
  // Aggregate ejection bandwidth is one flit per node per cycle; the idle
  // remainder is the mesh analogue of the bus's unutilized fraction.
  result.unutilized_fraction =
      1.0 - static_cast<double>(total_flits) /
                (cycles * static_cast<double>(scenario.masters));
  for (const noc::NocStats::PerSource& s : stats.sources) {
    const auto flits = static_cast<double>(s.flits_delivered);
    const auto packets = static_cast<double>(s.packets_delivered);
    result.bandwidth_fraction.push_back(flits / cycles);
    result.traffic_share.push_back(
        total_flits > 0 ? flits / static_cast<double>(total_flits) : 0.0);
    result.cycles_per_word.push_back(
        s.flits_delivered > 0 ? s.latency_sum / flits : 0.0);
    result.mean_message_latency.push_back(
        s.packets_delivered > 0 ? s.latency_sum / packets : 0.0);
    result.messages_completed.push_back(s.packets_delivered);
  }
  return result;
}

/// One live bus replica: the test-bed plus its local arbitration tally
/// (tallies are per-replica so the batched runner's worker threads never
/// share one; publish() folds them into the registry afterwards).
struct BusReplica {
  std::unique_ptr<GrantTally> tally;
  std::unique_ptr<traffic::TestbedInstance> testbed;
};

BusReplica buildBusReplica(const Scenario& scenario, const RunOptions& options,
                           obs::MetricsRegistry& registry, bool capture) {
  bus::BusConfig config = traffic::defaultBusConfig(scenario.masters);
  config.max_burst_words = scenario.burst;

  BusReplica replica;
  replica.tally = std::make_unique<GrantTally>(scenario.masters);
  GrantTally* tally = replica.tally.get();

  traffic::TestbedOptions testbed_options;
  testbed_options.kernel_mode = scenario.kernel_mode == "naive"
                                    ? sim::KernelMode::kNaive
                                    : sim::KernelMode::kFast;
  const bool instrument = options.instrument;
  const std::size_t masters = scenario.masters;
  // Invoked during TestbedInstance construction (below), so the reference
  // captures outlive their use.
  testbed_options.setup = [&registry, tally, instrument, capture,
                           masters](bus::Bus& bus, sim::CycleKernel&) {
    if (instrument) {
      bus.setMetricsSinks(makeBusSinks(registry, bus.arbiter().name(), masters));
      bus.arbiter().setObserver(tally);
    }
    if (capture) bus.setTraceEnabled(true);
  };

  replica.testbed = std::make_unique<traffic::TestbedInstance>(
      std::move(config), makeArbiter(scenario),
      traffic::paramsFor(traffic::trafficClass(scenario.traffic_class),
                         scenario.masters, scenario.seed),
      std::move(testbed_options));
  return replica;
}

/// Summarizes a finished bus replica, detaches its observer, publishes its
/// tally, and copies out its trace when `capture` targets this replica.
ScenarioResult collectBusReplica(BusReplica& replica, const Scenario& scenario,
                                 const RunOptions& options,
                                 obs::MetricsRegistry& registry,
                                 std::vector<bus::GrantRecord>* capture) {
  const traffic::TestbedResult run = replica.testbed->finish(scenario.cycles);
  bus::Bus& bus = replica.testbed->bus();
  if (capture != nullptr) *capture = bus.trace();
  bus.arbiter().setObserver(nullptr);
  if (options.instrument)
    replica.tally->publish(registry, bus.arbiter().name());

  ScenarioResult result;
  result.bandwidth_fraction = run.bandwidth_fraction;
  result.traffic_share = run.traffic_share;
  result.cycles_per_word = run.cycles_per_word;
  result.mean_message_latency = run.mean_message_latency;
  result.messages_completed = run.messages_completed;
  result.unutilized_fraction = run.unutilized_fraction;
  result.grants = run.grants;
  result.preemptions = run.preemptions;
  result.cycles = run.cycles;
  return result;
}

/// Folds per-replica results into the replicated summary: means of the
/// per-master rates and fractions, sums of the event counters, the (shared)
/// cycle count unchanged.
ScenarioResult aggregateReplicas(const std::vector<ScenarioResult>& runs) {
  ScenarioResult result = runs.front();
  const auto n = result.bandwidth_fraction.size();
  for (std::size_t r = 1; r < runs.size(); ++r) {
    const ScenarioResult& run = runs[r];
    for (std::size_t m = 0; m < n; ++m) {
      result.bandwidth_fraction[m] += run.bandwidth_fraction[m];
      result.traffic_share[m] += run.traffic_share[m];
      result.cycles_per_word[m] += run.cycles_per_word[m];
      result.mean_message_latency[m] += run.mean_message_latency[m];
      result.messages_completed[m] += run.messages_completed[m];
    }
    result.unutilized_fraction += run.unutilized_fraction;
    result.grants += run.grants;
    result.preemptions += run.preemptions;
  }
  const auto count = static_cast<double>(runs.size());
  for (std::size_t m = 0; m < n; ++m) {
    result.bandwidth_fraction[m] /= count;
    result.traffic_share[m] /= count;
    result.cycles_per_word[m] /= count;
    result.mean_message_latency[m] /= count;
  }
  result.unutilized_fraction /= count;
  return result;
}

/// The replicated leg: scenario.replicas independently-seeded replicas of
/// the (otherwise identical) scenario, stepped in lockstep chunks by
/// sim::BatchedReplicaRunner and aggregated.  Replica r's system is
/// bit-identical to running the scenario with seed = replicaSeed(seed, r)
/// and replicas = 1 — tests/kernel_diff_test.cpp enforces this against the
/// sequential reference for bus and mesh scenarios alike.
ScenarioResult runReplicatedScenario(const Scenario& scenario,
                                     const RunOptions& options) {
  std::vector<Scenario> reps(scenario.replicas, scenario);
  for (std::uint32_t r = 0; r < scenario.replicas; ++r) {
    reps[r].replicas = 1;
    reps[r].seed = replicaSeed(scenario.seed, r);
  }

  sim::BatchedReplicaRunner runner;
  std::vector<ScenarioResult> runs;
  runs.reserve(reps.size());

  if (scenario.mesh.enabled()) {
    std::vector<MeshInstance> instances;
    instances.reserve(reps.size());
    for (std::uint32_t r = 0; r < scenario.replicas; ++r)
      instances.push_back(buildMeshInstance(
          reps[r], options, r == 0 && options.capture_mesh_trace != nullptr));
    for (MeshInstance& instance : instances) runner.add(*instance.kernel);
    runner.run(scenario.cycles);
    for (std::uint32_t r = 0; r < scenario.replicas; ++r)
      runs.push_back(collectMesh(instances[r], reps[r],
                                 r == 0 ? options.capture_mesh_trace
                                        : nullptr));
    return aggregateReplicas(runs);
  }

  obs::MetricsRegistry& registry =
      options.registry != nullptr ? *options.registry : obs::registry();
  std::vector<BusReplica> replicas;
  replicas.reserve(reps.size());
  for (std::uint32_t r = 0; r < scenario.replicas; ++r)
    replicas.push_back(buildBusReplica(
        reps[r], options, registry,
        r == 0 && options.capture_trace != nullptr));
  for (BusReplica& replica : replicas) runner.add(replica.testbed->kernel());
  runner.run(scenario.cycles);
  for (std::uint32_t r = 0; r < scenario.replicas; ++r)
    runs.push_back(collectBusReplica(replicas[r], reps[r], options, registry,
                                     r == 0 ? options.capture_trace
                                            : nullptr));
  return aggregateReplicas(runs);
}

}  // namespace

ScenarioResult runScenario(const Scenario& raw) {
  return runScenario(raw, RunOptions{});
}

ScenarioResult runScenario(const Scenario& raw, const RunOptions& options) {
  const Scenario scenario = normalized(raw);
  if (scenario.replicas > 1) return runReplicatedScenario(scenario, options);

  if (scenario.mesh.enabled()) {
    MeshInstance instance = buildMeshInstance(
        scenario, options, options.capture_mesh_trace != nullptr);
    instance.kernel->run(scenario.cycles);
    return collectMesh(instance, scenario, options.capture_mesh_trace);
  }

  obs::MetricsRegistry& registry =
      options.registry != nullptr ? *options.registry : obs::registry();
  BusReplica replica = buildBusReplica(scenario, options, registry,
                                       options.capture_trace != nullptr);
  replica.testbed->runWarmup();
  replica.testbed->kernel().run(scenario.cycles);
  return collectBusReplica(replica, scenario, options, registry,
                           options.capture_trace);
}

}  // namespace lb::service
