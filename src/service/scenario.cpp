#include "service/scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "arbiters/round_robin.hpp"
#include "arbiters/simple.hpp"
#include "arbiters/static_priority.hpp"
#include "arbiters/tdma.hpp"
#include "arbiters/token_ring.hpp"
#include "arbiters/weighted_round_robin.hpp"
#include "core/lottery.hpp"
#include "service/metrics.hpp"
#include "traffic/classes.hpp"
#include "traffic/testbed.hpp"

namespace lb::service {

const std::vector<std::string>& knownArbiters() {
  static const std::vector<std::string> kinds = {
      "lottery", "lottery-dynamic", "priority", "tdma", "rr",
      "wrr",     "token",           "random",   "fcfs"};
  return kinds;
}

bool isKnownArbiter(const std::string& kind) {
  const auto& kinds = knownArbiters();
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

Scenario normalized(Scenario scenario) {
  if (!isKnownArbiter(scenario.arbiter))
    throw ScenarioError("unknown arbiter: " + scenario.arbiter);
  bool class_ok = false;
  for (const auto& cls : traffic::allTrafficClasses())
    class_ok = class_ok || cls.name == scenario.traffic_class;
  if (!class_ok)
    throw ScenarioError("unknown traffic class: " + scenario.traffic_class);
  if (scenario.masters == 0) throw ScenarioError("masters must be >= 1");
  if (scenario.cycles == 0) throw ScenarioError("cycles must be >= 1");
  if (scenario.burst == 0) throw ScenarioError("burst must be >= 1");
  // lbsim's historical reconciliation: an explicit multi-element weight
  // list defines the master count; otherwise weights broadcast to 1s.
  if (scenario.weights.size() != scenario.masters) {
    if (scenario.weights.size() > 1)
      scenario.masters = scenario.weights.size();
    else
      scenario.weights.assign(scenario.masters, 1);
  }
  for (const std::uint32_t w : scenario.weights)
    if (w == 0) throw ScenarioError("weights must be >= 1");
  if (scenario.kernel_mode != "fast" && scenario.kernel_mode != "naive")
    throw ScenarioError("unknown kernel_mode: " + scenario.kernel_mode);
  return scenario;
}

Json toJson(const Scenario& scenario) {
  Json weights = Json::array();
  for (const std::uint32_t w : scenario.weights)
    weights.push(Json(static_cast<std::uint64_t>(w)));
  Json json = Json::object();
  json.set("arbiter", Json(scenario.arbiter))
      .set("weights", std::move(weights))
      .set("class", Json(scenario.traffic_class))
      .set("masters", Json(static_cast<std::uint64_t>(scenario.masters)))
      .set("cycles", Json(static_cast<std::uint64_t>(scenario.cycles)))
      .set("burst", Json(static_cast<std::uint64_t>(scenario.burst)))
      .set("seed", Json(scenario.seed))
      .set("lfsr", Json(scenario.lfsr));
  // Emitted only when non-default so pre-existing content hashes (and every
  // cached result keyed by them) stay valid.
  if (scenario.kernel_mode != "fast")
    json.set("kernel_mode", Json(scenario.kernel_mode));
  return json;
}

Scenario scenarioFromJson(const Json& json) {
  Scenario scenario;
  bool weights_given = false;
  for (const auto& [key, value] : json.asObject()) {
    if (key == "arbiter") {
      scenario.arbiter = value.asString();
    } else if (key == "weights" || key == "tickets" || key == "priorities") {
      if (weights_given)
        throw ScenarioError("weights given more than once");
      weights_given = true;
      scenario.weights.clear();
      for (const Json& item : value.asArray()) {
        const std::uint64_t w = item.asUint64();
        if (w > 0xFFFFFFFFull) throw ScenarioError("weight out of range");
        scenario.weights.push_back(static_cast<std::uint32_t>(w));
      }
    } else if (key == "class") {
      scenario.traffic_class = value.asString();
    } else if (key == "masters") {
      scenario.masters = static_cast<std::size_t>(value.asUint64());
    } else if (key == "cycles") {
      scenario.cycles = value.asUint64();
    } else if (key == "burst") {
      const std::uint64_t b = value.asUint64();
      if (b > 0xFFFFFFFFull) throw ScenarioError("burst out of range");
      scenario.burst = static_cast<std::uint32_t>(b);
    } else if (key == "seed") {
      scenario.seed = value.asUint64();
    } else if (key == "lfsr") {
      scenario.lfsr = value.asBool();
    } else if (key == "kernel_mode") {
      scenario.kernel_mode = value.asString();
    } else {
      throw ScenarioError("unknown scenario member \"" + key + "\"");
    }
  }
  return normalized(scenario);
}

std::string canonicalJson(const Scenario& scenario) {
  return toJson(normalized(scenario)).dump();
}

std::uint64_t scenarioHash(const Scenario& scenario) {
  const std::string bytes = canonicalJson(scenario);
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::string scenarioHashHex(const Scenario& scenario) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(scenarioHash(scenario)));
  return buffer;
}

// ---------------------------------------------------------------------------
// Result codec
// ---------------------------------------------------------------------------

namespace {

Json doublesToJson(const std::vector<double>& values) {
  Json array = Json::array();
  for (const double v : values) array.push(Json(v));
  return array;
}

std::vector<double> doublesFromJson(const Json& json) {
  std::vector<double> values;
  for (const Json& item : json.asArray()) values.push_back(item.asDouble());
  return values;
}

}  // namespace

Json toJson(const ScenarioResult& result) {
  Json messages = Json::array();
  for (const std::uint64_t m : result.messages_completed)
    messages.push(Json(m));
  Json json = Json::object();
  json.set("bandwidth_fraction", doublesToJson(result.bandwidth_fraction))
      .set("traffic_share", doublesToJson(result.traffic_share))
      .set("cycles_per_word", doublesToJson(result.cycles_per_word))
      .set("mean_message_latency",
           doublesToJson(result.mean_message_latency))
      .set("messages_completed", std::move(messages))
      .set("unutilized_fraction", Json(result.unutilized_fraction))
      .set("grants", Json(result.grants))
      .set("preemptions", Json(result.preemptions))
      .set("cycles", Json(static_cast<std::uint64_t>(result.cycles)));
  return json;
}

ScenarioResult resultFromJson(const Json& json) {
  ScenarioResult result;
  result.bandwidth_fraction = doublesFromJson(json.at("bandwidth_fraction"));
  result.traffic_share = doublesFromJson(json.at("traffic_share"));
  result.cycles_per_word = doublesFromJson(json.at("cycles_per_word"));
  result.mean_message_latency =
      doublesFromJson(json.at("mean_message_latency"));
  for (const Json& item : json.at("messages_completed").asArray())
    result.messages_completed.push_back(item.asUint64());
  result.unutilized_fraction = json.at("unutilized_fraction").asDouble();
  result.grants = json.at("grants").asUint64();
  result.preemptions = json.at("preemptions").asUint64();
  result.cycles = json.at("cycles").asUint64();
  return result;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

std::unique_ptr<bus::IArbiter> makeArbiter(const Scenario& scenario) {
  const auto& w = scenario.weights;
  if (scenario.arbiter == "lottery")
    return std::make_unique<core::LotteryArbiter>(
        w, scenario.lfsr ? core::LotteryRng::kLfsr : core::LotteryRng::kExact,
        scenario.seed);
  if (scenario.arbiter == "lottery-dynamic")
    return std::make_unique<core::DynamicLotteryArbiter>(scenario.seed);
  if (scenario.arbiter == "priority")
    return std::make_unique<arb::StaticPriorityArbiter>(
        std::vector<unsigned>(w.begin(), w.end()));
  if (scenario.arbiter == "tdma") {
    std::vector<unsigned> slots;
    for (const std::uint32_t v : w) slots.push_back(v * scenario.burst);
    return std::make_unique<arb::TdmaArbiter>(
        arb::TdmaArbiter::contiguousWheel(slots), w.size());
  }
  if (scenario.arbiter == "rr")
    return std::make_unique<arb::RoundRobinArbiter>(scenario.masters);
  if (scenario.arbiter == "wrr")
    return std::make_unique<arb::WeightedRoundRobinArbiter>(w, scenario.burst);
  if (scenario.arbiter == "token")
    return std::make_unique<arb::TokenRingArbiter>(scenario.masters, 0);
  if (scenario.arbiter == "random")
    return std::make_unique<arb::RandomArbiter>(scenario.masters,
                                                scenario.seed);
  if (scenario.arbiter == "fcfs")
    return std::make_unique<arb::FcfsArbiter>(scenario.masters);
  throw ScenarioError("unknown arbiter: " + scenario.arbiter);
}

ScenarioResult runScenario(const Scenario& raw) {
  return runScenario(raw, RunOptions{});
}

ScenarioResult runScenario(const Scenario& raw, const RunOptions& options) {
  const Scenario scenario = normalized(raw);
  bus::BusConfig config = traffic::defaultBusConfig(scenario.masters);
  config.max_burst_words = scenario.burst;

  obs::MetricsRegistry& registry =
      options.registry != nullptr ? *options.registry : obs::registry();
  GrantTally tally(scenario.masters);
  std::string arbiter_label;

  traffic::TestbedOptions testbed_options;
  testbed_options.kernel_mode = scenario.kernel_mode == "naive"
                                    ? sim::KernelMode::kNaive
                                    : sim::KernelMode::kFast;
  testbed_options.setup = [&](bus::Bus& bus, sim::CycleKernel&) {
    arbiter_label = bus.arbiter().name();
    if (options.instrument) {
      bus.setMetricsSinks(
          makeBusSinks(registry, arbiter_label, scenario.masters));
      bus.arbiter().setObserver(&tally);
    }
    if (options.capture_trace != nullptr) bus.setTraceEnabled(true);
  };
  testbed_options.teardown = [&](bus::Bus& bus) {
    if (options.capture_trace != nullptr) *options.capture_trace = bus.trace();
    bus.arbiter().setObserver(nullptr);
  };

  const traffic::TestbedResult run = traffic::runTestbed(
      std::move(config), makeArbiter(scenario),
      traffic::paramsFor(traffic::trafficClass(scenario.traffic_class),
                         scenario.masters, scenario.seed),
      scenario.cycles, std::move(testbed_options));
  if (options.instrument) tally.publish(registry, arbiter_label);
  ScenarioResult result;
  result.bandwidth_fraction = run.bandwidth_fraction;
  result.traffic_share = run.traffic_share;
  result.cycles_per_word = run.cycles_per_word;
  result.mean_message_latency = run.mean_message_latency;
  result.messages_completed = run.messages_completed;
  result.unutilized_fraction = run.unutilized_fraction;
  result.grants = run.grants;
  result.preemptions = run.preemptions;
  result.cycles = run.cycles;
  return result;
}

}  // namespace lb::service
