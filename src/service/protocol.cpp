#include "service/protocol.hpp"

#include <algorithm>
#include <stdexcept>

namespace lb::service {

const std::vector<std::string>& protocolVerbs() {
  static const std::vector<std::string> verbs = {"run", "sweep", "stats",
                                                 "metrics", "shutdown"};
  return verbs;
}

bool isProtocolVerb(const std::string& verb) {
  const auto& verbs = protocolVerbs();
  return std::find(verbs.begin(), verbs.end(), verb) != verbs.end();
}

Json protocolVerbsJson() {
  Json array = Json::array();
  for (const std::string& verb : protocolVerbs()) array.push(Json(verb));
  return array;
}

Json& stampProtocolVersion(Json& response) {
  return response.set("v", Json(kProtocolVersion));
}

void requireProtocolVersion(const Json& response) {
  const auto& members = response.asObject();
  const auto it =
      std::find_if(members.begin(), members.end(),
                   [](const auto& member) { return member.first == "v"; });
  if (it == members.end())
    throw std::runtime_error(
        "response carries no protocol version (daemon too old?)");
  const std::uint64_t v = it->second.asUint64();
  if (v != kProtocolVersion)
    throw std::runtime_error("unsupported protocol version " +
                             std::to_string(v) + " (this client speaks " +
                             std::to_string(kProtocolVersion) + ")");
}

}  // namespace lb::service
