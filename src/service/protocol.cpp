#include "service/protocol.hpp"

#include <algorithm>
#include <stdexcept>

namespace lb::service {

const std::vector<VerbSpec>& verbRegistry() {
  static const std::vector<VerbSpec> registry = {
      {"run", /*idempotent=*/true, /*streaming=*/false,
       "simulate one scenario (content-addressed, cached)"},
      {"sweep", /*idempotent=*/true, /*streaming=*/false,
       "simulate a list of scenarios, one response frame"},
      {"batch", /*idempotent=*/true, /*streaming=*/true,
       "submit N scenarios, stream results as they complete"},
      {"stats", /*idempotent=*/true, /*streaming=*/false,
       "daemon counters (requests, cache, queue, latency)"},
      {"metrics", /*idempotent=*/true, /*streaming=*/false,
       "Prometheus text exposition of the metrics registry"},
      {"trace", /*idempotent=*/true, /*streaming=*/false,
       "flight-recorder dump as chrome_trace JSON"},
      {"health", /*idempotent=*/true, /*streaming=*/false,
       "live loop/queue/connection introspection as JSON"},
      {"history", /*idempotent=*/true, /*streaming=*/false,
       "metrics time-series dump from the in-memory ring"},
      {"shutdown", /*idempotent=*/false, /*streaming=*/false,
       "stop the daemon after answering"},
  };
  return registry;
}

const VerbSpec* findVerb(const std::string& verb) {
  for (const VerbSpec& spec : verbRegistry())
    if (spec.name == verb) return &spec;
  return nullptr;
}

const std::vector<std::string>& protocolVerbs() {
  static const std::vector<std::string> verbs = [] {
    std::vector<std::string> names;
    for (const VerbSpec& spec : verbRegistry()) names.push_back(spec.name);
    return names;
  }();
  return verbs;
}

bool isProtocolVerb(const std::string& verb) {
  return findVerb(verb) != nullptr;
}

Json protocolVerbsJson() {
  Json array = Json::array();
  for (const std::string& verb : protocolVerbs()) array.push(Json(verb));
  return array;
}

Json& stampProtocolVersion(Json& response) {
  return response.set("v", Json(kProtocolVersion));
}

void requireProtocolVersion(const Json& response) {
  const auto& members = response.asObject();
  const auto it =
      std::find_if(members.begin(), members.end(),
                   [](const auto& member) { return member.first == "v"; });
  if (it == members.end())
    throw std::runtime_error(
        "response carries no protocol version (daemon too old?)");
  const std::uint64_t v = it->second.asUint64();
  if (v != kProtocolVersion)
    throw std::runtime_error("unsupported protocol version " +
                             std::to_string(v) + " (this client speaks " +
                             std::to_string(kProtocolVersion) + ")");
}

bool isIdempotentVerb(const std::string& verb) {
  const VerbSpec* spec = findVerb(verb);
  return spec != nullptr && spec->idempotent;
}

Json makeOverloadedResponse(const std::string& reason,
                            std::uint32_t retry_after_ms) {
  Json response = Json::object();
  response.set("ok", Json(false))
      .set("error", Json("overloaded: " + reason))
      .set("overloaded", Json(true))
      .set("retry_after_ms", Json(std::uint64_t{retry_after_ms}));
  return response;
}

bool isOverloadedResponse(const Json& response) {
  if (!response.isObject()) return false;
  const Json* overloaded = response.find("overloaded");
  return overloaded != nullptr && overloaded->isBool() &&
         overloaded->asBool();
}

std::uint64_t retryAfterMs(const Json& response) {
  if (!response.isObject()) return 0;
  const Json* hint = response.find("retry_after_ms");
  if (hint == nullptr || !hint->isInteger()) return 0;
  return hint->asUint64();
}

namespace {

obs::TraceContext traceContextFromMessage(const Json& message) {
  obs::TraceContext context;
  if (!message.isObject()) return context;
  const Json* block = message.find("trace");
  if (block == nullptr || !block->isObject()) return context;
  const Json* id = block->find("id");
  const Json* span = block->find("span");
  if (id == nullptr || !id->isInteger()) return context;
  context.trace_id = id->asUint64();
  if (span != nullptr && span->isInteger()) context.span_id = span->asUint64();
  return context;
}

}  // namespace

obs::TraceContext traceContextFromRequest(const Json& request) {
  return traceContextFromMessage(request);
}

Json traceContextJson(const obs::TraceContext& context) {
  Json block = Json::object();
  block.set("id", Json(context.trace_id))
      .set("span", Json(context.span_id));
  return block;
}

Json& stampTraceContext(Json& response, const obs::TraceContext& context) {
  return response.set("trace", traceContextJson(context));
}

obs::TraceContext traceContextFromResponse(const Json& response) {
  return traceContextFromMessage(response);
}

Json makeBatchFrameHeader(std::uint64_t index, std::uint64_t seq,
                          std::uint64_t of) {
  Json block = Json::object();
  block.set("index", Json(index)).set("seq", Json(seq)).set("of", Json(of));
  return block;
}

Json makeBatchSummaryHeader(std::uint64_t of, std::uint64_t completed,
                            std::uint64_t errors) {
  Json block = Json::object();
  block.set("done", Json(true))
      .set("of", Json(of))
      .set("completed", Json(completed))
      .set("errors", Json(errors));
  return block;
}

bool isBatchFrame(const Json& response) {
  if (!response.isObject()) return false;
  const Json* block = response.find("batch");
  return block != nullptr && block->isObject();
}

bool isBatchSummaryFrame(const Json& response) {
  if (!isBatchFrame(response)) return false;
  const Json* done = response.find("batch")->find("done");
  return done != nullptr && done->isBool() && done->asBool();
}

std::uint64_t batchFrameIndex(const Json& response) {
  return response.at("batch").at("index").asUint64();
}

}  // namespace lb::service
