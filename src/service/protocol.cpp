#include "service/protocol.hpp"

#include <algorithm>
#include <stdexcept>

namespace lb::service {

const std::vector<std::string>& protocolVerbs() {
  static const std::vector<std::string> verbs = {"run",     "sweep", "stats",
                                                 "metrics", "trace", "shutdown"};
  return verbs;
}

bool isProtocolVerb(const std::string& verb) {
  const auto& verbs = protocolVerbs();
  return std::find(verbs.begin(), verbs.end(), verb) != verbs.end();
}

Json protocolVerbsJson() {
  Json array = Json::array();
  for (const std::string& verb : protocolVerbs()) array.push(Json(verb));
  return array;
}

Json& stampProtocolVersion(Json& response) {
  return response.set("v", Json(kProtocolVersion));
}

void requireProtocolVersion(const Json& response) {
  const auto& members = response.asObject();
  const auto it =
      std::find_if(members.begin(), members.end(),
                   [](const auto& member) { return member.first == "v"; });
  if (it == members.end())
    throw std::runtime_error(
        "response carries no protocol version (daemon too old?)");
  const std::uint64_t v = it->second.asUint64();
  if (v != kProtocolVersion)
    throw std::runtime_error("unsupported protocol version " +
                             std::to_string(v) + " (this client speaks " +
                             std::to_string(kProtocolVersion) + ")");
}

bool isIdempotentVerb(const std::string& verb) {
  return verb == "run" || verb == "sweep" || verb == "stats" ||
         verb == "metrics" || verb == "trace";
}

Json makeOverloadedResponse(const std::string& reason,
                            std::uint32_t retry_after_ms) {
  Json response = Json::object();
  response.set("ok", Json(false))
      .set("error", Json("overloaded: " + reason))
      .set("overloaded", Json(true))
      .set("retry_after_ms", Json(std::uint64_t{retry_after_ms}));
  return response;
}

bool isOverloadedResponse(const Json& response) {
  if (!response.isObject()) return false;
  const Json* overloaded = response.find("overloaded");
  return overloaded != nullptr && overloaded->isBool() &&
         overloaded->asBool();
}

std::uint64_t retryAfterMs(const Json& response) {
  if (!response.isObject()) return 0;
  const Json* hint = response.find("retry_after_ms");
  if (hint == nullptr || !hint->isInteger()) return 0;
  return hint->asUint64();
}

namespace {

obs::TraceContext traceContextFromMessage(const Json& message) {
  obs::TraceContext context;
  if (!message.isObject()) return context;
  const Json* block = message.find("trace");
  if (block == nullptr || !block->isObject()) return context;
  const Json* id = block->find("id");
  const Json* span = block->find("span");
  if (id == nullptr || !id->isInteger()) return context;
  context.trace_id = id->asUint64();
  if (span != nullptr && span->isInteger()) context.span_id = span->asUint64();
  return context;
}

}  // namespace

obs::TraceContext traceContextFromRequest(const Json& request) {
  return traceContextFromMessage(request);
}

Json traceContextJson(const obs::TraceContext& context) {
  Json block = Json::object();
  block.set("id", Json(context.trace_id))
      .set("span", Json(context.span_id));
  return block;
}

Json& stampTraceContext(Json& response, const obs::TraceContext& context) {
  return response.set("trace", traceContextJson(context));
}

obs::TraceContext traceContextFromResponse(const Json& response) {
  return traceContextFromMessage(response);
}

}  // namespace lb::service
