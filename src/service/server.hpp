#pragma once
// lbserve TCP daemon: newline-delimited JSON over a loopback socket.
//
// Wire protocol (one request line -> one response line, UTF-8 JSON):
//
//   {"verb":"run","scenario":{...}}          -> {"ok":true,"hash":"...",
//                                                "cached":bool,
//                                                "coalesced":bool,
//                                                "result":{...}}
//   {"verb":"sweep","scenarios":[{...},...]} -> {"ok":true,"results":[
//                                                {"ok":true,...} |
//                                                {"ok":false,"error":"..."}]}
//   {"verb":"stats"}                         -> {"ok":true,"stats":{...}}
//   {"verb":"metrics"}                       -> {"ok":true,"metrics":
//                                                "<Prometheus text>"}
//   {"verb":"shutdown"}                      -> {"ok":true} then the
//                                               listener stops
//
// Every response additionally carries `"v":1` (see service/protocol.hpp);
// unknown verbs yield {"ok":false,"error":...,"supported_verbs":[...]}.
//
// Any malformed line yields {"ok":false,"error":"..."}; the connection
// stays open (clients may pipeline many requests per connection).  Each
// accepted connection is handled on its own thread; simulation work is
// bounded by the job engine, not by the connection count.
//
// The server records wall-clock service latency per request (parse ->
// response ready) in a fixed-size reservoir and reports p50/p95 via
// `stats` — the observable difference between a cold simulation and a
// cache hit.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "obs/log.hpp"
#include "service/job_engine.hpp"

namespace lb::service {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; see Server::port()
  JobEngineOptions engine;
  /// Per-connection idle read deadline: a connection that sends no bytes
  /// for this long is closed (its handler exits; half-open peers cannot
  /// pin threads forever).  Zero disables the deadline (seed behavior).
  std::chrono::milliseconds read_deadline{0};
  /// Socket-layer fault injector for this server's connections (torn
  /// reads/writes, resets).  nullptr = inert.
  fault::FaultInjector* fault = nullptr;
  /// Flight recorder for per-request span trees (server.request roots plus
  /// server.read/parse/write and the engine-side stages) and the `trace`
  /// verb.  nullptr (the default) keeps every response byte-identical to a
  /// recorder-less build: no trace block is echoed unless the client sent
  /// one.  Also threaded into the engine unless engine.recorder is set.
  obs::FlightRecorder* recorder = nullptr;
  /// Structured logger (nullptr: the process-wide obs::log()).
  obs::Log* log = nullptr;
};

class Server {
public:
  /// Binds + listens on 127.0.0.1 immediately (throws std::runtime_error
  /// on socket failure) but does not accept until serve()/start().
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves ephemeral port 0).
  std::uint16_t port() const { return port_; }

  /// Blocking accept loop; returns after a `shutdown` verb or stop().
  void serve();

  /// serve() on a background thread (for in-process tests).
  void start();

  /// Stops the accept loop from another thread and joins connections.
  void stop();

  /// Handles one already-parsed request (exposed for protocol tests; the
  /// socket layer is a thin line-framing wrapper around this).  When the
  /// recorder is enabled, `root_out` (optional) receives the identity of
  /// the server.request root span covering this request, so the caller can
  /// parent adjacent spans (server.read / server.write) under it.
  std::string handleRequest(const std::string& line,
                            obs::TraceContext* root_out = nullptr);

  JobEngine& engine() { return engine_; }

private:
  void handleConnection(int fd);
  void pokeListener();
  void recordLatency(double micros);
  Json statsJson();
  /// Maps a job outcome to its wire response; kShed becomes the explicit
  /// overloaded/retry_after_ms document and bumps lb_server_shed_total.
  /// Shed/error outcomes annotate the request's trace and emit a warn line.
  Json outcomeResponse(const JobOutcome& outcome,
                       const obs::TraceContext& ctx);
  /// Records one completed span (no-op when the recorder is off).
  void recordSpan(const obs::TraceContext& trace, std::uint64_t span_id,
                  std::uint64_t parent_id, const char* name,
                  const std::string& note,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end);

  ServerOptions options_;
  JobEngine engine_;
  obs::Log& log_;  ///< resolved from options_.log
  /// Per-verb request counters and the protocol-error counter, resolved
  /// against the engine's registry (so a `metrics` scrape includes them).
  obs::Family<obs::Counter>& requests_family_;
  obs::Counter& protocol_errors_counter_;
  obs::Counter& shed_counter_;
  /// Wall-clock per-request service time, labeled by verb; one observation
  /// per handleRequest call (the count reconciles 1:1 with server.request
  /// root spans whenever the recorder is enabled).
  obs::Family<obs::Histogram>& request_micros_family_;
  /// Server-side lb_request_stage_micros children (the engine owns
  /// cache_lookup/queue_wait/execute).
  obs::Histogram& stage_read_;
  obs::Histogram& stage_parse_;
  obs::Histogram& stage_write_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};

  std::mutex latency_mutex_;
  std::vector<double> latency_reservoir_;  ///< ring buffer, micros
  std::size_t latency_next_ = 0;
  std::uint64_t latency_count_ = 0;

  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
  std::thread serve_thread_;
};

}  // namespace lb::service
