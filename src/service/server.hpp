#pragma once
// lbserve TCP daemon: newline-delimited JSON over a loopback socket.
//
// Wire protocol (one request line -> one or more response lines, UTF-8
// JSON; see docs/service.md):
//
//   {"verb":"run","scenario":{...}}          -> {"ok":true,"hash":"...",
//                                                "cached":bool,
//                                                "coalesced":bool,
//                                                "result":{...}}
//   {"verb":"sweep","scenarios":[{...},...]} -> {"ok":true,"results":[
//                                                {"ok":true,...} |
//                                                {"ok":false,"error":"..."}]}
//   {"verb":"batch","scenarios":[{...},...]} -> N per-result frames in
//                                               completion order, each with
//                                               "batch":{"index","seq","of"},
//                                               then a terminal
//                                               {"ok":true,"batch":
//                                               {"done":true,...}} frame
//   {"verb":"stats"}                         -> {"ok":true,"stats":{...}}
//   {"verb":"metrics"}                       -> {"ok":true,"metrics":
//                                                "<Prometheus text>"}
//   {"verb":"health"}                        -> {"ok":true,"health":{loop,
//                                               requests, engine,
//                                               connections table}}
//   {"verb":"history"}                       -> {"ok":true,"history":
//                                               {samples:[...]}} from the
//                                               in-memory time-series ring
//   {"verb":"shutdown"}                      -> {"ok":true} then the
//                                               listener stops
//
// Every response additionally carries `"v":1` (see service/protocol.hpp);
// unknown verbs yield {"ok":false,"error":...,"supported_verbs":[...]}.
// The verb table itself lives in protocol.hpp's verbRegistry(); the server
// binds a handler to every registry row (checked at construction).
//
// Any malformed line yields {"ok":false,"error":"..."}; the connection
// stays open and clients may pipeline many requests per connection —
// responses always come back in request order.
//
// Connection handling is a poll()-based event loop by default: one loop
// thread owns every socket (nonblocking reads/writes, per-connection
// buffers with incremental line framing), a small dispatch pool parses
// requests and serializes responses, and simulation work stays on the job
// engine's ThreadPool.  Job completions re-enter the loop through a wakeup
// pipe.  A fair-share window keeps any one `batch` request from occupying
// the whole engine queue, so interactive run/stats requests stay
// responsive while batches stream.  ServerOptions::thread_per_connection
// restores the legacy one-thread-per-accept loop (the baseline for
// bench/server_saturation).
//
// The server records wall-clock service latency per request (parse ->
// response ready) in a fixed-size reservoir and reports p50/p95 via
// `stats` — the observable difference between a cold simulation and a
// cache hit.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "obs/log.hpp"
#include "obs/timeseries.hpp"
#include "service/job_engine.hpp"

namespace lb::service {

struct ServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; see Server::port()
  JobEngineOptions engine;
  /// Per-connection idle read deadline: a connection that sends no bytes
  /// for this long (and has no request in flight) is closed, so half-open
  /// peers cannot pin resources forever.  Zero disables the deadline.
  std::chrono::milliseconds read_deadline{0};
  /// Socket-layer fault injector for this server's connections (torn
  /// reads/writes, resets).  nullptr = inert.
  fault::FaultInjector* fault = nullptr;
  /// Flight recorder for per-request span trees (server.request roots plus
  /// server.read/parse/write and the engine-side stages) and the `trace`
  /// verb.  nullptr (the default) keeps every response byte-identical to a
  /// recorder-less build: no trace block is echoed unless the client sent
  /// one.  Also threaded into the engine unless engine.recorder is set.
  obs::FlightRecorder* recorder = nullptr;
  /// Structured logger (nullptr: the process-wide obs::log()).
  obs::Log* log = nullptr;
  /// Legacy accept loop: one blocking-I/O thread per connection.  Kept as
  /// the measured baseline for bench/server_saturation and as an escape
  /// hatch; the default is the event loop.
  bool thread_per_connection = false;
  /// Event-loop dispatch pool size (request parse + verb dispatch +
  /// response serialization run here, off the loop thread).  0 = auto.
  std::size_t dispatch_threads = 0;
  /// Fair-share dispatch: the most jobs one `batch` request may keep in
  /// the engine at a time.  0 = auto (the engine's worker count), so a
  /// batch can saturate the workers but an interactive run is never more
  /// than one window behind in the bounded FIFO.
  std::size_t batch_window = 0;
  /// Upper bound on scenarios per batch request (guards the per-request
  /// bookkeeping the same way kMaxLineBytes guards the parser).
  std::size_t max_batch = 4096;
  /// Metrics time-series ring behind the `history` verb: the registry is
  /// sampled every `history_interval` into a ring of `history_capacity`
  /// delta snapshots (obs::TimeSeriesRing).  Zero interval disables the
  /// sampler; `history` then answers with an explanatory error, exactly
  /// like `trace` without a recorder.
  std::chrono::milliseconds history_interval{1000};
  std::size_t history_capacity = 120;
  /// Slow-request exemplars: a request whose wall-clock service time
  /// exceeds its verb's threshold (or `slow_request_default_us` when the
  /// verb has no entry) bumps lb_server_slow_requests_total{verb} and, when
  /// the flight recorder is on, annotates the request's trace with a
  /// server.slow_request event.  Zero disables the check for that verb.
  std::uint64_t slow_request_default_us = 0;
  std::unordered_map<std::string, std::uint64_t> slow_request_us;
  /// Loop-stall detector: one event-loop iteration spending longer than
  /// this outside poll() bumps lb_loop_stalls_total and emits a
  /// rate-limited (1/s) structured warn.  Zero disables the detector.
  std::chrono::milliseconds stall_threshold{100};
};

class Server {
public:
  /// Binds + listens on 127.0.0.1 immediately (throws std::runtime_error
  /// on socket failure) but does not accept until serve()/start().
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves ephemeral port 0).
  std::uint16_t port() const { return port_; }

  /// Blocking accept/event loop; returns after a `shutdown` verb or
  /// stop(), once in-flight requests have been answered.
  void serve();

  /// serve() on a background thread (for in-process tests).
  void start();

  /// Stops the loop from another thread and joins it.
  void stop();

  /// Handles one request line synchronously (exposed for protocol tests;
  /// the legacy thread-per-connection path is a thin line-framing wrapper
  /// around this).  Streaming verbs (`batch`) return all their frames
  /// joined with '\n'.  When the recorder is enabled, `root_out`
  /// (optional) receives the identity of the server.request root span
  /// covering this request, so the caller can parent adjacent spans
  /// (server.read / server.write) under it.
  std::string handleRequest(const std::string& line,
                            obs::TraceContext* root_out = nullptr);

  JobEngine& engine() { return engine_; }

private:
  /// Deferred end-of-request accounting: one request_micros observation +
  /// latency-reservoir sample + server.request root span, applied exactly
  /// once per request (on the loop thread for the event loop; inline for
  /// the synchronous path), even when the connection died first.
  struct Finish {
    bool valid = false;
    std::string verb_label;
    obs::TraceContext client_ctx;
    obs::TraceContext root_ctx;
    std::chrono::steady_clock::time_point started;
  };

  /// Identity + trace state of one in-flight request (slot) on the event
  /// loop; built by dispatchLine, captured by async completions.
  struct RequestCtx {
    std::uint64_t conn_id = 0;
    std::uint64_t slot_id = 0;
    obs::TraceContext client_ctx;
    obs::TraceContext root_ctx;
    bool tracing = false;
    std::string verb_label = "unknown";
    std::chrono::steady_clock::time_point started;
  };

  /// Message from dispatch/worker threads back to the loop thread.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t slot_id = 0;
    /// Newline-terminated response frame(s) to append to the slot.
    std::string frames;
    bool last = false;      ///< slot is complete once `frames` are queued
    bool shutdown = false;  ///< drain and exit once everything flushed
    Finish finish;          ///< applied when `last`
    /// Slot-deadline registration (job verbs): when the deadline passes
    /// before `last`, the loop invokes on_timeout to synthesize the
    /// response frames + finish, and drops the eventual real completion.
    bool set_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::function<std::pair<std::string, Finish>()> on_timeout;
  };

  struct BatchState;  // streaming batch bookkeeping (server.cpp)

  using SyncVerb = void (Server::*)(const Json& request, RequestCtx& ctx,
                                    std::vector<Json>& frames);
  using AsyncVerb = void (Server::*)(const Json& request,
                                     const RequestCtx& ctx);
  /// A verb's server-side binding: every row of protocol verbRegistry()
  /// has exactly one (asserted in the constructor).  `sync` serves the
  /// synchronous path (handleRequest / legacy connections); `async`
  /// (optional) serves the event loop without blocking a dispatch thread
  /// on job completion.
  struct VerbBinding {
    SyncVerb sync = nullptr;
    AsyncVerb async = nullptr;
  };
  static const std::unordered_map<std::string, VerbBinding>& verbBindings();

  // Synchronous verb handlers (append response frames; usually one).
  void verbRun(const Json& request, RequestCtx& ctx, std::vector<Json>& out);
  void verbSweep(const Json& request, RequestCtx& ctx, std::vector<Json>& out);
  void verbBatch(const Json& request, RequestCtx& ctx, std::vector<Json>& out);
  void verbStats(const Json& request, RequestCtx& ctx, std::vector<Json>& out);
  void verbMetrics(const Json& request, RequestCtx& ctx,
                   std::vector<Json>& out);
  void verbTrace(const Json& request, RequestCtx& ctx, std::vector<Json>& out);
  void verbHealth(const Json& request, RequestCtx& ctx,
                  std::vector<Json>& out);
  void verbHistory(const Json& request, RequestCtx& ctx,
                   std::vector<Json>& out);
  void verbShutdown(const Json& request, RequestCtx& ctx,
                    std::vector<Json>& out);

  // Event-loop (async) verb handlers: submit to the engine and return;
  // completions re-enter the loop via postCompletion.
  void asyncRun(const Json& request, const RequestCtx& ctx);
  void asyncSweep(const Json& request, const RequestCtx& ctx);
  void asyncBatch(const Json& request, const RequestCtx& ctx);

  /// Counts + logs a protocol error and builds the unknown-verb response
  /// (shared by the sync and event-loop dispatch paths).
  Json unknownVerbResponse(const std::string& verb,
                           const obs::TraceContext& root);
  /// One batch scenario finished: emit its stream frame (and the terminal
  /// summary when it was the last), then refill the fair-share window.
  void finishBatchItem(const std::shared_ptr<BatchState>& state,
                       std::size_t index, const JobOutcome& outcome);
  /// Slot-deadline handler for `batch`: synthesizes timeout frames for
  /// every unfinished scenario plus the terminal summary.
  std::pair<std::string, Finish> timeoutBatch(
      const std::shared_ptr<BatchState>& state);

  // Event-loop plumbing.
  void serveEventLoop();
  void serveThreaded();
  /// Parses + dispatches one request line on the dispatch pool.
  void dispatchLine(std::uint64_t conn_id, std::uint64_t slot_id,
                    std::string line,
                    std::chrono::steady_clock::time_point read_started,
                    std::chrono::steady_clock::time_point read_finished);
  /// Stamps version + trace echo and frames one response for the wire.
  std::string wireFrame(Json response, const RequestCtx& ctx);
  /// Posts the final (or only) response frame for a slot.
  void respondLast(const RequestCtx& ctx, Json response,
                   bool shutdown = false);
  Finish makeFinish(const RequestCtx& ctx) const;
  void applyFinish(const Finish& finish);
  void postCompletion(Completion completion);
  void wakeLoop();
  /// Submits eligible batch scenarios up to the fair-share window,
  /// holding duplicates of in-flight twins back so they become cache hits
  /// (keeps batch(N) bit-identical to N sequential runs).  Re-entrant-safe.
  void pumpBatch(const std::shared_ptr<BatchState>& state);

  // Legacy thread-per-connection path.
  void handleConnection(int fd);
  void pokeListener();

  void recordLatency(double micros);
  Json statsJson();
  /// Slow-request exemplar check (see ServerOptions::slow_request_us):
  /// called once per finished request from both accounting paths
  /// (handleRequest tail and applyFinish).
  void noteSlowRequest(const std::string& verb_label, double total_micros,
                       const obs::TraceContext& root);
  /// The `health` verb's per-connection table + last-verb/trace join,
  /// published by the loop thread (refreshed once per iteration).
  Json connectionsJson();
  /// Maps a job outcome to its wire response; kShed becomes the explicit
  /// overloaded/retry_after_ms document and bumps lb_server_shed_total.
  /// Shed/error outcomes annotate the request's trace and emit a warn line.
  Json outcomeResponse(const JobOutcome& outcome,
                       const obs::TraceContext& ctx);
  /// Records one completed span (no-op when the recorder is off).
  void recordSpan(const obs::TraceContext& trace, std::uint64_t span_id,
                  std::uint64_t parent_id, const char* name,
                  const std::string& note,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end);

  ServerOptions options_;
  obs::Log& log_;  ///< resolved from options_.log

  // Loop re-entry plumbing is declared before engine_ (and the dispatch
  // pool after it) so that, during destruction, dispatch tasks and engine
  // worker callbacks can always post completions and poke the wakeup pipe:
  // members here outlive both pools.
  std::mutex completions_mutex_;
  std::vector<Completion> completions_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  JobEngine engine_;
  /// Per-verb request counters and the protocol-error counter, resolved
  /// against the engine's registry (so a `metrics` scrape includes them).
  obs::Family<obs::Counter>& requests_family_;
  obs::Counter& protocol_errors_counter_;
  obs::Counter& shed_counter_;
  /// Wall-clock per-request service time, labeled by verb; one observation
  /// per request (the count reconciles 1:1 with server.request root spans
  /// whenever the recorder is enabled).
  obs::Family<obs::Histogram>& request_micros_family_;
  /// Server-side lb_request_stage_micros children (the engine owns
  /// cache_lookup/queue_wait/execute).
  obs::Histogram& stage_read_;
  obs::Histogram& stage_parse_;
  obs::Histogram& stage_write_;
  // Event-loop health instruments (docs/observability.md, `health` verb).
  obs::Histogram& loop_iteration_micros_;
  obs::Histogram& wakeup_to_dispatch_micros_;
  obs::Gauge& dispatch_depth_gauge_;
  obs::Gauge& dispatch_depth_max_gauge_;
  obs::Gauge& completion_depth_gauge_;
  obs::Gauge& completion_depth_max_gauge_;
  obs::Gauge& connections_gauge_;
  obs::Counter& loop_stalls_counter_;
  obs::Family<obs::Counter>& slow_requests_family_;
  /// Requests posted to dispatch_pool_ but not yet picked up by
  /// dispatchLine; the gauges above mirror these (a Gauge load is the wire
  /// representation, the atomics are the source of truth for the
  /// compare-exchange watermark).
  std::atomic<std::int64_t> dispatch_depth_{0};
  std::atomic<std::int64_t> dispatch_depth_max_{0};
  std::atomic<std::int64_t> completion_depth_max_{0};
  const std::chrono::steady_clock::time_point started_at_{
      std::chrono::steady_clock::now()};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};

  std::mutex latency_mutex_;
  std::vector<double> latency_reservoir_;  ///< ring buffer, micros
  std::size_t latency_next_ = 0;
  std::uint64_t latency_count_ = 0;

  /// Registry sampler behind the `history` verb.  Declared after engine_
  /// (destroyed first) because it samples the engine's registry.
  std::unique_ptr<obs::TimeSeriesRing> history_;

  /// Per-connection introspection published by the event loop for the
  /// `health` verb: the loop refreshes `conn_table_` once per iteration
  /// (before dispatching any request read in that iteration, so a `health`
  /// request always sees its own connection); dispatch threads record each
  /// connection's last verb and in-flight trace ids as they parse.
  struct ConnSnapshot {
    std::uint64_t id = 0;
    std::uint64_t in_flight = 0;      ///< pipelined slots awaiting response
    std::uint64_t read_buffered = 0;  ///< bytes past the last parsed line
    std::uint64_t write_buffered = 0; ///< response bytes awaiting the kernel
    std::uint64_t age_ms = 0;
    std::uint64_t oldest_slot = 0;    ///< 0 = no request in flight
  };
  mutable std::mutex introspect_mutex_;
  std::vector<ConnSnapshot> conn_table_;
  std::chrono::steady_clock::time_point conn_table_at_{};
  std::unordered_map<std::uint64_t, std::string> conn_last_verb_;
  /// (conn id, slot id) -> trace id of the in-flight request.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
      inflight_traces_;

  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
  /// Parse/serialize offload for the event loop; after engine_ so its
  /// queued tasks drain (destruction) while the engine is still alive.
  std::unique_ptr<sim::ThreadPool> dispatch_pool_;
  std::thread serve_thread_;
};

}  // namespace lb::service
