#include "service/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace lb::service {

namespace {

[[noreturn]] void typeError(const char* expected, Json::Type actual) {
  static const char* names[] = {"null",   "bool",  "number",
                                "string", "array", "object"};
  throw JsonError(std::string("expected ") + expected + ", got " +
                      names[static_cast<int>(actual)],
                  0);
}

}  // namespace

bool Json::asBool() const {
  if (type_ != Type::kBool) typeError("bool", type_);
  return bool_;
}

double Json::asDouble() const {
  if (type_ != Type::kNumber) typeError("number", type_);
  return number_;
}

std::int64_t Json::asInt64() const {
  if (type_ != Type::kNumber || !is_integer_) typeError("integer", type_);
  if (is_unsigned_ && integer_ < 0)
    throw JsonError("integer out of int64 range", 0);
  return integer_;
}

std::uint64_t Json::asUint64() const {
  if (type_ != Type::kNumber || !is_integer_) typeError("integer", type_);
  if (!is_unsigned_ && integer_ < 0)
    throw JsonError("expected non-negative integer", 0);
  return static_cast<std::uint64_t>(integer_);
}

const std::string& Json::asString() const {
  if (type_ != Type::kString) typeError("string", type_);
  return string_;
}

const Json::Array& Json::asArray() const {
  if (type_ != Type::kArray) typeError("array", type_);
  return array_;
}

const Json::Object& Json::asObject() const {
  if (type_ != Type::kObject) typeError("object", type_);
  return object_;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) typeError("object", type_);
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) typeError("object", type_);
  for (const auto& member : object_)
    if (member.first == key) return &member.second;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = find(key);
  if (!value) throw JsonError("missing member \"" + key + "\"", 0);
  return *value;
}

Json& Json::push(Json value) {
  if (type_ != Type::kArray) typeError("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  typeError("array", type_);
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      if (is_integer_ && other.is_integer_)
        return integer_ == other.integer_ && is_unsigned_ == other.is_unsigned_;
      return number_ == other.number_ && is_integer_ == other.is_integer_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void appendEscaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

void appendDouble(std::string& out, double value) {
  if (!std::isfinite(value)) throw JsonError("non-finite number", 0);
  char buffer[32];
  // 17 significant digits: every double round-trips exactly through
  // strtod, which is what makes daemon results bit-identical to local runs.
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

}  // namespace

void Json::dumpTo(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      if (is_integer_) {
        if (is_unsigned_)
          out += std::to_string(static_cast<std::uint64_t>(integer_));
        else
          out += std::to_string(integer_);
      } else {
        appendDouble(out, number_);
      }
      break;
    case Type::kString:
      appendEscaped(out, string_);
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out += ',';
        first = false;
        item.dumpTo(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& member : object_) {
        if (!first) out += ',';
        first = false;
        appendEscaped(out, member.first);
        out += ':';
        member.second.dumpTo(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser — recursive descent over a string_view-ish cursor.
// ---------------------------------------------------------------------------

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parseDocument() {
    Json value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(message, pos_);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consumeLiteral(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Json parseValue(std::size_t depth = 0) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skipWhitespace();
    const char c = peek();
    switch (c) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"': return Json(parseString());
      case 't':
        if (consumeLiteral("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parseNumber();
        fail("unexpected character");
    }
  }

  Json parseObject(std::size_t depth) {
    expect('{');
    Json object = Json::object();
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skipWhitespace();
      if (peek() != '"') fail("expected object key");
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      if (object.find(key)) fail("duplicate key \"" + key + "\"");
      object.set(key, parseValue(depth + 1));
      skipWhitespace();
      const char next = take();
      if (next == '}') return object;
      if (next != ',') fail("expected ',' or '}'");
    }
  }

  Json parseArray(std::size_t depth) {
    expect('[');
    Json array = Json::array();
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array.push(parseValue(depth + 1));
      skipWhitespace();
      const char next = take();
      if (next == ']') return array;
      if (next != ',') fail("expected ',' or ']'");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = take();
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDFFF)
            fail("surrogate pairs not supported");
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("invalid number");
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      if (token[0] == '-') {
        char* end = nullptr;
        const long long value = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end && *end == '\0')
          return Json(static_cast<std::int64_t>(value));
      } else {
        char* end = nullptr;
        const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end && *end == '\0') {
          if (value <= static_cast<unsigned long long>(
                           std::numeric_limits<std::int64_t>::max()))
            return Json(static_cast<std::int64_t>(value));
          return Json(static_cast<std::uint64_t>(value));
        }
      }
      // Integer overflow: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (errno == ERANGE || !end || *end != '\0') fail("number out of range");
    return Json(value);
  }

  static constexpr std::size_t kMaxDepth = 64;

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  Parser parser(text);
  return parser.parseDocument();
}

}  // namespace lb::service
