#pragma once
// Blocking TCP client for the lbserve daemon: connects to 127.0.0.1,
// writes one JSON request per line, reads one JSON response per line.
// Used by lbcli and by the loopback tests; a connection may issue any
// number of requests (the daemon keeps it open until `shutdown` or EOF).
//
// The client is resilient by default.  Every call() carries
//
//   - a per-request deadline (ClientOptions::deadline; 0 = none) covering
//     connect + send + receive across *all* attempts — a dead daemon
//     surfaces as DeadlineError, never a hang;
//   - bounded retries with deterministic decorrelated-jitter backoff
//     (fault::RetryPolicy) on transport failures and explicit `overloaded`
//     sheds.  Transport-failure resends are idempotent-verb-aware: a run /
//     sweep / stats / metrics request may have executed before the
//     connection died, and resending it is safe (scenarios are
//     content-addressed, so the re-run is a cache hit); `shutdown` is
//     never resent mid-exchange.  An `overloaded` shed is always
//     retryable — the daemon did not execute the request.
//
// Retries are counted in lb_client_retries_total{reason=...} on the
// injected registry (default: the process-wide obs::registry()).

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/backoff.hpp"
#include "fault/fault.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "service/json.hpp"

namespace lb::service {

/// Transport-level failure (connect/send/recv): the daemon is gone,
/// refused, or the connection died and the retry budget ran out.
class TransportError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// The per-request deadline expired before a response arrived.
class DeadlineError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Total wall-clock budget per call() including reconnects, backoff, and
  /// resends; 0 = no deadline (seed behavior).
  std::chrono::milliseconds deadline{0};
  /// Retries after the first attempt; 0 disables retrying.
  int max_retries = 3;
  std::chrono::milliseconds backoff_base{25};
  std::chrono::milliseconds backoff_cap{1000};
  std::uint64_t retry_seed = 1;  ///< jitter stream selector (replayable)
  /// Registry receiving lb_client_retries_total (nullptr: obs::registry()).
  obs::MetricsRegistry* registry = nullptr;
  /// Client-side socket fault injection (chaos tests); nullptr = inert.
  fault::FaultInjector* fault = nullptr;
};

class Client {
public:
  /// One typed request for exchange(): the verb plus its payload members,
  /// with optional per-request overrides for the deadline and the trace
  /// identity.  This envelope is the single client-side request path — the
  /// per-verb convenience methods are thin wrappers over it, so every verb
  /// (run/sweep/batch/stats/metrics/trace/shutdown) shares one retry,
  /// deadline, and trace-minting implementation.
  struct Request {
    std::string verb;
    /// Extra top-level request members ({"scenario":...},
    /// {"scenarios":[...]}); must be an object (empty for payload-less
    /// verbs).  `verb`/`trace` members inside it are ignored — the
    /// envelope fields win.
    Json payload = Json::object();
    /// Per-request deadline: negative (default) inherits
    /// ClientOptions::deadline, zero disables it, positive replaces it.
    std::chrono::milliseconds deadline{-1};
    /// Pre-minted trace identity; {0,0} (the default) mints a fresh one,
    /// stable across retries.
    obs::TraceContext trace;
  };

  struct Response {
    Json body;                ///< terminal response document ({"ok":...})
    obs::TraceContext trace;  ///< identity the request carried on the wire
    bool ok = false;          ///< body's "ok" member was true
  };

  /// Stream-frame sink for streaming verbs (`batch`): invoked once per
  /// non-terminal frame, in arrival order.
  using FrameHandler = std::function<void(const Json& frame)>;

  /// Connects immediately; throws TransportError when the daemon is not
  /// reachable (subject to options.deadline).
  explicit Client(ClientOptions options);

  /// Seed-compatible convenience: defaults for everything but the address.
  explicit Client(std::uint16_t port, const std::string& host = "127.0.0.1");

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends the envelope and blocks for the terminal response, retrying per
  /// the class comment; the verb registry decides whether a mid-exchange
  /// transport failure may resend (VerbSpec::idempotent).  For streaming
  /// verbs, `on_frame` receives every non-terminal frame and the returned
  /// Response is the terminal summary; once a frame has been delivered the
  /// request is never resent (the caller already observed output).  A
  /// non-streaming error document (e.g. an older daemon rejecting the
  /// verb) is returned as the terminal response.
  Response exchange(const Request& request, const FrameHandler& on_frame = {});

  /// Sends `request` and blocks for the matching response line, retrying
  /// per the class comment.  Throws TransportError / DeadlineError on
  /// exhausted budgets, std::runtime_error on a protocol-version mismatch;
  /// protocol-level failures (including an `overloaded` shed that outlived
  /// the retry budget) come back as {"ok":false,...} documents.
  ///
  /// Every request is traced: unless the caller already attached a
  /// `"trace"` block, call() mints a fresh trace/span id pair and sends it
  /// (stable across retries, so one logical request is one trace).  Old
  /// daemons ignore the block; tracing daemons echo it and parent their
  /// server-side spans under it.  See lastTrace().
  Json call(const Json& request);

  /// Convenience wrappers for the protocol verbs (thin shims over
  /// exchange()).
  Json run(const Json& scenario);
  Json sweep(Json scenarios);
  /// Streams a batch: `on_frame` sees each per-result frame as the daemon
  /// completes it; the returned document is the terminal
  /// {"batch":{"done":true,...}} summary (or an error document from a
  /// daemon that predates the verb).
  Json batch(Json scenarios, const FrameHandler& on_frame = {});
  Json stats();
  Json metrics();
  /// Dumps the daemon's flight recorder ({"chrome_trace":...}).
  Json trace();
  /// Live loop/queue/connection introspection ({"health":{...}}).
  Json health();
  /// Metrics time-series from the daemon's in-memory ring; `last` keeps
  /// only the newest N samples (0 = all), `metrics` filters points by exact
  /// series name (empty = all).
  Json history(std::uint64_t last = 0,
               const std::vector<std::string>& metrics = {});
  Json shutdown();

  /// Retries performed over this client's lifetime (all reasons).
  std::uint64_t retries() const { return retries_; }

  /// The trace context sent with the most recent call() (for correlating a
  /// response with a later `trace` dump or log lines).
  const obs::TraceContext& lastTrace() const { return last_trace_; }

private:
  /// The absolute per-call deadline, or nullopt when options_.deadline==0.
  std::optional<std::chrono::steady_clock::time_point> callDeadline() const;
  void connectSocket(
      const std::optional<std::chrono::steady_clock::time_point>& deadline);
  void closeSocket();
  /// The shared retry/deadline loop under call() and exchange(): sends
  /// `line`, reads the terminal response (streaming intermediate frames to
  /// `on_frame` when the registry marks `verb` streaming), and applies the
  /// overloaded/transport retry policy.
  Json callCore(
      const std::string& verb, const std::string& line,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      const FrameHandler& on_frame);
  /// One framed line from the connection (buffered newline scan).
  std::string readLine(
      const std::optional<std::chrono::steady_clock::time_point>& deadline);
  std::string exchangeLine(
      const std::string& line,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);
  /// Sleeps for the backoff delay (clamped to the remaining deadline) and
  /// counts the retry; returns false when the budget is exhausted.
  bool backoff(
      int attempt, const char* reason, std::chrono::milliseconds floor,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);

  ClientOptions options_;
  fault::RetryPolicy policy_;
  obs::Family<obs::Counter>& retries_family_;
  std::uint64_t retries_ = 0;
  obs::TraceContext last_trace_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last newline
};

}  // namespace lb::service
