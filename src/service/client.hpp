#pragma once
// Blocking TCP client for the lbserve daemon: connects to 127.0.0.1,
// writes one JSON request per line, reads one JSON response per line.
// Used by lbcli and by the loopback tests; a connection may issue any
// number of requests (the daemon keeps it open until `shutdown` or EOF).

#include <cstdint>
#include <string>

#include "service/json.hpp"

namespace lb::service {

class Client {
public:
  /// Connects immediately; throws std::runtime_error when the daemon is
  /// not reachable.
  explicit Client(std::uint16_t port, const std::string& host = "127.0.0.1");
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `request` and blocks for the matching response line.  Throws
  /// std::runtime_error on transport failure or when the response carries
  /// an unexpected protocol version (service/protocol.hpp); protocol-level
  /// failures come back as {"ok":false,...} documents.
  Json call(const Json& request);

  /// Convenience wrappers for the protocol verbs.
  Json run(const Json& scenario);
  Json sweep(Json scenarios);
  Json stats();
  Json metrics();
  Json shutdown();

private:
  std::string exchangeLine(const std::string& line);

  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last newline
};

}  // namespace lb::service
