#pragma once
// Declarative simulation scenarios: the unit of work lbserve accepts.
//
// A Scenario is everything `lbsim` takes on its command line — arbiter
// kind, ticket/weight vector, traffic class, master count, cycle budget,
// burst limit, RNG seed, LFSR flag — as a plain struct with a JSON codec.
// Scenarios are *content-addressed*: canonicalJson() renders the normalized
// scenario with a fixed field order and hash() runs 64-bit FNV-1a over
// those bytes, so the hash is a stable cache key across processes and
// sessions (tests/service_test.cpp pins golden hashes).
//
// runScenario() is the single execution path shared by lbsim, the job
// engine, and the daemon: identical Scenario -> bit-identical
// ScenarioResult, which is what makes the result cache sound.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bus/arbiter.hpp"
#include "bus/bus.hpp"
#include "obs/metrics.hpp"
#include "service/json.hpp"
#include "sim/kernel.hpp"

namespace lb::service {

/// Thrown for semantically invalid scenarios (unknown arbiter/class, zero
/// masters, ...); JsonError covers syntactic problems.
class ScenarioError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

struct Scenario {
  std::string arbiter = "lottery";
  std::vector<std::uint32_t> weights = {1, 2, 3, 4};
  std::string traffic_class = "T2";
  std::size_t masters = 4;
  sim::Cycle cycles = 200000;
  std::uint32_t burst = 16;
  std::uint64_t seed = 7;
  bool lfsr = false;
  /// "fast" (quiescence-skipping kernel, the default) or "naive" (step every
  /// cycle).  Bit-identical results either way — the knob exists for
  /// differential testing and benchmarking, so it is serialized only when
  /// non-default to keep content hashes stable.
  std::string kernel_mode = "fast";

  bool operator==(const Scenario&) const = default;
};

/// Arbiter kinds runScenario understands, in lbsim's --compare order.
const std::vector<std::string>& knownArbiters();
bool isKnownArbiter(const std::string& kind);

/// Reconciles `masters` with `weights` the same way lbsim always has: a
/// multi-element weight list wins over --masters; a scalar/empty list is
/// broadcast to `masters` ones.  Throws ScenarioError on invalid scenarios
/// (unknown arbiter or traffic class, masters == 0, cycles == 0, burst
/// == 0, weight arity mismatch that cannot be reconciled).
Scenario normalized(Scenario scenario);

/// Scenario <-> JSON.  fromJson validates field types and rejects unknown
/// members (catching typos like "ticket" early); missing members take the
/// struct defaults.
Json toJson(const Scenario& scenario);
Scenario scenarioFromJson(const Json& json);

/// Canonical byte representation: normalized scenario, fixed member order,
/// integer formatting.  Equal scenarios (after normalization) produce equal
/// bytes.
std::string canonicalJson(const Scenario& scenario);

/// 64-bit FNV-1a over canonicalJson(); the content-address used by the
/// result cache and the wire protocol.
std::uint64_t scenarioHash(const Scenario& scenario);

/// scenarioHash rendered as 16 lowercase hex digits.
std::string scenarioHashHex(const Scenario& scenario);

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// The testbed metrics a scenario produces, JSON-serializable so cached
/// results survive the wire and the disk.
struct ScenarioResult {
  std::vector<double> bandwidth_fraction;
  std::vector<double> traffic_share;
  std::vector<double> cycles_per_word;
  std::vector<double> mean_message_latency;
  std::vector<std::uint64_t> messages_completed;
  double unutilized_fraction = 0.0;
  std::uint64_t grants = 0;
  std::uint64_t preemptions = 0;
  sim::Cycle cycles = 0;

  bool operator==(const ScenarioResult&) const = default;
};

Json toJson(const ScenarioResult& result);
ScenarioResult resultFromJson(const Json& json);

/// Builds the arbiter a (normalized) scenario describes — the factory
/// previously private to examples/lbsim.cpp.
std::unique_ptr<bus::IArbiter> makeArbiter(const Scenario& scenario);

/// Observability knobs for a scenario run.  Everything here is strictly
/// passive: any combination of options yields bit-identical ScenarioResults
/// (pinned by service_test's inertness golden check), because instruments
/// and observers never feed back into arbitration or traffic state.
struct RunOptions {
  /// Publish lb_bus_* / lb_arbiter_* metrics for this run.
  bool instrument = true;
  /// Registry to publish into; nullptr means the process-wide
  /// obs::registry().
  obs::MetricsRegistry* registry = nullptr;
  /// When set, every executed grant is copied here after the run (the
  /// source of `lbsim --trace-out`'s Chrome trace).
  std::vector<bus::GrantRecord>* capture_trace = nullptr;
};

/// Runs the scenario through traffic::runTestbed.  Pure function of the
/// normalized scenario: same input, bit-identical output regardless of
/// `options`.
ScenarioResult runScenario(const Scenario& scenario);
ScenarioResult runScenario(const Scenario& scenario,
                           const RunOptions& options);

}  // namespace lb::service
