#pragma once
// Declarative simulation scenarios: the unit of work lbserve accepts.
//
// A Scenario is everything `lbsim` takes on its command line — arbiter
// kind, ticket/weight vector, traffic class, master count, cycle budget,
// burst limit, RNG seed, LFSR flag — as a plain struct with a JSON codec.
// Scenarios are *content-addressed*: canonicalJson() renders the normalized
// scenario with a fixed field order and hash() runs 64-bit FNV-1a over
// those bytes, so the hash is a stable cache key across processes and
// sessions (tests/service_test.cpp pins golden hashes).
//
// runScenario() is the single execution path shared by lbsim, the job
// engine, and the daemon: identical Scenario -> bit-identical
// ScenarioResult, which is what makes the result cache sound.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bus/arbiter.hpp"
#include "bus/bus.hpp"
#include "noc/types.hpp"
#include "obs/metrics.hpp"
#include "service/json.hpp"
#include "sim/kernel.hpp"

namespace lb::service {

/// Thrown for semantically invalid scenarios (unknown arbiter/class, zero
/// masters, ...); JsonError covers syntactic problems.
class ScenarioError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Optional mesh-NoC extension of a Scenario (src/noc).  Disabled by
/// default (width == 0), in which case the scenario runs on the shared bus
/// exactly as before; like kernel_mode it is serialized only when enabled,
/// so every pre-existing bus scenario keeps its content hash.
///
/// When enabled, the scenario's other fields are reinterpreted mesh-wise:
/// `masters` becomes width * height (one traffic source per node, forced by
/// normalized()), `weights` become the kNumPorts per-input-port weights of
/// every router's output arbiters (scalar/empty broadcasts; the 4-element
/// struct default is treated as "unspecified" and broadcasts too), `arbiter`
/// + `burst` + `lfsr` + `seed` parameterize the per-(router, port) arbiter
/// instances, and the traffic class drives every NI unchanged.
struct MeshSpec {
  std::size_t width = 0;   ///< 0 = plain bus scenario (the default)
  std::size_t height = 0;  ///< 0 = square (height := width)
  /// Destination pattern (noc::patternFromString): "uniform", "transpose",
  /// "neighbor", "hotspot", or "slave".
  std::string pattern = "uniform";
  std::uint32_t vc_count = 1;
  std::uint32_t vc_depth = 64;
  std::uint32_t router_delay = 1;

  bool enabled() const { return width != 0; }
  bool operator==(const MeshSpec&) const = default;
};

struct Scenario {
  std::string arbiter = "lottery";
  std::vector<std::uint32_t> weights = {1, 2, 3, 4};
  std::string traffic_class = "T2";
  std::size_t masters = 4;
  sim::Cycle cycles = 200000;
  std::uint32_t burst = 16;
  std::uint64_t seed = 7;
  bool lfsr = false;
  /// "fast" (quiescence-skipping kernel, the default) or "naive" (step every
  /// cycle).  Bit-identical results either way — the knob exists for
  /// differential testing and benchmarking, so it is serialized only when
  /// non-default to keep content hashes stable.
  std::string kernel_mode = "fast";
  /// Mesh-NoC extension; serialized only when enabled() (same hash-stability
  /// contract as kernel_mode).
  MeshSpec mesh;
  /// Monte Carlo replication: when > 1 the scenario runs this many
  /// independently-seeded replicas (seed r = replicaSeed(seed, r)) stepped in
  /// lockstep by sim::BatchedReplicaRunner, and the result aggregates them
  /// (means of the per-master rates, sums of the counters).  1 — the default
  /// — is byte-for-byte the historical single run; serialized only when
  /// non-default so every pre-existing content hash stays valid.
  std::uint32_t replicas = 1;

  bool operator==(const Scenario&) const = default;
};

/// Seed of replica `replica` of a scenario seeded `base`: replica 0 keeps
/// the base seed unchanged (a 1-replica run is exactly the historical single
/// run), later replicas decorrelate through a SplitMix64 finalizer.
std::uint64_t replicaSeed(std::uint64_t base, std::uint32_t replica);

/// Arbiter kinds runScenario understands, in lbsim's --compare order.
const std::vector<std::string>& knownArbiters();
bool isKnownArbiter(const std::string& kind);

/// Named mesh scenario presets ("mesh4x4-lottery", "mesh6x6-sesc"): the two
/// reference topologies whose canonical JSON + content hashes golden_test.cpp
/// pins so cache keys cannot silently drift.
const std::vector<std::string>& meshPresetNames();
Scenario meshPreset(const std::string& name);

/// Reconciles `masters` with `weights` the same way lbsim always has: a
/// multi-element weight list wins over --masters; a scalar/empty list is
/// broadcast to `masters` ones.  Throws ScenarioError on invalid scenarios
/// (unknown arbiter or traffic class, masters == 0, cycles == 0, burst
/// == 0, weight arity mismatch that cannot be reconciled).
Scenario normalized(Scenario scenario);

/// Scenario <-> JSON.  fromJson validates field types and rejects unknown
/// members (catching typos like "ticket" early); missing members take the
/// struct defaults.
Json toJson(const Scenario& scenario);
Scenario scenarioFromJson(const Json& json);

/// Canonical byte representation: normalized scenario, fixed member order,
/// integer formatting.  Equal scenarios (after normalization) produce equal
/// bytes.
std::string canonicalJson(const Scenario& scenario);

/// 64-bit FNV-1a over canonicalJson(); the content-address used by the
/// result cache and the wire protocol.
std::uint64_t scenarioHash(const Scenario& scenario);

/// scenarioHash rendered as 16 lowercase hex digits.
std::string scenarioHashHex(const Scenario& scenario);

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// The testbed metrics a scenario produces, JSON-serializable so cached
/// results survive the wire and the disk.
struct ScenarioResult {
  std::vector<double> bandwidth_fraction;
  std::vector<double> traffic_share;
  std::vector<double> cycles_per_word;
  std::vector<double> mean_message_latency;
  std::vector<std::uint64_t> messages_completed;
  double unutilized_fraction = 0.0;
  std::uint64_t grants = 0;
  std::uint64_t preemptions = 0;
  sim::Cycle cycles = 0;

  bool operator==(const ScenarioResult&) const = default;
};

Json toJson(const ScenarioResult& result);
ScenarioResult resultFromJson(const Json& json);

/// Builds the arbiter a (normalized) scenario describes — the factory
/// previously private to examples/lbsim.cpp.
std::unique_ptr<bus::IArbiter> makeArbiter(const Scenario& scenario);

/// Builds the per-(router, output-port) arbiter factory a (normalized) mesh
/// scenario describes: the scenario's arbiter kind with noc::kNumPorts
/// masters, the scenario's per-port weights, and — for the seeded kinds —
/// a per-instance seed derived from scenario.seed by a SplitMix64 hash of
/// (router, port), so instantiation order cannot perturb results.
noc::RouterArbiterFactory makeRouterArbiterFactory(const Scenario& scenario);

/// Observability knobs for a scenario run.  Everything here is strictly
/// passive: any combination of options yields bit-identical ScenarioResults
/// (pinned by service_test's inertness golden check), because instruments
/// and observers never feed back into arbitration or traffic state.
struct RunOptions {
  /// Publish lb_bus_* / lb_arbiter_* metrics for this run.
  bool instrument = true;
  /// Registry to publish into; nullptr means the process-wide
  /// obs::registry().
  obs::MetricsRegistry* registry = nullptr;
  /// When set, every executed grant is copied here after the run (the
  /// source of `lbsim --trace-out`'s Chrome trace).  Bus scenarios only;
  /// replicated scenarios capture replica 0 (whose system is bit-identical
  /// to the same scenario run with replicas = 1).
  std::vector<bus::GrantRecord>* capture_trace = nullptr;
  /// Mesh analogue of capture_trace: every router grant is copied here
  /// after a mesh run (the source of `lbsim --trace-out`'s per-router
  /// Chrome trace tracks).  Ignored by bus scenarios; replicated mesh
  /// scenarios capture replica 0.
  std::vector<noc::NocGrantRecord>* capture_mesh_trace = nullptr;
};

/// Runs the scenario through traffic::runTestbed.  Pure function of the
/// normalized scenario: same input, bit-identical output regardless of
/// `options`.
ScenarioResult runScenario(const Scenario& scenario);
ScenarioResult runScenario(const Scenario& scenario,
                           const RunOptions& options);

}  // namespace lb::service
