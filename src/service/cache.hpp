#pragma once
// Content-addressed result cache for lbserve.
//
// Keyed by the 64-bit scenario hash (scenario.hpp): identical normalized
// scenarios map to identical keys, so a repeated `run` or an overlapping
// `sweep` is served without re-simulating.  In-memory storage is a classic
// LRU (hash map + intrusive recency list) bounded by entry count; an
// optional directory adds write-through persistence — one
// `<hash>.json` file per entry holding {scenario, result} — so a restarted
// daemon starts warm.  Disk loads are promoted into memory and counted
// separately (disk_hits).
//
// Disk entries are integrity-checked: every file carries `result_fnv` and
// `scenario_fnv` members — 64-bit FNV-1a (the same hash that
// content-addresses scenarios) over the canonical JSON of the result and
// scenario respectively.  A file that fails either check (bit
// rot, truncation, an injected fault) is *evicted from disk* and reported
// as a miss, so the engine transparently recomputes and rewrites it:
// corruption degrades to a cold run, never to a wrong result.
//
// Thread-safe; all operations take one internal mutex (entries are small —
// a few hundred bytes of metric vectors — so contention is negligible next
// to the simulations they replace).

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "service/scenario.hpp"

namespace lb::service {

struct CacheStats {
  std::uint64_t hits = 0;       ///< served from memory
  std::uint64_t disk_hits = 0;  ///< served from the persistence directory
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t corrupt_evictions = 0;  ///< disk entries failing integrity
  std::size_t size = 0;         ///< current in-memory entries
  std::size_t capacity = 0;
};

class ResultCache {
public:
  /// `capacity` bounds in-memory entries (>= 1).  `persist_dir`, when
  /// non-empty, is created if needed and used for write-through
  /// persistence; unreadable/corrupt files are evicted and treated as
  /// misses.  `registry` receives the lb_cache_* metrics (nullptr: the
  /// process-wide obs::registry()).  `fault`, when non-null, injects
  /// load corruption / store failures (chaos tests); null is inert.
  explicit ResultCache(std::size_t capacity, std::string persist_dir = "",
                       obs::MetricsRegistry* registry = nullptr,
                       fault::FaultInjector* fault = nullptr);

  /// Looks up by scenario hash; promotes to most-recently-used.
  std::optional<ScenarioResult> get(std::uint64_t hash);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry beyond capacity.  `scenario` is stored alongside the result on
  /// disk so cache files are self-describing.
  void put(std::uint64_t hash, const Scenario& scenario,
           const ScenarioResult& result);

  CacheStats stats() const;
  std::size_t size() const;

private:
  std::string pathFor(std::uint64_t hash) const;
  std::optional<ScenarioResult> loadFromDisk(std::uint64_t hash);
  /// Removes an integrity-failed disk entry and counts the corruption.
  void evictCorrupt(std::uint64_t hash);
  void storeToDisk(std::uint64_t hash, const Scenario& scenario,
                   const ScenarioResult& result);
  void insertLocked(std::uint64_t hash, const ScenarioResult& result);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::string persist_dir_;
  fault::FaultInjector* fault_;
  /// Most-recently-used at the front.
  std::list<std::pair<std::uint64_t, ScenarioResult>> entries_;
  std::unordered_map<std::uint64_t, decltype(entries_)::iterator> index_;
  CacheStats stats_;

  // Pre-resolved obs instruments (mirror stats_; cumulative per process).
  obs::Counter& memory_hits_;
  obs::Counter& disk_hits_;
  obs::Counter& misses_;
  obs::Counter& insertions_;
  obs::Counter& evictions_;
  obs::Counter& disk_reads_;
  obs::Counter& disk_writes_;
  obs::Counter& corrupt_evictions_;
  obs::Gauge& entries_gauge_;
};

}  // namespace lb::service
