#include "service/job_engine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace lb::service {

namespace {

std::shared_future<JobOutcome> readyFuture(JobOutcome outcome) {
  std::promise<JobOutcome> promise;
  promise.set_value(std::move(outcome));
  return promise.get_future().share();
}

}  // namespace

JobEngine::JobEngine(JobEngineOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? *options.registry
                                            : obs::registry()),
      cache_(options.cache_capacity, options.cache_dir, &registry_,
             options.fault),
      submitted_counter_(
          registry_.counter("lb_jobs_submitted_total", "Jobs enqueued").get()),
      completed_counter_(
          registry_.counter("lb_jobs_completed_total", "Jobs finished ok")
              .get()),
      failed_counter_(
          registry_.counter("lb_jobs_failed_total", "Jobs ending in error")
              .get()),
      timeout_counter_(
          registry_
              .counter("lb_jobs_timeout_total", "Job waits that timed out")
              .get()),
      coalesced_counter_(
          registry_
              .counter("lb_jobs_coalesced_total",
                       "Submissions piggybacked on an in-flight job")
              .get()),
      shed_counter_(
          registry_
              .counter("lb_jobs_shed_total",
                       "Admissions rejected as overloaded (queue full or "
                       "injected)")
              .get()),
      queue_depth_gauge_(
          registry_.gauge("lb_job_queue_depth", "Jobs waiting for a worker")
              .get()),
      in_flight_gauge_(
          registry_.gauge("lb_jobs_in_flight", "Jobs queued or executing")
              .get()),
      execute_micros_(registry_
                          .histogram("lb_job_execute_micros",
                                     "Wall-clock simulation time per job",
                                     obs::microsBuckets())
                          .get()),
      stage_cache_lookup_(registry_
                              .histogram("lb_request_stage_micros",
                                         "Per-stage request latency",
                                         obs::microsBuckets())
                              .withLabels({{"stage", "cache_lookup"}})),
      stage_queue_wait_(registry_
                            .histogram("lb_request_stage_micros",
                                       "Per-stage request latency",
                                       obs::microsBuckets())
                            .withLabels({{"stage", "queue_wait"}})),
      stage_execute_(registry_
                         .histogram("lb_request_stage_micros",
                                    "Per-stage request latency",
                                    obs::microsBuckets())
                         .withLabels({{"stage", "execute"}})) {
  std::size_t workers = options_.workers;
  if (workers == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    workers = hardware == 0 ? 2 : hardware;
  }
  options_.workers = workers;
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  pool_ = std::make_unique<sim::ThreadPool>(workers);
  for (std::size_t w = 0; w < workers; ++w)
    pool_->post([this] { workerLoop(); });
}

void JobEngine::recordSpan(const obs::TraceContext& trace, const char* name,
                           const std::string& note,
                           std::chrono::steady_clock::time_point start,
                           std::chrono::steady_clock::time_point end) {
  obs::FlightRecorder* recorder = options_.recorder;
  if (recorder == nullptr || !recorder->enabled() || !trace.valid()) return;
  obs::FlightRecorder::Span span;
  span.trace_id = trace.trace_id;
  span.span_id = obs::mintTraceId();
  span.parent_id = trace.span_id;
  span.name = name;
  span.note = note;
  span.ts_us = recorder->toMicros(start);
  span.dur_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  span.tid = obs::FlightRecorder::currentTid();
  recorder->record(std::move(span));
}

JobEngine::~JobEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  pool_.reset();  // drains the bounded queue, then joins the workers
}

void JobEngine::workerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_.set(static_cast<std::int64_t>(queue_.size()));
    }
    queue_cv_.notify_all();  // space freed for blocked submitters
    const auto dequeued = std::chrono::steady_clock::now();
    stage_queue_wait_.observe(std::chrono::duration<double, std::micro>(
                                  dequeued - job->enqueued_at)
                                  .count());
    recordSpan(job->trace, "job.queue_wait", "", job->enqueued_at, dequeued);
    execute(job);
  }
}

void JobEngine::execute(const std::shared_ptr<Job>& job) {
  JobOutcome outcome;
  outcome.hash = job->hash;
  const auto started = std::chrono::steady_clock::now();
  if (options_.fault != nullptr) {
    // Injected slow job: stall before the simulation so the delay shows up
    // in execute_micros and can trip caller timeouts, exactly like a
    // worker descheduled under load.
    const std::uint32_t delay_ms = options_.fault->jobDelayMs();
    if (delay_ms != 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  try {
    RunOptions run_options;
    run_options.registry = &registry_;
    outcome.result = runScenario(job->scenario, run_options);
    outcome.status = JobStatus::kOk;
  } catch (const std::exception& e) {
    outcome.status = JobStatus::kError;
    outcome.error = e.what();
  }
  const auto finished = std::chrono::steady_clock::now();
  outcome.execute_micros =
      std::chrono::duration<double, std::micro>(finished - started).count();
  execute_micros_.observe(outcome.execute_micros);
  stage_execute_.observe(outcome.execute_micros);
  recordSpan(job->trace, "job.execute",
             outcome.status == JobStatus::kOk ? "ok" : outcome.error, started,
             finished);
  if (outcome.status == JobStatus::kOk)
    cache_.put(job->hash, job->scenario, outcome.result);
  std::vector<Completion> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_.erase(job->hash);
    in_flight_gauge_.set(static_cast<std::int64_t>(in_flight_.size()));
    if (outcome.status == JobStatus::kOk) {
      ++stats_.completed;
      completed_counter_.inc();
    } else {
      ++stats_.failed;
      failed_counter_.inc();
    }
    // Extract under the lock so late submitAsync coalescers either made it
    // into this vector or found the job gone and resubmitted.
    callbacks = std::move(job->callbacks);
    job->callbacks.clear();
  }
  const JobOutcome for_callbacks = outcome;
  job->promise.set_value(std::move(outcome));
  for (Completion& done : callbacks) done(for_callbacks);
}

std::pair<std::shared_future<JobOutcome>, bool> JobEngine::submit(
    const Scenario& raw, const obs::TraceContext& trace) {
  Scenario scenario;
  try {
    scenario = normalized(raw);
  } catch (const std::exception& e) {
    JobOutcome outcome;
    outcome.status = JobStatus::kError;
    outcome.error = e.what();
    return {readyFuture(std::move(outcome)), false};
  }
  const std::uint64_t hash = scenarioHash(scenario);

  const auto lookup_started = std::chrono::steady_clock::now();
  auto cached = cache_.get(hash);
  const auto lookup_finished = std::chrono::steady_clock::now();
  stage_cache_lookup_.observe(std::chrono::duration<double, std::micro>(
                                  lookup_finished - lookup_started)
                                  .count());
  recordSpan(trace, "cache.lookup", cached ? "hit" : "miss", lookup_started,
             lookup_finished);
  if (cached) {
    JobOutcome outcome;
    outcome.status = JobStatus::kOk;
    outcome.result = std::move(*cached);
    outcome.hash = hash;
    outcome.cache_hit = true;
    return {readyFuture(std::move(outcome)), false};
  }

  auto job = std::make_shared<Job>();
  job->scenario = std::move(scenario);
  job->hash = hash;
  job->future = job->promise.get_future().share();
  job->trace = trace;

  std::unique_lock<std::mutex> lock(mutex_);
  const auto flying = in_flight_.find(hash);
  if (flying != in_flight_.end()) {
    ++stats_.coalesced;
    coalesced_counter_.inc();
    // Piggyback on the identical running job.
    return {flying->second->future, true};
  }
  // Admission control: injected rejection (chaos) or, with shed_when_full,
  // an immediate explicit shed instead of blocking on queue space.
  if (options_.fault != nullptr && options_.fault->rejectAdmission())
    return {readyFuture(shedOutcome(hash, "admission rejected (fault plan)")),
            false};
  if (options_.shed_when_full && queue_.size() >= options_.queue_depth)
    return {readyFuture(shedOutcome(
                hash, "job queue full (" +
                          std::to_string(options_.queue_depth) + " deep)")),
            false};
  // Bounded FIFO: block until the queue has room (backpressure towards the
  // daemon's connection handlers).
  queue_cv_.wait(lock, [this] {
    return stopping_ || queue_.size() < options_.queue_depth;
  });
  if (stopping_) {
    JobOutcome outcome;
    outcome.status = JobStatus::kError;
    outcome.error = "job engine is shutting down";
    outcome.hash = hash;
    return {readyFuture(std::move(outcome)), false};
  }
  auto future = job->future;
  in_flight_[hash] = job;
  job->enqueued_at = std::chrono::steady_clock::now();
  queue_.push_back(std::move(job));
  ++stats_.submitted;
  submitted_counter_.inc();
  queue_depth_gauge_.set(static_cast<std::int64_t>(queue_.size()));
  in_flight_gauge_.set(static_cast<std::int64_t>(in_flight_.size()));
  lock.unlock();
  queue_cv_.notify_all();
  return {future, false};
}

JobOutcome JobEngine::shedOutcome(std::uint64_t hash,
                                  const std::string& reason) {
  // Callers hold mutex_ (stats_ is lock-guarded; the obs counter is atomic).
  JobOutcome outcome;
  outcome.status = JobStatus::kShed;
  outcome.error = reason;
  outcome.hash = hash;
  outcome.retry_after_ms = options_.retry_after_ms;
  ++stats_.shed;
  shed_counter_.inc();
  return outcome;
}

JobOutcome JobEngine::timeoutOutcome() {
  JobOutcome outcome;
  outcome.status = JobStatus::kTimeout;
  outcome.error = "job exceeded " + std::to_string(options_.timeout.count()) +
                  " ms (still running; retry later for a cache hit)";
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.timeouts;
  timeout_counter_.inc();
  return outcome;
}

JobOutcome JobEngine::await(std::shared_future<JobOutcome> future) {
  if (future.wait_for(options_.timeout) != std::future_status::ready)
    return timeoutOutcome();
  return future.get();
}

void JobEngine::submitAsync(const Scenario& raw, const obs::TraceContext& trace,
                            Completion done) {
  Scenario scenario;
  try {
    scenario = normalized(raw);
  } catch (const std::exception& e) {
    JobOutcome outcome;
    outcome.status = JobStatus::kError;
    outcome.error = e.what();
    done(std::move(outcome));
    return;
  }
  const std::uint64_t hash = scenarioHash(scenario);

  const auto lookup_started = std::chrono::steady_clock::now();
  auto cached = cache_.get(hash);
  const auto lookup_finished = std::chrono::steady_clock::now();
  stage_cache_lookup_.observe(std::chrono::duration<double, std::micro>(
                                  lookup_finished - lookup_started)
                                  .count());
  recordSpan(trace, "cache.lookup", cached ? "hit" : "miss", lookup_started,
             lookup_finished);
  if (cached) {
    JobOutcome outcome;
    outcome.status = JobStatus::kOk;
    outcome.result = std::move(*cached);
    outcome.hash = hash;
    outcome.cache_hit = true;
    done(std::move(outcome));
    return;
  }

  auto job = std::make_shared<Job>();
  job->scenario = std::move(scenario);
  job->hash = hash;
  job->future = job->promise.get_future().share();
  job->trace = trace;

  JobOutcome ready;  // sync outcome (shed/stopping) delivered outside the lock
  bool have_ready = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto flying = in_flight_.find(hash);
    if (flying != in_flight_.end()) {
      ++stats_.coalesced;
      coalesced_counter_.inc();
      flying->second->callbacks.push_back(
          [done = std::move(done)](JobOutcome outcome) {
            outcome.coalesced = true;
            done(std::move(outcome));
          });
      return;
    }
    if (options_.fault != nullptr && options_.fault->rejectAdmission()) {
      ready = shedOutcome(hash, "admission rejected (fault plan)");
      have_ready = true;
    } else if (options_.shed_when_full &&
               queue_.size() >= options_.queue_depth) {
      ready = shedOutcome(hash, "job queue full (" +
                                    std::to_string(options_.queue_depth) +
                                    " deep)");
      have_ready = true;
    } else {
      // Same bounded-FIFO backpressure as submit(); only reachable when the
      // engine is configured to block rather than shed.
      queue_cv_.wait(lock, [this] {
        return stopping_ || queue_.size() < options_.queue_depth;
      });
      if (stopping_) {
        ready.status = JobStatus::kError;
        ready.error = "job engine is shutting down";
        ready.hash = hash;
        have_ready = true;
      } else {
        job->callbacks.push_back(std::move(done));
        in_flight_[hash] = job;
        job->enqueued_at = std::chrono::steady_clock::now();
        queue_.push_back(std::move(job));
        ++stats_.submitted;
        submitted_counter_.inc();
        queue_depth_gauge_.set(static_cast<std::int64_t>(queue_.size()));
        in_flight_gauge_.set(static_cast<std::int64_t>(in_flight_.size()));
      }
    }
  }
  if (have_ready) {
    done(std::move(ready));
    return;
  }
  queue_cv_.notify_all();
}

JobOutcome JobEngine::run(const Scenario& scenario,
                          const obs::TraceContext& trace) {
  auto [future, coalesced] = submit(scenario, trace);
  JobOutcome outcome = await(std::move(future));
  outcome.coalesced = outcome.coalesced || coalesced;
  return outcome;
}

std::vector<JobOutcome> JobEngine::sweep(
    const std::vector<Scenario>& scenarios, const obs::TraceContext& trace) {
  std::vector<std::pair<std::shared_future<JobOutcome>, bool>> futures;
  futures.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios)
    futures.push_back(submit(scenario, trace));
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(futures.size());
  for (auto& [future, coalesced] : futures) {
    JobOutcome outcome = await(std::move(future));
    outcome.coalesced = outcome.coalesced || coalesced;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

JobEngineStats JobEngine::stats() const {
  JobEngineStats snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = stats_;
    snapshot.queue_depth = queue_.size();
    snapshot.in_flight = in_flight_.size();
  }
  snapshot.cache = cache_.stats();
  return snapshot;
}

}  // namespace lb::service
