#pragma once
// Physical channel model: achievable bus clock vs. topology size.
//
// Paper Section 2: "Another factor that affects the performance of a
// communication channel is its clock frequency, which (for a given process
// technology) depends on the complexity of the interface logic, the
// placement of the various components, and the routing of the wires."
//
// This model turns that qualitative statement into numbers for the 0.35u
// target: a shared channel's cycle time is the max of (a) the arbitration
// logic's pipelined critical path (from the lottery manager's TimingReport)
// and (b) the wire/driver delay of a bus whose length and loading grow with
// the number of attached components.  bench/channel_scaling combines this
// with the cycle-accurate simulator to report *absolute* bandwidth
// (MB/s) as a flat bus grows — the engineering argument for partitioned
// multi-channel topologies (bench/topology_partitioning).

#include <cstddef>

namespace lb::hw {

/// Wire/driver constants for the 0.35u target.
struct ChannelTechnology {
  double mm_per_component = 1.1;   ///< bus length added per attached block
  double ns_per_mm = 0.16;         ///< distributed RC delay per mm (repeated)
  double ns_per_load = 0.07;       ///< added driver delay per attached input
  double ns_base = 1.1;            ///< driver + receiver + clock margin
  unsigned bus_width_bits = 32;
};

struct ChannelEstimate {
  double wire_ns = 0.0;        ///< wire + loading delay
  double arbitration_ns = 0.0; ///< pipelined arbiter stage (caller-supplied)
  double cycle_ns = 0.0;       ///< max of the two
  double clock_mhz = 0.0;
  double peak_bandwidth_mbps = 0.0;  ///< width * clock, in MB/s
};

/// Estimates a shared channel with `components` attached blocks (masters +
/// slaves) whose arbiter needs `arbitration_ns` per pipelined stage.
ChannelEstimate estimateChannel(std::size_t components, double arbitration_ns,
                                ChannelTechnology tech = {});

}  // namespace lb::hw
