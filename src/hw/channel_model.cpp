#include "hw/channel_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace lb::hw {

ChannelEstimate estimateChannel(std::size_t components, double arbitration_ns,
                                ChannelTechnology tech) {
  if (components == 0)
    throw std::invalid_argument("estimateChannel: no components");
  if (arbitration_ns < 0.0)
    throw std::invalid_argument("estimateChannel: negative arbitration time");

  ChannelEstimate estimate;
  const double length_mm =
      tech.mm_per_component * static_cast<double>(components);
  estimate.wire_ns = tech.ns_base + length_mm * tech.ns_per_mm +
                     static_cast<double>(components) * tech.ns_per_load;
  estimate.arbitration_ns = arbitration_ns;
  estimate.cycle_ns = std::max(estimate.wire_ns, estimate.arbitration_ns);
  estimate.clock_mhz = 1000.0 / estimate.cycle_ns;
  // width bits/cycle * cycles/s / 8 -> bytes/s; report MB/s.
  estimate.peak_bandwidth_mbps = static_cast<double>(tech.bus_width_bits) /
                                 8.0 * estimate.clock_mhz * 1e6 / 1e6;
  return estimate;
}

}  // namespace lb::hw
