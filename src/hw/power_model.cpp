#include "hw/power_model.hpp"

#include <algorithm>

namespace lb::hw {

double EnergyReport::totalPj() const {
  double total = 0.0;
  for (const Item& item : items) total += item.pj;
  return total;
}

void EnergyReport::add(std::string component, double pj) {
  items.push_back(Item{std::move(component), pj});
}

EnergyReport staticDrawEnergy(const StaticLotteryManagerHw& manager,
                              EnergyConstants constants) {
  const auto n = static_cast<double>(manager.masters());
  const double bits = static_cast<double>(manager.datapathBits());
  EnergyReport report;
  // One LUT row read: n partial sums of datapath width.
  report.add("lookup-table read",
             n * bits * constants.pj_per_regfile_bit_read +
                 static_cast<double>(manager.table().rows()) *
                     constants.pj_per_decoder_row / 8.0);
  report.add("lfsr step", 16.0 * 0.5 * constants.pj_per_ff_toggle);
  report.add("comparator bank", n * bits * constants.pj_per_comparator_bit);
  report.add("priority select", n * constants.pj_per_selector_lane);
  report.add("grant/pipeline registers",
             (bits + n) * 0.5 * constants.pj_per_ff_toggle);
  report.add("control", constants.pj_control_overhead);
  return report;
}

EnergyReport dynamicDrawEnergy(const DynamicLotteryManagerHw& manager,
                               EnergyConstants constants) {
  const auto n = static_cast<double>(manager.masters());
  const double bits = static_cast<double>(manager.sumBits());
  EnergyReport report;
  report.add("and mask",
             n * static_cast<double>(manager.ticketBits()) * 0.05);
  // Every adder in the prefix network evaluates on every lottery.
  const AdderTree tree(manager.masters(), manager.sumBits());
  report.add("adder tree", static_cast<double>(tree.adderCount()) * bits *
                               constants.pj_per_adder_bit);
  // Restoring modulo: width iterations, each a subtract across `bits`.
  const double modulo_bits = static_cast<double>(
      std::min<unsigned>(manager.sumBits() + 4u, 32u));
  report.add("modulo reduce",
             modulo_bits * bits * constants.pj_per_modulo_step_bit);
  report.add("lfsr step", 16.0 * 0.5 * constants.pj_per_ff_toggle);
  report.add("comparator bank", n * bits * constants.pj_per_comparator_bit);
  report.add("priority select", n * constants.pj_per_selector_lane);
  report.add("grant/pipeline registers",
             (bits * (n + 1.0)) * 0.5 * constants.pj_per_ff_toggle);
  report.add("control", constants.pj_control_overhead);
  return report;
}

double arbitrationPowerMw(const EnergyReport& per_draw_energy,
                          double draws_per_second) {
  // pJ * draws/s = pW; /1e9 -> mW.
  return per_draw_energy.totalPj() * draws_per_second / 1e9;
}

}  // namespace lb::hw
