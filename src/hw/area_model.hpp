#pragma once
// Area/timing model for the lottery-manager netlists in a 0.35u cell-based
// array technology (the paper mapped its implementation to NEC's CBC9VX
// 0.35u family and reported the controller area in "cell grids" — the basic
// placement site of that array — and a one-cycle arbitration time of ~3.2 ns,
// i.e. bus clocks up to ~312 MHz).
//
// We do not have the NEC library, so the per-primitive constants below are
// calibrated estimates chosen to (a) respect relative gate complexities and
// (b) land the 4-master static manager in the paper's reported magnitude.
// EXPERIMENTS.md discusses the calibration.  Everything downstream depends
// only on *trends* (how area/delay scale with masters and ticket width),
// which the structural counts make exact.

#include <cstdint>
#include <string>
#include <vector>

namespace lb::hw {

/// Technology constants (cell grids / ns) for the 0.35u target.
struct Technology {
  // area, in cell grids
  double grids_per_flipflop = 10.0;
  double grids_per_full_adder = 7.0;
  double grids_per_comparator_bit = 5.0;
  double grids_per_regfile_bit = 9.0;     // storage + read mux share
  double grids_per_decoder_input = 12.0;  // address decode, per row
  double grids_per_selector_lane = 14.0;  // priority-select + grant driver
  double grids_per_xor = 4.0;             // LFSR feedback taps
  double grids_control_overhead = 1500.0; // FSM, request latches, I/F logic

  // delay, in ns
  double ns_regfile_read = 2.6;     // decode + word-line + sense
  double ns_comparator_base = 0.9;  // comparator fixed cost
  double ns_comparator_per_bit = 0.10;
  double ns_selector = 0.5;
  double ns_adder_stage = 1.4;      // one 16-bit adder level in the tree
  double ns_and_mask = 0.3;
  double ns_modulo_per_step = 0.55; // one subtract/restore iteration
  double ns_lfsr = 0.8;             // one LFSR shift (never on critical path
                                    // when pipelined)
  double ns_register_setup = 0.4;   // pipeline register setup+clk->q
};

/// Itemized area report.
struct AreaReport {
  struct Item {
    std::string component;
    double grids = 0.0;
  };
  std::vector<Item> items;
  double totalGrids() const;
  void add(std::string component, double grids);
};

/// Stage-by-stage timing report for a pipelined datapath.
struct TimingReport {
  struct Stage {
    std::string stage;
    double ns = 0.0;
  };
  std::vector<Stage> stages;
  /// Pipelined arbitration: the clock period is the slowest stage.
  double criticalPathNs() const;
  double maxFrequencyMhz() const;
  /// Non-pipelined: all stages in one cycle.
  double flowThroughNs() const;
  void add(std::string stage, double ns);
};

}  // namespace lb::hw
