#pragma once
// Adapter that plugs the *structural* static lottery manager into the bus
// model as an IArbiter, so the gate-level netlist can be validated against
// the behavioral LotteryArbiter at full-system level (identical seeds must
// yield identical grant sequences).

#include <cstdint>
#include <vector>

#include "bus/arbiter.hpp"
#include "hw/lottery_manager_hw.hpp"

namespace lb::hw {

class HwLotteryArbiter final : public bus::IArbiter {
public:
  HwLotteryArbiter(std::vector<std::uint32_t> tickets,
                   std::uint32_t seed = 0xACE1u)
      : tickets_(std::move(tickets)), seed_(seed),
        manager_(tickets_, seed_) {}

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle /*now*/) override {
    const std::uint32_t map = requests.requestMap();
    if (map == 0) return bus::Grant{};
    const int winner = manager_.drawIndex(map);
    return bus::Grant{winner, 0};
  }

  std::string name() const override { return "lottery-hw"; }

  void reset() override {
    manager_ = StaticLotteryManagerHw(tickets_, seed_);
  }

  StaticLotteryManagerHw& manager() { return manager_; }

private:
  std::vector<std::uint32_t> tickets_;
  std::uint32_t seed_;
  StaticLotteryManagerHw manager_;
};

}  // namespace lb::hw
