#pragma once
// Synthesizable Verilog-2001 export of the static lottery manager.
//
// Generates an RTL module implementing exactly the Figure-9 datapath the
// C++ StaticLotteryManagerHw models bit-accurately:
//
//   - the request map indexes a precomputed partial-sum lookup table
//     (emitted as a case statement -> synthesizes to the register
//     file / ROM the paper used),
//   - a Galois LFSR with the same maximal-length taps supplies the random
//     number, masked to ceil(log2 T_map) bits per the live request map,
//   - a parallel comparator bank and priority selector drive the one-hot
//     grant lines; an out-of-range draw asserts no grant and the lottery
//     re-draws the next cycle (matching the C++ model's redraw semantics).
//
// The module is a single always-block synchronous design with an active-low
// reset; grant outputs are registered (the paper's pipelined arbitration).

#include <string>
#include <vector>

#include "hw/lottery_manager_hw.hpp"

namespace lb::hw {

struct VerilogOptions {
  std::string module_name = "lottery_manager";
  bool include_header_comment = true;
};

/// Emits the RTL for a static lottery manager with the given (pre-scaling)
/// tickets and LFSR seed.  The generated module has ports:
///   input  clk, rst_n
///   input  [N-1:0] req
///   output reg [N-1:0] gnt   (one-hot or zero)
std::string exportStaticManagerVerilog(
    const std::vector<std::uint32_t>& tickets, std::uint32_t seed = 0xACE1u,
    VerilogOptions options = {});

/// Emits a self-checking Verilog testbench that instantiates the module,
/// drives a request pattern, and checks the one-hot/grant-validity
/// invariants (useful for dropping the output into a simulator).
std::string exportManagerTestbench(const std::vector<std::uint32_t>& tickets,
                                   const VerilogOptions& options = {});

/// Emits the RTL for a DYNAMIC lottery manager (Figure 10 datapath): live
/// per-master ticket inputs, combinational masking + prefix-sum adder tree,
/// an iterative restoring-modulo unit folding the LFSR output into [0, T),
/// and the comparator/priority-select back end.  Ports:
///   input  clk, rst_n, start
///   input  [N-1:0] req
///   input  [N*TW-1:0] tickets   (master i's tickets at [i*TW +: TW])
///   output reg [N-1:0] gnt
///   output reg done
/// One lottery takes width(modulo)+1 cycles from `start` (the modulo unit
/// is sequential, matching the C++ model's iteration count).
std::string exportDynamicManagerVerilog(std::size_t masters,
                                        unsigned ticket_bits = 8,
                                        std::uint32_t seed = 0xACE1u,
                                        VerilogOptions options = {});

}  // namespace lb::hw
