#include "hw/area_model.hpp"

#include <algorithm>

namespace lb::hw {

double AreaReport::totalGrids() const {
  double total = 0.0;
  for (const Item& item : items) total += item.grids;
  return total;
}

void AreaReport::add(std::string component, double grids) {
  items.push_back(Item{std::move(component), grids});
}

double TimingReport::criticalPathNs() const {
  double worst = 0.0;
  for (const Stage& stage : stages) worst = std::max(worst, stage.ns);
  return worst;
}

double TimingReport::maxFrequencyMhz() const {
  const double period = criticalPathNs();
  return period > 0.0 ? 1000.0 / period : 0.0;
}

double TimingReport::flowThroughNs() const {
  double total = 0.0;
  for (const Stage& stage : stages) total += stage.ns;
  return total;
}

void TimingReport::add(std::string stage, double ns) {
  stages.push_back(Stage{std::move(stage), ns});
}

}  // namespace lb::hw
