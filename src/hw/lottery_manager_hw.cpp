#include "hw/lottery_manager_hw.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/tickets.hpp"

namespace lb::hw {

namespace {
std::vector<std::uint32_t> scaleOrThrow(
    const std::vector<std::uint32_t>& tickets) {
  if (tickets.empty())
    throw std::invalid_argument("StaticLotteryManagerHw: no tickets");
  return core::scaleToPowerOfTwo(tickets).tickets;
}

unsigned lfsrWidthFor(unsigned needed_bits) {
  // Use the canonical 16-bit register unless the ticket range needs more;
  // wider requests snap to the nearest tabulated maximal-length width.
  return sim::GaloisLfsr::widthAtLeast(std::max(needed_bits, 16u));
}
}  // namespace

StaticLotteryManagerHw::StaticLotteryManagerHw(
    const std::vector<std::uint32_t>& tickets, std::uint32_t seed,
    Technology tech)
    : tech_(tech),
      tickets_(scaleOrThrow(tickets)),
      ticket_bits_(core::ceilLog2(
          std::accumulate(tickets_.begin(), tickets_.end(), std::uint64_t{0}) +
          1)),
      datapath_bits_(std::max(ticket_bits_, 16u)),
      table_(tickets_),
      lfsr_(lfsrWidthFor(ticket_bits_), seed),
      comparators_(tickets_.size(), ticket_bits_),
      selector_(tickets_.size()) {}

std::uint32_t StaticLotteryManagerHw::draw(std::uint32_t request_map) {
  const std::uint32_t map_mask = (1u << tickets_.size()) - 1u;
  request_map &= map_mask;
  if (request_map == 0) return 0;

  const std::vector<std::uint64_t>& row = table_.row(request_map);
  const std::uint64_t total = row.back();

  const unsigned bits = std::max(1u, core::ceilLog2(total));
  for (;;) {
    const std::uint32_t number = lfsr_.drawBits(bits);
    const std::uint32_t fired = comparators_.compare(number, row);
    const std::uint32_t grant = selector_.select(fired);
    if (grant != 0) return grant;
    // number >= total: no comparator fired; the manager re-draws next cycle.
    ++redraws_;
  }
}

int StaticLotteryManagerHw::drawIndex(std::uint32_t request_map) {
  return PrioritySelector::grantIndex(draw(request_map));
}

AreaReport StaticLotteryManagerHw::area() const {
  const auto n = static_cast<double>(tickets_.size());
  const double bits = static_cast<double>(datapath_bits_);
  AreaReport report;
  // Physical register file: every entry occupies a full datapath word,
  // regardless of how few bits the configured tickets would need.
  report.add("lookup-table storage",
             static_cast<double>(table_.rows()) * n * bits *
                 tech_.grids_per_regfile_bit);
  report.add("lookup-table decoder",
             static_cast<double>(table_.rows()) * tech_.grids_per_decoder_input);
  report.add("lfsr", static_cast<double>(lfsr_.width()) *
                             tech_.grids_per_flipflop +
                         4.0 * tech_.grids_per_xor);
  report.add("comparator bank", n * bits * tech_.grids_per_comparator_bit);
  report.add("priority selector", n * tech_.grids_per_selector_lane);
  report.add("pipeline registers",
             (bits + n) * 2.0 * tech_.grids_per_flipflop);
  report.add("control & interfaces", tech_.grids_control_overhead);
  return report;
}

TimingReport StaticLotteryManagerHw::timing() const {
  TimingReport report;
  report.add("lookup-table read",
             tech_.ns_regfile_read + tech_.ns_register_setup);
  report.add("lfsr step", tech_.ns_lfsr + tech_.ns_register_setup);
  report.add("compare + grant select",
             tech_.ns_comparator_base +
                 tech_.ns_comparator_per_bit * datapath_bits_ +
                 tech_.ns_selector + tech_.ns_register_setup);
  return report;
}

DynamicLotteryManagerHw::DynamicLotteryManagerHw(std::size_t masters,
                                                 unsigned ticket_bits,
                                                 std::uint32_t seed,
                                                 Technology tech)
    : tech_(tech),
      masters_(masters),
      ticket_bits_(ticket_bits),
      sum_bits_(ticket_bits + core::ceilLog2(std::max<std::size_t>(masters, 2))),
      adder_tree_(masters, sum_bits_),
      modulo_(std::clamp(sum_bits_ + 4u, 8u, 32u)),
      lfsr_(lfsrWidthFor(sum_bits_ + 4u), seed),
      comparators_(masters, sum_bits_),
      selector_(masters) {
  if (masters == 0 || masters > 31)
    throw std::invalid_argument("DynamicLotteryManagerHw: bad master count");
  if (ticket_bits == 0 || ticket_bits > 24)
    throw std::invalid_argument("DynamicLotteryManagerHw: bad ticket width");
}

std::uint32_t DynamicLotteryManagerHw::draw(
    std::uint32_t request_map, const std::vector<std::uint32_t>& tickets) {
  if (tickets.size() != masters_)
    throw std::invalid_argument("DynamicLotteryManagerHw: arity mismatch");
  const std::uint32_t ticket_mask = (ticket_bits_ >= 32)
                                        ? 0xFFFFFFFFu
                                        : ((1u << ticket_bits_) - 1u);
  for (const std::uint32_t t : tickets)
    if ((t & ~ticket_mask) != 0)
      throw std::invalid_argument(
          "DynamicLotteryManagerHw: ticket exceeds input width");

  const std::vector<std::uint32_t> masked = maskTickets(tickets, request_map);
  const std::vector<std::uint64_t> sums = adder_tree_.prefixSums(masked);
  const std::uint64_t total = sums.back();
  if (total == 0) return 0;  // nothing pending (or all pending hold 0)

  // The LFSR free-runs; the modulo unit folds its output into [0, T).
  // R mod T is negligibly biased when 2^w is not a multiple of T — a
  // property of the real hardware that the distribution tests bound.
  const std::uint32_t raw = lfsr_.step();
  const std::uint32_t number =
      modulo_.reduce(raw, static_cast<std::uint32_t>(total)).remainder;

  const std::uint32_t fired = comparators_.compare(number, sums);
  return selector_.select(fired);
}

int DynamicLotteryManagerHw::drawIndex(
    std::uint32_t request_map, const std::vector<std::uint32_t>& tickets) {
  return PrioritySelector::grantIndex(draw(request_map, tickets));
}

AreaReport DynamicLotteryManagerHw::area() const {
  const auto n = static_cast<double>(masters_);
  const double sum_bits = static_cast<double>(sum_bits_);
  AreaReport report;
  report.add("and mask", n * static_cast<double>(ticket_bits_) * 2.0);
  report.add("adder tree",
             static_cast<double>(adder_tree_.adderCount()) * sum_bits *
                 tech_.grids_per_full_adder);
  report.add("modulo unit",
             static_cast<double>(modulo_.widthBits()) *
                 (tech_.grids_per_full_adder + tech_.grids_per_flipflop));
  report.add("lfsr", static_cast<double>(lfsr_.width()) *
                             tech_.grids_per_flipflop +
                         4.0 * tech_.grids_per_xor);
  report.add("comparator bank", n * sum_bits * tech_.grids_per_comparator_bit);
  report.add("priority selector", n * tech_.grids_per_selector_lane);
  report.add("pipeline registers",
             (sum_bits * (n + 1.0)) * tech_.grids_per_flipflop);
  report.add("control & interfaces", tech_.grids_control_overhead);
  return report;
}

TimingReport DynamicLotteryManagerHw::timing() const {
  TimingReport report;
  report.add("mask + adder tree",
             tech_.ns_and_mask +
                 tech_.ns_adder_stage * static_cast<double>(adder_tree_.depth()) +
                 tech_.ns_register_setup);
  report.add("modulo reduce",
             tech_.ns_modulo_per_step * static_cast<double>(modulo_.widthBits()) +
                 tech_.ns_register_setup);
  report.add("compare + grant select",
             tech_.ns_comparator_base + tech_.ns_comparator_per_bit * sum_bits_ +
                 tech_.ns_selector + tech_.ns_register_setup);
  return report;
}

}  // namespace lb::hw
