#include "hw/primitives.hpp"

#include <stdexcept>

#include "core/tickets.hpp"

namespace lb::hw {

std::vector<std::uint32_t> maskTickets(
    const std::vector<std::uint32_t>& tickets, std::uint32_t request_map) {
  std::vector<std::uint32_t> masked(tickets.size());
  for (std::size_t i = 0; i < tickets.size(); ++i)
    masked[i] = (request_map & (1u << i)) ? tickets[i] : 0u;
  return masked;
}

AdderTree::AdderTree(std::size_t inputs, unsigned width_bits)
    : inputs_(inputs), width_bits_(width_bits) {
  if (inputs == 0) throw std::invalid_argument("AdderTree: zero inputs");
  if (width_bits == 0 || width_bits > 64)
    throw std::invalid_argument("AdderTree: bad width");
}

std::vector<std::uint64_t> AdderTree::prefixSums(
    const std::vector<std::uint32_t>& values) const {
  if (values.size() != inputs_)
    throw std::invalid_argument("AdderTree: input arity mismatch");
  const std::uint64_t wrap_mask =
      width_bits_ >= 64 ? ~0ULL : ((1ULL << width_bits_) - 1ULL);
  std::vector<std::uint64_t> sums(inputs_);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < inputs_; ++i) {
    acc = (acc + values[i]) & wrap_mask;
    sums[i] = acc;
  }
  return sums;
}

std::size_t AdderTree::adderCount() const {
  // Brent-Kung prefix network: ~2n - log2(n) - 2 adders; never below n-1.
  std::size_t n = inputs_;
  if (n <= 1) return 0;
  unsigned log2n = 0;
  while ((std::size_t{1} << (log2n + 1)) <= n) ++log2n;
  const std::size_t bk = 2 * n - log2n - 2;
  return std::max(bk, n - 1);
}

unsigned AdderTree::depth() const {
  if (inputs_ <= 1) return 0;
  unsigned depth = 0;
  while ((std::size_t{1} << depth) < inputs_) ++depth;
  return 2 * depth - 1;  // Brent-Kung: up-sweep + down-sweep
}

ComparatorBank::ComparatorBank(std::size_t lanes, unsigned width_bits)
    : lanes_(lanes), width_bits_(width_bits) {
  if (lanes == 0 || lanes > 32)
    throw std::invalid_argument("ComparatorBank: bad lane count");
  if (width_bits == 0 || width_bits > 64)
    throw std::invalid_argument("ComparatorBank: bad width");
}

std::uint32_t ComparatorBank::compare(
    std::uint64_t number, const std::vector<std::uint64_t>& sums) const {
  if (sums.size() != lanes_)
    throw std::invalid_argument("ComparatorBank: sum arity mismatch");
  std::uint32_t out = 0;
  for (std::size_t i = 0; i < lanes_; ++i)
    if (number < sums[i]) out |= (1u << i);
  return out;
}

PrioritySelector::PrioritySelector(std::size_t lanes) : lanes_(lanes) {
  if (lanes == 0 || lanes > 32)
    throw std::invalid_argument("PrioritySelector: bad lane count");
}

std::uint32_t PrioritySelector::select(std::uint32_t inputs) const {
  const std::uint32_t mask =
      lanes_ >= 32 ? 0xFFFFFFFFu : ((1u << lanes_) - 1u);
  inputs &= mask;
  if (inputs == 0) return 0;
  return inputs & (~inputs + 1u);  // isolate lowest set bit
}

int PrioritySelector::grantIndex(std::uint32_t one_hot) {
  if (one_hot == 0) return -1;
  int index = 0;
  while ((one_hot & 1u) == 0) {
    one_hot >>= 1;
    ++index;
  }
  return index;
}

ModuloUnit::ModuloUnit(unsigned width_bits) : width_bits_(width_bits) {
  if (width_bits == 0 || width_bits > 32)
    throw std::invalid_argument("ModuloUnit: bad width");
}

ModuloUnit::Result ModuloUnit::reduce(std::uint32_t value,
                                      std::uint32_t modulus) const {
  if (modulus == 0) throw std::invalid_argument("ModuloUnit: modulus == 0");
  // Restoring division: shift the remainder in bit by bit, conditionally
  // subtracting the modulus — exactly what the sequential hardware does.
  Result result;
  std::uint64_t remainder = 0;
  for (int bit = static_cast<int>(width_bits_) - 1; bit >= 0; --bit) {
    remainder = (remainder << 1) | ((value >> bit) & 1u);
    ++result.iterations;
    if (remainder >= modulus) remainder -= modulus;
  }
  result.remainder = static_cast<std::uint32_t>(remainder);
  return result;
}

LookupTable::LookupTable(const std::vector<std::uint32_t>& tickets)
    : lanes_(tickets.size()) {
  if (tickets.empty()) throw std::invalid_argument("LookupTable: no tickets");
  if (tickets.size() > 12)
    throw std::invalid_argument("LookupTable: too many masters for a LUT");
  std::uint64_t total = 0;
  for (const std::uint32_t t : tickets) total += t;
  entry_bits_ = core::ceilLog2(total + 1);
  const std::uint32_t row_count = 1u << tickets.size();
  rows_.reserve(row_count);
  for (std::uint32_t map = 0; map < row_count; ++map)
    rows_.push_back(core::partialSums(tickets, map));
}

const std::vector<std::uint64_t>& LookupTable::row(
    std::uint32_t request_map) const {
  return rows_.at(request_map);
}

std::uint64_t LookupTable::storageBits() const {
  return static_cast<std::uint64_t>(rows_.size()) * lanes_ * entry_bits_;
}

}  // namespace lb::hw
