#pragma once
// Arbitration energy model for the lottery managers.
//
// The paper motivates communication-architecture work partly through power
// ("the communication architecture also significantly influences the system
// ... power consumption", Section 1) but reports no numbers.  This model
// complements the area/timing model with per-arbitration energy estimates
// for a 0.35u process: each primitive contributes switched capacitance
// proportional to its active bits, scaled by calibrated pJ/bit constants.
// As with area, absolute numbers are estimates; relative trends (static LUT
// lookups vs dynamic adder-tree recomputation, scaling with master count)
// come from exact structural counts.

#include "hw/area_model.hpp"
#include "hw/lottery_manager_hw.hpp"

namespace lb::hw {

/// Energy constants (picojoules) for the 0.35u target at nominal VDD.
struct EnergyConstants {
  double pj_per_regfile_bit_read = 0.18;  ///< LUT row read, per stored bit
  double pj_per_decoder_row = 0.35;       ///< address decode, per row
  double pj_per_comparator_bit = 0.22;
  double pj_per_selector_lane = 0.40;
  double pj_per_ff_toggle = 0.30;         ///< ~half the FFs toggle per cycle
  double pj_per_adder_bit = 0.45;         ///< one full-adder evaluation
  double pj_per_modulo_step_bit = 0.40;   ///< subtract/restore iteration
  double pj_control_overhead = 5.0;       ///< clock tree + FSM per event
};

/// Itemized energy per lottery (one arbitration event).
struct EnergyReport {
  struct Item {
    std::string component;
    double pj = 0.0;
  };
  std::vector<Item> items;
  double totalPj() const;
  void add(std::string component, double pj);
};

/// Per-arbitration energy of the static (Figure 9) manager.
EnergyReport staticDrawEnergy(const StaticLotteryManagerHw& manager,
                              EnergyConstants constants = {});

/// Per-arbitration energy of the dynamic (Figure 10) manager.
EnergyReport dynamicDrawEnergy(const DynamicLotteryManagerHw& manager,
                               EnergyConstants constants = {});

/// Arbitration power in milliwatts at the given draw rate.
double arbitrationPowerMw(const EnergyReport& per_draw_energy,
                          double draws_per_second);

}  // namespace lb::hw
