#pragma once
// Structural (bit-accurate) lottery managers.
//
// StaticLotteryManagerHw implements Figure 9: request map indexes a
// register-file lookup table of precomputed partial-sum ranges; a Galois
// LFSR supplies the random number; a comparator bank plus priority selector
// produce exactly one grant line.  Tickets are pre-scaled so the all-pending
// total is a power of two (Section 4.3); draws against a partial request map
// use the low ceil(log2 T) LFSR bits and re-draw on the (rare) overshoot, in
// which case no comparator fires — the behavioral model in src/core uses the
// same rule, so the two produce identical grant sequences from equal seeds.
//
// DynamicLotteryManagerHw implements Figure 10: bitwise AND masks the live
// ticket inputs, an adder tree forms the partial sums, modulo hardware folds
// the LFSR output into [0, T), and the same comparator/selector back end
// issues the grant.

#include <cstdint>
#include <vector>

#include "hw/area_model.hpp"
#include "hw/primitives.hpp"
#include "sim/rng.hpp"

namespace lb::hw {

class StaticLotteryManagerHw {
public:
  /// @param tickets  requested per-master ticket holdings (pre-scaling).
  /// @param seed     LFSR seed.
  /// @param tech     technology constants for area/timing reporting.
  StaticLotteryManagerHw(const std::vector<std::uint32_t>& tickets,
                         std::uint32_t seed = 0xACE1u,
                         Technology tech = Technology{});

  /// Runs one lottery for the given request map.  Returns the one-hot grant
  /// vector (0 when the map is empty).
  std::uint32_t draw(std::uint32_t request_map);

  /// Convenience: index of the granted master, -1 if none.
  int drawIndex(std::uint32_t request_map);

  const std::vector<std::uint32_t>& scaledTickets() const { return tickets_; }
  const LookupTable& table() const { return table_; }
  std::uint64_t redraws() const { return redraws_; }

  AreaReport area() const;
  TimingReport timing() const;

  std::size_t masters() const { return tickets_.size(); }
  unsigned ticketBits() const { return ticket_bits_; }
  /// Physical register/comparator width: the datapath is provisioned for a
  /// full 16-bit ticket space (as the paper's implementation was) even when
  /// the configured tickets need fewer bits.
  unsigned datapathBits() const { return datapath_bits_; }

private:
  Technology tech_;
  std::vector<std::uint32_t> tickets_;  // post power-of-two scaling
  unsigned ticket_bits_;                // live width of ranges & random draws
  unsigned datapath_bits_;              // physical storage/comparator width
  LookupTable table_;
  sim::GaloisLfsr lfsr_;
  ComparatorBank comparators_;
  PrioritySelector selector_;
  std::uint64_t redraws_ = 0;
};

class DynamicLotteryManagerHw {
public:
  /// @param masters     number of ticket/request input ports.
  /// @param ticket_bits width of each ticket input (total is wider by
  ///                    log2(masters)).
  DynamicLotteryManagerHw(std::size_t masters, unsigned ticket_bits = 8,
                          std::uint32_t seed = 0xACE1u,
                          Technology tech = Technology{});

  /// One lottery with live ticket values.  Ticket values must fit
  /// ticket_bits.  Returns the one-hot grant vector.
  std::uint32_t draw(std::uint32_t request_map,
                     const std::vector<std::uint32_t>& tickets);

  int drawIndex(std::uint32_t request_map,
                const std::vector<std::uint32_t>& tickets);

  AreaReport area() const;
  TimingReport timing() const;

  std::size_t masters() const { return masters_; }
  unsigned ticketBits() const { return ticket_bits_; }
  unsigned sumBits() const { return sum_bits_; }

private:
  Technology tech_;
  std::size_t masters_;
  unsigned ticket_bits_;
  unsigned sum_bits_;
  AdderTree adder_tree_;
  ModuloUnit modulo_;
  sim::GaloisLfsr lfsr_;
  ComparatorBank comparators_;
  PrioritySelector selector_;
};

}  // namespace lb::hw
