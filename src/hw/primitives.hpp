#pragma once
// Bit-accurate structural primitives for the lottery-manager hardware
// (paper Figures 9 and 10): adder tree, comparator bank, priority selector,
// modulo-reduction unit, and the precomputed-range lookup table.
//
// Each primitive computes exactly what the corresponding netlist computes,
// plus reports its size in technology-independent gate-equivalents that the
// AreaModel (area_model.hpp) converts into 0.35u cell grids and delays.

#include <cstdint>
#include <vector>

namespace lb::hw {

/// Bitwise-AND masking stage of Figure 10: r_i ? t_i : 0.
std::vector<std::uint32_t> maskTickets(const std::vector<std::uint32_t>& tickets,
                                       std::uint32_t request_map);

/// Balanced adder tree producing all prefix sums r1t1, r1t1+r2t2, ...
/// exactly as the Figure 10 tree does.  Also reports structural cost.
class AdderTree {
public:
  /// @param inputs     number of leaves (bus masters).
  /// @param width_bits operand width in bits.
  AdderTree(std::size_t inputs, unsigned width_bits);

  /// Prefix sums of `values` (size must equal inputs()).  Values wider than
  /// width_bits wrap, as hardware would; callers size width_bits to the
  /// maximum ticket total.
  std::vector<std::uint64_t> prefixSums(
      const std::vector<std::uint32_t>& values) const;

  std::size_t inputs() const { return inputs_; }
  unsigned widthBits() const { return width_bits_; }

  /// Number of adders in a Brent-Kung-style prefix network for n inputs.
  std::size_t adderCount() const;
  /// Logic depth in adder stages: ceil(log2(n)) for the tree phase plus the
  /// fan-back phase.
  unsigned depth() const;

private:
  std::size_t inputs_;
  unsigned width_bits_;
};

/// Bank of parallel magnitude comparators: out[i] = (number < sums[i]).
class ComparatorBank {
public:
  ComparatorBank(std::size_t lanes, unsigned width_bits);

  /// One-bit outputs packed LSB-first: bit i set iff number < sums[i].
  std::uint32_t compare(std::uint64_t number,
                        const std::vector<std::uint64_t>& sums) const;

  std::size_t lanes() const { return lanes_; }
  unsigned widthBits() const { return width_bits_; }

private:
  std::size_t lanes_;
  unsigned width_bits_;
};

/// Standard priority selector: asserts exactly the lowest-indexed set input
/// (paper: "a standard priority selector circuit ensures that at the end of
/// a lottery exactly one grant line is asserted").
class PrioritySelector {
public:
  explicit PrioritySelector(std::size_t lanes);

  /// One-hot output; 0 if no input is set.
  std::uint32_t select(std::uint32_t inputs) const;
  /// Index of the asserted grant line, -1 if none.
  static int grantIndex(std::uint32_t one_hot);

  std::size_t lanes() const { return lanes_; }

private:
  std::size_t lanes_;
};

/// Restoring shift-subtract modulo unit: remainder = value mod modulus,
/// the "modulo arithmetic hardware" of Figure 10.
class ModuloUnit {
public:
  explicit ModuloUnit(unsigned width_bits);

  struct Result {
    std::uint32_t remainder = 0;
    unsigned iterations = 0;  ///< subtract/restore steps executed
  };
  Result reduce(std::uint32_t value, std::uint32_t modulus) const;

  unsigned widthBits() const { return width_bits_; }

private:
  unsigned width_bits_;
};

/// Register-file lookup table: one row per request map, each row holding the
/// per-master partial-sum ranges (Figure 9: "for a given request map, the
/// range of tickets owned by each component is determined statically and
/// stored in a look-up table").
class LookupTable {
public:
  /// Builds all 2^n rows from static tickets (n = tickets.size() <= 12).
  explicit LookupTable(const std::vector<std::uint32_t>& tickets);

  const std::vector<std::uint64_t>& row(std::uint32_t request_map) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t lanes() const { return lanes_; }
  unsigned entryBits() const { return entry_bits_; }
  /// Total storage bits (rows * lanes * entry width).
  std::uint64_t storageBits() const;

private:
  std::vector<std::vector<std::uint64_t>> rows_;
  std::size_t lanes_;
  unsigned entry_bits_;
};

}  // namespace lb::hw
