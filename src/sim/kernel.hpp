#pragma once
// Quiescence-aware single-clock simulation kernel.
//
// The LOTTERYBUS experiments are all synchronous single-clock systems, so the
// kernel is deliberately simple: components register themselves and are
// called once per cycle in registration order (which the owner chooses to
// reflect hardware evaluation order: sources first, then interconnect, then
// sinks).  A small delayed-callback queue covers the few places that need
// "do X at cycle T" semantics (e.g. scheduled cell arrivals in the ATM
// switch).
//
// Two execution modes (KernelMode):
//
//  - kNaive: the classic stepper — every cycle is executed, every component
//    is dispatched every cycle.  The behavioral reference.
//  - kFast (default): before executing a cycle the kernel polls each
//    component's nextActivity() hint.  When every component is quiescent it
//    fast-forwards now() to the earliest of (next component activity, next
//    scheduled event, run deadline), telling each component to bulk-account
//    the skipped stretch via fastForward().  Components that do not override
//    the hints are polled as "active every cycle", so a system containing
//    only default components degenerates to the naive stepper exactly.
//
// Two dispatch paths, orthogonal to the mode:
//
//  - Sealed (default for the known concrete types): attach() overloads for
//    the closed set of simulation components store a std::variant of
//    concrete pointers, and the run loop dispatches them with std::visit.
//    Every cycle()/nextActivity()/fastForward() call is then a direct
//    (devirtualized, inlinable) call — the saturated-path optimization of
//    docs/performance.md.  The variant's alternatives are all `final`
//    classes, so the compiler statically resolves the callee per alternative.
//  - Virtual (the type-erased edge): attach(ICycleComponent&) keeps working
//    for tests, examples, and extensions; such components are stored as the
//    variant's ICycleComponent* alternative and dispatched virtually, at
//    exactly the pre-sealing cost.
//
// The two modes and the two dispatch paths are all required to be
// *bit-identical*: same statistics, same grant traces, same RNG draw counts
// (tests/kernel_diff_test.cpp holds this across every arbiter and across
// sealed/virtual attachment).  docs/performance.md describes the quiescence
// protocol, the sealed-component protocol, and their safety arguments.

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <variant>
#include <vector>

namespace lb::bus {
class Bus;
class Bridge;
class SplitSlave;
}  // namespace lb::bus
namespace lb::traffic {
class TrafficSource;
class TraceSource;
}  // namespace lb::traffic
namespace lb::noc {
class Router;
class NetworkInterface;
}  // namespace lb::noc
namespace lb::core {
class PeriodicTicketSchedule;
class BacklogTicketPolicy;
}  // namespace lb::core

namespace lb::sim {

using Cycle = std::uint64_t;

/// "No activity ever (without external input)" hint value.
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Kernel execution strategy; see the header comment.
enum class KernelMode {
  kNaive,  ///< dispatch every component every cycle (reference stepper)
  kFast,   ///< skip provably quiescent stretches, bulk-accounting them
};

/// Anything clocked by the kernel.
class ICycleComponent {
public:
  virtual ~ICycleComponent() = default;

  /// Called exactly once per *executed* simulated cycle, in registration
  /// order.  In fast mode, cycles inside a skipped stretch are not executed;
  /// fastForward() reports them instead.
  virtual void cycle(Cycle now) = 0;

  /// Quiescence hint, polled by the fast kernel before executing cycle
  /// `now`: the earliest cycle >= now at which this component needs its
  /// cycle() called.  Returning `now` means "run me this cycle"; returning
  /// kNeverCycle means "never, unless another component's action at an
  /// executed cycle feeds me new work".  The contract for returning T > now
  /// is that cycle() calls over [now, T) would be no-ops apart from
  /// per-cycle bookkeeping, which fastForward() must then reproduce in bulk.
  /// Implementations may lazily advance internal clocks up to `now` but must
  /// not act beyond it.  Default: active every cycle (always safe).
  virtual Cycle nextActivity(Cycle now) { return now; }

  /// Bulk-accounting callback for a skipped stretch [from, to): called in
  /// registration order when the fast kernel jumps from cycle `from` to
  /// cycle `to` without executing the cycles in between.  Must leave the
  /// component in exactly the state `to - from` no-op cycle() calls would
  /// have (counters advanced, idle/overhead cycles recorded).  Only called
  /// when this component's nextActivity(from) returned >= to.  Default:
  /// nothing to account.
  virtual void fastForward(Cycle /*from*/, Cycle /*to*/) {}

  /// Human-readable name for traces and error messages.
  virtual std::string name() const { return "component"; }
};

/// The sealed component set: one pointer alternative per concrete simulation
/// component type, plus the type-erased ICycleComponent* edge (always first,
/// so default-constructed variants are harmlessly virtual).  The variant is
/// declarable with incomplete types; only the dispatch (src/sim/sealed.cpp)
/// needs the definitions.
using SealedRef =
    std::variant<ICycleComponent*, bus::Bus*, traffic::TrafficSource*,
                 traffic::TraceSource*, bus::Bridge*, bus::SplitSlave*,
                 noc::Router*, noc::NetworkInterface*,
                 core::PeriodicTicketSchedule*, core::BacklogTicketPolicy*>;

/// Single-clock cycle-driven kernel.
class CycleKernel {
public:
  /// Registers a component; the kernel does NOT take ownership.  Components
  /// must outlive the kernel's run() calls.  This overload is the
  /// type-erased edge: the component is dispatched through its vtable.
  /// Passing a concrete sealed type through it (e.g. via an explicit
  /// static_cast to ICycleComponent&) deliberately forces the virtual path —
  /// the differential tests and the dispatch benchmarks rely on that.
  void attach(ICycleComponent& component) {
    components_.push_back(SealedRef{static_cast<ICycleComponent*>(&component)});
  }

  /// Sealed registrations: the same contract, but cycle()/nextActivity()/
  /// fastForward() are dispatched devirtualized.  Overload resolution picks
  /// these automatically whenever the caller's static type is concrete.
  void attach(bus::Bus& c) { components_.push_back(SealedRef{&c}); }
  void attach(traffic::TrafficSource& c) { components_.push_back(SealedRef{&c}); }
  void attach(traffic::TraceSource& c) { components_.push_back(SealedRef{&c}); }
  void attach(bus::Bridge& c) { components_.push_back(SealedRef{&c}); }
  void attach(bus::SplitSlave& c) { components_.push_back(SealedRef{&c}); }
  void attach(noc::Router& c) { components_.push_back(SealedRef{&c}); }
  void attach(noc::NetworkInterface& c) { components_.push_back(SealedRef{&c}); }
  void attach(core::PeriodicTicketSchedule& c) {
    components_.push_back(SealedRef{&c});
  }
  void attach(core::BacklogTicketPolicy& c) {
    components_.push_back(SealedRef{&c});
  }

  /// Schedules fn to run at the *start* of cycle `when` (before components).
  /// Events scheduled for the past run on the next cycle boundary.
  void at(Cycle when, std::function<void(Cycle)> fn);

  /// Schedules fn to run `delay` cycles from now.
  void after(Cycle delay, std::function<void(Cycle)> fn) {
    at(now_ + delay, std::move(fn));
  }

  /// Advances the simulation by `cycles` cycles.
  void run(Cycle cycles);

  /// Advances by one cycle.
  void step() { run(1); }

  /// Runs until `done(now)` returns true or `max_cycles` elapse.  Returns
  /// true if the predicate fired.  In naive mode the predicate is checked
  /// before every cycle; in fast mode it is checked only at event/activity
  /// boundaries (executed cycles), so predicates must depend on component
  /// or event state, not on wall-clock `now` alone — a pure time predicate
  /// belongs in at()/after() or in naive mode.
  bool runUntil(const std::function<bool(Cycle)>& done, Cycle max_cycles);

  /// Execution strategy; kFast by default (bit-identical to kNaive for
  /// hint-honest components, see class comment).
  void setMode(KernelMode mode) noexcept { mode_ = mode; }
  KernelMode mode() const noexcept { return mode_; }

  /// Current simulation time (number of completed cycles).
  Cycle now() const noexcept { return now_; }

  std::size_t componentCount() const noexcept { return components_.size(); }

  /// Number of attached components dispatched through the sealed (variant)
  /// path rather than the virtual edge.  Observability only.
  std::size_t sealedComponentCount() const noexcept {
    std::size_t n = 0;
    for (const SealedRef& ref : components_)
      n += std::holds_alternative<ICycleComponent*>(ref) ? 0 : 1;
    return n;
  }

  /// Cycles skipped (bulk-accounted, not executed) by the fast path since
  /// construction; always 0 in naive mode.  Observability only.
  Cycle cyclesSkipped() const noexcept { return cycles_skipped_; }

private:
  struct Event {
    Cycle when;
    std::uint64_t seq;  // tie-break: FIFO among same-cycle events
    std::function<void(Cycle)> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  /// Pops the earliest event, moving the callback out (no std::function
  /// copy: events_ is a std::*_heap-managed vector, not a priority_queue,
  /// precisely so the popped element is movable).
  Event popEvent();

  /// Runs every event due at now_ (start-of-cycle semantics).
  void runDueEvents();

  // The stepping loops live in src/sim/sealed.cpp, the one translation unit
  // that sees every sealed component's definition, so std::visit dispatch
  // compiles to direct (inlinable) calls there.

  /// Executes one cycle: due events, then every component, then ++now_.
  void executeCycle();

  /// Earliest cycle in [now_, end] the fast path must execute: the next
  /// due event or the minimum component activity hint, clamped to now_.
  Cycle nextInterestingCycle(Cycle end);

  /// fastForward(from, to) on every component, in registration order.
  void fastForwardAll(Cycle from, Cycle to);

  std::vector<SealedRef> components_;
  std::vector<Event> events_;  // min-heap via std::push_heap/std::pop_heap
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  KernelMode mode_ = KernelMode::kFast;
  Cycle cycles_skipped_ = 0;
};

}  // namespace lb::sim
