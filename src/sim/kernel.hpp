#pragma once
// Minimal cycle-driven simulation kernel.
//
// The LOTTERYBUS experiments are all synchronous single-clock systems, so the
// kernel is deliberately simple: components register themselves and are
// called once per cycle in registration order (which the owner chooses to
// reflect hardware evaluation order: sources first, then interconnect, then
// sinks).  A small delayed-callback queue covers the few places that need
// "do X at cycle T" semantics (e.g. scheduled cell arrivals in the ATM
// switch).

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace lb::sim {

using Cycle = std::uint64_t;

/// Anything clocked by the kernel.
class ICycleComponent {
public:
  virtual ~ICycleComponent() = default;

  /// Called exactly once per simulated cycle, in registration order.
  virtual void cycle(Cycle now) = 0;

  /// Human-readable name for traces and error messages.
  virtual std::string name() const { return "component"; }
};

/// Single-clock cycle-driven kernel.
class CycleKernel {
public:
  /// Registers a component; the kernel does NOT take ownership.  Components
  /// must outlive the kernel's run() calls.
  void attach(ICycleComponent& component) { components_.push_back(&component); }

  /// Schedules fn to run at the *start* of cycle `when` (before components).
  /// Events scheduled for the past run on the next cycle boundary.
  void at(Cycle when, std::function<void(Cycle)> fn);

  /// Schedules fn to run `delay` cycles from now.
  void after(Cycle delay, std::function<void(Cycle)> fn) {
    at(now_ + delay, std::move(fn));
  }

  /// Advances the simulation by `cycles` cycles.
  void run(Cycle cycles);

  /// Advances by one cycle.
  void step() { run(1); }

  /// Runs until `done(now)` returns true (checked before each cycle) or
  /// `max_cycles` elapse.  Returns true if the predicate fired.
  bool runUntil(const std::function<bool(Cycle)>& done, Cycle max_cycles);

  /// Current simulation time (number of completed cycles).
  Cycle now() const noexcept { return now_; }

  std::size_t componentCount() const noexcept { return components_.size(); }

private:
  struct Event {
    Cycle when;
    std::uint64_t seq;  // tie-break: FIFO among same-cycle events
    std::function<void(Cycle)> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::vector<ICycleComponent*> components_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace lb::sim
