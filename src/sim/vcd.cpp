#include "sim/vcd.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lb::sim {

VcdWriter::VcdWriter(std::string module, std::string timescale)
    : module_(std::move(module)), timescale_(std::move(timescale)) {}

std::string VcdWriter::codeFor(std::size_t index) {
  // Printable identifier codes '!'..'~', extended positionally.
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}

VcdWriter::SignalId VcdWriter::addWire(const std::string& name,
                                       unsigned width) {
  if (width == 0 || width > 64)
    throw std::invalid_argument("VcdWriter: wire width must be 1..64");
  if (name.empty()) throw std::invalid_argument("VcdWriter: empty wire name");
  signals_.push_back(Signal{name, width, codeFor(signals_.size())});
  return signals_.size() - 1;
}

void VcdWriter::change(std::uint64_t when, SignalId signal,
                       std::uint64_t value) {
  if (signal >= signals_.size())
    throw std::out_of_range("VcdWriter: unknown signal");
  changes_.push_back(Change{when, signal, value, changes_.size()});
}

void VcdWriter::writeTo(std::ostream& os) const {
  os << "$timescale " << timescale_ << " $end\n";
  os << "$scope module " << module_ << " $end\n";
  for (const Signal& signal : signals_)
    os << "$var wire " << signal.width << " " << signal.code << " "
       << signal.name << " $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<Change> sorted = changes_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Change& a, const Change& b) {
              return a.when != b.when ? a.when < b.when : a.seq < b.seq;
            });

  auto emit = [&](const Signal& signal, std::uint64_t value) {
    if (signal.width == 1) {
      os << (value & 1) << signal.code << "\n";
    } else {
      os << "b";
      bool leading = true;
      for (int bit = static_cast<int>(signal.width) - 1; bit >= 0; --bit) {
        const bool set = (value >> bit) & 1;
        if (set) leading = false;
        if (!leading || bit == 0) os << (set ? '1' : '0');
      }
      os << " " << signal.code << "\n";
    }
  };

  // Track last emitted value so repeated writes collapse; within one
  // timestamp the last write wins.
  std::map<SignalId, std::uint64_t> current;
  std::size_t i = 0;
  while (i < sorted.size()) {
    const std::uint64_t when = sorted[i].when;
    // Collapse all changes at this timestamp: keep each signal's last write.
    std::map<SignalId, std::uint64_t> at_time;
    while (i < sorted.size() && sorted[i].when == when) {
      at_time[sorted[i].signal] = sorted[i].value;
      ++i;
    }
    bool stamped = false;
    for (const auto& [signal, value] : at_time) {
      auto it = current.find(signal);
      if (it != current.end() && it->second == value) continue;
      if (!stamped) {
        os << "#" << when << "\n";
        stamped = true;
      }
      emit(signals_[signal], value);
      current[signal] = value;
    }
  }
}

std::string VcdWriter::str() const {
  std::ostringstream os;
  writeTo(os);
  return os.str();
}

}  // namespace lb::sim
