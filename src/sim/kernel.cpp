#include "sim/kernel.hpp"

#include <algorithm>

// The stepping loops (run, runUntil, executeCycle, nextInterestingCycle,
// fastForwardAll) are defined in src/sim/sealed.cpp: they dispatch the sealed
// component variant with std::visit, which needs the concrete component
// definitions in scope to devirtualize and inline the calls.  This file keeps
// only the component-type-agnostic event machinery.

namespace lb::sim {

void CycleKernel::at(Cycle when, std::function<void(Cycle)> fn) {
  if (when < now_) when = now_;
  events_.push_back(Event{when, next_seq_++, std::move(fn)});
  std::push_heap(events_.begin(), events_.end(), EventLater{});
}

CycleKernel::Event CycleKernel::popEvent() {
  std::pop_heap(events_.begin(), events_.end(), EventLater{});
  Event event = std::move(events_.back());
  events_.pop_back();
  return event;
}

void CycleKernel::runDueEvents() {
  while (!events_.empty() && events_.front().when <= now_) {
    // pop before invoking so the callback can schedule new events
    const Event event = popEvent();
    event.fn(now_);
  }
}

}  // namespace lb::sim
