#include "sim/kernel.hpp"

#include <algorithm>

namespace lb::sim {

namespace {
/// Ceiling for the adaptive probe burst: after a failed quiescence probe the
/// fast path executes up to this many cycles before probing again, so a
/// saturated system pays ~1/32 of the probe cost instead of one probe per
/// cycle.  The flip side — at most 31 cycles executed naively after a system
/// goes quiet before the skip engages — is noise against the stretches worth
/// skipping.
constexpr Cycle kMaxProbeBurst = 32;
}  // namespace

void CycleKernel::at(Cycle when, std::function<void(Cycle)> fn) {
  if (when < now_) when = now_;
  events_.push_back(Event{when, next_seq_++, std::move(fn)});
  std::push_heap(events_.begin(), events_.end(), EventLater{});
}

CycleKernel::Event CycleKernel::popEvent() {
  std::pop_heap(events_.begin(), events_.end(), EventLater{});
  Event event = std::move(events_.back());
  events_.pop_back();
  return event;
}

void CycleKernel::executeCycle() {
  while (!events_.empty() && events_.front().when <= now_) {
    // pop before invoking so the callback can schedule new events
    const Event event = popEvent();
    event.fn(now_);
  }
  for (ICycleComponent* c : components_) c->cycle(now_);
  ++now_;
}

Cycle CycleKernel::nextInterestingCycle(Cycle end) {
  Cycle next = end;
  if (!events_.empty()) next = std::min(next, events_.front().when);
  if (next <= now_) return now_;
  for (ICycleComponent* c : components_) {
    const Cycle hint = c->nextActivity(now_);
    if (hint <= now_) return now_;  // someone is active: no skipping
    next = std::min(next, hint);
  }
  return next;
}

void CycleKernel::run(Cycle cycles) {
  const Cycle end = now_ + cycles;
  if (mode_ == KernelMode::kNaive) {
    while (now_ < end) executeCycle();
    return;
  }
  Cycle probe_burst = 1;
  while (now_ < end) {
    const Cycle next = nextInterestingCycle(end);
    if (next > now_) {
      // Every component is quiescent over [now_, next): account the stretch
      // in bulk and jump.  `next` itself (if < end) is then executed
      // normally below on the following iteration.
      for (ICycleComponent* c : components_) c->fastForward(now_, next);
      cycles_skipped_ += next - now_;
      now_ = next;
      probe_burst = 1;
      continue;
    }
    // Probe failed: something is active right now.  Execute a geometrically
    // growing burst before probing again — executing a cycle is always
    // correct, so deferring the next probe trades (bounded) missed skips for
    // probe overhead, never correctness.
    const Cycle burst_end = std::min(end, now_ + probe_burst);
    while (now_ < burst_end) executeCycle();
    if (probe_burst < kMaxProbeBurst) probe_burst <<= 1;
  }
}

bool CycleKernel::runUntil(const std::function<bool(Cycle)>& done,
                           Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  if (mode_ == KernelMode::kNaive) {
    while (now_ < deadline) {
      if (done(now_)) return true;
      executeCycle();
    }
    return done(now_);
  }
  // Fast mode: the predicate can only change when state changes, so it is
  // checked once per *executed* cycle (exactly naive's cadence at those
  // boundaries) and never across a skipped stretch.
  Cycle probe_burst = 1;
  while (now_ < deadline) {
    if (done(now_)) return true;
    const Cycle next = nextInterestingCycle(deadline);
    if (next > now_) {
      for (ICycleComponent* c : components_) c->fastForward(now_, next);
      cycles_skipped_ += next - now_;
      now_ = next;
      probe_burst = 1;
      continue;
    }
    const Cycle burst_end = std::min(deadline, now_ + probe_burst);
    while (now_ < burst_end) {
      executeCycle();
      // The outer loop re-checks at burst_end; avoid double-calling there.
      if (now_ < burst_end && done(now_)) return true;
    }
    if (probe_burst < kMaxProbeBurst) probe_burst <<= 1;
  }
  return done(now_);
}

}  // namespace lb::sim
