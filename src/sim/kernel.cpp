#include "sim/kernel.hpp"

namespace lb::sim {

void CycleKernel::at(Cycle when, std::function<void(Cycle)> fn) {
  if (when < now_) when = now_;
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

bool CycleKernel::runUntil(const std::function<bool(Cycle)>& done,
                           Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  while (now_ < deadline) {
    if (done(now_)) return true;
    run(1);
  }
  return done(now_);
}

void CycleKernel::run(Cycle cycles) {
  const Cycle end = now_ + cycles;
  while (now_ < end) {
    while (!events_.empty() && events_.top().when <= now_) {
      // pop before invoking so the callback can schedule new events
      auto fn = events_.top().fn;
      events_.pop();
      fn(now_);
    }
    for (ICycleComponent* c : components_) c->cycle(now_);
    ++now_;
  }
}

}  // namespace lb::sim
