#pragma once
// Lockstep batched replication: step N independently-seeded replicas of one
// scenario through their kernels in bounded-size time chunks.
//
// Monte Carlo replication (bench/replication_confidence, seed sweeps, error
// bars on every stochastic headline figure) re-runs the same system under
// fresh RNG seeds.  Each replica owns its kernel, components, and RNG
// streams — there is no shared mutable state — so ANY interleaving of their
// execution is bit-identical to running them one after another.  This runner
// exploits that freedom two ways:
//
//  - Lockstep chunking: replicas assigned to one worker advance together in
//    `chunk`-cycle slices (replica a cycles [0,chunk), replica b cycles
//    [0,chunk), ..., then all of them [chunk, 2*chunk), ...).  All replicas
//    execute the same code over the same phase of the scenario, so the
//    instruction cache and branch predictors stay hot across the batch, and
//    every replica's working set is touched once per chunk instead of once
//    per full run.
//  - Deterministic parallelism: replica groups are distributed over the
//    process-wide thread pool with sim::parallelMap, whose results are
//    index-ordered and bit-identical regardless of worker count (and which
//    degrades to a plain sequential loop on nested use, so the job engine
//    can replicate inside pool workers safely).
//
// RNG preservation: a replica's draws depend only on its own components, and
// lockstep chunking never reorders cycles *within* a replica — it only
// changes which replica the host thread serves between chunk boundaries.
// Hence per-replica results (statistics, grant traces, draw counts) are
// bit-identical to a sequential one-replica-at-a-time reference, which
// tests/kernel_diff_test.cpp enforces across every arbiter kind, bus and
// mesh scenarios both.

#include <cstddef>
#include <vector>

#include "sim/kernel.hpp"

namespace lb::sim {

/// Steps a set of independent replica kernels in lockstep chunks.
class BatchedReplicaRunner {
public:
  struct Options {
    /// Cycles each replica advances per lockstep slice.  Small enough that a
    /// replica batch's working set cycles through the cache per slice, large
    /// enough that the per-slice loop overhead vanishes.
    Cycle chunk = 4096;
    /// Worker threads for replica groups: 0 = parallelMap's default (hardware
    /// concurrency, clamped to the group count), 1 = strictly sequential.
    std::size_t threads = 0;
    /// Replicas per lockstep group (one group is one parallelMap job).
    std::size_t group = 4;
  };

  BatchedReplicaRunner();
  explicit BatchedReplicaRunner(Options options);

  /// Registers one replica's kernel; the caller keeps ownership of the
  /// kernel and every component attached to it.  Kernels must be
  /// independent: no component may be attached to two registered kernels.
  void add(CycleKernel& kernel);

  std::size_t replicas() const noexcept { return kernels_.size(); }

  /// Advances every registered replica by `cycles` cycles, lockstep within
  /// each group, groups in parallel.  Bit-identical to calling
  /// kernel.run(cycles) on each replica in registration order.
  void run(Cycle cycles);

private:
  Options options_;
  std::vector<CycleKernel*> kernels_;
};

}  // namespace lb::sim
