#include "sim/batched.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/parallel.hpp"

namespace lb::sim {

BatchedReplicaRunner::BatchedReplicaRunner()
    : BatchedReplicaRunner(Options{}) {}

BatchedReplicaRunner::BatchedReplicaRunner(Options options)
    : options_(options) {
  if (options_.chunk == 0)
    throw std::invalid_argument("BatchedReplicaRunner: zero chunk");
  if (options_.group == 0)
    throw std::invalid_argument("BatchedReplicaRunner: zero group");
}

void BatchedReplicaRunner::add(CycleKernel& kernel) {
  kernels_.push_back(&kernel);
}

void BatchedReplicaRunner::run(Cycle cycles) {
  if (kernels_.empty() || cycles == 0) return;
  const std::size_t groups =
      (kernels_.size() + options_.group - 1) / options_.group;
  parallelMap<int>(
      groups,
      [&](std::size_t g) {
        const std::size_t begin = g * options_.group;
        const std::size_t end =
            std::min(begin + options_.group, kernels_.size());
        // Lockstep within the group: every replica advances one chunk before
        // any replica starts the next, so the whole group walks the scenario
        // phase-aligned.  Replicas are independent, so this interleaving is
        // bit-identical to running each to completion.
        for (Cycle done = 0; done < cycles;) {
          const Cycle slice = std::min(options_.chunk, cycles - done);
          for (std::size_t r = begin; r < end; ++r) kernels_[r]->run(slice);
          done += slice;
        }
        return 0;
      },
      options_.threads);
}

}  // namespace lb::sim
