#include "sim/thread_pool.hpp"

#include <algorithm>

namespace lb::sim {

namespace {
thread_local bool t_on_pool_thread = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::queuedTasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void ThreadPool::workerLoop() {
  t_on_pool_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::thread::hardware_concurrency() == 0
                             ? 2
                             : std::thread::hardware_concurrency());
  return pool;
}

bool ThreadPool::onPoolThread() { return t_on_pool_thread; }

}  // namespace lb::sim
