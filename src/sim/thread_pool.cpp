#include "sim/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace lb::sim {

namespace {
thread_local bool t_on_pool_thread = false;

// Process-wide pool instruments (all ThreadPool instances share them; the
// split per pool is not interesting, total pressure is).
obs::Counter& tasksCounter() {
  static obs::Counter& counter =
      obs::registry()
          .counter("lb_threadpool_tasks_total", "Tasks executed by workers")
          .get();
  return counter;
}

obs::Gauge& queuedGauge() {
  static obs::Gauge& gauge =
      obs::registry()
          .gauge("lb_threadpool_queued", "Tasks waiting for a worker")
          .get();
  return gauge;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  queuedGauge().add(1);
  cv_.notify_one();
}

std::size_t ThreadPool::queuedTasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void ThreadPool::workerLoop() {
  t_on_pool_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    queuedGauge().add(-1);
    tasksCounter().inc();
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::thread::hardware_concurrency() == 0
                             ? 2
                             : std::thread::hardware_concurrency());
  return pool;
}

bool ThreadPool::onPoolThread() { return t_on_pool_thread; }

}  // namespace lb::sim
