#pragma once
// Deterministic random-number sources for the LOTTERYBUS simulator.
//
// Two families are provided:
//  - Software generators (SplitMix64, Xoshiro256ss) used by traffic
//    generators and by the *behavioral* lottery manager model.
//  - GaloisLfsr, a bit-accurate model of the linear feedback shift register
//    the paper proposes for efficient random number generation in the static
//    lottery manager (Section 4.3).  The hardware model in src/hw wraps the
//    same class so behavioral/structural equivalence can be tested.
//
// All generators are value types with explicit seeds; simulations are fully
// reproducible.

#include <array>
#include <cstdint>

namespace lb::sim {

/// Fast 64-bit mixer; used standalone and to seed Xoshiro256ss.
class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Xoshiro256ss {
public:
  /// Seeds the full state via SplitMix64 so that nearby seeds give
  /// uncorrelated streams.
  explicit Xoshiro256ss(std::uint64_t seed = 0x1ab01ab0u) noexcept;

  /// Next 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound).  bound must be > 0.  Uses rejection
  /// sampling (Lemire-style threshold) so the result is exactly uniform.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

private:
  std::array<std::uint64_t, 4> s_{};
};

/// Bit-accurate Galois LFSR of configurable width (4..32 bits) with
/// maximal-length taps, as used by the static lottery manager hardware.
/// A w-bit maximal LFSR cycles through all 2^w - 1 nonzero states; the
/// lottery manager draws a number in [0, 2^k) by taking the low k bits
/// (k <= w), which is what makes power-of-two ticket totals attractive.
class GaloisLfsr {
public:
  /// @param width  register width in bits, 4..32.
  /// @param seed   initial state; forced nonzero (all-zero locks up an LFSR).
  explicit GaloisLfsr(unsigned width, std::uint32_t seed = 0xACE1u);

  /// Advance one clock; returns the new state.
  std::uint32_t step() noexcept;

  /// Current register contents.
  std::uint32_t value() const noexcept { return state_; }

  /// Steps once and returns the low @p bits bits of the new state.
  /// Precondition: bits <= width().
  std::uint32_t drawBits(unsigned bits) noexcept;

  unsigned width() const noexcept { return width_; }
  std::uint32_t tapMask() const noexcept { return taps_; }

  /// Maximal-length tap mask for a given width (from standard tables).
  static std::uint32_t maximalTaps(unsigned width);

  /// Smallest width >= `needed` that has a tap-table entry (every width in
  /// 4..18 plus 20, 24, 32).  Throws if needed > 32.
  static unsigned widthAtLeast(unsigned needed);

  /// Period of a maximal-length LFSR of the given width: 2^w - 1.
  static std::uint64_t period(unsigned width) noexcept {
    return (width >= 64) ? ~0ULL : ((1ULL << width) - 1ULL);
  }

private:
  unsigned width_;
  std::uint32_t taps_;
  std::uint32_t mask_;
  std::uint32_t state_;
};

}  // namespace lb::sim
