// Sealed-component dispatch: the kernel's stepping loops, compiled in the one
// translation unit that sees every concrete component definition.
//
// CycleKernel stores components as a std::variant over the closed set of
// concrete simulation types (sim::SealedRef).  std::visit over that variant
// compiles to a jump table of *direct* calls here — every alternative except
// the ICycleComponent* edge is a `final` class, so the compiler resolves (and
// for the header-inline hot bodies, inlines) the callee statically.  The
// virtual attach() edge pays exactly the old vtable dispatch, nothing more.
//
// This deliberately makes lb_sim reference symbols from the component
// libraries (lb_bus, lb_traffic, lb_noc, lb_core).  Those are static
// archives, the dependency cycle is declared in src/sim/CMakeLists.txt, and
// CMake resolves it by repeating the archives on the final link line.

#include "bus/bridge.hpp"
#include "bus/bus.hpp"
#include "bus/split_transaction.hpp"
#include "core/ticket_policy.hpp"
#include "noc/nic.hpp"
#include "noc/router.hpp"
#include "sim/kernel.hpp"
#include "traffic/generator.hpp"
#include "traffic/trace_source.hpp"

#include <algorithm>

namespace lb::sim {

namespace {

/// Ceiling for the adaptive probe burst: after a failed quiescence probe the
/// fast path executes up to this many cycles before probing again, so a
/// saturated system pays ~1/32 of the probe cost instead of one probe per
/// cycle.  The flip side — at most 31 cycles executed naively after a system
/// goes quiet before the skip engages — is noise against the stretches worth
/// skipping.
constexpr Cycle kMaxProbeBurst = 32;

}  // namespace

void CycleKernel::executeCycle() {
  if (!events_.empty()) runDueEvents();
  const Cycle now = now_;
  for (const SealedRef& ref : components_)
    std::visit([now](auto* c) { c->cycle(now); }, ref);
  ++now_;
}

Cycle CycleKernel::nextInterestingCycle(Cycle end) {
  Cycle next = end;
  if (!events_.empty()) next = std::min(next, events_.front().when);
  if (next <= now_) return now_;
  const Cycle now = now_;
  for (const SealedRef& ref : components_) {
    const Cycle hint =
        std::visit([now](auto* c) { return c->nextActivity(now); }, ref);
    if (hint <= now) return now;  // someone is active: no skipping
    next = std::min(next, hint);
  }
  return next;
}

void CycleKernel::fastForwardAll(Cycle from, Cycle to) {
  for (const SealedRef& ref : components_)
    std::visit([from, to](auto* c) { c->fastForward(from, to); }, ref);
}

void CycleKernel::run(Cycle cycles) {
  const Cycle end = now_ + cycles;
  if (mode_ == KernelMode::kNaive) {
    while (now_ < end) executeCycle();
    return;
  }
  Cycle probe_burst = 1;
  while (now_ < end) {
    const Cycle next = nextInterestingCycle(end);
    if (next > now_) {
      // Every component is quiescent over [now_, next): account the stretch
      // in bulk and jump.  `next` itself (if < end) is then executed
      // normally below on the following iteration.
      fastForwardAll(now_, next);
      cycles_skipped_ += next - now_;
      now_ = next;
      probe_burst = 1;
      continue;
    }
    // Probe failed: something is active right now.  Execute a geometrically
    // growing burst before probing again — executing a cycle is always
    // correct, so deferring the next probe trades (bounded) missed skips for
    // probe overhead, never correctness.
    const Cycle burst_end = std::min(end, now_ + probe_burst);
    while (now_ < burst_end) executeCycle();
    if (probe_burst < kMaxProbeBurst) probe_burst <<= 1;
  }
}

bool CycleKernel::runUntil(const std::function<bool(Cycle)>& done,
                           Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  if (mode_ == KernelMode::kNaive) {
    while (now_ < deadline) {
      if (done(now_)) return true;
      executeCycle();
    }
    return done(now_);
  }
  // Fast mode: the predicate can only change when state changes, so it is
  // checked once per *executed* cycle (exactly naive's cadence at those
  // boundaries) and never across a skipped stretch.
  Cycle probe_burst = 1;
  while (now_ < deadline) {
    if (done(now_)) return true;
    const Cycle next = nextInterestingCycle(deadline);
    if (next > now_) {
      fastForwardAll(now_, next);
      cycles_skipped_ += next - now_;
      now_ = next;
      probe_burst = 1;
      continue;
    }
    const Cycle burst_end = std::min(deadline, now_ + probe_burst);
    while (now_ < burst_end) {
      executeCycle();
      // The outer loop re-checks at burst_end; avoid double-calling there.
      if (now_ < burst_end && done(now_)) return true;
    }
    if (probe_burst < kMaxProbeBurst) probe_burst <<= 1;
  }
  return done(now_);
}

}  // namespace lb::sim
