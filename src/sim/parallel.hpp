#pragma once
// Deterministic parallel sweep execution.
//
// Experiment grids (24 permutations x 100k cycles, 10-seed replications,
// ...) are embarrassingly parallel: every simulation owns its kernel, bus,
// and RNGs, with no shared mutable state.  parallelMap runs an indexed job
// over the persistent process-wide ThreadPool and returns results in index
// order, so sweeps remain bit-identical to their sequential runs regardless
// of thread count.
//
//   auto rows = sim::parallelMap<Row>(24, [&](std::size_t i) {
//     return simulatePermutation(i);   // pure function of i
//   });
//
// Exceptions thrown by jobs are captured and rethrown on the caller's
// thread (first failing index wins).
//
// Workers are `runner` closures pulling indices from a shared counter; they
// are posted to ThreadPool::shared() instead of spawning threads, and the
// calling thread runs one runner inline, which both contributes work and
// guarantees forward progress even when the pool is saturated by other
// callers.  Calls made *from* a pool worker degrade to a sequential loop so
// nested parallelism cannot deadlock the pool.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/thread_pool.hpp"

namespace lb::sim {

/// Number of workers used when `threads == 0`: hardware concurrency,
/// clamped to [1, jobs].
std::size_t defaultWorkerCount(std::size_t jobs);

/// Runs `fn(0..jobs-1)` across the shared thread pool; returns results in
/// index order.  `threads == 0` picks defaultWorkerCount(jobs);
/// `threads == 1` degenerates to a plain sequential loop (useful under
/// debuggers).
template <typename Result>
std::vector<Result> parallelMap(std::size_t jobs,
                                const std::function<Result(std::size_t)>& fn,
                                std::size_t threads = 0) {
  std::vector<Result> results(jobs);
  if (jobs == 0) return results;
  const std::size_t workers =
      threads == 0 ? defaultWorkerCount(jobs) : std::min(threads, jobs);

  if (workers <= 1 || ThreadPool::onPoolThread()) {
    for (std::size_t i = 0; i < jobs; ++i) results[i] = fn(i);
    return results;
  }

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t next = 0;
  std::size_t runners_live = 0;
  std::exception_ptr first_error;
  std::size_t first_error_index = jobs;

  auto runner = [&] {
    for (;;) {
      std::size_t index;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (next >= jobs || first_error) return;
        index = next++;
      }
      try {
        results[index] = fn(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error || index < first_error_index) {
          first_error = std::current_exception();
          first_error_index = index;
        }
        return;
      }
    }
  };

  ThreadPool& pool = ThreadPool::shared();
  const std::size_t posted = workers - 1;  // caller thread is runner #0
  runners_live = posted;
  for (std::size_t w = 0; w < posted; ++w) {
    pool.post([&] {
      runner();
      std::lock_guard<std::mutex> lock(mutex);
      if (--runners_live == 0) done_cv.notify_all();
    });
  }
  runner();
  {
    // Posted runners reference this frame; wait for every one to finish.
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return runners_live == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace lb::sim
