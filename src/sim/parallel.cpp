#include "sim/parallel.hpp"

#include <thread>

namespace lb::sim {

std::size_t defaultWorkerCount(std::size_t jobs) {
  const unsigned hardware = std::thread::hardware_concurrency();
  const std::size_t workers = hardware == 0 ? 2 : hardware;
  return std::max<std::size_t>(1, std::min(workers, jobs));
}

}  // namespace lb::sim
