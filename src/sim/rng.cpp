#include "sim/rng.hpp"

#include <stdexcept>
#include <string>

namespace lb::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // An all-zero state (possible only for adversarial seeds) would be a fixed
  // point; nudge it.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Xoshiro256ss::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256ss::below(std::uint64_t bound) noexcept {
  // Rejection sampling: reject the (tiny) biased tail of the 64-bit range.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256ss::uniform01() noexcept {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256ss::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint32_t GaloisLfsr::maximalTaps(unsigned width) {
  // Standard maximal-length polynomial tap masks (Xilinx XAPP052 style),
  // expressed as the Galois feedback mask.
  switch (width) {
    case 4: return 0x9u;          // x^4 + x + 1
    case 5: return 0x12u;         // x^5 + x^3 + 1
    case 6: return 0x21u;         // x^6 + x^5 + 1
    case 7: return 0x41u;         // x^7 + x^6 + 1
    case 8: return 0x8Eu;         // x^8 + x^6 + x^5 + x^4 + 1
    case 9: return 0x108u;        // x^9 + x^5 + 1
    case 10: return 0x204u;       // x^10 + x^7 + 1
    case 11: return 0x402u;       // x^11 + x^9 + 1
    case 12: return 0x829u;       // x^12 + x^6 + x^4 + x + 1
    case 13: return 0x100Du;      // x^13 + x^4 + x^3 + x + 1
    case 14: return 0x2015u;      // x^14 + x^5 + x^3 + x + 1
    case 15: return 0x4001u;      // x^15 + x^14 + 1
    case 16: return 0xB400u;      // x^16 + x^14 + x^13 + x^11 + 1
    case 17: return 0x10004u;     // x^17 + x^14 + 1
    case 18: return 0x20400u;     // x^18 + x^11 + 1
    case 20: return 0x80004u;     // x^20 + x^17 + 1
    case 24: return 0xE10000u;    // x^24 + x^23 + x^22 + x^17 + 1
    case 32: return 0xB4BCD35Cu;  // maximal 32-bit polynomial
    default:
      throw std::invalid_argument("GaloisLfsr: no tap table entry for width " +
                                  std::to_string(width));
  }
}

unsigned GaloisLfsr::widthAtLeast(unsigned needed) {
  if (needed <= 4) return 4;
  if (needed <= 18) return needed;
  if (needed <= 20) return 20;
  if (needed <= 24) return 24;
  if (needed <= 32) return 32;
  throw std::invalid_argument("GaloisLfsr: no width >= " +
                              std::to_string(needed));
}

GaloisLfsr::GaloisLfsr(unsigned width, std::uint32_t seed)
    : width_(width),
      taps_(maximalTaps(width)),
      mask_(width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u)),
      state_(seed & mask_) {
  if (width < 4 || width > 32)
    throw std::invalid_argument("GaloisLfsr: width must be in [4,32]");
  if (state_ == 0) state_ = 1;  // all-zero is the LFSR's absorbing state
}

std::uint32_t GaloisLfsr::step() noexcept {
  const bool lsb = (state_ & 1u) != 0;
  state_ >>= 1;
  if (lsb) state_ ^= taps_;
  state_ &= mask_;
  return state_;
}

std::uint32_t GaloisLfsr::drawBits(unsigned bits) noexcept {
  const std::uint32_t v = step();
  if (bits >= 32) return v;
  return v & ((1u << bits) - 1u);
}

}  // namespace lb::sim
