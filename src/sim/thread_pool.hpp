#pragma once
// Persistent worker-thread pool.
//
// The original sim::parallelMap spawned (and joined) a fresh std::thread per
// worker on every call, which is fine for one 24-permutation sweep but adds
// milliseconds of thread churn once sweeps are issued continuously by the
// lbserve job engine.  ThreadPool keeps the workers alive: tasks are posted
// to an internal FIFO and executed by the next free worker.
//
// Two consumers:
//   - sim::parallelMap posts its index-pulling runners here instead of
//     spawning threads (see parallel.hpp);
//   - service::JobEngine posts long-running queue consumers here.
//
// A process-wide pool (ThreadPool::shared()) is created lazily with
// hardware_concurrency() workers.  Code running *on* a pool worker can check
// ThreadPool::onPoolThread() and fall back to sequential execution instead
// of posting nested work, which avoids self-deadlock.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lb::sim {

class ThreadPool {
public:
  /// Starts `threads` workers immediately (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Finishes all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the queue is unbounded (bounding is the job engine's
  /// responsibility).  Must not be called after destruction has begun.
  void post(std::function<void()> task);

  std::size_t threadCount() const { return workers_.size(); }

  /// Tasks waiting for a worker (excludes tasks currently running).
  std::size_t queuedTasks() const;

  /// Process-wide pool sized to hardware_concurrency(); created on first
  /// use, joined at exit.
  static ThreadPool& shared();

  /// True when the calling thread is a worker of *any* ThreadPool.  Used by
  /// parallelMap to degrade to sequential execution instead of deadlocking
  /// on nested parallelism.
  static bool onPoolThread();

private:
  void workerLoop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lb::sim
