#pragma once
// Minimal Value Change Dump (IEEE 1364 §18) writer.
//
// Lets any experiment dump signals viewable in GTKWave & friends.  The bus
// module builds on this to export grant traces (bus/waveform.hpp renders the
// same data as ASCII for terminals).
//
//   VcdWriter vcd("lotterybus");
//   auto gnt = vcd.addWire("gnt_cpu0", 1);
//   auto owner = vcd.addWire("owner", 4);
//   vcd.change(0, gnt, 1);
//   vcd.change(5, gnt, 0);
//   vcd.writeTo(file);
//
// Changes may be recorded in any time order; rendering sorts and dedupes
// (last write at a given time wins).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lb::sim {

class VcdWriter {
public:
  using SignalId = std::size_t;

  /// @param module    name of the enclosing $scope module.
  /// @param timescale VCD timescale string; one bus cycle = one tick.
  explicit VcdWriter(std::string module = "lotterybus",
                     std::string timescale = "1 ns");

  /// Declares a wire of `width` bits (1..64).  Returns its handle.
  SignalId addWire(const std::string& name, unsigned width = 1);

  /// Records that `signal` takes `value` at time `when`.
  void change(std::uint64_t when, SignalId signal, std::uint64_t value);

  std::size_t signalCount() const { return signals_.size(); }
  std::size_t changeCount() const { return changes_.size(); }

  /// Renders the complete VCD document.
  void writeTo(std::ostream& os) const;
  std::string str() const;

private:
  struct Signal {
    std::string name;
    unsigned width;
    std::string code;  // VCD identifier code
  };
  struct Change {
    std::uint64_t when;
    SignalId signal;
    std::uint64_t value;
    std::uint64_t seq;  // stable tie-break: later writes win
  };

  static std::string codeFor(std::size_t index);

  std::string module_;
  std::string timescale_;
  std::vector<Signal> signals_;
  std::vector<Change> changes_;
};

}  // namespace lb::sim
