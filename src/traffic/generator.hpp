#pragma once
// Parameterized stochastic traffic generator, one per bus master — the C++
// equivalent of the PTOLEMY traffic-generator blocks in the paper's test-bed
// (Figure 11).

#include <cstdint>

#include "bus/message_sink.hpp"
#include "sim/kernel.hpp"
#include "traffic/distributions.hpp"

namespace lb::traffic {

struct TrafficParams {
  SizeDist size = SizeDist::fixed(16);
  GapDist gap = GapDist::fixed(0);

  /// Generation pauses while this many messages are already queued; keeps
  /// saturated scenarios at bounded queue depth (1 == classic closed loop:
  /// the master always has exactly one outstanding request).
  std::uint32_t max_outstanding = 1;

  /// ON/OFF burst modulation: while ON the source generates per `gap`; while
  /// OFF it is silent.  Durations are geometric with these means; mean_off=0
  /// disables modulation (always ON).  Models components whose communication
  /// comes in activity bursts (the paper's bursty traffic classes).
  sim::Cycle mean_on = 0;
  sim::Cycle mean_off = 0;

  int slave = 0;              ///< target slave for every message
  sim::Cycle first_arrival = 0;  ///< phase offset of the first message
  std::uint64_t seed = 1;
};

class TrafficSource final : public sim::ICycleComponent {
public:
  /// `sink` is any interconnect front-end: a shared bus or a NoC network
  /// interface (bus/message_sink.hpp).
  TrafficSource(bus::IMessageSink& sink, bus::MasterId master,
                TrafficParams params);

  void cycle(sim::Cycle now) override;

  /// Quiescence hint: the next injection attempt (or, while OFF, the
  /// ON-edge of the burst modulation); `now` while backpressured so the
  /// retry-every-cycle arrival stamping stays naive-identical.
  sim::Cycle nextActivity(sim::Cycle now) override;

  std::string name() const override { return "traffic-source"; }

  std::uint64_t messagesGenerated() const { return generated_; }
  std::uint64_t wordsGenerated() const { return words_; }
  bool isOn() const { return on_; }
  const TrafficParams& params() const { return params_; }

private:
  void updateOnOff(sim::Cycle now);

  bus::IMessageSink& sink_;
  bus::MasterId master_;
  TrafficParams params_;
  sim::Xoshiro256ss rng_;
  sim::Cycle next_attempt_;
  bool on_ = true;
  // ON/OFF modulation as an absolute-time state machine: the state flips at
  // next_toggle_, whose first value is anchored to the first cycle the
  // kernel shows us.  Durations are drawn lazily when a toggle boundary is
  // crossed, so draw order matches the per-cycle stepper exactly while
  // letting the fast kernel skip the quiet stretches in between.
  bool anchored_ = false;
  sim::Cycle first_duration_ = 0;
  sim::Cycle next_toggle_ = 0;
  std::uint64_t generated_ = 0;
  std::uint64_t words_ = 0;
};

}  // namespace lb::traffic
