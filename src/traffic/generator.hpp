#pragma once
// Parameterized stochastic traffic generator, one per bus master — the C++
// equivalent of the PTOLEMY traffic-generator blocks in the paper's test-bed
// (Figure 11).

#include <cmath>
#include <cstdint>

#include "bus/message_sink.hpp"
#include "sim/kernel.hpp"
#include "traffic/distributions.hpp"

namespace lb::traffic {

namespace detail {
/// Geometric duration with the given mean, >= 1 cycle.
inline sim::Cycle drawDuration(sim::Xoshiro256ss& rng, sim::Cycle mean) {
  if (mean <= 1) return 1;
  const double q = 1.0 / static_cast<double>(mean);
  double u = rng.uniform01();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  const double value = std::ceil(std::log1p(-u) / std::log1p(-q));
  return value < 1.0 ? 1 : static_cast<sim::Cycle>(value);
}
}  // namespace detail

struct TrafficParams {
  SizeDist size = SizeDist::fixed(16);
  GapDist gap = GapDist::fixed(0);

  /// Generation pauses while this many messages are already queued; keeps
  /// saturated scenarios at bounded queue depth (1 == classic closed loop:
  /// the master always has exactly one outstanding request).
  std::uint32_t max_outstanding = 1;

  /// ON/OFF burst modulation: while ON the source generates per `gap`; while
  /// OFF it is silent.  Durations are geometric with these means; mean_off=0
  /// disables modulation (always ON).  Models components whose communication
  /// comes in activity bursts (the paper's bursty traffic classes).
  sim::Cycle mean_on = 0;
  sim::Cycle mean_off = 0;

  int slave = 0;              ///< target slave for every message
  sim::Cycle first_arrival = 0;  ///< phase offset of the first message
  std::uint64_t seed = 1;
};

class TrafficSource final : public sim::ICycleComponent {
public:
  /// `sink` is any interconnect front-end: a shared bus or a NoC network
  /// interface (bus/message_sink.hpp).
  TrafficSource(bus::IMessageSink& sink, bus::MasterId master,
                TrafficParams params);

  void cycle(sim::Cycle now) override;

  /// Quiescence hint: the next injection attempt (or, while OFF, the
  /// ON-edge of the burst modulation); `now` while backpressured so the
  /// retry-every-cycle arrival stamping stays naive-identical.
  sim::Cycle nextActivity(sim::Cycle now) override;

  std::string name() const override { return "traffic-source"; }

  std::uint64_t messagesGenerated() const { return generated_; }
  std::uint64_t wordsGenerated() const { return words_; }
  bool isOn() const { return on_; }
  const TrafficParams& params() const { return params_; }

private:
  void updateOnOff(sim::Cycle now);

  bus::IMessageSink& sink_;
  bus::MasterId master_;
  TrafficParams params_;
  sim::Xoshiro256ss rng_;
  sim::Cycle next_attempt_;
  bool on_ = true;
  // ON/OFF modulation as an absolute-time state machine: the state flips at
  // next_toggle_, whose first value is anchored to the first cycle the
  // kernel shows us.  Durations are drawn lazily when a toggle boundary is
  // crossed, so draw order matches the per-cycle stepper exactly while
  // letting the fast kernel skip the quiet stretches in between.
  bool anchored_ = false;
  sim::Cycle first_duration_ = 0;
  sim::Cycle next_toggle_ = 0;
  std::uint64_t generated_ = 0;
  std::uint64_t words_ = 0;
};

// -- inline hot path ---------------------------------------------------------
//
// cycle()/nextActivity() run once per simulated cycle (or quiescence probe)
// per master; inline bodies let the sealed kernel dispatch in
// src/sim/sealed.cpp inline them into its stepping loops.

inline void TrafficSource::updateOnOff(sim::Cycle now) {
  if (params_.mean_off == 0) return;  // modulation disabled: always ON
  if (!anchored_) {
    // The initial ON stretch spans the first first_duration_ cycles the
    // source is clocked (the duration was drawn in the constructor, before
    // any other draw, matching the original per-cycle countdown).
    anchored_ = true;
    next_toggle_ = now + first_duration_;
  }
  while (next_toggle_ <= now) {
    on_ = !on_;
    next_toggle_ +=
        detail::drawDuration(rng_, on_ ? params_.mean_on : params_.mean_off);
  }
}

inline sim::Cycle TrafficSource::nextActivity(sim::Cycle now) {
  updateOnOff(now);  // idempotent lazy catch-up, same draws cycle() would do
  if (!on_) return next_toggle_;  // silent until the ON edge
  if (now < next_attempt_) {
    // Next injection attempt; re-evaluate at a toggle boundary in between
    // (the state machine advances lazily, so we never predict past it).
    if (params_.mean_off != 0 && next_toggle_ < next_attempt_)
      return next_toggle_;
    return next_attempt_;
  }
  return now;  // injecting, or retrying under backpressure, every cycle
}

inline void TrafficSource::cycle(sim::Cycle now) {
  updateOnOff(now);
  if (!on_) return;
  if (now < next_attempt_) return;
  if (sink_.queueDepth(master_) >= params_.max_outstanding) {
    // Backpressured: retry every cycle until a queue slot frees.  The next
    // message's arrival stamp is the cycle it actually enters the queue,
    // which is when the request becomes visible to the arbiter.
    return;
  }
  bus::Message message;
  message.words = params_.size.draw(rng_);
  message.slave = params_.slave;
  message.arrival = now;
  message.tag = generated_;
  sink_.push(master_, message);
  ++generated_;
  words_ += message.words;
  next_attempt_ = now + 1 + params_.gap.draw(rng_);
}

}  // namespace lb::traffic
