#pragma once
// Parameterized distributions for the stochastic on-chip traffic generators
// (paper Section 5.1: "components modelled as stochastic on-chip
// communication traffic generators ... parameters of each traffic generator
// can be varied to control the characteristics of the communication
// traffic").

#include <cstdint>

#include "sim/rng.hpp"

namespace lb::traffic {

/// Message-size distribution in bus words.
struct SizeDist {
  enum class Kind { kFixed, kUniform, kGeometric, kBimodal };

  Kind kind = Kind::kFixed;
  std::uint32_t a = 16;   ///< fixed size / uniform lo / geometric mean / small
  std::uint32_t b = 16;   ///< uniform hi / geometric cap / large size
  double p = 1.0;         ///< bimodal: probability of the small size

  static SizeDist fixed(std::uint32_t words);
  static SizeDist uniform(std::uint32_t lo, std::uint32_t hi);
  /// Geometric with the given mean, truncated to [1, cap].
  static SizeDist geometric(std::uint32_t mean, std::uint32_t cap);
  static SizeDist bimodal(std::uint32_t small, std::uint32_t large,
                          double p_small);

  std::uint32_t draw(sim::Xoshiro256ss& rng) const;
  double mean() const;
};

/// Inter-message gap distribution in cycles (measured from one message's
/// generation to the next attempt).
struct GapDist {
  enum class Kind { kFixed, kGeometric };

  Kind kind = Kind::kFixed;
  std::uint64_t a = 0;  ///< fixed gap / geometric mean

  static GapDist fixed(std::uint64_t cycles);
  /// Memoryless gaps with the given mean (0 mean = back-to-back).
  static GapDist geometric(std::uint64_t mean);

  std::uint64_t draw(sim::Xoshiro256ss& rng) const;
  double mean() const { return static_cast<double>(a); }
};

}  // namespace lb::traffic
