#pragma once
// Trace-driven traffic: replay a recorded request stream instead of drawing
// from distributions.  This is how real workloads (e.g. instruction-level
// simulator dumps, logic-analyzer captures) are driven through the bus
// model, and how the paper-style symbolic traces (Figure 5) are expressed
// exactly.
//
// Trace format (text, one request per line, '#' comments):
//
//     <cycle> <words> [slave]
//
// Cycles must be non-decreasing.  parseTrace() reads the text form;
// TraceSource replays a parsed trace against a bus master.

#include <cstdint>
#include <string>
#include <vector>

#include "bus/message_sink.hpp"
#include "sim/kernel.hpp"

namespace lb::traffic {

struct TraceEntry {
  sim::Cycle cycle = 0;       ///< issue cycle
  std::uint32_t words = 1;    ///< message length
  int slave = 0;              ///< target slave
};

/// Parses the text trace format.  Throws std::invalid_argument on malformed
/// lines, zero-word entries, or non-monotone cycles.
std::vector<TraceEntry> parseTrace(const std::string& text);

/// Serializes entries back to the text format (round-trips parseTrace).
std::string formatTrace(const std::vector<TraceEntry>& entries);

/// Replays a trace on one bus master.  If the bus master's queue is full at
/// an entry's cycle the push is retried each following cycle (the request
/// stamps its actual issue cycle, like TrafficSource's backpressure rule).
class TraceSource final : public sim::ICycleComponent {
public:
  /// `sink` is any interconnect front-end: a shared bus or a NoC network
  /// interface (bus/message_sink.hpp).
  TraceSource(bus::IMessageSink& sink, bus::MasterId master,
              std::vector<TraceEntry> entries,
              std::uint32_t max_outstanding = 64);

  void cycle(sim::Cycle now) override;

  /// Quiescence hint: the next entry's issue cycle; `now` while an entry is
  /// due (including backpressure retries), never again once replay ends.
  sim::Cycle nextActivity(sim::Cycle now) override {
    if (next_ >= entries_.size()) return sim::kNeverCycle;
    const sim::Cycle due = entries_[next_].cycle;
    return due <= now ? now : due;
  }

  std::string name() const override { return "trace-source"; }

  std::uint64_t replayed() const { return replayed_; }
  bool finished() const { return next_ >= entries_.size(); }

private:
  bus::IMessageSink& sink_;
  bus::MasterId master_;
  std::vector<TraceEntry> entries_;
  std::uint32_t max_outstanding_;
  std::size_t next_ = 0;
  std::uint64_t replayed_ = 0;
};

}  // namespace lb::traffic
