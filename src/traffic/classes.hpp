#pragma once
// The nine communication traffic classes T1..T9 used by the paper's
// traffic-space experiments (Figure 12).
//
// The paper characterizes classes only qualitatively (widely varying
// utilization and burst sizes; T3 and T6 leave the bus partly un-utilized;
// T6 is the bursty class with the headline 8.55 cycles/word TDMA latency).
// We span the same space with a grid over {offered load} x {message size}:
//
//   T1  saturated, small messages (4 words)
//   T2  saturated, medium messages (16 words)
//   T3  sparse, small messages           -> bus largely idle
//   T4  saturated, large messages (64 words)
//   T5  ON/OFF streams, bimodal small/large mix
//   T6  ON/OFF streams of medium messages -> bus partly idle; the class
//       whose burstiness exposes the TDMA reclaiming/alignment pathology
//   T7  2x oversubscribed, small messages
//   T8  2x oversubscribed, medium messages
//   T9  2x oversubscribed, bimodal mix
//
// All masters in a class share the same distribution parameters (per the
// paper's symmetric test-bed) but draw from independent seeded streams.

#include <string>
#include <vector>

#include "traffic/generator.hpp"

namespace lb::traffic {

struct TrafficClass {
  std::string name;         ///< "T1".."T9"
  std::string description;
  bool saturating;          ///< true if offered load >= bus capacity
  SizeDist size;
  GapDist gap;
  std::uint32_t max_outstanding;
  sim::Cycle mean_on = 0;   ///< ON/OFF burst modulation (0/0 = always on)
  sim::Cycle mean_off = 0;
};

/// The nine classes, in order T1..T9.
const std::vector<TrafficClass>& allTrafficClasses();

/// Lookup by name ("T1".."T9"); throws std::out_of_range on unknown names.
const TrafficClass& trafficClass(const std::string& name);

/// Expands a class into per-master generator parameters with decorrelated
/// seeds derived from `base_seed`.
std::vector<TrafficParams> paramsFor(const TrafficClass& cls,
                                     std::size_t num_masters,
                                     std::uint64_t base_seed);

}  // namespace lb::traffic
