#include "traffic/generator.hpp"

#include <cmath>

namespace lb::traffic {

namespace {
/// Geometric duration with the given mean, >= 1 cycle.
sim::Cycle drawDuration(sim::Xoshiro256ss& rng, sim::Cycle mean) {
  if (mean <= 1) return 1;
  const double q = 1.0 / static_cast<double>(mean);
  double u = rng.uniform01();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  const double value = std::ceil(std::log1p(-u) / std::log1p(-q));
  return value < 1.0 ? 1 : static_cast<sim::Cycle>(value);
}
}  // namespace

TrafficSource::TrafficSource(bus::Bus& bus, bus::MasterId master,
                             TrafficParams params)
    : bus_(bus),
      master_(master),
      params_(params),
      rng_(params.seed),
      next_attempt_(params.first_arrival) {
  if (params_.mean_off != 0)
    state_left_ = drawDuration(rng_, params_.mean_on);
}

void TrafficSource::updateOnOff() {
  if (params_.mean_off == 0) return;  // modulation disabled: always ON
  if (state_left_ == 0) {
    on_ = !on_;
    state_left_ =
        drawDuration(rng_, on_ ? params_.mean_on : params_.mean_off);
  }
  --state_left_;
}

void TrafficSource::cycle(sim::Cycle now) {
  updateOnOff();
  if (!on_) return;
  if (now < next_attempt_) return;
  if (bus_.queueDepth(master_) >= params_.max_outstanding) {
    // Backpressured: retry every cycle until a queue slot frees.  The next
    // message's arrival stamp is the cycle it actually enters the queue,
    // which is when the request becomes visible to the arbiter.
    return;
  }
  bus::Message message;
  message.words = params_.size.draw(rng_);
  message.slave = params_.slave;
  message.arrival = now;
  message.tag = generated_;
  bus_.push(master_, message);
  ++generated_;
  words_ += message.words;
  next_attempt_ = now + 1 + params_.gap.draw(rng_);
}

}  // namespace lb::traffic
