#include "traffic/generator.hpp"

namespace lb::traffic {

TrafficSource::TrafficSource(bus::IMessageSink& sink, bus::MasterId master,
                             TrafficParams params)
    : sink_(sink),
      master_(master),
      params_(params),
      rng_(params.seed),
      next_attempt_(params.first_arrival) {
  if (params_.mean_off != 0)
    first_duration_ = detail::drawDuration(rng_, params_.mean_on);
}

}  // namespace lb::traffic
