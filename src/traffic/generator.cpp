#include "traffic/generator.hpp"

#include <cmath>

namespace lb::traffic {

namespace {
/// Geometric duration with the given mean, >= 1 cycle.
sim::Cycle drawDuration(sim::Xoshiro256ss& rng, sim::Cycle mean) {
  if (mean <= 1) return 1;
  const double q = 1.0 / static_cast<double>(mean);
  double u = rng.uniform01();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  const double value = std::ceil(std::log1p(-u) / std::log1p(-q));
  return value < 1.0 ? 1 : static_cast<sim::Cycle>(value);
}
}  // namespace

TrafficSource::TrafficSource(bus::IMessageSink& sink, bus::MasterId master,
                             TrafficParams params)
    : sink_(sink),
      master_(master),
      params_(params),
      rng_(params.seed),
      next_attempt_(params.first_arrival) {
  if (params_.mean_off != 0)
    first_duration_ = drawDuration(rng_, params_.mean_on);
}

void TrafficSource::updateOnOff(sim::Cycle now) {
  if (params_.mean_off == 0) return;  // modulation disabled: always ON
  if (!anchored_) {
    // The initial ON stretch spans the first first_duration_ cycles the
    // source is clocked (the duration was drawn in the constructor, before
    // any other draw, matching the original per-cycle countdown).
    anchored_ = true;
    next_toggle_ = now + first_duration_;
  }
  while (next_toggle_ <= now) {
    on_ = !on_;
    next_toggle_ +=
        drawDuration(rng_, on_ ? params_.mean_on : params_.mean_off);
  }
}

sim::Cycle TrafficSource::nextActivity(sim::Cycle now) {
  updateOnOff(now);  // idempotent lazy catch-up, same draws cycle() would do
  if (!on_) return next_toggle_;  // silent until the ON edge
  if (now < next_attempt_) {
    // Next injection attempt; re-evaluate at a toggle boundary in between
    // (the state machine advances lazily, so we never predict past it).
    if (params_.mean_off != 0 && next_toggle_ < next_attempt_)
      return next_toggle_;
    return next_attempt_;
  }
  return now;  // injecting, or retrying under backpressure, every cycle
}

void TrafficSource::cycle(sim::Cycle now) {
  updateOnOff(now);
  if (!on_) return;
  if (now < next_attempt_) return;
  if (sink_.queueDepth(master_) >= params_.max_outstanding) {
    // Backpressured: retry every cycle until a queue slot frees.  The next
    // message's arrival stamp is the cycle it actually enters the queue,
    // which is when the request becomes visible to the arbiter.
    return;
  }
  bus::Message message;
  message.words = params_.size.draw(rng_);
  message.slave = params_.slave;
  message.arrival = now;
  message.tag = generated_;
  sink_.push(master_, message);
  ++generated_;
  words_ += message.words;
  next_attempt_ = now + 1 + params_.gap.draw(rng_);
}

}  // namespace lb::traffic
