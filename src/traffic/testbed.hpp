#pragma once
// System-level test-bed for communication-architecture performance
// evaluation: the C++ counterpart of the paper's Figure 11 setup (N master
// components with parameterized traffic generators sharing one bus towards
// slave components).  Every simulation-based experiment in tests/ and bench/
// goes through this harness.

#include <functional>
#include <memory>
#include <vector>

#include "bus/bus.hpp"
#include "sim/kernel.hpp"
#include "traffic/classes.hpp"
#include "traffic/generator.hpp"

namespace lb::traffic {

struct TestbedResult {
  std::vector<double> bandwidth_fraction;  ///< per master, of total cycles
  std::vector<double> traffic_share;       ///< per master, of busy cycles
  double unutilized_fraction = 0.0;
  std::vector<double> cycles_per_word;     ///< per master
  std::vector<double> mean_message_latency;
  std::vector<std::uint64_t> messages_completed;
  std::uint64_t grants = 0;
  std::uint64_t preemptions = 0;
  sim::Cycle cycles = 0;
};

/// Extra knobs for a test-bed run.
struct TestbedOptions {
  sim::Cycle warmup = 0;  ///< cycles to run before statistics are reset
  /// Kernel stepping strategy.  kFast skips provably dead cycles and is
  /// bit-identical to kNaive (see docs/performance.md); kNaive steps every
  /// cycle and exists as the differential-testing reference.
  sim::KernelMode kernel_mode = sim::KernelMode::kFast;
  /// Invoked after construction, before running: configure tickets, attach
  /// extra components (ticket policies), enable tracing, ...
  std::function<void(bus::Bus&, sim::CycleKernel&)> setup;
  /// Invoked after the run and statistics collection, while the bus still
  /// exists: copy out traces, detach observers, ...
  std::function<void(bus::Bus&)> teardown;
};

/// Builds kernel + bus + one TrafficSource per master, runs `cycles` cycles,
/// and summarizes the bus statistics.  The arbiter defines the architecture
/// under test.
TestbedResult runTestbed(bus::BusConfig config,
                         std::unique_ptr<bus::IArbiter> arbiter,
                         const std::vector<TrafficParams>& traffic,
                         sim::Cycle cycles, TestbedOptions options = {});

/// 4-master bus with burst size 16 — the example system of Figure 3.
bus::BusConfig defaultBusConfig(std::size_t num_masters = 4);

// ---------------------------------------------------------------------------
// Replicated runs: mean / spread across independent seeds, for error bars on
// the stochastic results.
// ---------------------------------------------------------------------------

struct ReplicatedMetric {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct ReplicatedResult {
  std::vector<ReplicatedMetric> bandwidth_fraction;  ///< per master
  std::vector<ReplicatedMetric> cycles_per_word;     ///< per master
  ReplicatedMetric unutilized_fraction;
  std::size_t replications = 0;
};

/// Fresh arbiter per replication, seeded so randomized arbiters decorrelate.
using ArbiterFactory =
    std::function<std::unique_ptr<bus::IArbiter>(std::uint64_t seed)>;

/// Runs `replications` independent test-bed simulations of `cls` (new
/// traffic and arbiter seeds each time, all derived from `base_seed`) and
/// aggregates the per-master metrics.
ReplicatedResult runReplicated(const bus::BusConfig& config,
                               const ArbiterFactory& arbiter_factory,
                               const TrafficClass& cls, sim::Cycle cycles,
                               std::size_t replications,
                               std::uint64_t base_seed = 1);

}  // namespace lb::traffic
