#pragma once
// System-level test-bed for communication-architecture performance
// evaluation: the C++ counterpart of the paper's Figure 11 setup (N master
// components with parameterized traffic generators sharing one bus towards
// slave components).  Every simulation-based experiment in tests/ and bench/
// goes through this harness.

#include <functional>
#include <memory>
#include <vector>

#include "bus/bus.hpp"
#include "sim/kernel.hpp"
#include "traffic/classes.hpp"
#include "traffic/generator.hpp"

namespace lb::traffic {

struct TestbedResult {
  std::vector<double> bandwidth_fraction;  ///< per master, of total cycles
  std::vector<double> traffic_share;       ///< per master, of busy cycles
  double unutilized_fraction = 0.0;
  std::vector<double> cycles_per_word;     ///< per master
  std::vector<double> mean_message_latency;
  std::vector<std::uint64_t> messages_completed;
  std::uint64_t grants = 0;
  std::uint64_t preemptions = 0;
  sim::Cycle cycles = 0;
};

/// Extra knobs for a test-bed run.
struct TestbedOptions {
  sim::Cycle warmup = 0;  ///< cycles to run before statistics are reset
  /// Kernel stepping strategy.  kFast skips provably dead cycles and is
  /// bit-identical to kNaive (see docs/performance.md); kNaive steps every
  /// cycle and exists as the differential-testing reference.
  sim::KernelMode kernel_mode = sim::KernelMode::kFast;
  /// When true (default) components register on the kernel's sealed variant
  /// fast path (devirtualized dispatch); false forces the type-erased
  /// virtual edge.  Both are bit-identical — the flag exists for
  /// differential tests and the sealed-vs-virtual benchmarks.
  bool sealed = true;
  /// Invoked after construction, before running: configure tickets, attach
  /// extra components (ticket policies), enable tracing, ...
  std::function<void(bus::Bus&, sim::CycleKernel&)> setup;
  /// Invoked after the run and statistics collection, while the bus still
  /// exists: copy out traces, detach observers, ...
  std::function<void(bus::Bus&)> teardown;
};

/// A constructed test-bed system — kernel + bus + one TrafficSource per
/// master — that has not consumed its cycle budget yet.  runTestbed() wraps
/// one instance cradle-to-grave; the batched replication runner keeps many
/// alive and steps their kernels in lockstep.
class TestbedInstance {
public:
  TestbedInstance(bus::BusConfig config, std::unique_ptr<bus::IArbiter> arbiter,
                  const std::vector<TrafficParams>& traffic,
                  TestbedOptions options = {});
  TestbedInstance(TestbedInstance&&) noexcept = default;
  TestbedInstance& operator=(TestbedInstance&&) noexcept = default;

  sim::CycleKernel& kernel() { return *kernel_; }
  bus::Bus& bus() { return *bus_; }

  /// Runs the configured warmup stretch (if any) and clears statistics.
  void runWarmup();

  /// Summarizes bus statistics after the measured run and invokes the
  /// teardown hook.  `cycles` is the measured-cycle count to report.
  TestbedResult finish(sim::Cycle cycles);

private:
  TestbedOptions options_;
  std::unique_ptr<bus::Bus> bus_;
  std::unique_ptr<sim::CycleKernel> kernel_;
  std::vector<std::unique_ptr<TrafficSource>> sources_;
};

/// Builds kernel + bus + one TrafficSource per master, runs `cycles` cycles,
/// and summarizes the bus statistics.  The arbiter defines the architecture
/// under test.
TestbedResult runTestbed(bus::BusConfig config,
                         std::unique_ptr<bus::IArbiter> arbiter,
                         const std::vector<TrafficParams>& traffic,
                         sim::Cycle cycles, TestbedOptions options = {});

/// 4-master bus with burst size 16 — the example system of Figure 3.
bus::BusConfig defaultBusConfig(std::size_t num_masters = 4);

// ---------------------------------------------------------------------------
// Replicated runs: mean / spread across independent seeds, for error bars on
// the stochastic results.
// ---------------------------------------------------------------------------

struct ReplicatedMetric {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct ReplicatedResult {
  std::vector<ReplicatedMetric> bandwidth_fraction;  ///< per master
  std::vector<ReplicatedMetric> cycles_per_word;     ///< per master
  ReplicatedMetric unutilized_fraction;
  std::size_t replications = 0;
};

/// Fresh arbiter per replication, seeded so randomized arbiters decorrelate.
using ArbiterFactory =
    std::function<std::unique_ptr<bus::IArbiter>(std::uint64_t seed)>;

/// Runs `replications` independent test-bed simulations of `cls` (new
/// traffic and arbiter seeds each time, all derived from `base_seed`) and
/// aggregates the per-master metrics.
ReplicatedResult runReplicated(const bus::BusConfig& config,
                               const ArbiterFactory& arbiter_factory,
                               const TrafficClass& cls, sim::Cycle cycles,
                               std::size_t replications,
                               std::uint64_t base_seed = 1);

/// Knobs for the lockstep batched replication runner.
struct BatchedReplicationOptions {
  sim::Cycle chunk = 4096;     ///< cycles per lockstep slice
  std::size_t threads = 0;     ///< 0 = auto, 1 = strictly sequential
  std::size_t group = 4;       ///< replicas per lockstep group
};

/// Batched form of runReplicated: builds every replica up front (identical
/// seed derivation) and steps them in lockstep chunks through
/// sim::BatchedReplicaRunner instead of running each to completion in turn.
/// Bit-identical to runReplicated — replicas are fully independent systems —
/// which tests/kernel_diff_test.cpp enforces.
ReplicatedResult runReplicatedBatched(const bus::BusConfig& config,
                                      const ArbiterFactory& arbiter_factory,
                                      const TrafficClass& cls,
                                      sim::Cycle cycles,
                                      std::size_t replications,
                                      std::uint64_t base_seed = 1,
                                      BatchedReplicationOptions batch = {});

}  // namespace lb::traffic
