#include "traffic/trace_source.hpp"

#include <sstream>
#include <stdexcept>

namespace lb::traffic {

std::vector<TraceEntry> parseTrace(const std::string& text) {
  std::vector<TraceEntry> entries;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    std::istringstream fields(line);
    TraceEntry entry;
    if (!(fields >> entry.cycle)) continue;  // blank / comment-only line
    if (!(fields >> entry.words))
      throw std::invalid_argument("parseTrace: missing word count at line " +
                                  std::to_string(line_number));
    fields >> entry.slave;  // optional; defaults to 0
    std::string excess;
    if (fields >> excess)
      throw std::invalid_argument("parseTrace: trailing fields at line " +
                                  std::to_string(line_number));
    if (entry.words == 0)
      throw std::invalid_argument("parseTrace: zero words at line " +
                                  std::to_string(line_number));
    if (!entries.empty() && entry.cycle < entries.back().cycle)
      throw std::invalid_argument(
          "parseTrace: cycles must be non-decreasing at line " +
          std::to_string(line_number));
    entries.push_back(entry);
  }
  return entries;
}

std::string formatTrace(const std::vector<TraceEntry>& entries) {
  std::ostringstream os;
  os << "# cycle words slave\n";
  for (const TraceEntry& entry : entries)
    os << entry.cycle << " " << entry.words << " " << entry.slave << "\n";
  return os.str();
}

TraceSource::TraceSource(bus::IMessageSink& sink, bus::MasterId master,
                         std::vector<TraceEntry> entries,
                         std::uint32_t max_outstanding)
    : sink_(sink),
      master_(master),
      entries_(std::move(entries)),
      max_outstanding_(max_outstanding) {
  if (max_outstanding_ == 0)
    throw std::invalid_argument("TraceSource: zero outstanding budget");
  for (std::size_t i = 1; i < entries_.size(); ++i)
    if (entries_[i].cycle < entries_[i - 1].cycle)
      throw std::invalid_argument("TraceSource: trace not sorted by cycle");
}

void TraceSource::cycle(sim::Cycle now) {
  while (next_ < entries_.size() && entries_[next_].cycle <= now) {
    if (sink_.queueDepth(master_) >= max_outstanding_) return;  // retry later
    const TraceEntry& entry = entries_[next_];
    bus::Message message;
    message.words = entry.words;
    message.slave = entry.slave;
    message.arrival = now;
    message.tag = next_;
    sink_.push(master_, message);
    ++next_;
    ++replayed_;
  }
}

}  // namespace lb::traffic
