#include "traffic/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lb::traffic {

SizeDist SizeDist::fixed(std::uint32_t words) {
  if (words == 0) throw std::invalid_argument("SizeDist::fixed: zero words");
  return SizeDist{Kind::kFixed, words, words, 1.0};
}

SizeDist SizeDist::uniform(std::uint32_t lo, std::uint32_t hi) {
  if (lo == 0 || hi < lo)
    throw std::invalid_argument("SizeDist::uniform: bad range");
  return SizeDist{Kind::kUniform, lo, hi, 1.0};
}

SizeDist SizeDist::geometric(std::uint32_t mean, std::uint32_t cap) {
  if (mean == 0 || cap == 0 || cap < mean)
    throw std::invalid_argument("SizeDist::geometric: bad parameters");
  return SizeDist{Kind::kGeometric, mean, cap, 1.0};
}

SizeDist SizeDist::bimodal(std::uint32_t small, std::uint32_t large,
                           double p_small) {
  if (small == 0 || large < small)
    throw std::invalid_argument("SizeDist::bimodal: bad sizes");
  if (p_small < 0.0 || p_small > 1.0)
    throw std::invalid_argument("SizeDist::bimodal: bad probability");
  return SizeDist{Kind::kBimodal, small, large, p_small};
}

std::uint32_t SizeDist::draw(sim::Xoshiro256ss& rng) const {
  switch (kind) {
    case Kind::kFixed:
      return a;
    case Kind::kUniform:
      return a + static_cast<std::uint32_t>(rng.below(b - a + 1));
    case Kind::kGeometric: {
      // Geometric on {1,2,...} with mean `a`, truncated at `b`.
      const double q = 1.0 / static_cast<double>(a);
      double u = rng.uniform01();
      if (u >= 1.0) u = std::nextafter(1.0, 0.0);
      const double value = std::ceil(std::log1p(-u) / std::log1p(-q));
      return static_cast<std::uint32_t>(
          std::clamp(value, 1.0, static_cast<double>(b)));
    }
    case Kind::kBimodal:
      return rng.chance(p) ? a : b;
  }
  return a;
}

double SizeDist::mean() const {
  switch (kind) {
    case Kind::kFixed:
      return a;
    case Kind::kUniform:
      return (static_cast<double>(a) + b) / 2.0;
    case Kind::kGeometric:
      return a;  // truncation bias ignored for reporting
    case Kind::kBimodal:
      return p * a + (1.0 - p) * b;
  }
  return a;
}

GapDist GapDist::fixed(std::uint64_t cycles) {
  return GapDist{Kind::kFixed, cycles};
}

GapDist GapDist::geometric(std::uint64_t mean) {
  return GapDist{Kind::kGeometric, mean};
}

std::uint64_t GapDist::draw(sim::Xoshiro256ss& rng) const {
  switch (kind) {
    case Kind::kFixed:
      return a;
    case Kind::kGeometric: {
      if (a == 0) return 0;
      // Geometric on {0,1,...} with mean `a`.
      const double q = 1.0 / (static_cast<double>(a) + 1.0);
      double u = rng.uniform01();
      if (u >= 1.0) u = std::nextafter(1.0, 0.0);
      return static_cast<std::uint64_t>(
          std::floor(std::log1p(-u) / std::log1p(-q)));
    }
  }
  return a;
}

}  // namespace lb::traffic
