#include "traffic/classes.hpp"

#include <stdexcept>

#include "sim/rng.hpp"

namespace lb::traffic {

const std::vector<TrafficClass>& allTrafficClasses() {
  static const std::vector<TrafficClass> classes = {
      {"T1", "saturated, small messages", true,
       SizeDist::fixed(4), GapDist::fixed(0), 1},
      {"T2", "saturated, medium messages", true,
       SizeDist::fixed(16), GapDist::fixed(0), 1},
      {"T3", "sparse, small messages (bus largely idle)", false,
       SizeDist::fixed(4), GapDist::geometric(64), 4},
      {"T4", "saturated, large messages", true,
       SizeDist::fixed(64), GapDist::fixed(0), 1},
      // ON/OFF stream classes: during an ON period a master offers ~0.65
      // words/cycle (16-word messages every 25 cycles), so a single stream
      // fits on the bus alone but overlapping streams contend; what share an
      // arbiter then delivers decides whether queues stay stable.
      {"T5", "ON/OFF streams, bimodal small/large mix", false,
       SizeDist::bimodal(4, 64, 0.8), GapDist::geometric(24), 16, 1500, 3000},
      // T6 is the paper's Figure-5 pathology as a traffic class: all four
      // masters issue a 16-word message simultaneously every 160 cycles.
      // Against a 160-slot timing wheel (the standard 1:2:3:4 x 16 wheel)
      // the phase is locked, so under TDMA each component repeatedly waits
      // the full distance to its own slot block -- and the component with
      // the LARGEST reservation (whose block sits deepest in the wheel)
      // waits longest.  A randomized lottery is insensitive to the phase.
      {"T6", "synchronized periodic bursts (phase-locked, bus partly idle)",
       false, SizeDist::fixed(16), GapDist::fixed(159), 2, 0, 0},
      // T7..T9: every master offers ~0.5 words/cycle (2x oversubscribed in
      // aggregate), so each is individually backlogged and the arbiter's
      // weighting fully decides the split — the "high utilization" regime
      // where Figure 12(a) shows allocation tracking tickets.
      {"T7", "2x oversubscribed, small messages", true,
       SizeDist::fixed(4), GapDist::geometric(7), 8},
      {"T8", "2x oversubscribed, medium messages", true,
       SizeDist::fixed(16), GapDist::geometric(15), 8},
      {"T9", "2x oversubscribed, bimodal mix", true,
       SizeDist::bimodal(8, 32, 0.5), GapDist::geometric(19), 8},
  };
  return classes;
}

const TrafficClass& trafficClass(const std::string& name) {
  for (const TrafficClass& cls : allTrafficClasses())
    if (cls.name == name) return cls;
  throw std::out_of_range("unknown traffic class: " + name);
}

std::vector<TrafficParams> paramsFor(const TrafficClass& cls,
                                     std::size_t num_masters,
                                     std::uint64_t base_seed) {
  sim::SplitMix64 seeder(base_seed);
  std::vector<TrafficParams> params(num_masters);
  for (std::size_t m = 0; m < num_masters; ++m) {
    params[m].size = cls.size;
    params[m].gap = cls.gap;
    params[m].max_outstanding = cls.max_outstanding;
    params[m].mean_on = cls.mean_on;
    params[m].mean_off = cls.mean_off;
    params[m].seed = seeder.next();
  }
  return params;
}

}  // namespace lb::traffic
