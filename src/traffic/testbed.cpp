#include "traffic/testbed.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.hpp"
#include "stats/stats.hpp"

namespace lb::traffic {

bus::BusConfig defaultBusConfig(std::size_t num_masters) {
  bus::BusConfig config;
  config.num_masters = num_masters;
  config.max_burst_words = 16;
  config.pipelined_arbitration = true;
  return config;
}

TestbedResult runTestbed(bus::BusConfig config,
                         std::unique_ptr<bus::IArbiter> arbiter,
                         const std::vector<TrafficParams>& traffic,
                         sim::Cycle cycles, TestbedOptions options) {
  if (traffic.size() != config.num_masters)
    throw std::invalid_argument("runTestbed: traffic arity != num_masters");

  bus::Bus bus(config, std::move(arbiter));
  sim::CycleKernel kernel;
  kernel.setMode(options.kernel_mode);

  std::vector<std::unique_ptr<TrafficSource>> sources;
  sources.reserve(traffic.size());
  for (std::size_t m = 0; m < traffic.size(); ++m) {
    sources.push_back(std::make_unique<TrafficSource>(
        bus, static_cast<bus::MasterId>(m), traffic[m]));
    kernel.attach(*sources.back());  // sources run before the bus each cycle
  }
  kernel.attach(bus);

  if (options.setup) options.setup(bus, kernel);

  if (options.warmup > 0) {
    kernel.run(options.warmup);
    bus.clearStats();
  }
  kernel.run(cycles);

  TestbedResult result;
  result.cycles = cycles;
  result.grants = bus.grantsIssued();
  result.preemptions = bus.preemptions();
  result.unutilized_fraction = bus.bandwidth().unutilizedFraction();
  const std::size_t n = config.num_masters;
  result.bandwidth_fraction.resize(n);
  result.traffic_share.resize(n);
  result.cycles_per_word.resize(n);
  result.mean_message_latency.resize(n);
  result.messages_completed.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    result.bandwidth_fraction[m] = bus.bandwidth().fraction(m);
    result.traffic_share[m] = bus.bandwidth().shareOfTraffic(m);
    result.cycles_per_word[m] = bus.latency().cyclesPerWord(m);
    result.mean_message_latency[m] = bus.latency().meanMessageLatency(m);
    result.messages_completed[m] = bus.latency().messages(m);
  }
  if (options.teardown) options.teardown(bus);
  return result;
}

namespace {
ReplicatedMetric summarize(const stats::RunningStats& running, double min,
                           double max) {
  ReplicatedMetric metric;
  metric.mean = running.mean();
  metric.stddev = running.stddev();
  metric.min = min;
  metric.max = max;
  return metric;
}
}  // namespace

ReplicatedResult runReplicated(const bus::BusConfig& config,
                               const ArbiterFactory& arbiter_factory,
                               const TrafficClass& cls, sim::Cycle cycles,
                               std::size_t replications,
                               std::uint64_t base_seed) {
  if (replications == 0)
    throw std::invalid_argument("runReplicated: zero replications");

  const std::size_t n = config.num_masters;
  std::vector<stats::RunningStats> bw(n), cpw(n);
  std::vector<double> bw_min(n, 1e300), bw_max(n, -1e300);
  std::vector<double> cpw_min(n, 1e300), cpw_max(n, -1e300);
  stats::RunningStats idle;
  double idle_min = 1e300, idle_max = -1e300;

  sim::SplitMix64 seeder(base_seed ^ 0x5eedba5eULL);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    const std::uint64_t traffic_seed = seeder.next();
    const std::uint64_t arbiter_seed = seeder.next();
    const TestbedResult result =
        runTestbed(config, arbiter_factory(arbiter_seed),
                   paramsFor(cls, n, traffic_seed), cycles);
    for (std::size_t m = 0; m < n; ++m) {
      bw[m].record(result.bandwidth_fraction[m]);
      bw_min[m] = std::min(bw_min[m], result.bandwidth_fraction[m]);
      bw_max[m] = std::max(bw_max[m], result.bandwidth_fraction[m]);
      cpw[m].record(result.cycles_per_word[m]);
      cpw_min[m] = std::min(cpw_min[m], result.cycles_per_word[m]);
      cpw_max[m] = std::max(cpw_max[m], result.cycles_per_word[m]);
    }
    idle.record(result.unutilized_fraction);
    idle_min = std::min(idle_min, result.unutilized_fraction);
    idle_max = std::max(idle_max, result.unutilized_fraction);
  }

  ReplicatedResult result;
  result.replications = replications;
  for (std::size_t m = 0; m < n; ++m) {
    result.bandwidth_fraction.push_back(
        summarize(bw[m], bw_min[m], bw_max[m]));
    result.cycles_per_word.push_back(
        summarize(cpw[m], cpw_min[m], cpw_max[m]));
  }
  result.unutilized_fraction = summarize(idle, idle_min, idle_max);
  return result;
}

}  // namespace lb::traffic
