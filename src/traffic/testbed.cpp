#include "traffic/testbed.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/batched.hpp"
#include "sim/rng.hpp"
#include "stats/stats.hpp"

namespace lb::traffic {

bus::BusConfig defaultBusConfig(std::size_t num_masters) {
  bus::BusConfig config;
  config.num_masters = num_masters;
  config.max_burst_words = 16;
  config.pipelined_arbitration = true;
  return config;
}

TestbedInstance::TestbedInstance(bus::BusConfig config,
                                 std::unique_ptr<bus::IArbiter> arbiter,
                                 const std::vector<TrafficParams>& traffic,
                                 TestbedOptions options)
    : options_(std::move(options)) {
  if (traffic.size() != config.num_masters)
    throw std::invalid_argument("TestbedInstance: traffic arity != masters");

  bus_ = std::make_unique<bus::Bus>(std::move(config), std::move(arbiter));
  kernel_ = std::make_unique<sim::CycleKernel>();
  kernel_->setMode(options_.kernel_mode);

  sources_.reserve(traffic.size());
  for (std::size_t m = 0; m < traffic.size(); ++m) {
    sources_.push_back(std::make_unique<TrafficSource>(
        *bus_, static_cast<bus::MasterId>(m), traffic[m]));
    // Sources run before the bus each cycle.  Concrete attach() overloads
    // register on the sealed variant fast path; casting to the interface
    // deliberately takes the type-erased virtual edge instead.
    if (options_.sealed)
      kernel_->attach(*sources_.back());
    else
      kernel_->attach(static_cast<sim::ICycleComponent&>(*sources_.back()));
  }
  if (options_.sealed)
    kernel_->attach(*bus_);
  else
    kernel_->attach(static_cast<sim::ICycleComponent&>(*bus_));

  if (options_.setup) options_.setup(*bus_, *kernel_);
}

void TestbedInstance::runWarmup() {
  if (options_.warmup > 0) {
    kernel_->run(options_.warmup);
    bus_->clearStats();
  }
}

TestbedResult TestbedInstance::finish(sim::Cycle cycles) {
  TestbedResult result;
  result.cycles = cycles;
  result.grants = bus_->grantsIssued();
  result.preemptions = bus_->preemptions();
  result.unutilized_fraction = bus_->bandwidth().unutilizedFraction();
  const std::size_t n = bus_->numMasters();
  result.bandwidth_fraction.resize(n);
  result.traffic_share.resize(n);
  result.cycles_per_word.resize(n);
  result.mean_message_latency.resize(n);
  result.messages_completed.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    result.bandwidth_fraction[m] = bus_->bandwidth().fraction(m);
    result.traffic_share[m] = bus_->bandwidth().shareOfTraffic(m);
    result.cycles_per_word[m] = bus_->latency().cyclesPerWord(m);
    result.mean_message_latency[m] = bus_->latency().meanMessageLatency(m);
    result.messages_completed[m] = bus_->latency().messages(m);
  }
  if (options_.teardown) options_.teardown(*bus_);
  return result;
}

TestbedResult runTestbed(bus::BusConfig config,
                         std::unique_ptr<bus::IArbiter> arbiter,
                         const std::vector<TrafficParams>& traffic,
                         sim::Cycle cycles, TestbedOptions options) {
  TestbedInstance instance(std::move(config), std::move(arbiter), traffic,
                           std::move(options));
  instance.runWarmup();
  instance.kernel().run(cycles);
  return instance.finish(cycles);
}

namespace {

ReplicatedMetric summarize(const stats::RunningStats& running, double min,
                           double max) {
  ReplicatedMetric metric;
  metric.mean = running.mean();
  metric.stddev = running.stddev();
  metric.min = min;
  metric.max = max;
  return metric;
}

/// Streams per-replication TestbedResults into the mean/spread summary;
/// shared by the sequential and batched replication runners so the two paths
/// aggregate identically.
class ReplicationAccumulator {
public:
  explicit ReplicationAccumulator(std::size_t num_masters)
      : bw_(num_masters),
        cpw_(num_masters),
        bw_min_(num_masters, 1e300),
        bw_max_(num_masters, -1e300),
        cpw_min_(num_masters, 1e300),
        cpw_max_(num_masters, -1e300) {}

  void record(const TestbedResult& result) {
    ++replications_;
    for (std::size_t m = 0; m < bw_.size(); ++m) {
      bw_[m].record(result.bandwidth_fraction[m]);
      bw_min_[m] = std::min(bw_min_[m], result.bandwidth_fraction[m]);
      bw_max_[m] = std::max(bw_max_[m], result.bandwidth_fraction[m]);
      cpw_[m].record(result.cycles_per_word[m]);
      cpw_min_[m] = std::min(cpw_min_[m], result.cycles_per_word[m]);
      cpw_max_[m] = std::max(cpw_max_[m], result.cycles_per_word[m]);
    }
    idle_.record(result.unutilized_fraction);
    idle_min_ = std::min(idle_min_, result.unutilized_fraction);
    idle_max_ = std::max(idle_max_, result.unutilized_fraction);
  }

  ReplicatedResult finish() const {
    ReplicatedResult result;
    result.replications = replications_;
    for (std::size_t m = 0; m < bw_.size(); ++m) {
      result.bandwidth_fraction.push_back(
          summarize(bw_[m], bw_min_[m], bw_max_[m]));
      result.cycles_per_word.push_back(
          summarize(cpw_[m], cpw_min_[m], cpw_max_[m]));
    }
    result.unutilized_fraction = summarize(idle_, idle_min_, idle_max_);
    return result;
  }

private:
  std::size_t replications_ = 0;
  std::vector<stats::RunningStats> bw_, cpw_;
  std::vector<double> bw_min_, bw_max_, cpw_min_, cpw_max_;
  stats::RunningStats idle_;
  double idle_min_ = 1e300, idle_max_ = -1e300;
};

}  // namespace

ReplicatedResult runReplicated(const bus::BusConfig& config,
                               const ArbiterFactory& arbiter_factory,
                               const TrafficClass& cls, sim::Cycle cycles,
                               std::size_t replications,
                               std::uint64_t base_seed) {
  if (replications == 0)
    throw std::invalid_argument("runReplicated: zero replications");

  const std::size_t n = config.num_masters;
  ReplicationAccumulator acc(n);
  sim::SplitMix64 seeder(base_seed ^ 0x5eedba5eULL);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    const std::uint64_t traffic_seed = seeder.next();
    const std::uint64_t arbiter_seed = seeder.next();
    acc.record(runTestbed(config, arbiter_factory(arbiter_seed),
                          paramsFor(cls, n, traffic_seed), cycles));
  }
  return acc.finish();
}

ReplicatedResult runReplicatedBatched(const bus::BusConfig& config,
                                      const ArbiterFactory& arbiter_factory,
                                      const TrafficClass& cls,
                                      sim::Cycle cycles,
                                      std::size_t replications,
                                      std::uint64_t base_seed,
                                      BatchedReplicationOptions batch) {
  if (replications == 0)
    throw std::invalid_argument("runReplicatedBatched: zero replications");

  const std::size_t n = config.num_masters;
  // Exactly runReplicated's seed derivation, so replica r's system is
  // bit-identical between the two runners.
  sim::SplitMix64 seeder(base_seed ^ 0x5eedba5eULL);
  std::vector<TestbedInstance> instances;
  instances.reserve(replications);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    const std::uint64_t traffic_seed = seeder.next();
    const std::uint64_t arbiter_seed = seeder.next();
    instances.emplace_back(config, arbiter_factory(arbiter_seed),
                           paramsFor(cls, n, traffic_seed), TestbedOptions{});
  }

  sim::BatchedReplicaRunner::Options runner_options;
  runner_options.chunk = batch.chunk;
  runner_options.threads = batch.threads;
  runner_options.group = batch.group;
  sim::BatchedReplicaRunner runner(runner_options);
  for (TestbedInstance& instance : instances) runner.add(instance.kernel());
  runner.run(cycles);

  ReplicationAccumulator acc(n);
  for (TestbedInstance& instance : instances) acc.record(instance.finish(cycles));
  return acc.finish();
}

}  // namespace lb::traffic
