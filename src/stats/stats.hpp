#pragma once
// Measurement primitives for the LOTTERYBUS experiments.
//
// The paper reports two metrics:
//  - bandwidth fraction: share of all bus cycles spent transferring a given
//    master's data words (plus the un-utilized fraction), and
//  - average communication latency in bus cycles *per word*, where a
//    message's latency spans from the cycle the request was issued to the
//    cycle its last word completed, inclusive.
//
// These classes do the bookkeeping; the bus calls them, experiments read
// them.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace lb::stats {

/// Per-master word/latency accounting for one simulation run.
class LatencyStats {
public:
  explicit LatencyStats(std::size_t num_masters) : per_(num_masters) {}

  /// Records one completed message for `master`: `words` words whose total
  /// request-to-completion latency was `latency_cycles` (inclusive span).
  void recordMessage(std::size_t master, std::uint64_t words,
                     std::uint64_t latency_cycles);

  /// Average latency in bus cycles per word for one master:
  /// sum(message latency) / sum(message words).  Returns 0 if no traffic.
  double cyclesPerWord(std::size_t master) const;

  /// Average cycles/word over all masters combined.
  double overallCyclesPerWord() const;

  /// Mean latency per *message* for one master.
  double meanMessageLatency(std::size_t master) const;

  std::uint64_t messages(std::size_t master) const { return per_[master].messages; }
  std::uint64_t words(std::size_t master) const { return per_[master].words; }
  std::uint64_t maxLatency(std::size_t master) const { return per_[master].max_latency; }
  std::uint64_t minLatency(std::size_t master) const;
  std::size_t masters() const { return per_.size(); }

  void reset();

private:
  struct PerMaster {
    std::uint64_t messages = 0;
    std::uint64_t words = 0;
    std::uint64_t latency_sum = 0;
    std::uint64_t max_latency = 0;
    std::uint64_t min_latency = std::numeric_limits<std::uint64_t>::max();
  };
  std::vector<PerMaster> per_;
};

/// Bus-bandwidth accounting: one data word moves per busy cycle, so the
/// bandwidth fraction of a master is (its data cycles) / (total cycles).
class BandwidthStats {
public:
  explicit BandwidthStats(std::size_t num_masters) : words_(num_masters, 0) {}

  void recordWord(std::size_t master) { ++words_[master]; }
  void recordIdleCycle() { ++idle_cycles_; }
  void recordOverheadCycle() { ++overhead_cycles_; }

  /// Bulk forms used by the fast-forwarding kernel path: one call accounts
  /// `n` cycles exactly as `n` per-cycle calls would.
  void recordIdleCycles(std::uint64_t n) { idle_cycles_ += n; }
  void recordOverheadCycles(std::uint64_t n) { overhead_cycles_ += n; }

  std::uint64_t totalCycles() const;
  std::uint64_t wordsTransferred(std::size_t master) const { return words_[master]; }
  std::uint64_t idleCycles() const { return idle_cycles_; }
  std::uint64_t overheadCycles() const { return overhead_cycles_; }

  /// Fraction of total bus cycles carrying this master's data, in [0,1].
  double fraction(std::size_t master) const;

  /// Fraction of cycles the bus moved no data (idle + arbitration overhead).
  double unutilizedFraction() const;

  /// Fraction of *busy* (data) cycles carrying this master's data; this is
  /// the quantity ticket ratios predict when the bus is saturated.
  double shareOfTraffic(std::size_t master) const;

  std::size_t masters() const { return words_.size(); }

  void reset();

private:
  std::vector<std::uint64_t> words_;
  std::uint64_t idle_cycles_ = 0;
  std::uint64_t overhead_cycles_ = 0;
};

/// Fixed-bin histogram for latency distributions (used by tests and the
/// alignment-sensitivity experiments).
class Histogram {
public:
  /// Bins: [0,bin_width), [bin_width, 2*bin_width), ..., plus overflow.
  Histogram(std::uint64_t bin_width, std::size_t num_bins);

  void record(std::uint64_t value);

  std::uint64_t count(std::size_t bin) const { return bins_[bin]; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  std::size_t numBins() const { return bins_.size(); }
  std::uint64_t binWidth() const { return bin_width_; }

  /// Value below which `q` (in [0,1]) of the samples fall, resolved to bin
  /// upper edges.  Returns the overflow edge if q lands in overflow.
  std::uint64_t quantile(double q) const;

  double mean() const { return total_ ? static_cast<double>(sum_) / total_ : 0.0; }

  void reset();

private:
  std::uint64_t bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

/// Jain's fairness index over a vector of allocations: (sum x)^2 / (n * sum
/// x^2), in (0, 1]; 1 means perfectly equal, 1/n means one party takes all.
/// Used by the arbiter-comparison benches to quantify (un)weighted fairness.
double jainFairnessIndex(const std::vector<double>& allocations);

/// Weighted variant: fairness of x_i relative to weights w_i (index of
/// x_i / w_i).  1 means allocations exactly proportional to weights — the
/// LOTTERYBUS design goal.
double weightedFairnessIndex(const std::vector<double>& allocations,
                             const std::vector<double>& weights);

/// Welford running mean/variance, used by property tests.
class RunningStats {
public:
  void record(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;

private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace lb::stats
