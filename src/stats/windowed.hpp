#pragma once
// Windowed bandwidth tracking: per-interval share time series.
//
// A lottery is probabilistically fair: long-run shares converge to ticket
// ratios but any short window shows variance ("short-term unfairness", the
// classic critique of lottery scheduling).  Deterministic schedules (TDMA,
// DRR) are exact per frame.  WindowedBandwidth records who moved how many
// words in each fixed-size window so experiments can quantify convergence
// (bench/convergence_timeseries).

#include <cstdint>
#include <vector>

namespace lb::stats {

class WindowedBandwidth {
public:
  /// @param num_masters  masters tracked.
  /// @param window       cycles per window (> 0).
  WindowedBandwidth(std::size_t num_masters, std::uint64_t window);

  /// Records one transferred word for `master` at absolute cycle `now`.
  /// Cycles must be non-decreasing across calls.
  void recordWord(std::size_t master, std::uint64_t now);

  /// Number of closed windows so far (the current partial window is not
  /// included until a word lands beyond its end).
  std::size_t windows() const { return closed_.size(); }

  /// Words master `m` moved in closed window `w`.
  std::uint64_t words(std::size_t window_index, std::size_t master) const;

  /// Master's share of the words moved in closed window `w` (0 if the
  /// window was fully idle).
  double share(std::size_t window_index, std::size_t master) const;

  /// Maximum absolute deviation of this master's per-window share from
  /// `target`, over the last `count` closed windows (all if count == 0).
  double maxShareDeviation(std::size_t master, double target,
                           std::size_t count = 0) const;

  /// Mean absolute deviation over closed windows.
  double meanShareDeviation(std::size_t master, double target) const;

  std::uint64_t windowCycles() const { return window_; }

private:
  void closeThrough(std::uint64_t now);

  std::size_t num_masters_;
  std::uint64_t window_;
  std::uint64_t current_start_ = 0;
  std::vector<std::uint64_t> current_;
  std::vector<std::vector<std::uint64_t>> closed_;
};

}  // namespace lb::stats
