#include "stats/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lb::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header row");
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction01, int precision) {
  return num(fraction01 * 100.0, precision) + "%";
}

void Table::printAscii(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << " " << std::left << std::setw(static_cast<int>(width[c])) << cells[c]
         << " |";
    os << "\n";
  };
  auto rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c)
      os << std::string(width[c] + 2, '-') << "+";
    os << "\n";
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::printCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace lb::stats
