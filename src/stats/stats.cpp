#include "stats/stats.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lb::stats {

void LatencyStats::recordMessage(std::size_t master, std::uint64_t words,
                                 std::uint64_t latency_cycles) {
  PerMaster& p = per_.at(master);
  ++p.messages;
  p.words += words;
  p.latency_sum += latency_cycles;
  p.max_latency = std::max(p.max_latency, latency_cycles);
  p.min_latency = std::min(p.min_latency, latency_cycles);
}

double LatencyStats::cyclesPerWord(std::size_t master) const {
  const PerMaster& p = per_.at(master);
  if (p.words == 0) return 0.0;
  return static_cast<double>(p.latency_sum) / static_cast<double>(p.words);
}

double LatencyStats::overallCyclesPerWord() const {
  std::uint64_t words = 0, latency = 0;
  for (const PerMaster& p : per_) {
    words += p.words;
    latency += p.latency_sum;
  }
  if (words == 0) return 0.0;
  return static_cast<double>(latency) / static_cast<double>(words);
}

double LatencyStats::meanMessageLatency(std::size_t master) const {
  const PerMaster& p = per_.at(master);
  if (p.messages == 0) return 0.0;
  return static_cast<double>(p.latency_sum) / static_cast<double>(p.messages);
}

std::uint64_t LatencyStats::minLatency(std::size_t master) const {
  const PerMaster& p = per_.at(master);
  return p.messages ? p.min_latency : 0;
}

void LatencyStats::reset() {
  for (PerMaster& p : per_) p = PerMaster{};
}

std::uint64_t BandwidthStats::totalCycles() const {
  return std::accumulate(words_.begin(), words_.end(), std::uint64_t{0}) +
         idle_cycles_ + overhead_cycles_;
}

double BandwidthStats::fraction(std::size_t master) const {
  const std::uint64_t total = totalCycles();
  if (total == 0) return 0.0;
  return static_cast<double>(words_.at(master)) / static_cast<double>(total);
}

double BandwidthStats::unutilizedFraction() const {
  const std::uint64_t total = totalCycles();
  if (total == 0) return 0.0;
  return static_cast<double>(idle_cycles_ + overhead_cycles_) /
         static_cast<double>(total);
}

double BandwidthStats::shareOfTraffic(std::size_t master) const {
  const std::uint64_t busy =
      std::accumulate(words_.begin(), words_.end(), std::uint64_t{0});
  if (busy == 0) return 0.0;
  return static_cast<double>(words_.at(master)) / static_cast<double>(busy);
}

void BandwidthStats::reset() {
  std::fill(words_.begin(), words_.end(), 0);
  idle_cycles_ = 0;
  overhead_cycles_ = 0;
}

Histogram::Histogram(std::uint64_t bin_width, std::size_t num_bins)
    : bin_width_(bin_width), bins_(num_bins, 0) {
  if (bin_width == 0) throw std::invalid_argument("Histogram: bin_width == 0");
  if (num_bins == 0) throw std::invalid_argument("Histogram: num_bins == 0");
}

void Histogram::record(std::uint64_t value) {
  const std::uint64_t bin = value / bin_width_;
  if (bin < bins_.size()) {
    ++bins_[bin];
  } else {
    ++overflow_;
  }
  ++total_;
  sum_ += value;
}

std::uint64_t Histogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    seen += bins_[i];
    if (seen >= target) return (i + 1) * bin_width_;
  }
  return (bins_.size() + 1) * bin_width_;  // overflow edge
}

double jainFairnessIndex(const std::vector<double>& allocations) {
  if (allocations.empty())
    throw std::invalid_argument("jainFairnessIndex: empty input");
  double sum = 0.0, sum_sq = 0.0;
  for (const double x : allocations) {
    if (x < 0.0)
      throw std::invalid_argument("jainFairnessIndex: negative allocation");
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // everyone got (equally) nothing
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

double weightedFairnessIndex(const std::vector<double>& allocations,
                             const std::vector<double>& weights) {
  if (allocations.size() != weights.size())
    throw std::invalid_argument("weightedFairnessIndex: arity mismatch");
  std::vector<double> normalized(allocations.size());
  for (std::size_t i = 0; i < allocations.size(); ++i) {
    if (!(weights[i] > 0.0))
      throw std::invalid_argument("weightedFairnessIndex: bad weight");
    normalized[i] = allocations[i] / weights[i];
  }
  return jainFairnessIndex(normalized);
}

void Histogram::reset() {
  std::fill(bins_.begin(), bins_.end(), 0);
  overflow_ = 0;
  total_ = 0;
  sum_ = 0;
}

void RunningStats::record(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace lb::stats
