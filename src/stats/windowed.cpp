#include "stats/windowed.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lb::stats {

WindowedBandwidth::WindowedBandwidth(std::size_t num_masters,
                                     std::uint64_t window)
    : num_masters_(num_masters), window_(window),
      current_(num_masters, 0) {
  if (num_masters == 0)
    throw std::invalid_argument("WindowedBandwidth: no masters");
  if (window == 0)
    throw std::invalid_argument("WindowedBandwidth: zero window");
}

void WindowedBandwidth::closeThrough(std::uint64_t now) {
  while (now >= current_start_ + window_) {
    closed_.push_back(current_);
    std::fill(current_.begin(), current_.end(), 0);
    current_start_ += window_;
  }
}

void WindowedBandwidth::recordWord(std::size_t master, std::uint64_t now) {
  if (master >= num_masters_)
    throw std::out_of_range("WindowedBandwidth: bad master");
  closeThrough(now);
  ++current_[master];
}

std::uint64_t WindowedBandwidth::words(std::size_t window_index,
                                       std::size_t master) const {
  return closed_.at(window_index).at(master);
}

double WindowedBandwidth::share(std::size_t window_index,
                                std::size_t master) const {
  const auto& window = closed_.at(window_index);
  const std::uint64_t total =
      std::accumulate(window.begin(), window.end(), std::uint64_t{0});
  if (total == 0) return 0.0;
  return static_cast<double>(window.at(master)) / static_cast<double>(total);
}

double WindowedBandwidth::maxShareDeviation(std::size_t master, double target,
                                            std::size_t count) const {
  const std::size_t n = closed_.size();
  const std::size_t first = (count == 0 || count >= n) ? 0 : n - count;
  double worst = 0.0;
  for (std::size_t w = first; w < n; ++w)
    worst = std::max(worst, std::abs(share(w, master) - target));
  return worst;
}

double WindowedBandwidth::meanShareDeviation(std::size_t master,
                                             double target) const {
  if (closed_.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t w = 0; w < closed_.size(); ++w)
    sum += std::abs(share(w, master) - target);
  return sum / static_cast<double>(closed_.size());
}

}  // namespace lb::stats
