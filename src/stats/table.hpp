#pragma once
// Tiny aligned-ASCII / CSV table printer used by the benchmark harnesses to
// emit paper-style tables and figure series.

#include <iosfwd>
#include <string>
#include <vector>

namespace lb::stats {

class Table {
public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header row.
  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction01, int precision = 1);

  void printAscii(std::ostream& os) const;
  void printCsv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const {
    return rows_.at(row).at(col);
  }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lb::stats
