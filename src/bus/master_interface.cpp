#include "bus/master_interface.hpp"

namespace lb::bus {

MasterInterface::MasterInterface(Bus& bus, MasterId master)
    : bus_(bus), master_(master) {
  bus_.onCompletion(
      [this](MasterId who, const Message& message, Cycle finish) {
        if (who != master_) return;
        auto it = pending_.find(message.tag);
        if (it == pending_.end()) return;  // pushed outside this interface
        Completion completion = std::move(it->second);
        pending_.erase(it);
        ++completed_;
        if (completion) completion(finish);
      });
}

std::uint64_t MasterInterface::transfer(std::uint32_t words, int slave,
                                        Cycle now, Completion completion) {
  const std::uint64_t id = next_id_++;
  Message message;
  message.words = words;
  message.slave = slave;
  message.arrival = now;
  message.tag = id;
  bus_.push(master_, message);  // validates words/slave
  pending_.emplace(id, std::move(completion));
  return id;
}

}  // namespace lb::bus
