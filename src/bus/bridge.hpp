#pragma once
// Bus-to-bus bridge.
//
// The paper's architecture "does not presume any fixed topology": components
// may sit on an arbitrary network of shared channels connected by bridges
// (Sections 2 and 4.1).  A Bridge is a slave on an upstream bus and a master
// on a downstream bus: when a message addressed to the bridge's upstream
// slave index finishes its upstream transfer, the bridge re-issues it on the
// downstream bus one cycle later (its internal register stage).  Each bus
// keeps its own arbiter, so e.g. a LOTTERYBUS segment can feed a
// static-priority segment.
//
// The bridge is a clocked component: attach it to the same kernel as both
// buses (order among the three does not matter; forwarding always takes
// exactly one cycle of bridge latency).

#include <cstdint>
#include <deque>
#include <functional>

#include "bus/bus.hpp"
#include "sim/kernel.hpp"

namespace lb::bus {

class Bridge final : public sim::ICycleComponent {
public:
  /// Forwards messages that complete on `upstream` addressed to slave
  /// `upstream_slave` onto `downstream`, issued by master
  /// `downstream_master` towards `downstream_slave`.
  Bridge(Bus& upstream, int upstream_slave, Bus& downstream,
         MasterId downstream_master, int downstream_slave);

  Bridge(const Bridge&) = delete;
  Bridge& operator=(const Bridge&) = delete;

  void cycle(sim::Cycle now) override;

  /// Quiescence hint: the head forward's register-stage ready cycle
  /// (ready_at values are nondecreasing because upstream completions are
  /// ordered); never, while nothing is in flight.
  sim::Cycle nextActivity(sim::Cycle now) override {
    if (pending_.empty()) return sim::kNeverCycle;
    const Cycle ready = pending_.front().ready_at;
    return ready <= now ? now : ready;
  }

  std::string name() const override { return "bridge"; }

  std::uint64_t forwarded() const { return forwarded_; }
  std::size_t inFlight() const { return pending_.size(); }

  /// Fires when a forwarded message completes its downstream leg:
  /// (original message tag, downstream finish cycle).
  using RemoteCompletion = std::function<void(std::uint64_t, Cycle)>;
  void onRemoteCompletion(RemoteCompletion callback) {
    remote_completion_ = std::move(callback);
  }

private:
  struct PendingMessage {
    Message message;
    Cycle ready_at;
  };

  Bus& downstream_;
  MasterId downstream_master_;
  int downstream_slave_;
  std::deque<PendingMessage> pending_;
  std::uint64_t forwarded_ = 0;
  RemoteCompletion remote_completion_;
};

}  // namespace lb::bus
