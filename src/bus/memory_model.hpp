#pragma once
// Row-buffer (banked DRAM-style) slave memory model.
//
// The paper's slaves are "on-chip memories"; real embedded memories are
// banked with row buffers, so an access's latency depends on locality: a
// request hitting the currently-open row streams immediately, a different
// row pays precharge + activate before the first word.  RowBufferMemory is
// a stateful functor pluggable into SlaveConfig::setup_latency; the bus
// charges its result as dead cycles at the start of each grant.
//
// bench/ablation_memory_locality sweeps access locality and shows the
// effective bandwidth collapse of row-missing traffic — and why bursts (the
// paper's multi-word grants) matter on real memory.

#include <cstdint>
#include <vector>

#include "bus/types.hpp"

namespace lb::bus {

struct RowBufferConfig {
  unsigned banks = 4;             ///< power of two
  std::uint32_t row_bytes = 1024; ///< row (page) size
  std::uint32_t hit_setup = 0;    ///< extra cycles when the row is open
  std::uint32_t miss_setup = 6;   ///< precharge + activate on a row miss
  std::uint32_t cold_setup = 3;   ///< first access to an idle bank (activate
                                  ///< only, nothing to precharge)
};

class RowBufferMemory {
public:
  explicit RowBufferMemory(RowBufferConfig config = {});

  /// SlaveConfig::setup_latency entry point: classifies the access and
  /// updates the bank state.
  std::uint32_t operator()(const Message& message);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t coldAccesses() const { return cold_; }
  double hitRate() const;

  /// Closes every row (e.g. a refresh or power state transition).
  void precharge();

private:
  RowBufferConfig config_;
  std::vector<std::int64_t> open_row_;  // -1 = bank idle
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t cold_ = 0;
};

}  // namespace lb::bus
