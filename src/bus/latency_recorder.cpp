#include "bus/latency_recorder.hpp"

namespace lb::bus {

LatencyRecorder::LatencyRecorder(Bus& bus, std::uint64_t bin_width,
                                 std::size_t num_bins, bool per_word)
    : per_word_(per_word) {
  histograms_.reserve(bus.numMasters());
  for (std::size_t m = 0; m < bus.numMasters(); ++m)
    histograms_.emplace_back(bin_width, num_bins);
  bus.onCompletion(
      [this](MasterId master, const Message& message, Cycle finish) {
        const std::uint64_t latency = finish - message.arrival + 1;
        histograms_[static_cast<std::size_t>(master)].record(
            per_word_ ? latency / message.words : latency);
      });
}

void LatencyRecorder::reset() {
  for (stats::Histogram& histogram : histograms_) histogram.reset();
}

}  // namespace lb::bus
