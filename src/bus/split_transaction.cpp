#include "bus/split_transaction.hpp"

#include <stdexcept>

namespace lb::bus {

SplitSlave::SplitSlave(Bus& bus, SplitSlaveConfig config)
    : bus_(bus), config_(config) {
  if (config_.response_words == 0)
    throw std::invalid_argument("SplitSlave: zero response words");
  if (config_.max_in_flight == 0)
    throw std::invalid_argument("SplitSlave: zero pipeline depth");

  bus_.onCompletion([this](MasterId master, const Message& message,
                           Cycle finish) {
    if (master == config_.response_master) {
      // Our own response transfer finished: report to the initiator.
      if (message.slave == config_.response_slave && responses_ > 0) {
        if (response_callback_) response_callback_(message.tag, finish);
      }
      return;
    }
    if (message.slave != config_.request_slave) return;
    // A request (address phase) reached us; enter the fetch pipeline, or
    // the overflow queue if the pipeline is full.
    ++accepted_;
    if (fetching_.size() < config_.max_in_flight) {
      fetching_.push_back(PendingFetch{message.tag, finish + config_.latency});
    } else {
      waiting_.push_back(message.tag);
    }
  });
}

void SplitSlave::cycle(sim::Cycle now) {
  // Fetches complete in FIFO order (the pipeline is in-order).
  while (!fetching_.empty() && fetching_.front().ready_at <= now) {
    const PendingFetch done = fetching_.front();
    fetching_.pop_front();
    Message response;
    response.words = config_.response_words;
    response.slave = config_.response_slave;
    response.arrival = now;
    response.tag = done.tag;
    bus_.push(config_.response_master, response);
    ++responses_;
    if (!waiting_.empty()) {
      fetching_.push_back(
          PendingFetch{waiting_.front(), now + config_.latency});
      waiting_.pop_front();
    }
  }
}

}  // namespace lb::bus
