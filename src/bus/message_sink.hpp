#pragma once
// Minimal injection interface shared by every interconnect front-end.
//
// TrafficSource and TraceSource historically drove a bus::Bus directly; the
// mesh NoC (src/noc) gives each node a network interface that accepts the
// same messages.  IMessageSink is the narrow waist between the two: a
// per-master message queue with observable depth, which is exactly what the
// generators need for closed-loop backpressure (max_outstanding) and what
// both Bus and noc::NetworkInterface already provide.

#include <cstddef>

#include "bus/types.hpp"

namespace lb::bus {

class IMessageSink {
public:
  virtual ~IMessageSink() = default;

  /// Queues a message for `master`.  The caller stamps `message.arrival`
  /// with the issue cycle; latency is measured from that point.  Throws
  /// std::invalid_argument on malformed messages.
  virtual void push(MasterId master, Message message) = 0;

  /// Messages queued (and not yet fully injected/serviced) for `master`;
  /// traffic generators compare this against max_outstanding.
  virtual std::size_t queueDepth(MasterId master) const = 0;
};

}  // namespace lb::bus
