#include "bus/bus.hpp"

#include <stdexcept>

namespace lb::bus {

Bus::Bus(BusConfig config, std::unique_ptr<IArbiter> arbiter)
    : config_(std::move(config)),
      arbiter_(std::move(arbiter)),
      queues_(config_.num_masters),
      requests_(config_.num_masters),
      latency_(config_.num_masters),
      bandwidth_(config_.num_masters) {
  if (config_.num_masters == 0)
    throw std::invalid_argument("Bus: num_masters == 0");
  if (config_.max_burst_words == 0)
    throw std::invalid_argument("Bus: max_burst_words == 0");
  if (config_.slaves.empty())
    throw std::invalid_argument("Bus: at least one slave required");
  if (!arbiter_) throw std::invalid_argument("Bus: null arbiter");
}

void Bus::push(MasterId master, Message message) {
  if (master < 0 || static_cast<std::size_t>(master) >= queues_.size())
    throw std::invalid_argument("Bus::push: bad master id");
  if (message.words == 0)
    throw std::invalid_argument("Bus::push: zero-length message");
  if (message.slave < 0 ||
      static_cast<std::size_t>(message.slave) >= config_.slaves.size())
    throw std::invalid_argument("Bus::push: bad slave id");

  auto& queue = queues_[master];
  queue.push_back(message);

  MasterRequest& req = requests_[master];
  req.backlog_words += message.words;
  if (!req.pending) {
    req.pending = true;
    req.head_words_remaining = message.words;
    req.head_arrival = message.arrival;
  }
}

void Bus::setTickets(MasterId master, std::uint32_t tickets) {
  requests_.at(static_cast<std::size_t>(master)).tickets = tickets;
}

std::uint32_t Bus::tickets(MasterId master) const {
  return requests_.at(static_cast<std::size_t>(master)).tickets;
}

bool Bus::idle(MasterId master) const {
  return queues_.at(static_cast<std::size_t>(master)).empty();
}

std::size_t Bus::queueDepth(MasterId master) const {
  return queues_.at(static_cast<std::size_t>(master)).size();
}

std::uint64_t Bus::backlogWords(MasterId master) const {
  return requests_.at(static_cast<std::size_t>(master)).backlog_words;
}

void Bus::startGrant(const Grant& grant, Cycle now) {
  const auto m = static_cast<std::size_t>(grant.master);
  if (m >= requests_.size())
    throw std::logic_error("Bus: arbiter granted an out-of-range master");
  const MasterRequest& req = requests_[m];
  if (!req.pending)
    throw std::logic_error("Bus: arbiter granted a master with no request");

  std::uint32_t words = config_.max_burst_words;
  if (grant.max_words != 0) words = std::min(words, grant.max_words);
  words = std::min(words, req.head_words_remaining);

  grant_master_ = grant.master;
  grant_words_left_ = words;
  const Message& head = queues_[m].front();
  current_word_cost_ = 1 + slaveWaitStates(head.slave);
  word_cycles_left_ = current_word_cost_;
  // Address-sensitive slave setup (e.g. a row activation) charges dead
  // cycles before the first word.
  const auto& setup =
      config_.slaves[static_cast<std::size_t>(head.slave)].setup_latency;
  if (setup) overhead_left_ += setup(head);
  ++grants_issued_;
  if (trace_enabled_) trace_.push_back(GrantRecord{grant.master, now, words});
  if (sinks_) {
    if (sinks_->grants) sinks_->grants->inc();
    if (m < sinks_->grants_by_master.size() && sinks_->grants_by_master[m])
      sinks_->grants_by_master[m]->inc();
    if (sinks_->grant_wait_cycles && now >= req.head_arrival)
      sinks_->grant_wait_cycles->observe(
          static_cast<double>(now - req.head_arrival));
  }
}

void Bus::clearStats() {
  latency_.reset();
  bandwidth_.reset();
  grants_issued_ = 0;
  preemptions_ = 0;
  trace_.clear();
}

void Bus::reset() {
  for (auto& queue : queues_) queue.clear();
  for (auto& req : requests_) {
    const std::uint32_t tickets = req.tickets;  // keep configuration
    req = MasterRequest{};
    req.tickets = tickets;
  }
  grant_master_ = kNoMaster;
  grant_words_left_ = 0;
  word_cycles_left_ = 0;
  current_word_cost_ = 0;
  overhead_left_ = 0;
  latency_.reset();
  bandwidth_.reset();
  grants_issued_ = 0;
  preemptions_ = 0;
  trace_.clear();
  arbiter_->reset();
}

}  // namespace lb::bus
