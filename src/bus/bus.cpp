#include "bus/bus.hpp"

#include <stdexcept>

namespace lb::bus {

Bus::Bus(BusConfig config, std::unique_ptr<IArbiter> arbiter)
    : config_(std::move(config)),
      arbiter_(std::move(arbiter)),
      queues_(config_.num_masters),
      requests_(config_.num_masters),
      latency_(config_.num_masters),
      bandwidth_(config_.num_masters) {
  if (config_.num_masters == 0)
    throw std::invalid_argument("Bus: num_masters == 0");
  if (config_.max_burst_words == 0)
    throw std::invalid_argument("Bus: max_burst_words == 0");
  if (config_.slaves.empty())
    throw std::invalid_argument("Bus: at least one slave required");
  if (!arbiter_) throw std::invalid_argument("Bus: null arbiter");
}

void Bus::push(MasterId master, Message message) {
  if (master < 0 || static_cast<std::size_t>(master) >= queues_.size())
    throw std::invalid_argument("Bus::push: bad master id");
  if (message.words == 0)
    throw std::invalid_argument("Bus::push: zero-length message");
  if (message.slave < 0 ||
      static_cast<std::size_t>(message.slave) >= config_.slaves.size())
    throw std::invalid_argument("Bus::push: bad slave id");

  auto& queue = queues_[master];
  queue.push_back(message);

  MasterRequest& req = requests_[master];
  req.backlog_words += message.words;
  if (!req.pending) {
    req.pending = true;
    req.head_words_remaining = message.words;
    req.head_arrival = message.arrival;
  }
}

void Bus::setTickets(MasterId master, std::uint32_t tickets) {
  requests_.at(static_cast<std::size_t>(master)).tickets = tickets;
}

std::uint32_t Bus::tickets(MasterId master) const {
  return requests_.at(static_cast<std::size_t>(master)).tickets;
}

bool Bus::idle(MasterId master) const {
  return queues_.at(static_cast<std::size_t>(master)).empty();
}

std::size_t Bus::queueDepth(MasterId master) const {
  return queues_.at(static_cast<std::size_t>(master)).size();
}

std::uint64_t Bus::backlogWords(MasterId master) const {
  return requests_.at(static_cast<std::size_t>(master)).backlog_words;
}

std::uint32_t Bus::slaveWaitStates(int slave) const {
  return config_.slaves[static_cast<std::size_t>(slave)].wait_states;
}

void Bus::startGrant(const Grant& grant, Cycle now) {
  const auto m = static_cast<std::size_t>(grant.master);
  if (m >= requests_.size())
    throw std::logic_error("Bus: arbiter granted an out-of-range master");
  const MasterRequest& req = requests_[m];
  if (!req.pending)
    throw std::logic_error("Bus: arbiter granted a master with no request");

  std::uint32_t words = config_.max_burst_words;
  if (grant.max_words != 0) words = std::min(words, grant.max_words);
  words = std::min(words, req.head_words_remaining);

  grant_master_ = grant.master;
  grant_words_left_ = words;
  const Message& head = queues_[m].front();
  current_word_cost_ = 1 + slaveWaitStates(head.slave);
  word_cycles_left_ = current_word_cost_;
  // Address-sensitive slave setup (e.g. a row activation) charges dead
  // cycles before the first word.
  const auto& setup =
      config_.slaves[static_cast<std::size_t>(head.slave)].setup_latency;
  if (setup) overhead_left_ += setup(head);
  ++grants_issued_;
  if (trace_enabled_) trace_.push_back(GrantRecord{grant.master, now, words});
  if (sinks_) {
    if (sinks_->grants) sinks_->grants->inc();
    if (m < sinks_->grants_by_master.size() && sinks_->grants_by_master[m])
      sinks_->grants_by_master[m]->inc();
    if (sinks_->grant_wait_cycles && now >= req.head_arrival)
      sinks_->grant_wait_cycles->observe(
          static_cast<double>(now - req.head_arrival));
  }
}

void Bus::transferWord(Cycle now) {
  const auto m = static_cast<std::size_t>(grant_master_);
  MasterRequest& req = requests_[m];
  Message& head = queues_[m].front();

  bandwidth_.recordWord(m);
  if (sinks_ && m < sinks_->words_by_master.size() &&
      sinks_->words_by_master[m])
    sinks_->words_by_master[m]->inc();
  --req.head_words_remaining;
  --req.backlog_words;
  --grant_words_left_;

  if (req.head_words_remaining == 0) {
    // Message complete this cycle; latency spans arrival..now inclusive.
    const Message done = head;
    latency_.recordMessage(m, done.words, now - done.arrival + 1);
    queues_[m].pop_front();
    if (queues_[m].empty()) {
      req.pending = false;
    } else {
      req.head_words_remaining = queues_[m].front().words;
      req.head_arrival = queues_[m].front().arrival;
    }
    for (const auto& callback : completion_callbacks_)
      callback(grant_master_, done, now);
    // A grant never outlives its message: re-arbitrate for the next one.
    grant_words_left_ = 0;
  }

  if (grant_words_left_ == 0) {
    grant_master_ = kNoMaster;
  } else {
    current_word_cost_ = 1 + slaveWaitStates(queues_[m].front().slave);
    word_cycles_left_ = current_word_cost_;
  }
}

void Bus::cycle(Cycle now) {
  if (overhead_left_ > 0) {
    --overhead_left_;
    bandwidth_.recordOverheadCycle();
    if (sinks_ && sinks_->overhead_cycles) sinks_->overhead_cycles->inc();
    return;
  }

  if (config_.allow_preemption && grant_master_ != kNoMaster &&
      word_cycles_left_ == current_word_cost_ &&
      arbiter_->shouldPreempt(grant_master_, RequestView(requests_), now)) {
    // Abort the burst at the word boundary; the owner's remaining words stay
    // at the head of its queue and compete in the very next arbitration.
    grant_master_ = kNoMaster;
    grant_words_left_ = 0;
    ++preemptions_;
    if (sinks_ && sinks_->preemptions) sinks_->preemptions->inc();
  }

  if (grant_master_ == kNoMaster) {
    const Grant grant = arbiter_->arbitrate(RequestView(requests_), now);
    if (!grant.valid()) {
      bandwidth_.recordIdleCycle();
      if (sinks_ && sinks_->idle_cycles) sinks_->idle_cycles->inc();
      return;
    }
    startGrant(grant, now);
    if (!config_.pipelined_arbitration && config_.arb_overhead_cycles > 0) {
      // Non-pipelined design: the arbitration decision itself occupies the
      // bus before the first data word.
      overhead_left_ += config_.arb_overhead_cycles;
    }
    if (overhead_left_ > 0) {
      // Arbitration and/or slave-setup dead cycles precede the first word.
      --overhead_left_;
      bandwidth_.recordOverheadCycle();
      if (sinks_ && sinks_->overhead_cycles) sinks_->overhead_cycles->inc();
      return;
    }
  }

  // One cycle of the current word: either a wait state or the word completes.
  --word_cycles_left_;
  if (word_cycles_left_ > 0) {
    bandwidth_.recordOverheadCycle();
    if (sinks_ && sinks_->overhead_cycles) sinks_->overhead_cycles->inc();
    return;
  }
  transferWord(now);
}

Cycle Bus::nextActivity(Cycle now) {
  // Overhead stretch (arbitration, slave setup, wait states folded into
  // overhead_left_): cycle() only decrements and records until it drains.
  if (overhead_left_ > 0) return now + overhead_left_;

  if (grant_master_ != kNoMaster) {
    // Mid-word.  The word completes on the cycle of the last decrement; the
    // word-boundary cycle additionally consults shouldPreempt() when
    // preemption is enabled, so it must execute.
    if (config_.allow_preemption && word_cycles_left_ == current_word_cost_)
      return now;
    return now + word_cycles_left_ - 1;
  }

  // Idle: nothing happens until the arbiter could hand out a grant.  New
  // requests arrive only at executed cycles (sources are kernel components
  // too), so the kernel re-polls this hint whenever one could have pushed.
  return arbiter_->nextGrantOpportunity(RequestView(requests_), now);
}

void Bus::fastForward(Cycle from, Cycle to) {
  const Cycle skipped = to - from;
  if (skipped == 0) return;

  if (overhead_left_ > 0) {
    // Naive mode spends each of these cycles on --overhead_left_ plus one
    // overhead record; reproduce that in bulk.
    if (skipped > overhead_left_)
      throw std::logic_error("Bus::fastForward: jumped past overhead end");
    overhead_left_ -= static_cast<std::uint32_t>(skipped);
    bandwidth_.recordOverheadCycles(skipped);
    if (sinks_ && sinks_->overhead_cycles) sinks_->overhead_cycles->inc(skipped);
    return;
  }

  if (grant_master_ != kNoMaster) {
    // Mid-word wait states: each skipped cycle is a decrement plus an
    // overhead record; the completing decrement itself always executes.
    if (skipped >= word_cycles_left_)
      throw std::logic_error("Bus::fastForward: jumped past word completion");
    word_cycles_left_ -= static_cast<std::uint32_t>(skipped);
    bandwidth_.recordOverheadCycles(skipped);
    if (sinks_ && sinks_->overhead_cycles) sinks_->overhead_cycles->inc(skipped);
    return;
  }

  // Idle stretch: naive mode would have recorded one idle cycle and made
  // one fruitless arbitrate() call (observer-visible) per cycle.
  bandwidth_.recordIdleCycles(skipped);
  if (sinks_ && sinks_->idle_cycles) sinks_->idle_cycles->inc(skipped);
  arbiter_->recordQuiescentCycles(RequestView(requests_), from, to);
}

void Bus::clearStats() {
  latency_.reset();
  bandwidth_.reset();
  grants_issued_ = 0;
  preemptions_ = 0;
  trace_.clear();
}

void Bus::reset() {
  for (auto& queue : queues_) queue.clear();
  for (auto& req : requests_) {
    const std::uint32_t tickets = req.tickets;  // keep configuration
    req = MasterRequest{};
    req.tickets = tickets;
  }
  grant_master_ = kNoMaster;
  grant_words_left_ = 0;
  word_cycles_left_ = 0;
  current_word_cost_ = 0;
  overhead_left_ = 0;
  latency_.reset();
  bandwidth_.reset();
  grants_issued_ = 0;
  preemptions_ = 0;
  trace_.clear();
  arbiter_->reset();
}

}  // namespace lb::bus
