#pragma once
// Arbiter interface: the single customization point that distinguishes the
// communication architectures compared in the paper (static priority, two-
// level TDMA, round-robin, token ring, and the proposed LOTTERYBUS).

#include <span>
#include <string>

#include "bus/types.hpp"

namespace lb::bus {

/// Read-only snapshot of all masters' request state, handed to the arbiter
/// once per arbitration.
class RequestView {
public:
  explicit RequestView(std::span<const MasterRequest> requests) noexcept
      : requests_(requests) {}

  std::size_t size() const noexcept { return requests_.size(); }
  const MasterRequest& operator[](std::size_t i) const { return requests_[i]; }

  bool anyPending() const noexcept {
    for (const MasterRequest& r : requests_)
      if (r.pending) return true;
    return false;
  }

  std::size_t pendingCount() const noexcept {
    std::size_t n = 0;
    for (const MasterRequest& r : requests_) n += r.pending ? 1 : 0;
    return n;
  }

  /// Bitmap r_1 r_2 ... r_n with master 0 in bit 0 (the paper's request map).
  std::uint32_t requestMap() const noexcept {
    std::uint32_t map = 0;
    for (std::size_t i = 0; i < requests_.size(); ++i)
      if (requests_[i].pending) map |= (1u << i);
    return map;
  }

private:
  std::span<const MasterRequest> requests_;
};

class IArbiter;

/// Passive observer of arbitration outcomes.  The observability layer hangs
/// off this single hook instead of each arbiter growing ad-hoc counters;
/// observers must not mutate arbiter or bus state (the decision has already
/// been made when they are called, so a well-behaved observer cannot change
/// simulation results).
class IArbiterObserver {
public:
  virtual ~IArbiterObserver() = default;

  /// Called after every arbitration decision, granted or not.  `grant` is
  /// invalid when nothing was pending (or the policy withheld the bus).
  virtual void onArbitration(const IArbiter& arbiter,
                             const RequestView& requests, Cycle now,
                             const Grant& grant) = 0;

  /// Bulk form of onArbitration for a quiescent stretch: the fast kernel
  /// path skipped cycles [from, to) during which the naive stepper would
  /// have performed one fruitless arbitration (invalid grant, unchanged
  /// request view) per cycle.  The default replays them one by one so any
  /// observer stays exactly naive-equivalent; cheap observers override with
  /// an O(1) bulk update (see service::GrantTally).
  virtual void onQuiescentArbitrations(const IArbiter& arbiter,
                                       const RequestView& requests, Cycle from,
                                       Cycle to) {
    for (Cycle c = from; c < to; ++c)
      onArbitration(arbiter, requests, c, Grant{});
  }
};

/// Bus arbitration policy.  The bus calls arbitrate() whenever the channel is
/// free and decides nothing itself beyond clamping the grant to the head
/// message and the configured maximum burst size.
///
/// Non-virtual interface: concrete policies implement the protected decide()
/// hook; the public arbitrate() wrapper notifies the attached observer (if
/// any) after each decision.  Policies therefore never need observer
/// plumbing of their own.
class IArbiter {
public:
  virtual ~IArbiter() = default;

  /// Picks the next bus owner among pending masters and reports the outcome
  /// to the attached observer.  Returns an invalid grant if nothing is
  /// pending, and never grants a non-pending master.  `now` is the current
  /// bus cycle (TDMA derives its wheel position from it).
  Grant arbitrate(const RequestView& requests, Cycle now) {
    const Grant grant = decide(requests, now);
    if (observer_ != nullptr)
      observer_->onArbitration(*this, requests, now, grant);
    return grant;
  }

  /// Pure scheduling hint for the quiescence-aware kernel: the earliest
  /// cycle >= now at which decide() *might* return a valid grant, assuming
  /// the request view does not change in the meantime.  sim::kNeverCycle
  /// means "never without a new request".  Hints may be conservative
  /// (earlier than the true grant cycle — the bus just re-arbitrates and
  /// idles as usual) but must never be late, must not mutate arbiter state,
  /// and must not consume randomness.  The default is exact for every
  /// policy that grants whenever something is pending; slotted policies
  /// (TDMA) and policies that stall with work pending (token ring in
  /// flight) override it.
  virtual Cycle nextGrantOpportunity(const RequestView& requests,
                                     Cycle now) const {
    return requests.anyPending() ? now : sim::kNeverCycle;
  }

  /// Reports a skipped quiescent stretch [from, to) to the observer so
  /// per-decision tallies stay bit-identical with the naive stepper (which
  /// would have called arbitrate() fruitlessly once per cycle).  Called by
  /// the bus's fastForward(); a no-op without an observer.
  void recordQuiescentCycles(const RequestView& requests, Cycle from,
                             Cycle to) {
    if (observer_ != nullptr && to > from)
      observer_->onQuiescentArbitrations(*this, requests, from, to);
  }

  /// Architecture name for reports.
  virtual std::string name() const = 0;

  /// Preemption hook (paper Section 2.3 lists pre-emption among the optional
  /// protocol features).  Called by the bus at word boundaries of an active
  /// burst when `BusConfig::allow_preemption` is set: return true to abort
  /// the remaining words of `current`'s grant and re-arbitrate immediately.
  /// Default: never preempt.
  virtual bool shouldPreempt(MasterId /*current*/,
                             const RequestView& /*requests*/,
                             Cycle /*now*/) {
    return false;
  }

  /// Restores initial state (pointers, RNG seeds) for a fresh run.  Pure so
  /// every policy states its reset story explicitly ({} for stateless ones).
  /// Does not detach the observer.
  virtual void reset() = 0;

  /// Attaches (or, with nullptr, detaches) the single decision observer.
  void setObserver(IArbiterObserver* observer) noexcept {
    observer_ = observer;
  }
  IArbiterObserver* observer() const noexcept { return observer_; }

protected:
  /// The actual policy: see arbitrate() for the contract.
  virtual Grant decide(const RequestView& requests, Cycle now) = 0;

private:
  IArbiterObserver* observer_ = nullptr;
};

}  // namespace lb::bus
