#pragma once
// Arbiter interface: the single customization point that distinguishes the
// communication architectures compared in the paper (static priority, two-
// level TDMA, round-robin, token ring, and the proposed LOTTERYBUS).

#include <span>
#include <string>

#include "bus/types.hpp"

namespace lb::bus {

/// Read-only snapshot of all masters' request state, handed to the arbiter
/// once per arbitration.
class RequestView {
public:
  explicit RequestView(std::span<const MasterRequest> requests) noexcept
      : requests_(requests) {}

  std::size_t size() const noexcept { return requests_.size(); }
  const MasterRequest& operator[](std::size_t i) const { return requests_[i]; }

  bool anyPending() const noexcept {
    for (const MasterRequest& r : requests_)
      if (r.pending) return true;
    return false;
  }

  std::size_t pendingCount() const noexcept {
    std::size_t n = 0;
    for (const MasterRequest& r : requests_) n += r.pending ? 1 : 0;
    return n;
  }

  /// Bitmap r_1 r_2 ... r_n with master 0 in bit 0 (the paper's request map).
  std::uint32_t requestMap() const noexcept {
    std::uint32_t map = 0;
    for (std::size_t i = 0; i < requests_.size(); ++i)
      if (requests_[i].pending) map |= (1u << i);
    return map;
  }

private:
  std::span<const MasterRequest> requests_;
};

/// Bus arbitration policy.  The bus calls arbitrate() whenever the channel is
/// free and decides nothing itself beyond clamping the grant to the head
/// message and the configured maximum burst size.
class IArbiter {
public:
  virtual ~IArbiter() = default;

  /// Picks the next bus owner among pending masters.  Must return an invalid
  /// grant if nothing is pending, and must never grant a non-pending master.
  /// `now` is the current bus cycle (TDMA derives its wheel position from it).
  virtual Grant arbitrate(const RequestView& requests, Cycle now) = 0;

  /// Architecture name for reports.
  virtual std::string name() const = 0;

  /// Preemption hook (paper Section 2.3 lists pre-emption among the optional
  /// protocol features).  Called by the bus at word boundaries of an active
  /// burst when `BusConfig::allow_preemption` is set: return true to abort
  /// the remaining words of `current`'s grant and re-arbitrate immediately.
  /// Default: never preempt.
  virtual bool shouldPreempt(MasterId /*current*/,
                             const RequestView& /*requests*/,
                             Cycle /*now*/) {
    return false;
  }

  /// Restores initial state (pointers, RNG seeds) for a fresh run.
  virtual void reset() {}
};

}  // namespace lb::bus
