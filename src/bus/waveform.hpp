#pragma once
// ASCII waveform rendering of bus grant traces.
//
// Turns the Bus's GrantRecord trace into per-master occupancy waveforms like
// the symbolic execution traces of the paper's Figure 5:
//
//   M1 |####............####............|
//   M2 |....########....................|
//   M3 |............####....########....|
//
// Each column is one (or `cycles_per_char`) bus cycle; '#' marks cycles the
// master owned the bus, '.' marks cycles it did not.

#include <string>
#include <vector>

#include "bus/bus.hpp"

namespace lb::bus {

struct WaveformOptions {
  Cycle start = 0;
  Cycle end = 0;                 ///< exclusive; 0 = trace end
  std::uint32_t cycles_per_char = 1;
  char busy = '#';
  char idle = '.';
  bool ruler = true;             ///< prepend a cycle-number ruler line
};

/// Renders `trace` (as recorded by Bus::setTraceEnabled) into one line per
/// master plus an optional ruler.  Lines are labelled "M1".."Mn".
std::vector<std::string> renderWaveform(const std::vector<GrantRecord>& trace,
                                        std::size_t num_masters,
                                        WaveformOptions options = {});

/// Convenience: joins renderWaveform lines with newlines.
std::string waveformToString(const std::vector<GrantRecord>& trace,
                             std::size_t num_masters,
                             WaveformOptions options = {});

/// Exports the grant trace as a Value Change Dump for GTKWave-style
/// viewers: one 1-bit gnt_M<i> wire per master plus a multi-bit `owner`
/// bus (value = master index + 1, 0 = idle).
std::string grantTraceToVcd(const std::vector<GrantRecord>& trace,
                            std::size_t num_masters);

}  // namespace lb::bus
