#include "bus/bridge.hpp"

namespace lb::bus {

Bridge::Bridge(Bus& upstream, int upstream_slave, Bus& downstream,
               MasterId downstream_master, int downstream_slave)
    : downstream_(downstream),
      downstream_master_(downstream_master),
      downstream_slave_(downstream_slave) {
  upstream.onCompletion(
      [this, upstream_slave](MasterId, const Message& message, Cycle finish) {
        if (message.slave != upstream_slave) return;
        Message forwarded = message;
        forwarded.slave = downstream_slave_;
        pending_.push_back(PendingMessage{forwarded, finish + 1});
      });
  downstream.onCompletion(
      [this](MasterId master, const Message& message, Cycle finish) {
        if (master != downstream_master_) return;
        if (remote_completion_) remote_completion_(message.tag, finish);
      });
}

void Bridge::cycle(sim::Cycle now) {
  while (!pending_.empty() && pending_.front().ready_at <= now) {
    Message message = pending_.front().message;
    pending_.pop_front();
    message.arrival = now;
    downstream_.push(downstream_master_, message);
    ++forwarded_;
  }
}

}  // namespace lb::bus
