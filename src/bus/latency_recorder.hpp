#pragma once
// Per-master latency distributions for a live bus.
//
// The Bus's built-in LatencyStats track means (the paper's reported metric);
// the recorder adds full histograms so experiments can also report tail
// behavior — where TDMA's alignment sensitivity really shows (its *mean*
// can look fine while the misaligned tail is terrible, cf. Figure 5).
//
// Attach after construction; it hooks the bus's completion callback and
// lives as long as the bus does.

#include <vector>

#include "bus/bus.hpp"
#include "stats/stats.hpp"

namespace lb::bus {

class LatencyRecorder {
public:
  /// @param bus        bus to observe (the recorder must outlive the run).
  /// @param bin_width  histogram bin width in cycles.
  /// @param num_bins   bins before overflow.
  /// @param per_word   record latency/words instead of raw message latency.
  LatencyRecorder(Bus& bus, std::uint64_t bin_width = 4,
                  std::size_t num_bins = 256, bool per_word = false);

  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  const stats::Histogram& histogram(std::size_t master) const {
    return histograms_.at(master);
  }

  /// Latency value below which fraction `q` of this master's messages fall.
  std::uint64_t quantile(std::size_t master, double q) const {
    return histograms_.at(master).quantile(q);
  }
  double mean(std::size_t master) const {
    return histograms_.at(master).mean();
  }
  std::uint64_t samples(std::size_t master) const {
    return histograms_.at(master).total();
  }

  void reset();

private:
  std::vector<stats::Histogram> histograms_;
  bool per_word_;
};

}  // namespace lb::bus
