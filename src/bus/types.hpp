#pragma once
// Shared vocabulary types for the on-chip bus model.

#include <cstdint>

#include "sim/kernel.hpp"

namespace lb::bus {

using sim::Cycle;

/// Master index on a bus; -1 means "none".
using MasterId = int;

inline constexpr MasterId kNoMaster = -1;

/// One communication transaction: a master asks to move `words` bus words to
/// (or from) a slave.  A message larger than the bus's maximum burst size is
/// transferred as several back-to-back grants, re-arbitrating in between, as
/// in the paper's protocol (Section 4.1, "maximum transfer size").
struct Message {
  std::uint32_t words = 1;   ///< payload length in bus words (>= 1)
  int slave = 0;             ///< target slave index on this bus
  Cycle arrival = 0;         ///< cycle the request was issued (set by Bus::push
                             ///< if left at the default and pushed mid-run)
  std::uint64_t tag = 0;     ///< opaque user cookie (e.g. ATM cell id)
  std::uint64_t address = 0; ///< byte address at the slave; consumed by
                             ///< address-sensitive slave models (row-buffer
                             ///< memories), ignored by flat-latency slaves
};

/// What an arbiter may observe about one master when making a decision.
struct MasterRequest {
  bool pending = false;                    ///< has a head-of-line request
  std::uint32_t head_words_remaining = 0;  ///< words left in the head message
  std::uint32_t tickets = 1;               ///< live lottery tickets (dynamic
                                           ///< arbiters read this each draw)
  std::uint64_t backlog_words = 0;         ///< total words queued (policies)
  Cycle head_arrival = 0;                  ///< arrival cycle of head message
};

/// Arbitration decision: which master drives the bus next and for at most how
/// many words.  `max_words == 0` means "up to the bus's burst limit".
struct Grant {
  MasterId master = kNoMaster;
  std::uint32_t max_words = 0;

  bool valid() const noexcept { return master != kNoMaster; }
};

}  // namespace lb::bus
