#include "bus/memory_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace lb::bus {

RowBufferMemory::RowBufferMemory(RowBufferConfig config)
    : config_(config), open_row_(config.banks, -1) {
  if (config_.banks == 0 || (config_.banks & (config_.banks - 1)) != 0)
    throw std::invalid_argument(
        "RowBufferMemory: banks must be a power of two");
  if (config_.row_bytes == 0)
    throw std::invalid_argument("RowBufferMemory: zero row size");
}

std::uint32_t RowBufferMemory::operator()(const Message& message) {
  const std::uint64_t row_index = message.address / config_.row_bytes;
  // Banks interleave at row granularity (row_index low bits pick the bank).
  const auto bank = static_cast<std::size_t>(row_index % config_.banks);
  const auto row = static_cast<std::int64_t>(row_index / config_.banks);

  if (open_row_[bank] == row) {
    ++hits_;
    return config_.hit_setup;
  }
  const bool cold = open_row_[bank] < 0;
  open_row_[bank] = row;
  if (cold) {
    ++cold_;
    return config_.cold_setup;
  }
  ++misses_;
  return config_.miss_setup;
}

double RowBufferMemory::hitRate() const {
  const std::uint64_t total = hits_ + misses_ + cold_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void RowBufferMemory::precharge() {
  std::fill(open_row_.begin(), open_row_.end(), -1);
}

}  // namespace lb::bus
