#pragma once
// Split (bus-released) transactions — the "dynamic bus splitting" feature
// the paper lists among the optional protocol extensions (Section 2.3).
//
// A blocking read against a slow slave holds the bus for
// words x (1 + wait_states) cycles.  A *split* read instead:
//
//   1. the master sends a short request (the address phase, `request_words`
//      on the bus),
//   2. the bus is RELEASED while the slave fetches for `latency` cycles,
//   3. the slave, acting as a bus master through its response port,
//      re-arbitrates and transfers the `response_words` payload.
//
// SplitSlave implements 2-3 on top of the ordinary Bus: it watches request
// completions addressed to its slave index, models a bounded-depth
// processing pipeline, and pushes response messages from its dedicated
// response master port.  Response completion fires the per-transaction
// callback so initiators can correlate via tags.
//
// The throughput payoff is quantified in bench/ablation_split_transactions:
// with a slow slave and multiple masters, splitting overlaps one master's
// fetch latency with another's transfer.

#include <cstdint>
#include <deque>
#include <functional>

#include "bus/bus.hpp"
#include "sim/kernel.hpp"

namespace lb::bus {

struct SplitSlaveConfig {
  int request_slave = 0;          ///< slave index requests are addressed to
  MasterId response_master = 0;   ///< master port the slave responds from
  int response_slave = 0;         ///< slave index response transfers target
  std::uint32_t response_words = 16;  ///< payload per response
  Cycle latency = 8;              ///< internal fetch latency per request
  std::size_t max_in_flight = 4;  ///< slave pipeline depth; further requests
                                  ///< queue inside the slave
};

class SplitSlave final : public sim::ICycleComponent {
public:
  SplitSlave(Bus& bus, SplitSlaveConfig config);

  SplitSlave(const SplitSlave&) = delete;
  SplitSlave& operator=(const SplitSlave&) = delete;

  void cycle(sim::Cycle now) override;

  /// Quiescence hint: the head fetch's completion cycle (the pipeline is
  /// in-order, so ready_at values are nondecreasing); never, while nothing
  /// is fetching — new requests arrive through a bus completion, and the bus
  /// is active on those cycles.
  sim::Cycle nextActivity(sim::Cycle now) override {
    if (fetching_.empty()) return sim::kNeverCycle;
    const Cycle ready = fetching_.front().ready_at;
    return ready <= now ? now : ready;
  }

  std::string name() const override { return "split-slave"; }

  /// Fires when a response completes: (request tag, response finish cycle).
  using ResponseCallback = std::function<void(std::uint64_t, Cycle)>;
  void onResponse(ResponseCallback callback) {
    response_callback_ = std::move(callback);
  }

  std::uint64_t requestsAccepted() const { return accepted_; }
  std::uint64_t responsesSent() const { return responses_; }
  std::size_t inFlight() const { return fetching_.size(); }
  std::size_t queuedRequests() const { return waiting_.size(); }

private:
  struct PendingFetch {
    std::uint64_t tag;
    Cycle ready_at;
  };

  Bus& bus_;
  SplitSlaveConfig config_;
  std::deque<std::uint64_t> waiting_;   // accepted but pipeline full
  std::deque<PendingFetch> fetching_;   // inside the fetch pipeline
  std::uint64_t accepted_ = 0;
  std::uint64_t responses_ = 0;
  ResponseCallback response_callback_;
};

}  // namespace lb::bus
