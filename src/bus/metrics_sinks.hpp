#pragma once
// Pre-resolved observability instruments for the bus hot path.
//
// The bus layer does not know metric names or label conventions — the obs
// consumer (src/service/metrics.hpp) resolves instruments out of a
// MetricsRegistry once, bundles the raw pointers here, and hands the bundle
// to Bus::setMetricsSinks().  Per-cycle cost with sinks attached is a null
// check plus a relaxed atomic add; with no sinks attached it is one branch.
//
// Instruments are observation-only by construction (Counter/Histogram carry
// no state the bus reads back), so attaching sinks cannot perturb simulation
// results.

#include <vector>

#include "obs/metrics.hpp"

namespace lb::bus {

struct BusMetricsSinks {
  obs::Counter* grants = nullptr;
  obs::Counter* preemptions = nullptr;
  obs::Counter* idle_cycles = nullptr;
  obs::Counter* overhead_cycles = nullptr;
  /// Cycles a head-of-line message waited between arrival and its grant.
  obs::Histogram* grant_wait_cycles = nullptr;
  /// Indexed by master id; entries may alias (label-capped "other" bucket).
  std::vector<obs::Counter*> words_by_master;
  std::vector<obs::Counter*> grants_by_master;
};

}  // namespace lb::bus
