#pragma once
// Transaction-level master interface.
//
// Section 1 of the paper points at the era's plug-and-play initiatives
// (VSIA's OCB attributes, the Open Core Protocol): cores talk to a
// *consistent interface* so that "innovations in communication
// architectures (such as LOTTERYBUS)" drop in underneath without touching
// the cores.  MasterInterface is that seam for this library: cores issue
// transactions and receive completion callbacks, never touching queue
// mechanics, arrival stamping, or tag management.
//
//   bus::MasterInterface dma(bus, /*master=*/2);
//   dma.transfer(256, sram, [](bus::Cycle finish) { ... });
//   ...
//   dma.outstanding();   // in-flight transactions
//
// The interface is clocked only through the bus it wraps; completions fire
// from the bus's completion hook.

#include <cstdint>
#include <functional>
#include <map>

#include "bus/bus.hpp"

namespace lb::bus {

class MasterInterface {
public:
  using Completion = std::function<void(Cycle finish)>;

  /// Wraps `master` on `bus`.  The interface must outlive the bus's runs;
  /// create all interfaces before simulation starts.
  MasterInterface(Bus& bus, MasterId master);

  MasterInterface(const MasterInterface&) = delete;
  MasterInterface& operator=(const MasterInterface&) = delete;

  /// Issues a transaction of `words` towards `slave` at bus time `now`.
  /// The callback (optional) fires when the last word transfers.  Returns a
  /// transaction id unique within this interface.
  std::uint64_t transfer(std::uint32_t words, int slave, Cycle now,
                         Completion completion = {});

  /// Transactions issued but not yet completed.
  std::size_t outstanding() const { return pending_.size(); }
  std::uint64_t issued() const { return next_id_; }
  std::uint64_t completed() const { return completed_; }

  Bus& bus() { return bus_; }
  MasterId master() const { return master_; }

private:
  Bus& bus_;
  MasterId master_;
  std::uint64_t next_id_ = 0;
  std::uint64_t completed_ = 0;
  std::map<std::uint64_t, Completion> pending_;
};

}  // namespace lb::bus
