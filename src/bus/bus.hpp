#pragma once
// Cycle-accurate shared-bus model.
//
// The bus moves one word per cycle from the currently granted master towards
// a slave.  Whenever the channel is free it invokes its arbiter (the pluggable
// policy under evaluation) to pick the next owner.  Matching the paper's
// protocol model:
//
//  - messages longer than `max_burst_words` are split into multiple grants
//    with re-arbitration in between (maximum transfer size, Section 4.1);
//  - arbitration is pipelined with data transfer by default, i.e. back-to-back
//    grants leave no dead cycle; `arb_overhead_cycles` (with
//    `pipelined_arbitration = false`) models a non-pipelined design;
//  - slaves may insert wait states (extra cycles per word), modelling slower
//    targets; wait-state cycles count as overhead, not data.
//
// Metrics: per-master bandwidth fractions and per-word latencies, exactly the
// two quantities the paper's figures report.

#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bus/arbiter.hpp"
#include "bus/message_sink.hpp"
#include "bus/metrics_sinks.hpp"
#include "bus/types.hpp"
#include "sim/kernel.hpp"
#include "stats/stats.hpp"

namespace lb::bus {

struct SlaveConfig {
  std::string name = "mem";
  std::uint32_t wait_states = 0;  ///< extra cycles per transferred word

  /// Optional address-sensitive setup model: called once when a grant to
  /// this slave starts, returning extra dead cycles charged before the
  /// first word (e.g. a row-buffer memory's activate latency on a row
  /// miss; see bus/memory_model.hpp).  Stateful functors are fine — grants
  /// are strictly serialized on a bus.
  std::function<std::uint32_t(const Message&)> setup_latency;

  SlaveConfig() = default;
  SlaveConfig(std::string slave_name, std::uint32_t waits = 0,
              std::function<std::uint32_t(const Message&)> setup = {})
      : name(std::move(slave_name)),
        wait_states(waits),
        setup_latency(std::move(setup)) {}
};

struct BusConfig {
  std::size_t num_masters = 4;
  std::uint32_t max_burst_words = 16;     ///< maximum words per grant
  bool pipelined_arbitration = true;      ///< overlap arbitration with data
  std::uint32_t arb_overhead_cycles = 1;  ///< dead cycles per grant when not
                                          ///< pipelined
  /// When set, the arbiter's shouldPreempt() hook is consulted at every word
  /// boundary of an active burst; a preempted burst's remaining words stay
  /// at the head of the owner's queue and re-arbitrate later (Section 2.3
  /// optional feature).
  bool allow_preemption = false;
  std::vector<SlaveConfig> slaves = {SlaveConfig{}};
};

/// A grant as it actually executed, for trace-level experiments (Fig. 5).
struct GrantRecord {
  MasterId master;
  Cycle start;
  std::uint32_t words;
};

class Bus final : public sim::ICycleComponent, public IMessageSink {
public:
  Bus(BusConfig config, std::unique_ptr<IArbiter> arbiter);

  // -- request side ---------------------------------------------------------

  /// Queues a message for `master`.  The caller stamps `message.arrival` with
  /// the cycle the request is issued; latency is measured from that point.
  /// Throws std::invalid_argument on malformed messages.
  void push(MasterId master, Message message) override;

  /// Live lottery tickets for a master (read by dynamic arbiters each draw).
  void setTickets(MasterId master, std::uint32_t tickets);
  std::uint32_t tickets(MasterId master) const;

  /// True if the master has no queued or in-flight message.
  bool idle(MasterId master) const;
  std::size_t queueDepth(MasterId master) const override;
  std::uint64_t backlogWords(MasterId master) const;

  // -- simulation -----------------------------------------------------------

  void cycle(Cycle now) override;

  /// Quiescence protocol (fast kernel mode): the bus reports the cycle at
  /// which its current stretch of mechanical cycles ends — overhead
  /// (arbitration / slave setup / wait states) draining, or an idle wait
  /// bounded by the arbiter's next grant opportunity — and fastForward()
  /// bulk-records those cycles exactly as the per-cycle stepper would.
  Cycle nextActivity(Cycle now) override;
  void fastForward(Cycle from, Cycle to) override;

  std::string name() const override { return "bus<" + arbiter_->name() + ">"; }

  // -- observation ----------------------------------------------------------

  const stats::LatencyStats& latency() const { return latency_; }
  const stats::BandwidthStats& bandwidth() const { return bandwidth_; }
  std::uint64_t grantsIssued() const { return grants_issued_; }
  std::uint64_t preemptions() const { return preemptions_; }
  MasterId currentOwner() const { return grant_master_; }
  std::size_t numMasters() const { return requests_.size(); }
  const BusConfig& config() const { return config_; }
  IArbiter& arbiter() { return *arbiter_; }
  const IArbiter& arbiter() const { return *arbiter_; }

  /// Invoked when a message fully completes: (master, message, finish cycle).
  using CompletionCallback =
      std::function<void(MasterId, const Message&, Cycle)>;
  void onCompletion(CompletionCallback callback) {
    completion_callbacks_.push_back(std::move(callback));
  }

  /// When enabled, records every grant for symbolic-trace experiments.
  void setTraceEnabled(bool enabled) { trace_enabled_ = enabled; }
  const std::vector<GrantRecord>& trace() const { return trace_; }

  /// Attaches (nullptr detaches) observability instruments; see
  /// bus/metrics_sinks.hpp.  Sinks are cumulative process-level counters:
  /// reset()/clearStats() deliberately leave them alone.
  void setMetricsSinks(std::shared_ptr<const BusMetricsSinks> sinks) {
    sinks_ = std::move(sinks);
  }

  /// Clears queues, statistics, trace, and arbiter state for a fresh run.
  void reset();

  /// Zeroes statistics only (queues and arbiter state keep running); used to
  /// discard warm-up transients.
  void clearStats();

private:
  void startGrant(const Grant& grant, Cycle now);
  void transferWord(Cycle now);
  std::uint32_t slaveWaitStates(int slave) const;

  BusConfig config_;
  std::unique_ptr<IArbiter> arbiter_;

  std::vector<std::deque<Message>> queues_;
  std::vector<MasterRequest> requests_;

  MasterId grant_master_ = kNoMaster;
  std::uint32_t grant_words_left_ = 0;
  std::uint32_t word_cycles_left_ = 0;
  std::uint32_t current_word_cost_ = 0;
  std::uint32_t overhead_left_ = 0;

  stats::LatencyStats latency_;
  stats::BandwidthStats bandwidth_;
  std::uint64_t grants_issued_ = 0;
  std::uint64_t preemptions_ = 0;

  std::vector<CompletionCallback> completion_callbacks_;
  bool trace_enabled_ = false;
  std::vector<GrantRecord> trace_;
  std::shared_ptr<const BusMetricsSinks> sinks_;
};

// -- inline hot path ---------------------------------------------------------
//
// cycle()/nextActivity()/fastForward() run once per simulated cycle (or per
// quiescence probe) per bus; defining them here lets the sealed kernel
// dispatch in src/sim/sealed.cpp inline them into its stepping loops.

inline std::uint32_t Bus::slaveWaitStates(int slave) const {
  return config_.slaves[static_cast<std::size_t>(slave)].wait_states;
}

inline void Bus::transferWord(Cycle now) {
  const auto m = static_cast<std::size_t>(grant_master_);
  MasterRequest& req = requests_[m];
  Message& head = queues_[m].front();

  bandwidth_.recordWord(m);
  if (sinks_ && m < sinks_->words_by_master.size() &&
      sinks_->words_by_master[m])
    sinks_->words_by_master[m]->inc();
  --req.head_words_remaining;
  --req.backlog_words;
  --grant_words_left_;

  if (req.head_words_remaining == 0) {
    // Message complete this cycle; latency spans arrival..now inclusive.
    const Message done = head;
    latency_.recordMessage(m, done.words, now - done.arrival + 1);
    queues_[m].pop_front();
    if (queues_[m].empty()) {
      req.pending = false;
    } else {
      req.head_words_remaining = queues_[m].front().words;
      req.head_arrival = queues_[m].front().arrival;
    }
    for (const auto& callback : completion_callbacks_)
      callback(grant_master_, done, now);
    // A grant never outlives its message: re-arbitrate for the next one.
    grant_words_left_ = 0;
  }

  if (grant_words_left_ == 0) {
    grant_master_ = kNoMaster;
  } else {
    current_word_cost_ = 1 + slaveWaitStates(queues_[m].front().slave);
    word_cycles_left_ = current_word_cost_;
  }
}

inline void Bus::cycle(Cycle now) {
  if (overhead_left_ > 0) {
    --overhead_left_;
    bandwidth_.recordOverheadCycle();
    if (sinks_ && sinks_->overhead_cycles) sinks_->overhead_cycles->inc();
    return;
  }

  if (config_.allow_preemption && grant_master_ != kNoMaster &&
      word_cycles_left_ == current_word_cost_ &&
      arbiter_->shouldPreempt(grant_master_, RequestView(requests_), now)) {
    // Abort the burst at the word boundary; the owner's remaining words stay
    // at the head of its queue and compete in the very next arbitration.
    grant_master_ = kNoMaster;
    grant_words_left_ = 0;
    ++preemptions_;
    if (sinks_ && sinks_->preemptions) sinks_->preemptions->inc();
  }

  if (grant_master_ == kNoMaster) {
    const Grant grant = arbiter_->arbitrate(RequestView(requests_), now);
    if (!grant.valid()) {
      bandwidth_.recordIdleCycle();
      if (sinks_ && sinks_->idle_cycles) sinks_->idle_cycles->inc();
      return;
    }
    startGrant(grant, now);
    if (!config_.pipelined_arbitration && config_.arb_overhead_cycles > 0) {
      // Non-pipelined design: the arbitration decision itself occupies the
      // bus before the first data word.
      overhead_left_ += config_.arb_overhead_cycles;
    }
    if (overhead_left_ > 0) {
      // Arbitration and/or slave-setup dead cycles precede the first word.
      --overhead_left_;
      bandwidth_.recordOverheadCycle();
      if (sinks_ && sinks_->overhead_cycles) sinks_->overhead_cycles->inc();
      return;
    }
  }

  // One cycle of the current word: either a wait state or the word completes.
  --word_cycles_left_;
  if (word_cycles_left_ > 0) {
    bandwidth_.recordOverheadCycle();
    if (sinks_ && sinks_->overhead_cycles) sinks_->overhead_cycles->inc();
    return;
  }
  transferWord(now);
}

inline Cycle Bus::nextActivity(Cycle now) {
  // Overhead stretch (arbitration, slave setup, wait states folded into
  // overhead_left_): cycle() only decrements and records until it drains.
  if (overhead_left_ > 0) return now + overhead_left_;

  if (grant_master_ != kNoMaster) {
    // Mid-word.  The word completes on the cycle of the last decrement; the
    // word-boundary cycle additionally consults shouldPreempt() when
    // preemption is enabled, so it must execute.
    if (config_.allow_preemption && word_cycles_left_ == current_word_cost_)
      return now;
    return now + word_cycles_left_ - 1;
  }

  // Idle: nothing happens until the arbiter could hand out a grant.  New
  // requests arrive only at executed cycles (sources are kernel components
  // too), so the kernel re-polls this hint whenever one could have pushed.
  return arbiter_->nextGrantOpportunity(RequestView(requests_), now);
}

inline void Bus::fastForward(Cycle from, Cycle to) {
  const Cycle skipped = to - from;
  if (skipped == 0) return;

  if (overhead_left_ > 0) {
    // Naive mode spends each of these cycles on --overhead_left_ plus one
    // overhead record; reproduce that in bulk.
    if (skipped > overhead_left_)
      throw std::logic_error("Bus::fastForward: jumped past overhead end");
    overhead_left_ -= static_cast<std::uint32_t>(skipped);
    bandwidth_.recordOverheadCycles(skipped);
    if (sinks_ && sinks_->overhead_cycles) sinks_->overhead_cycles->inc(skipped);
    return;
  }

  if (grant_master_ != kNoMaster) {
    // Mid-word wait states: each skipped cycle is a decrement plus an
    // overhead record; the completing decrement itself always executes.
    if (skipped >= word_cycles_left_)
      throw std::logic_error("Bus::fastForward: jumped past word completion");
    word_cycles_left_ -= static_cast<std::uint32_t>(skipped);
    bandwidth_.recordOverheadCycles(skipped);
    if (sinks_ && sinks_->overhead_cycles) sinks_->overhead_cycles->inc(skipped);
    return;
  }

  // Idle stretch: naive mode would have recorded one idle cycle and made
  // one fruitless arbitrate() call (observer-visible) per cycle.
  bandwidth_.recordIdleCycles(skipped);
  if (sinks_ && sinks_->idle_cycles) sinks_->idle_cycles->inc(skipped);
  arbiter_->recordQuiescentCycles(RequestView(requests_), from, to);
}

}  // namespace lb::bus
