#include "bus/waveform.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/vcd.hpp"

namespace lb::bus {

std::vector<std::string> renderWaveform(const std::vector<GrantRecord>& trace,
                                        std::size_t num_masters,
                                        WaveformOptions options) {
  if (num_masters == 0)
    throw std::invalid_argument("renderWaveform: no masters");
  if (options.cycles_per_char == 0)
    throw std::invalid_argument("renderWaveform: cycles_per_char == 0");

  Cycle end = options.end;
  if (end == 0) {
    for (const GrantRecord& grant : trace)
      end = std::max(end, grant.start + grant.words);
  }
  if (end <= options.start) end = options.start + 1;

  const std::size_t columns = static_cast<std::size_t>(
      (end - options.start + options.cycles_per_char - 1) /
      options.cycles_per_char);

  // Per-master busy bitmap over the window.
  std::vector<std::vector<bool>> busy(
      num_masters, std::vector<bool>(columns, false));
  for (const GrantRecord& grant : trace) {
    if (grant.master < 0 ||
        static_cast<std::size_t>(grant.master) >= num_masters)
      continue;
    // A grant of W words occupies cycles [start, start + W).  Wait states
    // are not distinguished here; the waveform shows ownership.
    for (Cycle c = grant.start; c < grant.start + grant.words; ++c) {
      if (c < options.start || c >= end) continue;
      busy[static_cast<std::size_t>(grant.master)]
          [static_cast<std::size_t>((c - options.start) /
                                    options.cycles_per_char)] = true;
    }
  }

  std::vector<std::string> lines;
  if (options.ruler) {
    // Ruler marks every 10 columns with the cycle number's last digit block.
    std::string ruler(columns, ' ');
    for (std::size_t col = 0; col < columns; col += 10) ruler[col] = '|';
    lines.push_back("     " + ruler + "  (|: every " +
                    std::to_string(10 * options.cycles_per_char) +
                    " cycles from " + std::to_string(options.start) + ")");
  }
  for (std::size_t m = 0; m < num_masters; ++m) {
    std::string line;
    line.reserve(columns);
    for (std::size_t col = 0; col < columns; ++col)
      line.push_back(busy[m][col] ? options.busy : options.idle);
    std::string label = "M" + std::to_string(m + 1);
    label.resize(4, ' ');
    lines.push_back(label + "|" + line + "|");
  }
  return lines;
}

std::string waveformToString(const std::vector<GrantRecord>& trace,
                             std::size_t num_masters,
                             WaveformOptions options) {
  std::string out;
  for (const std::string& line :
       renderWaveform(trace, num_masters, options)) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string grantTraceToVcd(const std::vector<GrantRecord>& trace,
                            std::size_t num_masters) {
  if (num_masters == 0)
    throw std::invalid_argument("grantTraceToVcd: no masters");
  unsigned owner_bits = 1;
  while ((1ull << owner_bits) < num_masters + 1) ++owner_bits;

  sim::VcdWriter vcd("bus");
  std::vector<sim::VcdWriter::SignalId> gnt(num_masters);
  for (std::size_t m = 0; m < num_masters; ++m)
    gnt[m] = vcd.addWire("gnt_M" + std::to_string(m + 1), 1);
  const auto owner = vcd.addWire("owner", owner_bits);

  // Initial idle state, then edges per grant.
  for (std::size_t m = 0; m < num_masters; ++m) vcd.change(0, gnt[m], 0);
  vcd.change(0, owner, 0);
  for (const GrantRecord& grant : trace) {
    if (grant.master < 0 ||
        static_cast<std::size_t>(grant.master) >= num_masters)
      continue;
    const auto m = static_cast<std::size_t>(grant.master);
    vcd.change(grant.start, gnt[m], 1);
    vcd.change(grant.start, owner, m + 1);
    vcd.change(grant.start + grant.words, gnt[m], 0);
    vcd.change(grant.start + grant.words, owner, 0);
  }
  return vcd.str();
}

}  // namespace lb::bus
