#pragma once
// Bounded in-memory time series over a MetricsRegistry.
//
// A TimeSeriesRing periodically snapshots a registry into a fixed-capacity
// ring of delta samples: each Snapshot carries every instrument's current
// value plus, for monotone (counter-like) series, the increase since the
// previous sample — which is what a dashboard needs to show rates without
// keeping its own state.  The ring is the entire storage: when it is full
// the oldest snapshot is dropped, so memory is bounded by
// capacity * instruments regardless of uptime.
//
// Like the rest of obs, this is dependency-free (no JSON, no service types);
// the server's `history` verb serializes Snapshots onto the wire, and tests
// drive sampleOnce() directly for deterministic coverage.  The background
// sampler is a plain std::thread woken on a condition variable so stop()
// (and the destructor) return promptly instead of waiting out the interval.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace lb::obs {

class TimeSeriesRing {
public:
  struct Options {
    /// Wall-clock spacing between background samples.  Ignored by
    /// sampleOnce(); only the start()ed sampler thread uses it.
    std::chrono::milliseconds interval{1000};
    /// Maximum retained snapshots; the oldest is evicted when full.
    std::size_t capacity = 120;
  };

  /// One instrument reading inside a Snapshot.
  struct Point {
    std::string name;
    std::string labels;
    double value = 0;
    /// Increase since the previous snapshot for monotone series (0 on the
    /// first sample, and clamped to 0 if the registry restarts a counter);
    /// always 0 for gauges, whose `value` is already the signal.
    double delta = 0;
    bool monotone = false;
  };

  struct Snapshot {
    /// Monotone sample number since construction; survives ring eviction,
    /// so consumers can detect gaps (seq jumps) after a slow scrape.
    std::uint64_t seq = 0;
    /// Milliseconds since the ring was constructed when this sample was
    /// taken (steady clock — immune to wall-clock steps).
    std::uint64_t at_ms = 0;
    std::vector<Point> points;
  };

  TimeSeriesRing(MetricsRegistry& registry, Options options);
  ~TimeSeriesRing();

  TimeSeriesRing(const TimeSeriesRing&) = delete;
  TimeSeriesRing& operator=(const TimeSeriesRing&) = delete;

  /// Launches the background sampler (idempotent).
  void start();
  /// Stops and joins the sampler; safe to call repeatedly.
  void stop();

  /// Takes one sample right now, regardless of the background thread.
  void sampleOnce();

  /// Oldest-first copy of the retained snapshots.  A nonzero `last` copies
  /// only the newest `last` snapshots — a scrape asking for the recent tail
  /// (lbtop polls with last=2) must not deep-copy the whole ring.
  std::vector<Snapshot> history(std::size_t last = 0) const;

  const Options& options() const { return options_; }

private:
  void run();

  MetricsRegistry& registry_;
  const Options options_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  std::uint64_t next_seq_ = 0;
  std::vector<Snapshot> ring_;   // ring_[ (head_ + i) % size ] is i-th oldest
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  /// value per (name + labels) key at the previous sample, for deltas.
  std::vector<std::pair<std::string, double>> previous_;
  std::thread sampler_;
};

}  // namespace lb::obs
