#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <random>

#include "obs/metrics.hpp"  // formatNumber

namespace lb::obs {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string escapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::uint64_t mintTraceId() {
  // One random_device draw per process; every id after that is a counter
  // pushed through the SplitMix64 finalizer (bijective, so ids within a
  // process never collide, and never produce 0 twice).
  static const std::uint64_t entropy = [] {
    std::random_device device;
    return (static_cast<std::uint64_t>(device()) << 32) ^ device();
  }();
  static std::atomic<std::uint64_t> sequence{0};
  for (;;) {
    const std::uint64_t id = splitmix64(
        entropy ^ sequence.fetch_add(1, std::memory_order_relaxed));
    if (id != 0) return id;
  }
}

std::string traceIdHex(std::uint64_t id) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

FlightRecorder::FlightRecorder(std::size_t span_capacity,
                               std::size_t event_capacity)
    : span_capacity_(span_capacity),
      event_capacity_(event_capacity == 0 ? 1 : event_capacity),
      epoch_(std::chrono::steady_clock::now()),
      enabled_(span_capacity > 0) {}

void FlightRecorder::setEnabled(bool on) {
  enabled_.store(on && span_capacity_ > 0, std::memory_order_relaxed);
}

double FlightRecorder::nowMicros() const {
  return toMicros(std::chrono::steady_clock::now());
}

double FlightRecorder::toMicros(
    std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double, std::micro>(tp - epoch_).count();
}

std::uint32_t FlightRecorder::currentTid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void FlightRecorder::record(Span span) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < span_capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[ring_next_] = std::move(span);
  ring_next_ = (ring_next_ + 1) % span_capacity_;
  ++dropped_spans_;
}

void FlightRecorder::recordEvent(Event event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() < event_capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  events_[events_next_] = std::move(event);
  events_next_ = (events_next_ + 1) % event_capacity_;
  ++dropped_events_;
}

void FlightRecorder::annotateTrace(std::uint64_t trace_id,
                                   const std::string& name,
                                   const std::string& note) {
  if (!enabled() || trace_id == 0) return;
  Event event;
  event.trace_id = trace_id;
  event.name = name;
  event.note = note;
  event.ts_us = nowMicros();
  event.tid = currentTid();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Span& span : ring_) {
      if (span.trace_id != trace_id) continue;
      if (!span.note.empty()) span.note += "; ";
      span.note += name + ": " + note;
    }
  }
  recordEvent(std::move(event));
}

std::size_t FlightRecorder::spanCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::size_t FlightRecorder::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t FlightRecorder::droppedSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_spans_;
}

std::uint64_t FlightRecorder::droppedEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_events_;
}

std::vector<FlightRecorder::Span> FlightRecorder::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Oldest first: once wrapped, the overwrite cursor points at the oldest.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  return out;
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i)
    out.push_back(events_[(events_next_ + i) % events_.size()]);
  return out;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  ring_next_ = 0;
  dropped_spans_ = 0;
  events_.clear();
  events_next_ = 0;
  dropped_events_ = 0;
}

void FlightRecorder::writeChromeTrace(std::ostream& out) const {
  const std::vector<Span> spans_copy = spans();
  const std::vector<Event> events_copy = events();
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dropped = dropped_spans_ + dropped_events_;
  }
  out << "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"tid\":0,\"ts\":0,\"args\":{\"name\":\"lbserve flight recorder\"}}";
  for (const Span& span : spans_copy) {
    out << ",{\"name\":\"" << escapeJson(span.name)
        << "\",\"ph\":\"X\",\"cat\":\"request\",\"pid\":1,\"tid\":" << span.tid
        << ",\"ts\":" << formatNumber(span.ts_us)
        << ",\"dur\":" << formatNumber(span.dur_us) << ",\"args\":{"
        << "\"trace\":\"" << traceIdHex(span.trace_id) << "\",\"span\":\""
        << traceIdHex(span.span_id) << "\",\"parent\":\""
        << traceIdHex(span.parent_id) << "\"";
    if (!span.note.empty())
      out << ",\"note\":\"" << escapeJson(span.note) << "\"";
    out << "}}";
  }
  for (const Event& event : events_copy) {
    out << ",{\"name\":\"" << escapeJson(event.name)
        << "\",\"ph\":\"i\",\"s\":\"p\",\"cat\":\"annotation\",\"pid\":1,"
        << "\"tid\":" << event.tid << ",\"ts\":" << formatNumber(event.ts_us)
        << ",\"args\":{\"trace\":\"" << traceIdHex(event.trace_id) << "\"";
    if (!event.note.empty())
      out << ",\"note\":\"" << escapeJson(event.note) << "\"";
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
      << dropped << "}}\n";
}

}  // namespace lb::obs
