#pragma once
// Lightweight trace-span/event recorder emitting the Chrome trace_event
// JSON format, loadable in chrome://tracing (or https://ui.perfetto.dev).
//
// The recorder is timestamp-agnostic: callers stamp events themselves, so
// the same recorder serves wall-clock service traces (microseconds from
// steady_clock) and simulated-time traces (bus cycles interpreted as
// microseconds, which is what `lbsim --trace-out` writes — one simulated
// cycle renders as one microsecond on the tracing timeline).
//
// Supported event phases:
//   X  complete event  (a span: ts + dur)
//   i  instant event
//   C  counter event   (stacked counter tracks)
//   M  metadata        (process/thread names, emitted via the setters)
//
// Thread-safe: appends take a mutex (tracing is opt-in and per-grant, not
// per-cycle, so contention is irrelevant).  writeJson() renders
// {"traceEvents":[...],"displayTimeUnit":"ms"} with stable field order.

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace lb::obs {

/// One key -> number argument shown in the trace viewer's detail pane.
using TraceArgs = std::vector<std::pair<std::string, double>>;

class TraceRecorder {
public:
  /// A span: [ts_us, ts_us + dur_us) on track (pid, tid).
  void addComplete(const std::string& name, const std::string& category,
                   std::uint32_t pid, std::uint32_t tid, double ts_us,
                   double dur_us, TraceArgs args = {});

  /// A zero-duration marker on track (pid, tid).
  void addInstant(const std::string& name, const std::string& category,
                  std::uint32_t pid, std::uint32_t tid, double ts_us,
                  TraceArgs args = {});

  /// A sample of counter track `name` (one stacked series per arg).
  void addCounter(const std::string& name, std::uint32_t pid, double ts_us,
                  TraceArgs series);

  /// Names the (pid) process / (pid, tid) thread lane in the viewer.
  void setProcessName(std::uint32_t pid, const std::string& name);
  void setThreadName(std::uint32_t pid, std::uint32_t tid,
                     const std::string& name);

  std::size_t eventCount() const;

  /// Serializes every recorded event as one JSON document.
  void writeJson(std::ostream& out) const;

private:
  struct Event {
    char phase;
    std::string name;
    std::string category;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    double ts_us = 0;
    double dur_us = 0;
    TraceArgs args;
    std::string string_arg_key;    // metadata events carry a string arg
    std::string string_arg_value;
  };

  void append(Event event);

  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

}  // namespace lb::obs
