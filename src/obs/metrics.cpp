#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace lb::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "Histogram: bucket bounds must be strictly ascending");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  std::size_t bucket = bounds_.size();  // +Inf
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++20 has atomic<double>::fetch_add, but a CAS loop keeps us portable
  // across the toolchains this repo targets.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

namespace detail {

namespace {

std::string escapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string canonicalLabels(Labels labels) {
  if (labels.empty()) return "";
  std::sort(labels.begin(), labels.end());
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += escapeLabelValue(labels[i].second);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

void validateMetricName(const std::string& name) {
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  bool ok = !name.empty() && head(name[0]);
  for (std::size_t i = 1; ok && i < name.size(); ++i) ok = tail(name[i]);
  if (!ok)
    throw std::invalid_argument("invalid metric name \"" + name + "\"");
}

}  // namespace detail

std::string formatNumber(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  if (value == std::rint(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::vector<double> cycleBuckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
}

std::vector<double> microsBuckets() {
  return {1,     10,     100,     1000,     10000,
          100000, 1000000, 5000000, 10000000};
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Entry* MetricsRegistry::findLocked(const std::string& name) {
  for (auto& [entry_name, entry] : entries_)
    if (entry_name == name) return &entry;
  return nullptr;
}

Family<Counter>& MetricsRegistry::counter(const std::string& name,
                                          const std::string& help) {
  detail::validateMetricName(name);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = findLocked(name)) {
    if (entry->kind != Kind::kCounter)
      throw std::invalid_argument("metric \"" + name +
                                  "\" already registered with another type");
    return *entry->counter;
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.counter = std::make_unique<Family<Counter>>(name, help);
  entries_.emplace_back(name, std::move(entry));
  return *entries_.back().second.counter;
}

Family<Gauge>& MetricsRegistry::gauge(const std::string& name,
                                      const std::string& help) {
  detail::validateMetricName(name);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = findLocked(name)) {
    if (entry->kind != Kind::kGauge)
      throw std::invalid_argument("metric \"" + name +
                                  "\" already registered with another type");
    return *entry->gauge;
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.gauge = std::make_unique<Family<Gauge>>(name, help);
  entries_.emplace_back(name, std::move(entry));
  return *entries_.back().second.gauge;
}

Family<Histogram>& MetricsRegistry::histogram(const std::string& name,
                                              const std::string& help,
                                              std::vector<double> bounds) {
  detail::validateMetricName(name);
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = findLocked(name)) {
    if (entry->kind != Kind::kHistogram)
      throw std::invalid_argument("metric \"" + name +
                                  "\" already registered with another type");
    return *entry->histogram;
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.histogram =
      std::make_unique<Family<Histogram>>(name, help, std::move(bounds));
  entries_.emplace_back(name, std::move(entry));
  return *entries_.back().second.histogram;
}

namespace {

// Inserts extra labels into a canonical label string, e.g.
// withExtraLabel("{a=\"1\"}", "le", "42") -> {a="1",le="42"}.  The `le`
// label intentionally goes last; Prometheus does not care about order.
std::string withExtraLabel(const std::string& labels, const std::string& key,
                           const std::string& value) {
  std::string out;
  if (labels.empty()) {
    out = "{" + key + "=\"" + value + "\"}";
  } else {
    out = labels.substr(0, labels.size() - 1) + "," + key + "=\"" + value +
          "\"}";
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::renderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        out += "# HELP " + name + " " + entry.counter->help() + "\n";
        out += "# TYPE " + name + " counter\n";
        for (const auto& [labels, counter] : entry.counter->children())
          out += name + labels + " " +
                 std::to_string(counter->value()) + "\n";
        break;
      }
      case Kind::kGauge: {
        out += "# HELP " + name + " " + entry.gauge->help() + "\n";
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [labels, gauge] : entry.gauge->children())
          out += name + labels + " " + std::to_string(gauge->value()) + "\n";
        break;
      }
      case Kind::kHistogram: {
        out += "# HELP " + name + " " + entry.histogram->help() + "\n";
        out += "# TYPE " + name + " histogram\n";
        for (const auto& [labels, histogram] :
             entry.histogram->children()) {
          std::uint64_t cumulative = 0;
          const auto& bounds = histogram->bounds();
          for (std::size_t i = 0; i < bounds.size(); ++i) {
            cumulative += histogram->bucketCount(i);
            out += name + "_bucket" +
                   withExtraLabel(labels, "le", formatNumber(bounds[i])) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += histogram->bucketCount(bounds.size());
          out += name + "_bucket" + withExtraLabel(labels, "le", "+Inf") +
                 " " + std::to_string(cumulative) + "\n";
          out += name + "_sum" + labels + " " +
                 formatNumber(histogram->sum()) + "\n";
          out += name + "_count" + labels + " " +
                 std::to_string(histogram->count()) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

std::vector<MetricPoint> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricPoint> out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        for (const auto& [labels, counter] : entry.counter->children())
          out.push_back({name, labels,
                         static_cast<double>(counter->value()), true});
        break;
      case Kind::kGauge:
        for (const auto& [labels, gauge] : entry.gauge->children())
          out.push_back({name, labels,
                         static_cast<double>(gauge->value()), false});
        break;
      case Kind::kHistogram:
        for (const auto& [labels, histogram] :
             entry.histogram->children()) {
          out.push_back({name + "_count", labels,
                         static_cast<double>(histogram->count()), true});
          out.push_back({name + "_sum", labels, histogram->sum(), true});
        }
        break;
    }
  }
  return out;
}

MetricsRegistry& registry() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never dies
  return *instance;
}

}  // namespace lb::obs
