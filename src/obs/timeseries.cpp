#include "obs/timeseries.hpp"

#include <algorithm>
#include <utility>

namespace lb::obs {

TimeSeriesRing::TimeSeriesRing(MetricsRegistry& registry, Options options)
    : registry_(registry),
      options_([&] {
        Options o = options;
        if (o.capacity == 0) o.capacity = 1;
        if (o.interval.count() <= 0) o.interval = std::chrono::milliseconds(1);
        return o;
      }()),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.resize(options_.capacity);
}

TimeSeriesRing::~TimeSeriesRing() { stop(); }

void TimeSeriesRing::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  sampler_ = std::thread([this] { run(); });
}

void TimeSeriesRing::stop() {
  std::thread joiner;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stopping_ = true;
    running_ = false;
    joiner = std::move(sampler_);
  }
  cv_.notify_all();
  if (joiner.joinable()) joiner.join();
}

void TimeSeriesRing::run() {
  for (;;) {
    sampleOnce();
    std::unique_lock<std::mutex> lock(mutex_);
    if (cv_.wait_for(lock, options_.interval, [this] { return stopping_; }))
      return;
  }
}

void TimeSeriesRing::sampleOnce() {
  // The registry walk takes the registry's own lock; keep it outside ours
  // so history() readers never wait on a scrape.
  const std::vector<MetricPoint> points = registry_.snapshot();
  const auto now = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.seq = next_seq_++;
  snap.at_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_)
          .count());
  snap.points.reserve(points.size());

  std::vector<std::pair<std::string, double>> current;
  current.reserve(points.size());
  for (const MetricPoint& point : points) {
    Point p;
    p.name = point.name;
    p.labels = point.labels;
    p.value = point.value;
    p.monotone = point.monotone;
    const std::string key = point.name + point.labels;
    if (point.monotone) {
      const auto it = std::find_if(
          previous_.begin(), previous_.end(),
          [&](const auto& prev) { return prev.first == key; });
      if (it != previous_.end() && point.value >= it->second)
        p.delta = point.value - it->second;
    }
    current.emplace_back(key, point.value);
    snap.points.push_back(std::move(p));
  }
  previous_ = std::move(current);

  const std::size_t slot = (head_ + size_) % ring_.size();
  ring_[slot] = std::move(snap);
  if (size_ < ring_.size())
    ++size_;
  else
    head_ = (head_ + 1) % ring_.size();
}

std::vector<TimeSeriesRing::Snapshot> TimeSeriesRing::history(
    std::size_t last) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count =
      (last == 0 || last > size_) ? size_ : last;
  std::vector<Snapshot> out;
  out.reserve(count);
  for (std::size_t i = size_ - count; i < size_; ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

}  // namespace lb::obs
