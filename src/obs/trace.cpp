#include "obs/trace.hpp"

#include <cstdio>

#include "obs/metrics.hpp"  // formatNumber

namespace lb::obs {

namespace {

std::string escapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void TraceRecorder::append(Event event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::addComplete(const std::string& name,
                                const std::string& category,
                                std::uint32_t pid, std::uint32_t tid,
                                double ts_us, double dur_us, TraceArgs args) {
  Event event;
  event.phase = 'X';
  event.name = name;
  event.category = category;
  event.pid = pid;
  event.tid = tid;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.args = std::move(args);
  append(std::move(event));
}

void TraceRecorder::addInstant(const std::string& name,
                               const std::string& category, std::uint32_t pid,
                               std::uint32_t tid, double ts_us,
                               TraceArgs args) {
  Event event;
  event.phase = 'i';
  event.name = name;
  event.category = category;
  event.pid = pid;
  event.tid = tid;
  event.ts_us = ts_us;
  event.args = std::move(args);
  append(std::move(event));
}

void TraceRecorder::addCounter(const std::string& name, std::uint32_t pid,
                               double ts_us, TraceArgs series) {
  Event event;
  event.phase = 'C';
  event.name = name;
  event.pid = pid;
  event.ts_us = ts_us;
  event.args = std::move(series);
  append(std::move(event));
}

void TraceRecorder::setProcessName(std::uint32_t pid,
                                   const std::string& name) {
  Event event;
  event.phase = 'M';
  event.name = "process_name";
  event.pid = pid;
  event.string_arg_key = "name";
  event.string_arg_value = name;
  append(std::move(event));
}

void TraceRecorder::setThreadName(std::uint32_t pid, std::uint32_t tid,
                                  const std::string& name) {
  Event event;
  event.phase = 'M';
  event.name = "thread_name";
  event.pid = pid;
  event.tid = tid;
  event.string_arg_key = "name";
  event.string_arg_value = name;
  append(std::move(event));
}

std::size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::writeJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << escapeJson(event.name) << "\",\"ph\":\""
        << event.phase << "\"";
    if (!event.category.empty())
      out << ",\"cat\":\"" << escapeJson(event.category) << "\"";
    out << ",\"pid\":" << event.pid << ",\"tid\":" << event.tid
        << ",\"ts\":" << formatNumber(event.ts_us);
    if (event.phase == 'X') out << ",\"dur\":" << formatNumber(event.dur_us);
    if (event.phase == 'i') out << ",\"s\":\"t\"";
    if (!event.args.empty() || !event.string_arg_key.empty()) {
      out << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"" << escapeJson(key) << "\":" << formatNumber(value);
      }
      if (!event.string_arg_key.empty()) {
        if (!first_arg) out << ",";
        out << "\"" << escapeJson(event.string_arg_key) << "\":\""
            << escapeJson(event.string_arg_value) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace lb::obs
