#pragma once
// Dependency-free metrics primitives for the observability subsystem.
//
// A MetricsRegistry holds named metric *families* (counter, gauge,
// histogram); each family holds one instrument per label set.  Instruments
// are lock-free on the hot path — a counter increment is a single relaxed
// atomic add — so code can stay instrumented permanently: when nothing
// scrapes the registry the only cost is that add.  Family/child creation
// takes a mutex, so look instruments up once and cache the reference
// (children are never deallocated while the registry lives; references
// remain valid).
//
// renderPrometheus() emits the Prometheus text exposition format
// (https://prometheus.io/docs/instrumenting/exposition_formats/): families
// in registration order, children in sorted label order, histograms with
// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.  The output is
// deterministic for a deterministic sequence of updates, which is what the
// golden exposition tests pin.
//
// Naming convention (docs/observability.md): `lb_<layer>_<quantity>_total`
// for counters, `lb_<layer>_<quantity>` for gauges and histograms; label
// keys are bare identifiers (`master`, `verb`, `arbiter`, `tier`).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace lb::obs {

/// One label set: (key, value) pairs.  Families normalize these by sorting
/// on key, so {a=1,b=2} and {b=2,a=1} name the same child.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing 64-bit counter.  Thread-safe, lock-free.
class Counter {
public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Settable signed instantaneous value (queue depths, cache sizes).
/// Thread-safe, lock-free.
class Gauge {
public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges in
/// ascending order; an implicit +Inf bucket catches the rest.  observe() is
/// a branchless-ish linear scan (bucket counts are small and fixed) plus
/// two relaxed atomic adds — safe from any thread.
class Histogram {
public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Non-cumulative count of bucket `i`; index bounds_.size() is +Inf.
  std::uint64_t bucketCount(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept;

private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + Inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

namespace detail {

/// Renders labels canonically: sorted by key, values escaped, `{k="v",...}`
/// or an empty string for the empty label set.
std::string canonicalLabels(Labels labels);

/// Throws std::invalid_argument unless `name` matches
/// [a-zA-Z_:][a-zA-Z0-9_:]*.
void validateMetricName(const std::string& name);

}  // namespace detail

/// A named metric family: one instrument of type T per label set.
template <typename T>
class Family {
public:
  Family(std::string name, std::string help, std::vector<double> bounds = {})
      : name_(std::move(name)),
        help_(std::move(help)),
        bounds_(std::move(bounds)) {}

  Family(const Family&) = delete;
  Family& operator=(const Family&) = delete;

  /// Returns the instrument for `labels`, creating it on first use.  The
  /// reference stays valid for the registry's lifetime.
  T& withLabels(Labels labels) {
    const std::string key = detail::canonicalLabels(std::move(labels));
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& child : children_)
      if (child.labels == key) return *child.instrument;
    Child child;
    child.labels = key;
    if constexpr (std::is_same_v<T, Histogram>)
      child.instrument = std::make_unique<Histogram>(bounds_);
    else
      child.instrument = std::make_unique<T>();
    T& instrument = *child.instrument;
    children_.push_back(std::move(child));
    // Keep exposition deterministic: children sorted by label string.
    for (std::size_t i = children_.size(); i-- > 1;) {
      if (children_[i - 1].labels <= children_[i].labels) break;
      std::swap(children_[i - 1], children_[i]);
    }
    return instrument;
  }

  /// The unlabeled instrument.
  T& get() { return withLabels({}); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

  /// Snapshot of (canonical label string, instrument) for rendering.
  std::vector<std::pair<std::string, const T*>> children() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, const T*>> out;
    out.reserve(children_.size());
    for (const auto& child : children_)
      out.emplace_back(child.labels, child.instrument.get());
    return out;
  }

private:
  struct Child {
    std::string labels;
    std::unique_ptr<T> instrument;  // stable address across vector growth
  };

  std::string name_;
  std::string help_;
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<Child> children_;
};

/// Default bucket edges for cycle-valued histograms (powers of two to 8192).
std::vector<double> cycleBuckets();

/// Default bucket edges for microsecond-valued histograms (1us .. 10s).
std::vector<double> microsBuckets();

/// One flattened instrument reading from MetricsRegistry::snapshot().
/// Counters and gauges contribute one point each; a histogram contributes
/// two (`<name>_count` and `<name>_sum`) — bucket vectors stay out of the
/// snapshot so a periodic sampler (obs::TimeSeriesRing) stays cheap.
struct MetricPoint {
  std::string name;
  std::string labels;  ///< canonical label string ("" or {k="v",...})
  double value = 0;
  /// True for counter-like series (monotonically non-decreasing), where a
  /// delta between two snapshots is a rate; false for gauges.
  bool monotone = false;
};

class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or returns the existing) family.  Re-registration with the
  /// same name must use the same type, or std::invalid_argument is thrown.
  Family<Counter>& counter(const std::string& name, const std::string& help);
  Family<Gauge>& gauge(const std::string& name, const std::string& help);
  /// `bounds` applies on first registration only (subsequent calls reuse
  /// the original buckets).
  Family<Histogram>& histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds);

  /// Full Prometheus text exposition of every family.
  std::string renderPrometheus() const;

  /// Numeric snapshot of every instrument, in registration order (children
  /// in sorted label order) — the structured counterpart of
  /// renderPrometheus() for samplers that want values, not text.
  std::vector<MetricPoint> snapshot() const;

private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Family<Counter>> counter;
    std::unique_ptr<Family<Gauge>> gauge;
    std::unique_ptr<Family<Histogram>> histogram;
  };
  Entry* findLocked(const std::string& name);

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Entry>> entries_;  // registration order
};

/// Process-wide default registry: the one `lbd --metrics`, lbsim, and the
/// thread-pool instruments use unless a registry is injected explicitly.
MetricsRegistry& registry();

/// Renders a finite double the way Prometheus expects: integral values
/// without a fraction ("42"), others with up to 17 significant digits.
std::string formatNumber(double value);

}  // namespace lb::obs
