#pragma once
// Request-scoped tracing primitives for the lbserve stack.
//
// A TraceContext is the (trace_id, span_id) pair minted by service::Client,
// propagated on the wire as `"trace":{"id":...,"span":...}` and threaded
// through Server -> JobEngine -> runScenario, so every request yields a
// span tree: server.request (root), server.read, server.parse,
// cache.lookup, job.queue_wait, job.execute, server.write.
//
// The FlightRecorder is the bounded, thread-safe ring buffer those spans
// (and structured instant events) land in — a black box holding the last N
// entries with a dropped-entry counter, dumpable at any time as Chrome
// trace_event JSON (chrome://tracing / https://ui.perfetto.dev) via the
// `trace` wire verb or `lbd --trace-out`.
//
// Cost contract: a disabled recorder (capacity 0, or setEnabled(false)) is
// inert — record() returns before touching the buffer, and call sites guard
// span *construction* on enabled() so the hot path performs zero
// allocations.  Recording itself takes one mutex per span; spans are
// per-request (milliseconds apart), not per-cycle, so contention is
// irrelevant.  Nothing here feeds back into simulation state: tracing on or
// off yields bit-identical ScenarioResults
// (ScenarioRunTest.InstrumentationIsInert stays the gate).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace lb::obs {

/// One hop of a distributed trace: which request (trace_id) and which span
/// within it (span_id).  trace_id == 0 means "no trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

/// Mints a process-unique, non-zero 64-bit id (thread-safe, lock-free): a
/// relaxed counter mixed through the SplitMix64 finalizer and seeded with
/// per-process entropy, so ids from concurrent clients rarely collide.
std::uint64_t mintTraceId();

/// 16 lowercase hex digits — the human-facing rendering of trace/span ids
/// in logs and trace dumps.
std::string traceIdHex(std::uint64_t id);

class FlightRecorder {
public:
  /// A completed span on the recorder's steady-clock timeline.
  struct Span {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;  ///< 0 = no parent recorded here
    std::string name;             ///< taxonomy: "server.request", "job.execute", ...
    std::string note;             ///< verb for roots, hit/miss for lookups, ...
    double ts_us = 0;             ///< start, micros since recorder epoch
    double dur_us = 0;
    std::uint32_t tid = 0;        ///< recording thread lane (currentTid())
  };

  /// A structured instant event (annotations: shed, protocol_error, ...).
  struct Event {
    std::uint64_t trace_id = 0;
    std::string name;
    std::string note;
    double ts_us = 0;
    std::uint32_t tid = 0;
  };

  /// `span_capacity` == 0 constructs a permanently disabled recorder.
  explicit FlightRecorder(std::size_t span_capacity = 4096,
                          std::size_t event_capacity = 1024);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// No-op on a zero-capacity recorder (it can never be enabled).
  void setEnabled(bool on);

  /// Micros elapsed since construction (the timeline spans are stamped in).
  double nowMicros() const;
  double toMicros(std::chrono::steady_clock::time_point tp) const;

  /// Small dense per-thread lane id for the Chrome dump (1, 2, ...).
  static std::uint32_t currentTid();

  /// Appends to the ring; the oldest entry is overwritten (and counted as
  /// dropped) when full.  No-ops when disabled.
  void record(Span span);
  void recordEvent(Event event);

  /// Marks every buffered span of `trace_id` with `note` and records an
  /// instant event, so "why was this request slow/rejected" survives in the
  /// dump (sheds, protocol errors, fault-typed errors).
  void annotateTrace(std::uint64_t trace_id, const std::string& name,
                     const std::string& note);

  std::size_t spanCapacity() const { return span_capacity_; }
  std::size_t spanCount() const;
  std::size_t eventCount() const;
  std::uint64_t droppedSpans() const;
  std::uint64_t droppedEvents() const;

  /// Buffered entries, oldest first.
  std::vector<Span> spans() const;
  std::vector<Event> events() const;

  void clear();

  /// Renders the buffer as one Chrome trace_event JSON document: spans as
  /// "X" events (args: trace/span/parent hex ids + note), events as "i"
  /// instants, plus process metadata.  Stable field order.
  void writeChromeTrace(std::ostream& out) const;

private:
  const std::size_t span_capacity_;
  const std::size_t event_capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_;

  mutable std::mutex mutex_;
  std::vector<Span> ring_;       ///< grows to span_capacity_, then wraps
  std::size_t ring_next_ = 0;    ///< overwrite cursor once full
  std::uint64_t dropped_spans_ = 0;
  std::vector<Event> events_;
  std::size_t events_next_ = 0;
  std::uint64_t dropped_events_ = 0;
};

}  // namespace lb::obs
