#pragma once
// Structured, leveled logging for the service stack (obs::Log).
//
// One line per call, machine-parseable in either of two shapes:
//
//   key=value  ts=2026-08-06T12:00:00.123Z level=warn event=server.shed
//              verb=run trace=3f9a... retry_after_ms=50
//   JSON lines {"ts":"...","level":"warn","event":"server.shed",
//              "verb":"run","trace":"3f9a...","retry_after_ms":50}
//
// Properties the daemon relies on:
//   - leveled (debug < info < warn < error < off) with a lock-free level
//     check, so a suppressed line costs one relaxed atomic load;
//   - trace-correlated: a TraceContext renders as a `trace=` field, tying
//     log lines to flight-recorder spans and wire responses;
//   - rate-limited: at most N lines per second (per logger); overflow is
//     counted and reported once per window as a `log.suppressed` line, so
//     a fault storm cannot turn the daemon into a disk-filling printer;
//   - thread-safe: one mutex around formatting + sink write.
//
// The process-global obs::log() (stderr, info, key=value) is what lbd and
// the service layer use; tests inject an ostringstream sink.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/flight_recorder.hpp"  // TraceContext, traceIdHex

namespace lb::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* logLevelName(LogLevel level);
/// Accepts "debug" | "info" | "warn" | "error" | "off"; throws
/// std::invalid_argument otherwise (naming the offending token).
LogLevel parseLogLevel(const std::string& text);

/// One key -> value pair of a structured log line.  Values keep their JSON
/// shape: strings are quoted/escaped, numbers and booleans are bare.
struct LogField {
  std::string key;
  std::string value;    ///< pre-rendered (unescaped for strings)
  bool is_string = true;

  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, double v);
  LogField(std::string k, std::uint64_t v);
  LogField(std::string k, std::int64_t v);
  LogField(std::string k, int v) : LogField(std::move(k), std::int64_t{v}) {}
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false"), is_string(false) {}
  /// Renders as trace=<16-hex-id> (the trace id; span ids live in spans).
  LogField(std::string k, const TraceContext& ctx)
      : key(std::move(k)), value(traceIdHex(ctx.trace_id)) {}
};

class Log {
public:
  Log() = default;
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  void setLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           level_.load(std::memory_order_relaxed);
  }

  void setJson(bool json);
  /// The stream lines are written to; nullptr restores the default
  /// (std::cerr).  The caller keeps ownership and must outlive the logger's
  /// use of it.
  void setSink(std::ostream* sink);
  /// 0 = unlimited.  The default (1000/s) keeps fault storms bounded.
  void setRateLimitPerSec(std::uint64_t lines);
  /// Timestamps off makes output deterministic for golden tests.
  void setTimestamps(bool on);

  void write(LogLevel level, const std::string& event,
             std::initializer_list<LogField> fields = {});

  void debug(const std::string& event,
             std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kDebug, event, fields);
  }
  void info(const std::string& event,
            std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kInfo, event, fields);
  }
  void warn(const std::string& event,
            std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kWarn, event, fields);
  }
  void error(const std::string& event,
             std::initializer_list<LogField> fields = {}) {
    write(LogLevel::kError, event, fields);
  }

  /// Lines dropped by the rate limiter so far (cumulative).
  std::uint64_t suppressed() const;

private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};

  mutable std::mutex mutex_;
  std::ostream* sink_ = nullptr;  ///< resolved lazily to &std::cerr
  bool sink_set_ = false;
  bool json_ = false;
  bool timestamps_ = true;
  std::uint64_t rate_limit_ = 1000;
  std::uint64_t window_count_ = 0;
  std::uint64_t window_suppressed_ = 0;
  std::uint64_t suppressed_total_ = 0;
  std::chrono::steady_clock::time_point window_start_{};
};

/// The process-wide logger (stderr, level info, key=value lines).
Log& log();

}  // namespace lb::obs
