#include "obs/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace lb::obs {

double histogramQuantile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& counts, double q) {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Same target-rank convention as stats::Histogram::quantile: the value
  // below which ceil(q * total) samples fall.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  const std::uint64_t rank = std::max<std::uint64_t>(target, 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size() && i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (cumulative + in_bucket >= rank) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double frac = in_bucket == 0
                              ? 1.0
                              : static_cast<double>(rank - cumulative) /
                                    static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    cumulative += in_bucket;
  }
  // Landed in +Inf: saturate at the last finite edge (the histogram cannot
  // resolve further, and an infinite estimate helps nobody).
  return bounds.empty() ? 0.0 : bounds.back();
}

double histogramQuantile(const Histogram& histogram, double q) {
  const std::vector<double>& bounds = histogram.bounds();
  std::vector<std::uint64_t> counts(bounds.size() + 1);
  for (std::size_t i = 0; i <= bounds.size(); ++i)
    counts[i] = histogram.bucketCount(i);
  return histogramQuantile(bounds, counts, q);
}

double samplePercentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace lb::obs
