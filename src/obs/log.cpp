#include "obs/log.hpp"

#include <cstdio>
#include <ctime>
#include <iostream>
#include <stdexcept>

#include "obs/metrics.hpp"  // formatNumber

namespace lb::obs {

namespace {

/// Escapes a value for both output shapes (the escape set is valid JSON and
/// unambiguous inside key=value text).
std::string escapeValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// True when a key=value rendering needs quotes around the value.
bool needsQuotes(const std::string& value) {
  if (value.empty()) return true;
  for (const char c : value)
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x21)
      return true;
  return false;
}

/// ISO-8601 UTC with milliseconds: 2026-08-06T12:00:00.123Z
std::string isoTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buffer;
}

void appendField(std::string& line, bool json, const LogField& field) {
  if (json) {
    line += ",\"";
    line += escapeValue(field.key);
    line += "\":";
    if (field.is_string) {
      line += '"';
      line += escapeValue(field.value);
      line += '"';
    } else {
      line += field.value;
    }
  } else {
    line += ' ';
    line += field.key;
    line += '=';
    if (field.is_string && needsQuotes(field.value)) {
      line += '"';
      line += escapeValue(field.value);
      line += '"';
    } else {
      line += field.value;
    }
  }
}

}  // namespace

LogField::LogField(std::string k, double v)
    : key(std::move(k)), value(formatNumber(v)), is_string(false) {}

LogField::LogField(std::string k, std::uint64_t v)
    : key(std::move(k)), value(std::to_string(v)), is_string(false) {}

LogField::LogField(std::string k, std::int64_t v)
    : key(std::move(k)), value(std::to_string(v)), is_string(false) {}

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parseLogLevel(const std::string& text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level \"" + text +
                              "\" (debug|info|warn|error|off)");
}

void Log::setJson(bool json) {
  std::lock_guard<std::mutex> lock(mutex_);
  json_ = json;
}

void Log::setSink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
  sink_set_ = sink != nullptr;
}

void Log::setRateLimitPerSec(std::uint64_t lines) {
  std::lock_guard<std::mutex> lock(mutex_);
  rate_limit_ = lines;
}

void Log::setTimestamps(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  timestamps_ = on;
}

std::uint64_t Log::suppressed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_total_;
}

void Log::write(LogLevel level, const std::string& event,
                std::initializer_list<LogField> fields) {
  if (level == LogLevel::kOff || !enabled(level)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostream& out = sink_set_ ? *sink_ : std::cerr;

  // Rate limiting: a fixed one-second window.  When the window rolls over,
  // report what the previous window dropped (once, as its own line).
  std::uint64_t report_suppressed = 0;
  if (rate_limit_ > 0) {
    const auto now = std::chrono::steady_clock::now();
    if (window_start_.time_since_epoch().count() == 0 ||
        now - window_start_ >= std::chrono::seconds(1)) {
      report_suppressed = window_suppressed_;
      window_start_ = now;
      window_count_ = 0;
      window_suppressed_ = 0;
    }
    if (window_count_ >= rate_limit_) {
      ++window_suppressed_;
      ++suppressed_total_;
      return;
    }
    ++window_count_;
  }

  const auto render = [&](LogLevel line_level, const std::string& line_event,
                          std::initializer_list<LogField> line_fields) {
    std::string line;
    line.reserve(96);
    if (json_) {
      line += '{';
      bool first = true;
      if (timestamps_) {
        line += "\"ts\":\"" + isoTimestamp() + "\"";
        first = false;
      }
      line += first ? "\"level\":\"" : ",\"level\":\"";
      line += logLevelName(line_level);
      line += "\",\"event\":\"";
      line += escapeValue(line_event);
      line += '"';
      for (const LogField& field : line_fields)
        appendField(line, true, field);
      line += '}';
    } else {
      if (timestamps_) line += "ts=" + isoTimestamp() + " ";
      line += "level=";
      line += logLevelName(line_level);
      line += " event=";
      line += line_event;
      for (const LogField& field : line_fields)
        appendField(line, false, field);
    }
    line += '\n';
    out << line;
  };

  if (report_suppressed > 0)
    render(LogLevel::kWarn, "log.suppressed",
           {LogField("dropped_lines", report_suppressed)});
  render(level, event, fields);
  out.flush();
}

Log& log() {
  static Log instance;
  return instance;
}

}  // namespace lb::obs
