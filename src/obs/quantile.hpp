#pragma once
// Shared quantile estimators for the observability stack.
//
// Two flavors, one convention:
//
//  - histogramQuantile(): bucket-interpolated quantile over fixed-bucket
//    histogram counts (obs::Histogram, or raw bounds/counts parsed from a
//    Prometheus exposition).  Consistent with stats::Histogram::quantile's
//    bin walk — the same target rank resolves to the same bucket — but
//    interpolates linearly inside the bucket instead of reporting its upper
//    edge, so estimates move smoothly as observations accumulate.  A
//    quantile landing in the +Inf bucket saturates at the last finite
//    bound, exactly as the stats histogram saturates at its overflow edge.
//
//  - samplePercentile(): exact percentile of raw samples (sort + linear
//    interpolation between order statistics), hoisted out of the server's
//    `stats` verb so the latency reservoir, the `health` verb, and lbtop
//    agree on one definition.
//
// Consumers: Server::statsJson / verbHealth (src/service/server.cpp) and
// the lbtop dashboard (examples/lbtop.cpp).

#include <cstdint>
#include <vector>

namespace lb::obs {

class Histogram;

/// Quantile `q` (clamped to [0,1]) of a fixed-bucket histogram.  `bounds`
/// are the ascending inclusive upper bucket edges; `counts` are the
/// non-cumulative per-bucket counts with one extra trailing entry for the
/// implicit +Inf bucket (counts.size() == bounds.size() + 1; a missing
/// trailing entry is treated as an empty +Inf bucket).  Returns 0 for an
/// empty histogram.
double histogramQuantile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& counts, double q);

/// histogramQuantile over a live obs::Histogram's buckets.
double histogramQuantile(const Histogram& histogram, double q);

/// Exact percentile of raw samples: sorts `values` and interpolates
/// linearly between the neighbouring order statistics.  Returns 0 for an
/// empty vector.
double samplePercentile(std::vector<double> values, double q);

}  // namespace lb::obs
