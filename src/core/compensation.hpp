#pragma once
// Compensation tickets — an extension imported from the paper's own
// inspiration, Waldspurger & Weihl's lottery scheduling [16].
//
// In CPU lottery scheduling, a client that consumes only a fraction f of
// its quantum receives a 1/f ticket boost until it next wins, preserving
// its bandwidth share while sharply improving its latency.  The bus analog:
// a master whose grants move fewer words than the full burst quantum (short
// messages) is under-served per win, so its effective tickets are inflated
// by quantum / words_last_grant for subsequent draws.
//
// Effect (bench/ablation_compensation): masters with short messages keep
// their proportional bandwidth AND see latency close to what equal-burst
// masters get, instead of being penalized for their message size.

#include <cstdint>
#include <vector>

#include "bus/arbiter.hpp"
#include "sim/rng.hpp"

namespace lb::core {

class CompensatedLotteryArbiter final : public bus::IArbiter {
public:
  /// @param tickets  base per-master holdings (>= 1 each).
  /// @param quantum  full-burst reference in words; a grant moving w <
  ///                 quantum words earns a quantum/w boost until the next
  ///                 win.  Use the bus's max_burst_words.
  CompensatedLotteryArbiter(std::vector<std::uint32_t> tickets,
                            std::uint32_t quantum = 16,
                            std::uint64_t seed = 1);

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle now) override;
  std::string name() const override { return "lottery-compensated"; }
  void reset() override;

  /// Current compensation multiplier for a master (1.0 = none).
  double compensation(std::size_t master) const {
    return compensation_.at(master);
  }

private:
  std::vector<std::uint32_t> base_;
  std::uint32_t quantum_;
  std::uint64_t seed_;
  sim::Xoshiro256ss rng_;
  std::vector<double> compensation_;
  /// Per-draw masked holdings in fixed point, structure-of-arrays (0 while
  /// not pending).  Persistent scratch: a decide() allocates nothing.
  std::vector<std::uint64_t> effective_;
};

}  // namespace lb::core
