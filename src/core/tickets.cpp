#include "core/tickets.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace lb::core {

void partialSumsInto(const std::vector<std::uint32_t>& tickets,
                     std::uint32_t request_map, std::uint64_t* out) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    if (request_map & (1u << i)) acc += tickets[i];
    out[i] = acc;
  }
}

std::vector<std::uint64_t> partialSums(
    const std::vector<std::uint32_t>& tickets, std::uint32_t request_map) {
  std::vector<std::uint64_t> sums(tickets.size(), 0);
  partialSumsInto(tickets, request_map, sums.data());
  return sums;
}

int winnerForTicket(std::span<const std::uint64_t> sums,
                    std::uint32_t request_map, std::uint64_t number) {
  // Comparator scan over the contiguous prefix-sum row.  Non-pending masters
  // repeat the previous sum, so `number < sums[i]` can only first become true
  // at a pending master; the mask test just keeps the no-comparator-fires
  // (-1) contract when number >= T.
  for (std::size_t i = 0; i < sums.size(); ++i) {
    if (!(request_map & (1u << i))) continue;
    if (number < sums[i]) return static_cast<int>(i);
  }
  return -1;
}

TicketTable buildTicketTable(const std::vector<std::uint32_t>& tickets) {
  if (tickets.empty())
    throw std::invalid_argument("buildTicketTable: no tickets");
  if (tickets.size() >= 31)
    throw std::invalid_argument("buildTicketTable: too many masters");
  TicketTable table;
  table.stride = tickets.size();
  table.rows = 1u << tickets.size();
  table.sums.resize(static_cast<std::size_t>(table.rows) * table.stride);
  for (std::uint32_t map = 0; map < table.rows; ++map)
    partialSumsInto(tickets, map,
                    table.sums.data() +
                        static_cast<std::size_t>(map) * table.stride);
  return table;
}

unsigned ceilLog2(std::uint64_t x) {
  if (x == 0) throw std::invalid_argument("ceilLog2: x == 0");
  unsigned k = 0;
  while ((1ULL << k) < x) ++k;
  return k;
}

namespace {

/// Largest-remainder apportionment of `target` among the original weights;
/// ties broken deterministically by master index.
ScaledTickets apportionToPowerOfTwo(const std::vector<std::uint32_t>& tickets,
                                    std::uint64_t total, unsigned bits) {
  const std::uint64_t target = 1ULL << bits;
  const std::size_t n = tickets.size();
  std::vector<std::uint32_t> scaled(n);
  std::vector<std::pair<double, std::size_t>> remainders(n);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = static_cast<double>(tickets[i]) *
                         static_cast<double>(target) /
                         static_cast<double>(total);
    scaled[i] = static_cast<std::uint32_t>(exact);  // floor
    if (scaled[i] == 0) scaled[i] = 1;              // never drop a master
    remainders[i] = {exact - std::floor(exact), i};
    assigned += scaled[i];
  }
  std::sort(remainders.begin(), remainders.end(), [](const auto& a,
                                                     const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::size_t cursor = 0;
  while (assigned < target) {
    scaled[remainders[cursor % n].second] += 1;
    ++assigned;
    ++cursor;
  }
  cursor = n;
  while (assigned > target) {
    // Take from the smallest remainders first, never below 1.
    const std::size_t victim = remainders[(--cursor) % n].second;
    if (scaled[victim] > 1) {
      scaled[victim] -= 1;
      --assigned;
    }
    if (cursor == 0) cursor = n;
  }

  ScaledTickets result;
  result.tickets = std::move(scaled);
  result.total_bits = bits;
  for (std::size_t i = 0; i < n; ++i) {
    const double before =
        static_cast<double>(tickets[i]) / static_cast<double>(total);
    const double after = static_cast<double>(result.tickets[i]) /
                         static_cast<double>(target);
    result.max_ratio_error =
        std::max(result.max_ratio_error, std::abs(after - before) / before);
  }
  return result;
}

}  // namespace

ScaledTickets scaleToPowerOfTwo(const std::vector<std::uint32_t>& tickets,
                                double max_ratio_error) {
  if (tickets.empty())
    throw std::invalid_argument("scaleToPowerOfTwo: no tickets");
  for (const std::uint32_t t : tickets)
    if (t == 0)
      throw std::invalid_argument("scaleToPowerOfTwo: zero-ticket master");

  const std::uint64_t total =
      std::accumulate(tickets.begin(), tickets.end(), std::uint64_t{0});
  const unsigned first_bits = ceilLog2(total);
  // Widening the total sharpens the ratios at the cost of a wider LFSR and
  // wider lookup-table entries; stop at +8 bits (a 256x finer grid).
  const unsigned last_bits = std::min(first_bits + 8, 30u);

  ScaledTickets best;
  best.max_ratio_error = std::numeric_limits<double>::infinity();
  for (unsigned bits = first_bits; bits <= last_bits; ++bits) {
    ScaledTickets candidate = apportionToPowerOfTwo(tickets, total, bits);
    if (candidate.max_ratio_error < best.max_ratio_error)
      best = std::move(candidate);
    if (best.max_ratio_error <= max_ratio_error) break;
  }
  return best;
}

}  // namespace lb::core
