#include "core/compensation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lb::core {

CompensatedLotteryArbiter::CompensatedLotteryArbiter(
    std::vector<std::uint32_t> tickets, std::uint32_t quantum,
    std::uint64_t seed)
    : base_(std::move(tickets)),
      quantum_(quantum),
      seed_(seed),
      rng_(seed),
      compensation_(base_.size(), 1.0) {
  if (base_.empty())
    throw std::invalid_argument("CompensatedLotteryArbiter: no masters");
  if (quantum == 0)
    throw std::invalid_argument("CompensatedLotteryArbiter: zero quantum");
  for (const std::uint32_t t : base_)
    if (t == 0)
      throw std::invalid_argument(
          "CompensatedLotteryArbiter: zero-ticket master");
}

bus::Grant CompensatedLotteryArbiter::decide(
 const bus::RequestView& requests, bus::Cycle /*now*/) {
  if (requests.size() != base_.size())
    throw std::logic_error("CompensatedLotteryArbiter: master count mismatch");

  // Effective holdings: base tickets scaled by the compensation factor.
  // Work in fixed point (x1024) so the draw stays an integer lottery.
  // Structure-of-arrays with persistent scratch: the masked gather writes
  // into effective_ (zero for non-pending masters — arithmetically inert in
  // the comparator scan below), so a draw performs no allocation.
  constexpr std::uint64_t kScale = 1024;
  std::uint64_t total = 0;
  effective_.assign(base_.size(), 0);
  for (std::size_t m = 0; m < base_.size(); ++m) {
    if (!requests[m].pending) continue;
    std::uint64_t e = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base_[m]) * compensation_[m] *
                     static_cast<double>(kScale)));
    if (e == 0) e = 1;
    effective_[m] = e;
    total += e;
  }
  if (total == 0) return bus::Grant{};

  std::uint64_t number = rng_.below(total);
  for (std::size_t m = 0; m < base_.size(); ++m) {
    if (number < effective_[m]) {
      // Winner: its compensation resets, then re-arms according to how much
      // of the quantum this grant will actually use.  Only a pending master
      // (non-zero effective_ entry) can reach this branch.
      const std::uint32_t words =
          std::min(requests[m].head_words_remaining, quantum_);
      compensation_[m] =
          static_cast<double>(quantum_) / static_cast<double>(words);
      return bus::Grant{static_cast<bus::MasterId>(m), 0};
    }
    number -= effective_[m];
  }
  throw std::logic_error("CompensatedLotteryArbiter: draw selected no winner");
}

void CompensatedLotteryArbiter::reset() {
  rng_ = sim::Xoshiro256ss(seed_);
  std::fill(compensation_.begin(), compensation_.end(), 1.0);
}

}  // namespace lb::core
