#include "core/ticket_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace lb::core {

PeriodicTicketSchedule::PeriodicTicketSchedule(bus::Bus& bus,
                                               std::vector<Entry> schedule)
    : bus_(bus), schedule_(std::move(schedule)) {
  for (const Entry& entry : schedule_)
    if (entry.tickets.size() != bus_.numMasters())
      throw std::invalid_argument(
          "PeriodicTicketSchedule: ticket vector arity mismatch");
  std::sort(schedule_.begin(), schedule_.end(),
            [](const Entry& a, const Entry& b) { return a.at < b.at; });
}

void PeriodicTicketSchedule::cycle(sim::Cycle now) {
  while (next_ < schedule_.size() && schedule_[next_].at <= now) {
    const Entry& entry = schedule_[next_];
    for (std::size_t m = 0; m < entry.tickets.size(); ++m)
      bus_.setTickets(static_cast<bus::MasterId>(m), entry.tickets[m]);
    ++next_;
  }
}

BacklogTicketPolicy::BacklogTicketPolicy(bus::Bus& bus,
                                         std::vector<std::uint32_t> base,
                                         double weight,
                                         std::uint32_t max_tickets,
                                         sim::Cycle period)
    : bus_(bus),
      base_(std::move(base)),
      weight_(weight),
      max_tickets_(max_tickets),
      period_(period) {
  if (base_.size() != bus_.numMasters())
    throw std::invalid_argument("BacklogTicketPolicy: base arity mismatch");
  if (period_ == 0)
    throw std::invalid_argument("BacklogTicketPolicy: period == 0");
  if (max_tickets_ == 0)
    throw std::invalid_argument("BacklogTicketPolicy: max_tickets == 0");
}

void BacklogTicketPolicy::cycle(sim::Cycle now) {
  if (now % period_ != 0) return;
  for (std::size_t m = 0; m < base_.size(); ++m) {
    const double raw =
        static_cast<double>(base_[m]) +
        weight_ * static_cast<double>(
                      bus_.backlogWords(static_cast<bus::MasterId>(m)));
    const auto tickets = static_cast<std::uint32_t>(
        std::clamp(raw, 1.0, static_cast<double>(max_tickets_)));
    bus_.setTickets(static_cast<bus::MasterId>(m), tickets);
  }
  ++updates_;
}

}  // namespace lb::core
