#pragma once
// Ticket arithmetic shared by the behavioral and structural lottery managers.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lb::core {

/// Cumulative partial sums over the *pending* masters, in master order, as
/// produced by the lottery manager's adder tree (paper Figure 10):
///   sums[i] = sum_{j<=i, pending(j)} tickets[j]
/// Non-pending masters contribute zero, so sums[i] == sums[i-1] for them.
/// sums.back() is the live ticket total T.
std::vector<std::uint64_t> partialSums(const std::vector<std::uint32_t>& tickets,
                                       std::uint32_t request_map);

/// Allocation-free form of partialSums: writes the row into `out`, which must
/// hold tickets.size() entries.
void partialSumsInto(const std::vector<std::uint32_t>& tickets,
                     std::uint32_t request_map, std::uint64_t* out);

/// Given a winning ticket number in [0, T), returns the index of the winning
/// master: the first pending master i with number < sums[i].  Returns -1 if
/// the number is out of range (no comparator fires).
int winnerForTicket(std::span<const std::uint64_t> sums,
                    std::uint32_t request_map, std::uint64_t number);

/// Structure-of-arrays lookup table of partial-sum rows (the register file of
/// paper Figure 9), flattened: row `map` occupies the contiguous slice
/// sums[map*stride, (map+1)*stride).  One allocation for all 2^N rows, rows
/// adjacent in memory, so a draw touches exactly one cache-resident stripe
/// instead of chasing a vector-of-vectors indirection.
struct TicketTable {
  std::vector<std::uint64_t> sums;
  std::size_t stride = 0;  ///< entries per row == number of masters
  std::uint32_t rows = 0;  ///< 2^N request maps; 0 == table absent

  bool empty() const noexcept { return rows == 0; }
  std::span<const std::uint64_t> row(std::uint32_t request_map) const {
    return {sums.data() + static_cast<std::size_t>(request_map) * stride,
            stride};
  }
};

/// Precomputes the full 2^N-row table.  tickets.size() must be small enough
/// that the table fits (callers gate on their own row budget).
TicketTable buildTicketTable(const std::vector<std::uint32_t>& tickets);

/// Result of power-of-two ticket scaling (paper Section 4.3: "the ticket
/// holdings of individual masters are modified such that their sum is a power
/// of two ... care must be taken to ensure that the ratios are not
/// significantly altered").
struct ScaledTickets {
  std::vector<std::uint32_t> tickets;  ///< scaled holdings, each >= 1
  unsigned total_bits = 0;             ///< total == 1u << total_bits
  double max_ratio_error = 0.0;        ///< max_i |p'_i - p_i| / p_i
};

/// Scales tickets so their sum is a power of two, choosing the smallest
/// power-of-two total >= the original sum whose largest-remainder
/// apportionment keeps every master's win probability within
/// `max_ratio_error` of the original (every master keeps at least one
/// ticket).  If no total up to 2^(ceil(log2 sum) + 8) meets the bound, the
/// best candidate is returned.  With the default 10% bound this reproduces
/// the paper's own example: 1:2:4 (T=7) scales to 5:9:18 (T=32), not to a
/// badly-rounded T=8 vector — "care must be taken to ensure that the ratios
/// ... are not significantly altered" (Section 4.3).
ScaledTickets scaleToPowerOfTwo(const std::vector<std::uint32_t>& tickets,
                                double max_ratio_error = 0.10);

/// Smallest k with 2^k >= x (x >= 1).
unsigned ceilLog2(std::uint64_t x);

}  // namespace lb::core
