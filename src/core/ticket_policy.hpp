#pragma once
// Run-time ticket management for the dynamic LOTTERYBUS variant.
//
// Section 4.4 of the paper specifies the hardware for dynamically assigned
// tickets but leaves the assignment *policy* to the components ("the number
// of tickets a component possesses varies dynamically, and is periodically
// communicated by the component to the lottery manager").  This module
// provides two concrete, testable policies:
//
//  - PeriodicTicketSchedule: replay a fixed schedule of ticket vectors
//    (models components announcing phase-dependent importance).
//  - BacklogTicketPolicy: tickets proportional to a master's queued words,
//    i.e. a self-clocking proportional-share policy that reacts to load
//    shifts (used by the ablation bench and the dynamic_tickets example).

#include <cstdint>
#include <vector>

#include "bus/bus.hpp"
#include "sim/kernel.hpp"

namespace lb::core {

/// Applies scheduled ticket vectors to a bus at fixed cycle boundaries.
class PeriodicTicketSchedule final : public sim::ICycleComponent {
public:
  struct Entry {
    sim::Cycle at;                        ///< apply when now >= at
    std::vector<std::uint32_t> tickets;   ///< one value per master
  };

  PeriodicTicketSchedule(bus::Bus& bus, std::vector<Entry> schedule);

  void cycle(sim::Cycle now) override;

  /// Quiescence hint: the next unapplied entry's boundary (never again once
  /// the schedule is exhausted).
  sim::Cycle nextActivity(sim::Cycle now) override {
    if (next_ >= schedule_.size()) return sim::kNeverCycle;
    const sim::Cycle at = schedule_[next_].at;
    return at <= now ? now : at;
  }

  std::string name() const override { return "ticket-schedule"; }

private:
  bus::Bus& bus_;
  std::vector<Entry> schedule_;
  std::size_t next_ = 0;
};

/// Every `period` cycles sets tickets[i] = clamp(base[i] + weight *
/// backlogWords(i), 1, max_tickets).  The +base keeps idle masters eligible,
/// the clamp bounds the adder-tree width the hardware must provision.
class BacklogTicketPolicy final : public sim::ICycleComponent {
public:
  BacklogTicketPolicy(bus::Bus& bus, std::vector<std::uint32_t> base,
                      double weight, std::uint32_t max_tickets,
                      sim::Cycle period);

  void cycle(sim::Cycle now) override;

  /// Quiescence hint: the next period boundary.  Updates read live backlog
  /// at exactly those cycles, so every boundary must execute even when the
  /// bus itself is quiet — the hint keeps skips within one period.
  sim::Cycle nextActivity(sim::Cycle now) override {
    const sim::Cycle phase = now % period_;
    return phase == 0 ? now : now + (period_ - phase);
  }

  std::string name() const override { return "backlog-ticket-policy"; }

  std::uint64_t updates() const { return updates_; }

private:
  bus::Bus& bus_;
  std::vector<std::uint32_t> base_;
  double weight_;
  std::uint32_t max_tickets_;
  sim::Cycle period_;
  std::uint64_t updates_ = 0;
};

}  // namespace lb::core
