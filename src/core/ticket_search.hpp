#pragma once
// Ticket assignment from bandwidth targets.
//
// The paper's headline property is that bandwidth shares track ticket
// ratios, which turns "give port 3 59% of the bus" into an integer
// apportionment problem: find small integer tickets whose normalized ratios
// approximate the designer's target shares.  Small totals matter because the
// static manager's lookup table stores partial sums of the scaled total and
// the LFSR width grows with log2(total).

#include <cstdint>
#include <vector>

namespace lb::core {

struct TicketSearchResult {
  std::vector<std::uint32_t> tickets;  ///< one per master, >= 1
  std::vector<double> achieved;        ///< tickets / total
  double max_relative_error = 0.0;     ///< max_i |achieved_i - target_i| / target_i
  std::uint64_t total = 0;
};

/// Finds the smallest-total integer ticket vector (total <= max_total) whose
/// normalized shares approximate `target_shares` within `tolerance` relative
/// error; if no total meets the tolerance, returns the best vector found.
/// Targets must be positive; they are normalized internally.
/// Throws std::invalid_argument on empty/non-positive targets or
/// max_total < number of masters.
TicketSearchResult ticketsForShares(const std::vector<double>& target_shares,
                                    std::uint64_t max_total = 1024,
                                    double tolerance = 0.01);

}  // namespace lb::core
