#include "core/ticket_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace lb::core {

namespace {

/// Largest-remainder apportionment of `total` tickets to `shares` (which
/// sum to 1), every master getting at least one.
std::vector<std::uint32_t> apportion(const std::vector<double>& shares,
                                     std::uint64_t total) {
  const std::size_t n = shares.size();
  std::vector<std::uint32_t> tickets(n, 1);
  std::vector<std::pair<double, std::size_t>> remainders(n);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = shares[i] * static_cast<double>(total);
    tickets[i] = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::floor(exact)));
    remainders[i] = {exact - std::floor(exact), i};
    assigned += tickets[i];
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t cursor = 0;
  while (assigned < total) {
    tickets[remainders[cursor % n].second] += 1;
    ++assigned;
    ++cursor;
  }
  while (assigned > total) {
    const std::size_t victim = remainders[(cursor++) % n].second;
    if (tickets[victim] > 1) {
      tickets[victim] -= 1;
      --assigned;
    }
  }
  return tickets;
}

double maxRelativeError(const std::vector<std::uint32_t>& tickets,
                        const std::vector<double>& shares,
                        std::uint64_t total) {
  double worst = 0.0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const double achieved =
        static_cast<double>(tickets[i]) / static_cast<double>(total);
    worst = std::max(worst, std::abs(achieved - shares[i]) / shares[i]);
  }
  return worst;
}

}  // namespace

TicketSearchResult ticketsForShares(const std::vector<double>& target_shares,
                                    std::uint64_t max_total,
                                    double tolerance) {
  if (target_shares.empty())
    throw std::invalid_argument("ticketsForShares: no targets");
  if (max_total < target_shares.size())
    throw std::invalid_argument("ticketsForShares: max_total < masters");
  for (const double s : target_shares)
    if (!(s > 0.0))
      throw std::invalid_argument("ticketsForShares: non-positive target");

  const double sum =
      std::accumulate(target_shares.begin(), target_shares.end(), 0.0);
  std::vector<double> shares(target_shares);
  for (double& s : shares) s /= sum;

  TicketSearchResult best;
  best.max_relative_error = std::numeric_limits<double>::infinity();

  for (std::uint64_t total = target_shares.size(); total <= max_total;
       ++total) {
    const auto tickets = apportion(shares, total);
    const std::uint64_t actual_total =
        std::accumulate(tickets.begin(), tickets.end(), std::uint64_t{0});
    const double error = maxRelativeError(tickets, shares, actual_total);
    if (error < best.max_relative_error) {
      best.tickets = tickets;
      best.total = actual_total;
      best.max_relative_error = error;
      best.achieved.assign(tickets.size(), 0.0);
      for (std::size_t i = 0; i < tickets.size(); ++i)
        best.achieved[i] = static_cast<double>(tickets[i]) /
                           static_cast<double>(actual_total);
      if (error <= tolerance) break;  // smallest total within tolerance
    }
  }
  return best;
}

}  // namespace lb::core
