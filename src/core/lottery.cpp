#include "core/lottery.hpp"

#include <stdexcept>

namespace lb::core {

namespace {
constexpr std::size_t kMaxTableMasters = 12;  // 2^12 LUT rows at most
}

LotteryArbiter::LotteryArbiter(std::vector<std::uint32_t> tickets,
                               LotteryRng rng, std::uint64_t seed)
    : original_tickets_(tickets),
      rng_kind_(rng),
      seed_(seed),
      exact_rng_(seed) {
  if (tickets.empty()) throw std::invalid_argument("LotteryArbiter: no masters");
  if (tickets.size() > 31)
    throw std::invalid_argument("LotteryArbiter: too many masters (>31)");
  for (const std::uint32_t t : tickets)
    if (t == 0)
      throw std::invalid_argument(
          "LotteryArbiter: every master needs at least one ticket");

  if (rng_kind_ == LotteryRng::kLfsr) {
    // Section 4.3: make the full ticket total a power of two so the LFSR's
    // low bits cover the all-pending range exactly.
    ScaledTickets scaled = scaleToPowerOfTwo(tickets);
    tickets_ = std::move(scaled.tickets);
    scaling_error_ = scaled.max_ratio_error;
    // Use a 16-bit register when the ticket range allows it (the paper's
    // implementation); wider totals snap to the nearest tabulated
    // maximal-length width.  This must match src/hw's lfsrWidthFor so the
    // structural model reproduces identical draw sequences.  GaloisLfsr
    // coerces a zero seed itself, so the seed passes through unmodified.
    const unsigned reg = sim::GaloisLfsr::widthAtLeast(
        std::max(scaled.total_bits + 1, 16u));
    lfsr_ = std::make_unique<sim::GaloisLfsr>(
        reg, static_cast<std::uint32_t>(seed));
  } else {
    tickets_ = std::move(tickets);
  }

  // Precompute the lookup table: one row of partial sums per request map
  // (the register file of Figure 9), flattened into a single contiguous
  // array so a draw indexes one cache-friendly stripe.  For very wide buses
  // fall back to computing rows on demand — behaviourally identical.
  if (tickets_.size() <= kMaxTableMasters) table_ = buildTicketTable(tickets_);
  scratch_.resize(tickets_.size());
}

std::span<const std::uint64_t> LotteryArbiter::tableRow(
    std::uint32_t request_map) const {
  if (table_.empty())
    throw std::logic_error("LotteryArbiter: no precomputed table");
  if (request_map >= table_.rows)
    throw std::out_of_range("LotteryArbiter: bad request map");
  return table_.row(request_map);
}

std::uint64_t LotteryArbiter::drawNumber(std::uint64_t bound) {
  if (rng_kind_ == LotteryRng::kExact) return exact_rng_.below(bound);
  // LFSR mode: draw ceil(log2(bound)) low bits; values >= bound mean no
  // comparator fires and the lottery re-draws (rejection keeps the result
  // exactly uniform).  With all masters pending, bound is the scaled 2^k
  // total and no rejection ever happens.
  const unsigned bits = std::max(1u, ceilLog2(bound));
  for (;;) {
    const std::uint64_t r = lfsr_->drawBits(std::min(bits, lfsr_->width()));
    if (r < bound) return r;
    ++rng_rejections_;
  }
}

bus::Grant LotteryArbiter::decide(const bus::RequestView& requests,
                                  bus::Cycle /*now*/) {
  if (requests.size() != tickets_.size())
    throw std::logic_error("LotteryArbiter: master count mismatch");
  const std::uint32_t map = requests.requestMap();
  if (map == 0) return bus::Grant{};

  std::span<const std::uint64_t> sums;
  if (table_.empty()) {
    // Wide-bus fallback: compute the row into the persistent scratch buffer
    // (no per-draw allocation).
    partialSumsInto(tickets_, map, scratch_.data());
    sums = scratch_;
  } else {
    sums = table_.row(map);
  }
  const std::uint64_t total = sums.back();
  const std::uint64_t number = drawNumber(total);
  ++draws_;

  const int winner = winnerForTicket(sums, map, number);
  if (winner < 0)
    throw std::logic_error("LotteryArbiter: draw selected no winner");
  return bus::Grant{winner, 0};
}

void LotteryArbiter::reset() {
  exact_rng_ = sim::Xoshiro256ss(seed_);
  if (lfsr_)
    lfsr_ = std::make_unique<sim::GaloisLfsr>(
        lfsr_->width(), static_cast<std::uint32_t>(seed_));
  rng_rejections_ = 0;
  draws_ = 0;
}

DynamicLotteryArbiter::DynamicLotteryArbiter(std::uint64_t seed)
    : seed_(seed), rng_(seed) {}

bus::Grant DynamicLotteryArbiter::decide(const bus::RequestView& requests,
                                         bus::Cycle /*now*/) {
  // Figure 10 data path: request-masked tickets -> adder tree of partial
  // sums -> random number mod T -> comparators -> priority select.
  //
  // Structure-of-arrays: gather the masked holdings into the persistent
  // effective_ array (zero for non-pending masters), then total and scan the
  // contiguous array.  A zero entry is arithmetically inert in the scan
  // (number < 0 never fires, number -= 0 is a no-op), so the zero-padded
  // scan is bit-identical to the original pending-skipping loop — including
  // for pending masters that hold zero tickets, which can never win either
  // way.
  const std::size_t n = requests.size();
  effective_.assign(n, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t t =
        requests[i].pending ? requests[i].tickets : std::uint64_t{0};
    effective_[i] = t;
    total += t;
  }
  if (total == 0) {
    // Either nothing pending, or every pending master holds zero tickets;
    // zero-ticket masters can never win a lottery.
    return bus::Grant{};
  }

  std::uint64_t number = rng_.below(total);
  ++draws_;
  for (std::size_t i = 0; i < n; ++i) {
    if (number < effective_[i])
      return bus::Grant{static_cast<bus::MasterId>(i), 0};
    number -= effective_[i];
  }
  throw std::logic_error("DynamicLotteryArbiter: draw selected no winner");
}

void DynamicLotteryArbiter::reset() {
  rng_ = sim::Xoshiro256ss(seed_);
  draws_ = 0;
}

}  // namespace lb::core
