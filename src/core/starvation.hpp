#pragma once
// Closed-form starvation analysis (paper Section 4.2):
//
//   "the probability p that a component with t tickets is able to access the
//    bus within n lottery drawings is given by 1 - (1 - t/T)^n"
//
// These helpers evaluate that expression and its inverses; property tests
// and bench/starvation_convergence check the simulator against it.

#include <cstdint>

namespace lb::core {

/// P(win at least one of n drawings | t of T tickets, all contenders pending).
double accessProbability(std::uint64_t tickets, std::uint64_t total,
                         std::uint64_t drawings);

/// Expected number of drawings until the first win: T / t (geometric mean).
double expectedDrawingsToWin(std::uint64_t tickets, std::uint64_t total);

/// Smallest n with accessProbability(t, T, n) >= confidence.
std::uint64_t drawingsForConfidence(std::uint64_t tickets, std::uint64_t total,
                                    double confidence);

/// q-quantile (q in [0,1)) of the geometric number of drawings until the
/// first win: the n such that a fraction q of contention episodes win
/// within n drawings.  Multiplying by the mean grant length bounds waiting
/// time at that percentile.
std::uint64_t waitingDrawingsQuantile(std::uint64_t tickets,
                                      std::uint64_t total, double q);

}  // namespace lb::core
