#pragma once
// The LOTTERYBUS arbiters — the paper's contribution (Section 4).
//
// On every arbitration the lottery manager draws a uniformly random winning
// ticket among the tickets of the currently requesting masters, so master i
// wins with probability
//
//     P(C_i) = r_i * t_i / sum_j r_j * t_j
//
// Two embodiments, matching Sections 4.3 and 4.4:
//
//  - LotteryArbiter: statically assigned tickets.  Ticket ranges for every
//    possible request map are precomputed into a lookup table (the register
//    file of Figure 9).  The random number source is either an exact uniform
//    generator or a hardware-faithful LFSR; for the LFSR the ticket holdings
//    are first scaled so their total is a power of two (Section 4.3).
//
//  - DynamicLotteryArbiter: tickets are run-time inputs re-read on every
//    draw (Bus::setTickets), partial sums recomputed each lottery as by the
//    bitwise-AND + adder-tree hardware of Figure 10, and the random number
//    reduced into [0, T) as by the modulo hardware.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bus/arbiter.hpp"
#include "core/tickets.hpp"
#include "sim/rng.hpp"

namespace lb::core {

/// Random-number strategy for the static lottery manager.
enum class LotteryRng {
  kExact,  ///< xoshiro256** + unbiased rejection; the behavioral reference
  kLfsr,   ///< Galois LFSR drawing low bits, tickets scaled to a 2^k total
};

/// Statically-assigned-tickets LOTTERYBUS arbiter (paper Section 4.3).
class LotteryArbiter final : public bus::IArbiter {
public:
  /// @param tickets  per-master holdings (all >= 1).
  /// @param rng      random number source (see LotteryRng).
  /// @param seed     seed for the chosen source.
  explicit LotteryArbiter(std::vector<std::uint32_t> tickets,
                          LotteryRng rng = LotteryRng::kExact,
                          std::uint64_t seed = 1);

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle now) override;
  std::string name() const override {
    return rng_kind_ == LotteryRng::kExact ? "lottery" : "lottery-lfsr";
  }
  void reset() override;

  /// Tickets actually in effect (post power-of-two scaling in LFSR mode).
  const std::vector<std::uint32_t>& effectiveTickets() const {
    return tickets_;
  }
  const std::vector<std::uint32_t>& requestedTickets() const {
    return original_tickets_;
  }
  double scalingRatioError() const { return scaling_error_; }

  /// Precomputed partial sums for a request map: a view into the flat
  /// structure-of-arrays lookup table (one contiguous row per request map).
  std::span<const std::uint64_t> tableRow(std::uint32_t request_map) const;

  /// Number of random numbers rejected because they fell outside the live
  /// ticket range (only possible in LFSR mode with a partial request map).
  std::uint64_t rngRejections() const { return rng_rejections_; }
  std::uint64_t draws() const { return draws_; }

private:
  std::uint64_t drawNumber(std::uint64_t bound);

  std::vector<std::uint32_t> original_tickets_;
  std::vector<std::uint32_t> tickets_;
  double scaling_error_ = 0.0;
  LotteryRng rng_kind_;
  std::uint64_t seed_;

  TicketTable table_;  ///< flat 2^N x N partial-sum rows (empty if too wide)
  std::vector<std::uint64_t> scratch_;  ///< on-demand row for wide buses

  sim::Xoshiro256ss exact_rng_;
  std::unique_ptr<sim::GaloisLfsr> lfsr_;
  std::uint64_t rng_rejections_ = 0;
  std::uint64_t draws_ = 0;
};

/// Dynamically-assigned-tickets LOTTERYBUS arbiter (paper Section 4.4).
/// Tickets are read from the request view on every draw; components (or a
/// TicketPolicy) update them at run time through Bus::setTickets.
class DynamicLotteryArbiter final : public bus::IArbiter {
public:
  explicit DynamicLotteryArbiter(std::uint64_t seed = 1);

  bus::Grant decide(const bus::RequestView& requests,
                    bus::Cycle now) override;
  std::string name() const override { return "lottery-dynamic"; }
  void reset() override;

  std::uint64_t draws() const { return draws_; }

private:
  std::uint64_t seed_;
  sim::Xoshiro256ss rng_;
  std::uint64_t draws_ = 0;
  /// Masked ticket gather, structure-of-arrays: effective_[i] is master i's
  /// live holdings (0 while not pending).  Persistent so a draw allocates
  /// nothing; zero entries make the comparator scan branch-free on the
  /// pending bit (number < 0 never fires, number -= 0 is a no-op).
  std::vector<std::uint64_t> effective_;
};

}  // namespace lb::core
