#include "core/starvation.hpp"

#include <cmath>
#include <stdexcept>

namespace lb::core {

namespace {
void validate(std::uint64_t tickets, std::uint64_t total) {
  if (total == 0) throw std::invalid_argument("starvation: total == 0");
  if (tickets == 0) throw std::invalid_argument("starvation: tickets == 0");
  if (tickets > total)
    throw std::invalid_argument("starvation: tickets > total");
}
}  // namespace

double accessProbability(std::uint64_t tickets, std::uint64_t total,
                         std::uint64_t drawings) {
  validate(tickets, total);
  const double miss =
      1.0 - static_cast<double>(tickets) / static_cast<double>(total);
  return 1.0 - std::pow(miss, static_cast<double>(drawings));
}

double expectedDrawingsToWin(std::uint64_t tickets, std::uint64_t total) {
  validate(tickets, total);
  return static_cast<double>(total) / static_cast<double>(tickets);
}

std::uint64_t drawingsForConfidence(std::uint64_t tickets, std::uint64_t total,
                                    double confidence) {
  validate(tickets, total);
  if (confidence <= 0.0) return 0;
  if (confidence >= 1.0)
    throw std::invalid_argument("starvation: confidence must be < 1");
  if (tickets == total) return 1;
  const double miss =
      1.0 - static_cast<double>(tickets) / static_cast<double>(total);
  const double n = std::log(1.0 - confidence) / std::log(miss);
  return static_cast<std::uint64_t>(std::ceil(n));
}

std::uint64_t waitingDrawingsQuantile(std::uint64_t tickets,
                                      std::uint64_t total, double q) {
  validate(tickets, total);
  if (q < 0.0 || q >= 1.0)
    throw std::invalid_argument("starvation: quantile must be in [0,1)");
  if (q == 0.0) return 1;  // the minimum possible: win the first drawing
  return drawingsForConfidence(tickets, total, q);
}

}  // namespace lb::core
