#pragma once
// Declarative construction of multi-channel communication architectures.
//
// Section 4.1: "The proposed architecture does not presume any fixed
// topology of communication channels.  Hence, the components may be
// interconnected by an arbitrary network of shared channels or by a flat
// system-wide bus."  SystemBuilder is the productized form of that claim:
// declare channels (each with its own arbiter — lottery, priority, TDMA,
// ... can be mixed freely), masters, slaves, and bridges by name; build();
// and the resulting System owns the buses, bridges and kernel with all the
// clocking order handled.
//
//   topology::SystemBuilder builder;
//   builder.addChannel("sys", sysConfig(), makeLottery({1,2,3,4}));
//   builder.addChannel("periph", periphConfig(), makePriority({2,1}));
//   auto cpu   = builder.addMaster("sys", "cpu0");
//   auto sram  = builder.addSlave("sys", "sram", 0);
//   auto regs  = builder.addSlave("periph", "regs", 1);
//   builder.addBridge("dma-bridge", "sys", "periph");
//   topology::System system = builder.build();
//   system.bus("sys").push(cpu.master, message);
//   system.run(100000);

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bus/bridge.hpp"
#include "bus/bus.hpp"
#include "sim/kernel.hpp"

namespace lb::topology {

/// Resolved endpoint: which bus, which master index.
struct MasterRef {
  std::string channel;
  bus::MasterId master = bus::kNoMaster;
};

/// Resolved endpoint: which bus, which slave index.
struct SlaveRef {
  std::string channel;
  int slave = -1;
};

class System {
public:
  bus::Bus& bus(const std::string& channel);
  const bus::Bus& bus(const std::string& channel) const;
  bus::Bridge& bridge(const std::string& name);

  /// Resolves declared names back to indices.
  MasterRef master(const std::string& name) const;
  SlaveRef slave(const std::string& name) const;

  sim::CycleKernel& kernel() { return kernel_; }

  /// Selects the kernel stepping strategy for this system (default: kFast).
  void setKernelMode(sim::KernelMode mode) { kernel_.setMode(mode); }

  /// Attaches an extra clocked component (traffic source, ticket policy);
  /// extra components run BEFORE the buses each cycle.
  void attach(sim::ICycleComponent& component);

  /// Runs the whole system.  Call finalize() happens automatically: the
  /// first run attaches buses and bridges in declaration order.
  void run(sim::Cycle cycles);

  std::size_t channelCount() const { return buses_.size(); }
  std::size_t bridgeCount() const { return bridges_.size(); }

private:
  friend class SystemBuilder;
  System() = default;
  void finalize();

  sim::CycleKernel kernel_;
  std::vector<std::string> channel_order_;
  std::map<std::string, std::unique_ptr<bus::Bus>> buses_;
  std::vector<std::pair<std::string, std::unique_ptr<bus::Bridge>>> bridges_;
  std::map<std::string, MasterRef> masters_;
  std::map<std::string, SlaveRef> slaves_;
  std::vector<sim::ICycleComponent*> extra_;
  bool finalized_ = false;
};

class SystemBuilder {
public:
  /// Declares a shared channel.  `config.num_masters` and `config.slaves`
  /// are OVERWRITTEN by subsequent addMaster/addSlave/addBridge calls; the
  /// other fields (burst size, pipelining, preemption) are honored.
  SystemBuilder& addChannel(const std::string& channel, bus::BusConfig config,
                            std::unique_ptr<bus::IArbiter> arbiter);

  /// Declares a named master on a channel; returns its resolved reference.
  MasterRef addMaster(const std::string& channel, const std::string& name);

  /// Declares a named slave on a channel; returns its resolved reference.
  SlaveRef addSlave(const std::string& channel, const std::string& name,
                    std::uint32_t wait_states = 0);

  /// Declares a bridge: a slave endpoint on `from` forwarding to a master
  /// endpoint on `to`, targeting `to`'s slave named `remote_slave` (which
  /// must already be declared).  Returns the bridge's slave ref on `from`
  /// (address messages there to cross the bridge).
  SlaveRef addBridge(const std::string& name, const std::string& from,
                     const std::string& to, const std::string& remote_slave);

  /// Materializes the system.  The builder is left empty.
  std::unique_ptr<System> build();

private:
  struct ChannelDecl {
    bus::BusConfig config;
    std::unique_ptr<bus::IArbiter> arbiter;
    std::vector<std::string> masters;
    std::vector<bus::SlaveConfig> slaves;
  };
  struct BridgeDecl {
    std::string name;
    std::string from;
    int from_slave;
    std::string to;
    bus::MasterId to_master;
    std::string remote_slave;
  };

  ChannelDecl& channel(const std::string& name);

  std::vector<std::string> channel_order_;
  std::map<std::string, ChannelDecl> channels_;
  std::vector<BridgeDecl> bridges_;
  std::map<std::string, MasterRef> masters_;
  std::map<std::string, SlaveRef> slaves_;
};

}  // namespace lb::topology
