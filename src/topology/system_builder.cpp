#include "topology/system_builder.hpp"

#include <stdexcept>

namespace lb::topology {

// ---------------------------------------------------------------------------
// System
// ---------------------------------------------------------------------------

bus::Bus& System::bus(const std::string& channel) {
  auto it = buses_.find(channel);
  if (it == buses_.end())
    throw std::out_of_range("System: unknown channel " + channel);
  return *it->second;
}

const bus::Bus& System::bus(const std::string& channel) const {
  auto it = buses_.find(channel);
  if (it == buses_.end())
    throw std::out_of_range("System: unknown channel " + channel);
  return *it->second;
}

bus::Bridge& System::bridge(const std::string& name) {
  for (auto& [bridge_name, bridge] : bridges_)
    if (bridge_name == name) return *bridge;
  throw std::out_of_range("System: unknown bridge " + name);
}

MasterRef System::master(const std::string& name) const {
  auto it = masters_.find(name);
  if (it == masters_.end())
    throw std::out_of_range("System: unknown master " + name);
  return it->second;
}

SlaveRef System::slave(const std::string& name) const {
  auto it = slaves_.find(name);
  if (it == slaves_.end())
    throw std::out_of_range("System: unknown slave " + name);
  return it->second;
}

void System::attach(sim::ICycleComponent& component) {
  if (finalized_)
    throw std::logic_error(
        "System: attach extra components before the first run()");
  extra_.push_back(&component);
}

void System::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Clocking order: injectors first, then channels in declaration order,
  // then bridges (a bridge hop therefore costs exactly one cycle).
  for (sim::ICycleComponent* component : extra_) kernel_.attach(*component);
  for (const std::string& channel : channel_order_)
    kernel_.attach(*buses_.at(channel));
  for (auto& [name, bridge] : bridges_) kernel_.attach(*bridge);
}

void System::run(sim::Cycle cycles) {
  finalize();
  kernel_.run(cycles);
}

// ---------------------------------------------------------------------------
// SystemBuilder
// ---------------------------------------------------------------------------

SystemBuilder::ChannelDecl& SystemBuilder::channel(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end())
    throw std::out_of_range("SystemBuilder: unknown channel " + name);
  return it->second;
}

SystemBuilder& SystemBuilder::addChannel(
    const std::string& name, bus::BusConfig config,
    std::unique_ptr<bus::IArbiter> arbiter) {
  if (channels_.count(name))
    throw std::invalid_argument("SystemBuilder: duplicate channel " + name);
  if (!arbiter)
    throw std::invalid_argument("SystemBuilder: null arbiter for " + name);
  ChannelDecl decl;
  decl.config = std::move(config);
  decl.arbiter = std::move(arbiter);
  channels_.emplace(name, std::move(decl));
  channel_order_.push_back(name);
  return *this;
}

MasterRef SystemBuilder::addMaster(const std::string& channel_name,
                                   const std::string& name) {
  if (masters_.count(name))
    throw std::invalid_argument("SystemBuilder: duplicate master " + name);
  ChannelDecl& decl = channel(channel_name);
  const MasterRef ref{channel_name,
                      static_cast<bus::MasterId>(decl.masters.size())};
  decl.masters.push_back(name);
  masters_.emplace(name, ref);
  return ref;
}

SlaveRef SystemBuilder::addSlave(const std::string& channel_name,
                                 const std::string& name,
                                 std::uint32_t wait_states) {
  if (slaves_.count(name))
    throw std::invalid_argument("SystemBuilder: duplicate slave " + name);
  ChannelDecl& decl = channel(channel_name);
  const SlaveRef ref{channel_name, static_cast<int>(decl.slaves.size())};
  decl.slaves.push_back(bus::SlaveConfig{name, wait_states});
  slaves_.emplace(name, ref);
  return ref;
}

SlaveRef SystemBuilder::addBridge(const std::string& name,
                                  const std::string& from,
                                  const std::string& to,
                                  const std::string& remote_slave) {
  // The bridge occupies a slave slot on `from` and a master slot on `to`.
  const SlaveRef from_ref = addSlave(from, name + ".in", 0);
  ChannelDecl& to_decl = channel(to);
  const auto to_master = static_cast<bus::MasterId>(to_decl.masters.size());
  to_decl.masters.push_back(name + ".out");

  BridgeDecl decl;
  decl.name = name;
  decl.from = from;
  decl.from_slave = from_ref.slave;
  decl.to = to;
  decl.to_master = to_master;
  decl.remote_slave = remote_slave;
  bridges_.push_back(std::move(decl));
  return from_ref;
}

std::unique_ptr<System> SystemBuilder::build() {
  auto system = std::unique_ptr<System>(new System());
  system->channel_order_ = channel_order_;
  system->masters_ = std::move(masters_);
  system->slaves_ = std::move(slaves_);

  for (const std::string& name : channel_order_) {
    ChannelDecl& decl = channels_.at(name);
    if (decl.masters.empty())
      throw std::invalid_argument("SystemBuilder: channel " + name +
                                  " has no masters (add one or bridge into "
                                  "it)");
    if (decl.slaves.empty())
      throw std::invalid_argument("SystemBuilder: channel " + name +
                                  " has no slaves");
    bus::BusConfig config = decl.config;
    config.num_masters = decl.masters.size();
    config.slaves = decl.slaves;
    system->buses_.emplace(
        name, std::make_unique<bus::Bus>(std::move(config),
                                         std::move(decl.arbiter)));
  }

  for (const BridgeDecl& decl : bridges_) {
    const SlaveRef remote = system->slave(decl.remote_slave);
    if (remote.channel != decl.to)
      throw std::invalid_argument("SystemBuilder: bridge " + decl.name +
                                  " targets slave " + decl.remote_slave +
                                  " which is not on channel " + decl.to);
    system->bridges_.emplace_back(
        decl.name,
        std::make_unique<bus::Bridge>(system->bus(decl.from), decl.from_slave,
                                      system->bus(decl.to), decl.to_master,
                                      remote.slave));
  }

  channel_order_.clear();
  channels_.clear();
  bridges_.clear();
  return system;
}

}  // namespace lb::topology
