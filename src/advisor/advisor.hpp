#pragma once
// Communication-architecture advisor: from QoS goals to a validated
// (architecture, parameters) recommendation.
//
// The paper's closing argument is that LOTTERYBUS uniquely satisfies both
// bandwidth reservations and latency goals; its authors' follow-up work
// ("Communication Architecture Tuners") automated the selection.  This
// module provides that workflow: declare per-master goals, give a traffic
// characterization, and the advisor
//
//   1. derives candidate parameterizations (lottery tickets via
//      ticketsForShares, deficit-WRR weights, TDMA slot blocks, a static
//      priority order sorted by latency-criticality),
//   2. simulates each candidate on the supplied traffic, and
//   3. returns every candidate's scorecard plus the best satisfying one
//      (preferring, among satisfying candidates, the one with the lowest
//      worst-case goal margin).

#include <memory>
#include <string>
#include <vector>

#include "bus/bus.hpp"
#include "traffic/testbed.hpp"

namespace lb::advisor {

/// Per-master requirements; 0 means "don't care".
struct QosGoals {
  std::vector<double> min_bandwidth_share;  ///< fraction of total bus cycles
  std::vector<double> max_cycles_per_word;  ///< mean latency bound
};

struct CandidateReport {
  std::string architecture;              ///< e.g. "lottery", "tdma-2level"
  std::vector<std::uint32_t> parameters; ///< tickets / weights / slots / prios
  bool satisfied = false;
  std::vector<std::string> violations;   ///< human-readable misses
  double worst_margin = 0.0;             ///< most negative = worst violation;
                                         ///< higher = more headroom
  traffic::TestbedResult measured;
};

struct Recommendation {
  bool found = false;
  CandidateReport best;                   ///< valid when found
  std::vector<CandidateReport> candidates;  ///< all evaluated, in test order
};

/// Evaluates the candidate space against `goals` under `traffic` and
/// returns the scorecards.  Throws std::invalid_argument on malformed goals
/// (arity mismatch, negative bounds, infeasible total bandwidth > 100%).
Recommendation advise(const QosGoals& goals,
                      const std::vector<traffic::TrafficParams>& traffic,
                      bus::BusConfig config, sim::Cycle cycles = 100000,
                      std::uint64_t seed = 1);

}  // namespace lb::advisor
