#pragma once
// Analytical queueing model for the mesh NoC (src/noc), in the spirit of the
// WRR-router NoC latency models of Mandal et al. (analytical performance
// models for NoCs with routers that carry deterministic per-packet service):
// the mesh is decomposed into a feed-forward network of queueing stations —
// one per physical link (NI injection links, router output links including
// ejection) — each a discrete-time GI/G/1 queue with per-packet service
// equal to the packet's flit count.
//
// Given per-source injection rates, packet sizes, and inter-injection
// burstiness (squared coefficient of variation), the model predicts:
//   - per-link utilization (and whether any link saturates),
//   - per-hop mean waiting time at every station,
//   - per-flow and per-source mean end-to-end packet latency.
//
// Method (documented in docs/noc.md):
//   * Flow rates come from the traffic pattern; XY routing makes every flow's
//     station path deterministic and the station graph acyclic, so stations
//     are evaluated in one topological pass.
//   * Waiting time uses a discrete-time Kingman form
//         W = rho * ((ca2 + cs2) * ES - (1 - rho)) / (2 * (1 - rho)),
//     clamped at 0.  For a single Bernoulli-injected flow with fixed S this
//     is the exact Geo/D/1 mean wait rho*(S-1)/(2*(1-rho)); for continuous
//     arrivals it recovers Kingman/M-D-1.
//   * Between stations, burstiness propagates QNA-style: departures have
//     cd2 = rho^2*cs2 + (1-rho^2)*ca2, a flow splitting off with probability
//     p carries p*cd2 + (1-p), and merging flows average ca2 rate-weighted.
//   * Zero-load latency is the simulator's closed form
//     S*(h+2) + (h+1)*(router_delay-1) for an S-flit packet over h hops.
//
// The model's accuracy envelope (sub-saturation loads, fixed packet sizes,
// renewal-ish sources) is pinned by tests/noc_analytical_test.cpp, which
// holds simulation within a documented tolerance of these predictions
// across a load sweep.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "noc/types.hpp"

namespace lb::advisor {

/// One (source, destination) traffic flow.
struct NocFlow {
  noc::NodeId source = 0;
  noc::NodeId dest = 0;
  double packet_rate = 0.0;      ///< packets per cycle
  double flits = 1.0;            ///< packet size (flits == words)
  double interarrival_cv2 = 1.0; ///< cv^2 of the flow's inter-injection time
};

/// Per-station (link) report.
struct NocStationReport {
  noc::NodeId router = 0;  ///< owning router; -1 for an injection link
  int port = 0;            ///< output port (noc::Port); node id for injection
  double rate = 0.0;       ///< packets per cycle through the link
  double utilization = 0.0;
  double wait = 0.0;       ///< mean queueing wait (cycles) at this station
};

struct NocPrediction {
  /// True when any station's utilization reaches 1: the open-network model
  /// has no steady state and latency predictions are meaningless.
  bool saturated = false;
  double max_utilization = 0.0;
  /// Packet-rate-weighted mean end-to-end latency over all flows (cycles).
  double mean_latency = 0.0;
  /// Mean latency of the flows injected by each source (0 if it has none).
  std::vector<double> per_source_latency;
  /// Every station with nonzero traffic.
  std::vector<NocStationReport> stations;
};

/// Builds and evaluates the analytical model for one mesh configuration.
class NocAnalyticalModel {
public:
  NocAnalyticalModel(std::size_t width, std::size_t height,
                     std::uint32_t router_delay = 1);

  /// Adds one flow (rates accumulate if called repeatedly for one pair).
  void addFlow(const NocFlow& flow);

  /// Expands a per-source load into flows along the given traffic pattern:
  /// every source injects `packets_per_cycle` of `flits`-flit packets with
  /// the given burstiness; destinations follow the pattern (kUniform becomes
  /// rate/(N-1) to every other node; kSlave resolves `slave` like the NI).
  void addPatternLoad(noc::Pattern pattern, double packets_per_cycle,
                      double flits, double interarrival_cv2, int slave = 0);

  NocPrediction evaluate() const;

private:
  std::size_t width_;
  std::size_t height_;
  std::uint32_t router_delay_;
  std::vector<NocFlow> flows_;
};

}  // namespace lb::advisor
