#include "advisor/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "arbiters/static_priority.hpp"
#include "arbiters/tdma.hpp"
#include "arbiters/weighted_round_robin.hpp"
#include "core/lottery.hpp"
#include "core/ticket_search.hpp"

namespace lb::advisor {

namespace {

/// Weight vector derived from the goals.  Bandwidth floors are provisioned
/// with ~15% headroom (a reservation met exactly on average is missed half
/// the time by sampling alone).  A latency bound implies a share floor too:
/// under weighted arbitration a continuously-requesting master averages
/// ~1/share cycles per word, so max_cpw = L needs share >= 1/L — also
/// provisioned with 20% headroom.  The remainder splits equally across
/// fully-unconstrained masters; the result sums to <= 1.
std::vector<double> goalShares(const QosGoals& goals, std::size_t n) {
  constexpr double kBandwidthHeadroom = 1.15;
  constexpr double kLatencyHeadroom = 1.20;
  std::vector<double> shares(n, 0.0);
  double reserved = 0.0;
  std::size_t unconstrained = 0;
  for (std::size_t m = 0; m < n; ++m) {
    double need = 0.0;
    if (goals.min_bandwidth_share[m] > 0.0)
      need = goals.min_bandwidth_share[m] * kBandwidthHeadroom;
    if (goals.max_cycles_per_word[m] > 0.0)
      need = std::max(
          need, std::min(0.9, kLatencyHeadroom /
                                  goals.max_cycles_per_word[m]));
    shares[m] = need;
    reserved += need;
    if (need <= 0.0) ++unconstrained;
  }
  if (reserved > 0.95) {
    // Over-committed even before best-effort traffic: scale the headroom
    // back proportionally and let the simulation verdicts tell the story.
    for (double& s : shares) s *= 0.95 / reserved;
    reserved = 0.95;
  }
  const double remainder = 1.0 - reserved;
  for (std::size_t m = 0; m < n; ++m)
    if (shares[m] <= 0.0)
      shares[m] = std::max(
          0.01, remainder / static_cast<double>(
                                std::max<std::size_t>(1, unconstrained)));
  return shares;
}

CandidateReport evaluate(const std::string& architecture,
                         std::vector<std::uint32_t> parameters,
                         std::unique_ptr<bus::IArbiter> arbiter,
                         const QosGoals& goals,
                         const std::vector<traffic::TrafficParams>& traffic,
                         const bus::BusConfig& config, sim::Cycle cycles) {
  CandidateReport report;
  report.architecture = architecture;
  report.parameters = std::move(parameters);
  report.measured =
      traffic::runTestbed(config, std::move(arbiter), traffic, cycles);

  report.satisfied = true;
  report.worst_margin = 1e300;
  const std::size_t n = config.num_masters;
  for (std::size_t m = 0; m < n; ++m) {
    if (goals.min_bandwidth_share[m] > 0.0) {
      const double have = report.measured.bandwidth_fraction[m];
      const double want = goals.min_bandwidth_share[m];
      const double margin = (have - want) / want;
      report.worst_margin = std::min(report.worst_margin, margin);
      if (have + 1e-9 < want) {
        report.satisfied = false;
        report.violations.push_back(
            "master " + std::to_string(m) + " bandwidth " +
            std::to_string(have) + " < goal " + std::to_string(want));
      }
    }
    if (goals.max_cycles_per_word[m] > 0.0) {
      const double have = report.measured.cycles_per_word[m];
      const double bound = goals.max_cycles_per_word[m];
      const double margin = (bound - have) / bound;
      report.worst_margin = std::min(report.worst_margin, margin);
      if (have > bound + 1e-9) {
        report.satisfied = false;
        report.violations.push_back(
            "master " + std::to_string(m) + " cycles/word " +
            std::to_string(have) + " > goal " + std::to_string(bound));
      }
    }
  }
  if (report.worst_margin == 1e300) report.worst_margin = 0.0;
  return report;
}

}  // namespace

Recommendation advise(const QosGoals& goals,
                      const std::vector<traffic::TrafficParams>& traffic,
                      bus::BusConfig config, sim::Cycle cycles,
                      std::uint64_t seed) {
  const std::size_t n = config.num_masters;
  if (goals.min_bandwidth_share.size() != n ||
      goals.max_cycles_per_word.size() != n)
    throw std::invalid_argument("advise: goal arity != num_masters");
  if (traffic.size() != n)
    throw std::invalid_argument("advise: traffic arity != num_masters");
  double reserved = 0.0;
  for (std::size_t m = 0; m < n; ++m) {
    if (goals.min_bandwidth_share[m] < 0.0 ||
        goals.min_bandwidth_share[m] > 1.0 ||
        goals.max_cycles_per_word[m] < 0.0)
      throw std::invalid_argument("advise: malformed goal values");
    reserved += goals.min_bandwidth_share[m];
  }
  if (reserved > 1.0)
    throw std::invalid_argument(
        "advise: bandwidth reservations exceed 100% of the bus");

  const std::vector<double> shares = goalShares(goals, n);
  const core::TicketSearchResult tickets =
      core::ticketsForShares(shares, 256, 0.02);

  Recommendation recommendation;

  // Candidate 1: LOTTERYBUS with tickets from the goal shares.
  recommendation.candidates.push_back(evaluate(
      "lottery", tickets.tickets,
      std::make_unique<core::LotteryArbiter>(tickets.tickets,
                                             core::LotteryRng::kExact, seed),
      goals, traffic, config, cycles));

  // Candidate 2: deficit-weighted round-robin with the same weights.
  recommendation.candidates.push_back(evaluate(
      "weighted-rr", tickets.tickets,
      std::make_unique<arb::WeightedRoundRobinArbiter>(
          tickets.tickets, config.max_burst_words),
      goals, traffic, config, cycles));

  // Candidate 3: two-level TDMA, slot blocks of one burst per weight unit.
  {
    std::vector<unsigned> slots;
    for (const std::uint32_t t : tickets.tickets)
      slots.push_back(t * config.max_burst_words);
    recommendation.candidates.push_back(evaluate(
        "tdma-2level", tickets.tickets,
        std::make_unique<arb::TdmaArbiter>(
            arb::TdmaArbiter::contiguousWheel(slots), n),
        goals, traffic, config, cycles));
  }

  // Candidate 4: static priority ordered by latency-criticality (tightest
  // cycles/word bound = highest priority; bandwidth-only masters lowest).
  {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double la = goals.max_cycles_per_word[a] > 0
                            ? goals.max_cycles_per_word[a]
                            : 1e18;
      const double lb = goals.max_cycles_per_word[b] > 0
                            ? goals.max_cycles_per_word[b]
                            : 1e18;
      return la > lb;  // looser bound -> earlier -> lower priority
    });
    std::vector<unsigned> priorities(n);
    std::vector<std::uint32_t> as_params(n);
    for (std::size_t rank = 0; rank < n; ++rank) {
      priorities[order[rank]] = static_cast<unsigned>(rank + 1);
      as_params[order[rank]] = static_cast<std::uint32_t>(rank + 1);
    }
    recommendation.candidates.push_back(evaluate(
        "static-priority", as_params,
        std::make_unique<arb::StaticPriorityArbiter>(priorities), goals,
        traffic, config, cycles));
  }

  // Pick the satisfying candidate with the most headroom.
  const CandidateReport* best = nullptr;
  for (const CandidateReport& candidate : recommendation.candidates)
    if (candidate.satisfied &&
        (best == nullptr || candidate.worst_margin > best->worst_margin))
      best = &candidate;
  if (best != nullptr) {
    recommendation.found = true;
    recommendation.best = *best;
  }
  return recommendation;
}

}  // namespace lb::advisor
