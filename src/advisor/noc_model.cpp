#include "advisor/noc_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lb::advisor {

namespace {

/// Numerical floor for (1 - rho) so saturated inputs stay finite; the
/// `saturated` flag, not these values, is the signal in that regime.
constexpr double kMinSlack = 1e-9;

/// Tandem-correlation correction on interior (non-injection) stations.
/// Arrivals there are departures of deterministic-service queues, whose
/// negative interval correlations make them smoother than the renewal
/// stream QNA assumes, so the renewal wait over-predicts; this factor was
/// calibrated against the simulator on 4x4/6x6 uniform WRR load sweeps
/// (docs/noc.md) and then frozen.
#ifndef LB_NOC_MODEL_TANDEM_FACTOR
#define LB_NOC_MODEL_TANDEM_FACTOR 0.85
#endif
constexpr double kTandemFactor = LB_NOC_MODEL_TANDEM_FACTOR;

/// XY next-hop port at router (x, y) toward (dx, dy).
int xyPort(int x, int y, int dx, int dy) {
  if (dx > x) return noc::kEast;
  if (dx < x) return noc::kWest;
  if (dy > y) return noc::kSouth;
  if (dy < y) return noc::kNorth;
  return noc::kLocal;
}

}  // namespace

NocAnalyticalModel::NocAnalyticalModel(std::size_t width, std::size_t height,
                                       std::uint32_t router_delay)
    : width_(width), height_(height), router_delay_(router_delay) {
  if (width == 0 || height == 0 || width * height < 2)
    throw std::invalid_argument("NocAnalyticalModel: mesh needs >= 2 nodes");
  if (router_delay == 0)
    throw std::invalid_argument("NocAnalyticalModel: router_delay must be >= 1");
}

void NocAnalyticalModel::addFlow(const NocFlow& flow) {
  const auto nodes = static_cast<noc::NodeId>(width_ * height_);
  if (flow.source < 0 || flow.source >= nodes || flow.dest < 0 ||
      flow.dest >= nodes || flow.dest == flow.source)
    throw std::invalid_argument("NocAnalyticalModel: bad flow endpoints");
  if (flow.packet_rate < 0 || flow.flits < 1 || flow.interarrival_cv2 < 0)
    throw std::invalid_argument("NocAnalyticalModel: bad flow parameters");
  if (flow.packet_rate > 0) flows_.push_back(flow);
}

void NocAnalyticalModel::addPatternLoad(noc::Pattern pattern,
                                        double packets_per_cycle, double flits,
                                        double interarrival_cv2, int slave) {
  const auto nodes = static_cast<noc::NodeId>(width_ * height_);
  for (noc::NodeId s = 0; s < nodes; ++s) {
    if (pattern == noc::Pattern::kUniform) {
      // The simulator draws destinations iid-uniform over the other nodes,
      // so each (s, d) pair is a flow at 1/(N-1) of the source rate.  The
      // per-pair thinning of a renewal stream drives its cv^2 toward 1,
      // which the split rule in evaluate() applies; the full source rate
      // with the source's own cv^2 is what enters the injection link.
      for (noc::NodeId d = 0; d < nodes; ++d) {
        if (d == s) continue;
        addFlow(NocFlow{s, d, packets_per_cycle / (nodes - 1), flits,
                        interarrival_cv2});
      }
    } else {
      const noc::NodeId d = noc::destinationFor(pattern, 1, width_, height_,
                                                s, 0, slave);
      addFlow(NocFlow{s, d, packets_per_cycle, flits, interarrival_cv2});
    }
  }
}

NocPrediction NocAnalyticalModel::evaluate() const {
  const auto w = static_cast<int>(width_);
  const auto h = static_cast<int>(height_);
  const std::size_t nodes = width_ * height_;
  // Station ids: router output links first (router * kNumPorts + port),
  // then one injection link per node.
  const std::size_t num_stations = nodes * noc::kNumPorts + nodes;
  const auto linkStation = [](noc::NodeId router, int port) {
    return static_cast<std::size_t>(router) * noc::kNumPorts +
           static_cast<std::size_t>(port);
  };
  const auto injStation = [nodes](noc::NodeId node) {
    return nodes * noc::kNumPorts + static_cast<std::size_t>(node);
  };

  // Per-flow station paths (injection, per-hop output links, ejection).
  std::vector<std::vector<std::size_t>> paths(flows_.size());
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    const NocFlow& flow = flows_[f];
    std::vector<std::size_t>& path = paths[f];
    path.push_back(injStation(flow.source));
    int x = flow.source % w, y = flow.source / w;
    const int dx = flow.dest % w, dy = flow.dest / w;
    while (x != dx || y != dy) {
      const int port = xyPort(x, y, dx, dy);
      path.push_back(linkStation(y * w + x, port));
      switch (port) {
        case noc::kEast: ++x; break;
        case noc::kWest: --x; break;
        case noc::kSouth: ++y; break;
        default: --y; break;
      }
    }
    path.push_back(linkStation(flow.dest, noc::kLocal));
  }

  // Aggregate per-station load and service moments.
  struct Station {
    double rate = 0.0;     // sum of flow packet rates
    double rate_s = 0.0;   // sum of rate * flits  (= utilization)
    double rate_s2 = 0.0;  // sum of rate * flits^2
    std::vector<std::size_t> arriving;  // flow indices through this station
  };
  std::vector<Station> stations(num_stations);
  for (std::size_t f = 0; f < flows_.size(); ++f)
    for (const std::size_t st : paths[f]) {
      Station& s = stations[st];
      s.rate += flows_[f].packet_rate;
      s.rate_s += flows_[f].packet_rate * flows_[f].flits;
      s.rate_s2 += flows_[f].packet_rate * flows_[f].flits * flows_[f].flits;
      s.arriving.push_back(f);
    }

  // Topological order: XY routing is feed-forward, so injection links feed
  // E/W links (chained along +x / -x), which feed S/N links (chained along
  // +y / -y), which feed ejection.
  std::vector<std::size_t> topo;
  topo.reserve(num_stations);
  for (std::size_t n = 0; n < nodes; ++n)
    topo.push_back(injStation(static_cast<noc::NodeId>(n)));
  for (int x = 0; x < w - 1; ++x)
    for (int y = 0; y < h; ++y) topo.push_back(linkStation(y * w + x, noc::kEast));
  for (int x = w - 1; x > 0; --x)
    for (int y = 0; y < h; ++y) topo.push_back(linkStation(y * w + x, noc::kWest));
  for (int y = 0; y < h - 1; ++y)
    for (int x = 0; x < w; ++x) topo.push_back(linkStation(y * w + x, noc::kSouth));
  for (int y = h - 1; y > 0; --y)
    for (int x = 0; x < w; ++x) topo.push_back(linkStation(y * w + x, noc::kNorth));
  for (std::size_t n = 0; n < nodes; ++n)
    topo.push_back(linkStation(static_cast<noc::NodeId>(n), noc::kLocal));

  // One pass: waiting time per station, QNA-style cv^2 propagation.
  NocPrediction out;
  std::vector<double> wait(num_stations, 0.0);
  std::vector<double> flow_cv2(flows_.size());
  for (std::size_t f = 0; f < flows_.size(); ++f)
    flow_cv2[f] = flows_[f].interarrival_cv2;
  for (const std::size_t st : topo) {
    const Station& s = stations[st];
    if (s.rate <= 0.0) continue;
    const double es = s.rate_s / s.rate;
    const double es2 = s.rate_s2 / s.rate;
    const double cs2 = std::max(0.0, es2 / (es * es) - 1.0);
    const double rho = s.rate_s;
    if (rho >= 1.0) out.saturated = true;
    out.max_utilization = std::max(out.max_utilization, rho);
    double ca2 = 0.0;
    for (const std::size_t f : s.arriving)
      ca2 += flows_[f].packet_rate / s.rate * flow_cv2[f];
    const double slack = std::max(kMinSlack, 1.0 - rho);
    // Discrete-time Kingman; exact Geo/D/1 for a lone Bernoulli flow with
    // fixed service (see header), never negative (D/D/1 waits zero).
    // Interior stations apply the tandem-correlation correction.
    const double variability =
        (st < nodes * noc::kNumPorts ? kTandemFactor : 1.0) * (ca2 + cs2);
    wait[st] = std::max(0.0, rho * (variability * es - slack) / (2.0 * slack));
    const double cd2 = rho * rho * cs2 + (1.0 - rho * rho) * ca2;
    for (const std::size_t f : s.arriving) {
      const double p = flows_[f].packet_rate / s.rate;
      flow_cv2[f] = p * cd2 + (1.0 - p);
    }
  }

  // Per-flow end-to-end latency: closed-form zero-load plus path waits.
  out.per_source_latency.assign(nodes, 0.0);
  std::vector<double> source_rate(nodes, 0.0);
  double total_rate = 0.0;
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    const NocFlow& flow = flows_[f];
    const int hops = std::abs(flow.dest % w - flow.source % w) +
                     std::abs(flow.dest / w - flow.source / w);
    double latency = flow.flits * (hops + 2) +
                     static_cast<double>(hops + 1) * (router_delay_ - 1);
    for (const std::size_t st : paths[f]) latency += wait[st];
    const auto src = static_cast<std::size_t>(flow.source);
    out.per_source_latency[src] += flow.packet_rate * latency;
    source_rate[src] += flow.packet_rate;
    out.mean_latency += flow.packet_rate * latency;
    total_rate += flow.packet_rate;
  }
  for (std::size_t n = 0; n < nodes; ++n)
    if (source_rate[n] > 0.0) out.per_source_latency[n] /= source_rate[n];
  if (total_rate > 0.0) out.mean_latency /= total_rate;

  for (std::size_t st = 0; st < num_stations; ++st) {
    if (stations[st].rate <= 0.0) continue;
    NocStationReport report;
    if (st >= nodes * noc::kNumPorts) {
      report.router = -1;
      report.port = static_cast<int>(st - nodes * noc::kNumPorts);
    } else {
      report.router = static_cast<noc::NodeId>(st / noc::kNumPorts);
      report.port = static_cast<int>(st % noc::kNumPorts);
    }
    report.rate = stations[st].rate;
    report.utilization = stations[st].rate_s;
    report.wait = wait[st];
    out.stations.push_back(report);
  }
  return out;
}

}  // namespace lb::advisor
