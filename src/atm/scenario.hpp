#pragma once
// The canonical Table-1 scenario from paper Section 5.3: a 4-port
// output-queued ATM switch whose cell-forwarding bus must satisfy
//
//   (i)  traffic through port 4 passes with minimum latency, and
//   (ii) ports 1, 2, 3 share the bandwidth in the ratio 1:2:4.
//
// Lottery tickets, TDMA time-slots and static priorities are all assigned in
// the ratio 1:2:4:6 for ports 1..4.  Ports 1..3 are backlogged best-effort
// flows; port 4 is bursty and latency-critical.  Shared by the
// bench/table1_atm_switch harness, the atm_switch example, and the
// integration tests.

#include <memory>

#include "atm/atm_switch.hpp"
#include "bus/arbiter.hpp"

namespace lb::atm {

/// Architecture choices evaluated in Table 1.
enum class Architecture { kStaticPriority, kTdma, kLottery };

const char* architectureName(Architecture architecture);

/// QoS weights for ports 1..4 (the paper's 1:2:4:6 assignment).
std::vector<std::uint32_t> table1Weights();

/// Switch + traffic configuration of the Table-1 experiment.
AtmSwitchConfig table1Config(std::uint64_t seed = 20010618);

/// Arbiter implementing `architecture` with the Table-1 weights.
std::unique_ptr<bus::IArbiter> table1Arbiter(Architecture architecture,
                                             std::uint64_t seed = 7);

/// Fully-assembled switch for one architecture.
std::unique_ptr<AtmSwitch> makeTable1Switch(Architecture architecture,
                                            std::uint64_t seed = 20010618);

}  // namespace lb::atm
