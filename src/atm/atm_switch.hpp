#pragma once
// Cell-forwarding unit of an output-queued ATM switch (paper Section 5.3,
// Figure 13).
//
// The system has N output ports.  Arriving cell payloads land in a
// dual-ported shared memory (off the shared bus, so the write path does not
// contend); the cell's address is appended to the owning port's output
// queue.  Each port polls its queue; when non-empty it dequeues the head
// address and requests the shared system bus to read the cell payload out of
// the shared memory and forward it onto the output link.  The shared bus +
// its arbiter (static priority / TDMA / LOTTERYBUS) is the resource under
// evaluation.
//
// Traffic per port is an ON/OFF modulated Bernoulli cell-arrival process:
// always-ON with a high rate models the backlogged best-effort ports 1..3,
// short ON bursts with long OFF periods model the latency-critical port 4.
// Output queues are finite; cells arriving to a full queue are dropped and
// counted (an output-queued switch's defining failure mode).

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "bus/bus.hpp"
#include "sim/kernel.hpp"
#include "sim/rng.hpp"
#include "stats/stats.hpp"

namespace lb::atm {

/// Per-port cell arrival process: either ON/OFF-modulated Bernoulli
/// (period == 0) or strictly periodic (period > 0), the latter modelling a
/// synchronous input link delivering cells at a fixed line rate — the
/// arrival pattern whose phase alignment against a TDMA timing wheel the
/// paper's Figure 5 dissects.
struct PortTraffic {
  double on_rate = 0.1;          ///< P(cell arrives | ON) per cycle
  sim::Cycle mean_on = 1;        ///< mean ON duration; 0 or with mean_off==0
                                 ///< means always ON
  sim::Cycle mean_off = 0;       ///< mean OFF duration (0 = never OFF)
  sim::Cycle period = 0;         ///< >0: one cell every `period` cycles
  sim::Cycle phase = 0;          ///< cycle offset of periodic arrivals
};

struct AtmSwitchConfig {
  std::size_t num_ports = 4;
  std::uint32_t cell_words = 14;   ///< 53-byte cell on a 32-bit bus
  std::size_t queue_capacity = 256;
  std::vector<PortTraffic> traffic;  ///< one per port
  bus::BusConfig bus;                ///< masters == ports
  std::uint64_t seed = 1;
};

/// One forwarded (or dropped) cell's bookkeeping.
struct PortCounters {
  std::uint64_t cells_in = 0;
  std::uint64_t cells_out = 0;
  std::uint64_t cells_dropped = 0;
  std::uint64_t queue_latency_sum = 0;  ///< enqueue -> forwarding complete
  std::size_t max_queue_depth = 0;
};

class AtmSwitch final : public sim::ICycleComponent {
public:
  AtmSwitch(AtmSwitchConfig config, std::unique_ptr<bus::IArbiter> arbiter);

  /// Runs the switch for `cycles` cycles (plus optional warmup discarded
  /// from the statistics).
  void run(sim::Cycle cycles, sim::Cycle warmup = 0);

  void cycle(sim::Cycle now) override;
  std::string name() const override { return "atm-switch"; }

  // -- results ---------------------------------------------------------------

  /// Share of total bus cycles moving this port's cell payload words.
  double bandwidthFraction(std::size_t port) const;
  /// Share of busy bus cycles (what reservations predict when saturated).
  double trafficShare(std::size_t port) const;
  /// Average bus cycles per word for this port's cell transfers (request to
  /// completion, the paper's Table 1 latency metric).
  double cyclesPerWord(std::size_t port) const;
  /// Average cycles a cell spends from switch arrival to forwarded.
  double meanCellLatency(std::size_t port) const;

  const PortCounters& counters(std::size_t port) const {
    return ports_.at(port).counters;
  }
  const bus::Bus& busModel() const { return bus_; }
  bus::Bus& busModel() { return bus_; }

private:
  struct Cell {
    std::uint64_t id;
    sim::Cycle arrival;
  };
  struct Port {
    std::deque<Cell> queue;
    bool on = true;
    sim::Cycle state_left = 0;
    bool requesting = false;
    sim::Cycle head_enqueue_time = 0;
    PortCounters counters;
  };

  void arrivals(sim::Cycle now);
  void issueRequests(sim::Cycle now);

  AtmSwitchConfig config_;
  bus::Bus bus_;
  sim::CycleKernel kernel_;
  sim::Xoshiro256ss rng_;
  std::vector<Port> ports_;
  std::uint64_t next_cell_id_ = 0;
};

}  // namespace lb::atm
