#include "atm/input_queued.hpp"

#include <stdexcept>

namespace lb::atm {

InputQueuedSwitch::InputQueuedSwitch(InputQueuedConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      queued_per_input_(config_.ports, 0),
      delivered_per_input_(config_.ports, 0) {
  if (config_.ports == 0)
    throw std::invalid_argument("InputQueuedSwitch: no ports");
  if (config_.queue_capacity == 0)
    throw std::invalid_argument("InputQueuedSwitch: zero queue capacity");
  if (config_.matching_iterations == 0)
    throw std::invalid_argument("InputQueuedSwitch: zero matching iterations");
  if (config_.offered_load < 0.0 || config_.offered_load > 1.0)
    throw std::invalid_argument("InputQueuedSwitch: load must be in [0,1]");
  if (config_.hotspot_fraction < 0.0 || config_.hotspot_fraction > 1.0)
    throw std::invalid_argument(
        "InputQueuedSwitch: hotspot fraction must be in [0,1]");
  if (config_.tickets.empty()) {
    config_.tickets.assign(config_.ports, 1);
  } else if (config_.tickets.size() != config_.ports) {
    throw std::invalid_argument("InputQueuedSwitch: tickets arity mismatch");
  }
  for (const std::uint32_t t : config_.tickets)
    if (t == 0)
      throw std::invalid_argument("InputQueuedSwitch: zero-ticket input");

  const std::size_t voqs = config_.virtual_output_queues ? config_.ports : 1;
  queues_.assign(config_.ports, std::vector<std::deque<Cell>>(voqs));
}

void InputQueuedSwitch::arrivals() {
  for (std::size_t input = 0; input < config_.ports; ++input) {
    if (!rng_.chance(config_.offered_load)) continue;
    ++arrived_;
    if (queued_per_input_[input] >= config_.queue_capacity) {
      ++dropped_;
      continue;
    }
    const std::size_t output =
        rng_.chance(config_.hotspot_fraction)
            ? 0
            : static_cast<std::size_t>(rng_.below(config_.ports));
    const std::size_t voq = config_.virtual_output_queues ? output : 0;
    queues_[input][voq].push_back(Cell{output, slot_});
    ++queued_per_input_[input];
  }
}

void InputQueuedSwitch::schedule() {
  const std::size_t n = config_.ports;
  std::vector<bool> input_matched(n, false);
  std::vector<bool> output_matched(n, false);

  const unsigned rounds =
      config_.virtual_output_queues ? config_.matching_iterations : 1;
  for (unsigned round = 0; round < rounds; ++round) {
    // Request phase: every unmatched input requests the outputs of its
    // eligible head cells (FIFO: the single HOL cell's output; VOQ: the
    // head of every non-empty VOQ).
    // Grant phase: each unmatched output holds a lottery among requesters.
    std::vector<std::vector<std::size_t>> grants_per_input(n);
    for (std::size_t output = 0; output < n; ++output) {
      if (output_matched[output]) continue;
      std::uint64_t total = 0;
      for (std::size_t input = 0; input < n; ++input) {
        if (input_matched[input]) continue;
        const std::size_t voq = config_.virtual_output_queues ? output : 0;
        const auto& queue = queues_[input][voq];
        const bool requesting =
            !queue.empty() &&
            (config_.virtual_output_queues || queue.front().output == output);
        if (requesting) total += config_.tickets[input];
      }
      if (total == 0) continue;
      std::uint64_t number = rng_.below(total);
      for (std::size_t input = 0; input < n; ++input) {
        if (input_matched[input]) continue;
        const std::size_t voq = config_.virtual_output_queues ? output : 0;
        const auto& queue = queues_[input][voq];
        const bool requesting =
            !queue.empty() &&
            (config_.virtual_output_queues || queue.front().output == output);
        if (!requesting) continue;
        if (number < config_.tickets[input]) {
          grants_per_input[input].push_back(output);
          break;
        }
        number -= config_.tickets[input];
      }
    }

    // Accept phase: each input holds a lottery among the grants it won
    // (uniform — an input's own grants are equally attractive).
    for (std::size_t input = 0; input < n; ++input) {
      auto& grants = grants_per_input[input];
      if (grants.empty()) continue;
      const std::size_t pick =
          grants.size() == 1
              ? 0
              : static_cast<std::size_t>(rng_.below(grants.size()));
      const std::size_t output = grants[pick];
      const std::size_t voq = config_.virtual_output_queues ? output : 0;
      Cell cell = queues_[input][voq].front();
      queues_[input][voq].pop_front();
      --queued_per_input_[input];
      input_matched[input] = true;
      output_matched[output] = true;
      ++delivered_;
      ++delivered_per_input_[input];
      delay_sum_ += slot_ - cell.arrival_slot;
    }
  }
}

void InputQueuedSwitch::run(std::uint64_t slots) {
  for (std::uint64_t s = 0; s < slots; ++s) {
    arrivals();
    schedule();
    ++slot_;
  }
}

double InputQueuedSwitch::throughput() const {
  if (slot_ == 0) return 0.0;
  return static_cast<double>(delivered_) /
         (static_cast<double>(slot_) * static_cast<double>(config_.ports));
}

double InputQueuedSwitch::deliveredShare(std::size_t input) const {
  if (delivered_ == 0) return 0.0;
  return static_cast<double>(delivered_per_input_.at(input)) /
         static_cast<double>(delivered_);
}

double InputQueuedSwitch::meanQueueDelay() const {
  if (delivered_ == 0) return 0.0;
  return static_cast<double>(delay_sum_) / static_cast<double>(delivered_);
}

}  // namespace lb::atm
