#include "atm/scenario.hpp"

#include <stdexcept>

#include "arbiters/static_priority.hpp"
#include "arbiters/tdma.hpp"
#include "core/lottery.hpp"

namespace lb::atm {

const char* architectureName(Architecture architecture) {
  switch (architecture) {
    case Architecture::kStaticPriority: return "static-priority";
    case Architecture::kTdma: return "tdma-2level";
    case Architecture::kLottery: return "lottery";
  }
  return "?";
}

std::vector<std::uint32_t> table1Weights() { return {1, 2, 4, 6}; }

AtmSwitchConfig table1Config(std::uint64_t seed) {
  AtmSwitchConfig config;
  config.num_ports = 4;
  config.cell_words = 14;  // 53-byte ATM cell over a 32-bit bus
  config.queue_capacity = 512;
  config.seed = seed;
  config.bus.num_masters = 4;
  config.bus.max_burst_words = 16;  // a whole cell moves in one burst
  config.bus.pipelined_arbitration = true;

  // Ports 1..3: backlogged best-effort flows.  Each offers ~0.7 words/cycle
  // (0.05 cells/cycle x 14 words), so together they oversubscribe the bus
  // ~2x and their *achieved* shares reveal the arbitration policy.
  PortTraffic best_effort;
  best_effort.on_rate = 0.05;
  best_effort.mean_on = 1;
  best_effort.mean_off = 0;  // always on

  // Port 4: latency-critical real-time flow arriving on a synchronous link,
  // one cell every 208 cycles (~6.7% of bus bandwidth).  The fixed arrival
  // phase is exactly the situation of the paper's Figure 5: against the
  // 208-slot TDMA wheel every cell lands just after port 4's slot block and
  // must wait for the wheel to come around (the randomized lottery does not
  // care about the phase).
  PortTraffic realtime;
  realtime.period = 208;
  realtime.phase = 0;

  config.traffic = {best_effort, best_effort, best_effort, realtime};
  return config;
}

std::unique_ptr<bus::IArbiter> table1Arbiter(Architecture architecture,
                                             std::uint64_t seed) {
  const std::vector<std::uint32_t> weights = table1Weights();
  switch (architecture) {
    case Architecture::kStaticPriority:
      return std::make_unique<arb::StaticPriorityArbiter>(
          std::vector<unsigned>(weights.begin(), weights.end()));
    case Architecture::kTdma: {
      // Reservations are blocks of 16 contiguous single-word slots (the
      // paper's Figure 5 style), so weights 1:2:4:6 give a 208-slot wheel.
      std::vector<unsigned> slots;
      for (const std::uint32_t w : weights) slots.push_back(w * 16);
      return std::make_unique<arb::TdmaArbiter>(
          arb::TdmaArbiter::contiguousWheel(slots), weights.size());
    }
    case Architecture::kLottery:
      return std::make_unique<core::LotteryArbiter>(
          weights, core::LotteryRng::kExact, seed);
  }
  throw std::invalid_argument("table1Arbiter: unknown architecture");
}

std::unique_ptr<AtmSwitch> makeTable1Switch(Architecture architecture,
                                            std::uint64_t seed) {
  return std::make_unique<AtmSwitch>(table1Config(seed),
                                     table1Arbiter(architecture, seed ^ 0x5a));
}

}  // namespace lb::atm
