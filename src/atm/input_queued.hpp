#pragma once
// Input-queued crossbar switch with lottery-based matching.
//
// The paper's ATM references ([9] Turner & Yamanaka, [13] the Tiny Tera)
// frame the era's switch-design space: output queueing (Section 5.3's case
// study) needs fabric speedup, while input queueing is cheap but suffers
// head-of-line (HOL) blocking — a FIFO input stalls on a busy output even
// when a later cell could use an idle one, capping uniform-traffic
// throughput at 2-sqrt(2) ~= 58.6% for large N (~66% at N=4).  Virtual
// output queues (VOQs) plus an iterative matching scheduler recover ~100%.
//
// This model is cell-slotted (one slot = one cell time) and uses the
// library's lottery as the arbitration primitive in BOTH matching phases,
// i.e. a distributed LOTTERYBUS: each output draws a lottery among the
// inputs requesting it (weighted by per-input tickets), then each input
// draws among the grants it won — one iteration of probabilistic iterative
// matching; `matching_iterations` repeats the round on the unmatched
// remainder (PIM converges in O(log N) iterations).
//
// bench/iq_switch_throughput sweeps offered load and reproduces the classic
// saturation curves.

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/rng.hpp"

namespace lb::atm {

struct InputQueuedConfig {
  std::size_t ports = 4;              ///< N inputs and N outputs
  bool virtual_output_queues = false; ///< false: one FIFO per input (HOL)
  std::size_t queue_capacity = 64;    ///< cells per input (across its VOQs)
  unsigned matching_iterations = 1;   ///< PIM rounds per slot (VOQ mode)
  double offered_load = 0.9;          ///< cell arrival probability per slot
  /// Fraction of cells aimed at output 0 (the hotspot); the rest pick an
  /// output uniformly.  0 = pure uniform traffic.  Oversubscribing one
  /// output is what makes the per-output grant lottery's ticket weighting
  /// observable.
  double hotspot_fraction = 0.0;
  std::vector<std::uint32_t> tickets; ///< per-input lottery weights
                                      ///< (empty = all 1)
  std::uint64_t seed = 1;
};

class InputQueuedSwitch {
public:
  explicit InputQueuedSwitch(InputQueuedConfig config);

  /// Advances the switch by `slots` cell slots.
  void run(std::uint64_t slots);

  // -- results ---------------------------------------------------------------

  /// Delivered cells per slot per port, in [0,1]: the throughput metric.
  double throughput() const;
  /// Per-input delivered share of all delivered cells.
  double deliveredShare(std::size_t input) const;
  /// Mean slots a delivered cell waited in its input queue.
  double meanQueueDelay() const;

  std::uint64_t cellsArrived() const { return arrived_; }
  std::uint64_t cellsDelivered() const { return delivered_; }
  std::uint64_t cellsDropped() const { return dropped_; }
  std::uint64_t slots() const { return slot_; }

private:
  struct Cell {
    std::size_t output;
    std::uint64_t arrival_slot;
  };

  void arrivals();
  void schedule();

  InputQueuedConfig config_;
  sim::Xoshiro256ss rng_;
  // queues_[input][voq]; FIFO mode uses a single deque per input (voq 0).
  std::vector<std::vector<std::deque<Cell>>> queues_;
  std::vector<std::size_t> queued_per_input_;
  std::vector<std::uint64_t> delivered_per_input_;
  std::uint64_t slot_ = 0;
  std::uint64_t arrived_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delay_sum_ = 0;
};

}  // namespace lb::atm
