#include "atm/atm_switch.hpp"

#include <cmath>
#include <stdexcept>

namespace lb::atm {

namespace {
/// Geometric duration with the given mean, >= 1 cycle.
sim::Cycle drawDuration(sim::Xoshiro256ss& rng, sim::Cycle mean) {
  if (mean <= 1) return 1;
  const double q = 1.0 / static_cast<double>(mean);
  double u = rng.uniform01();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  const double value = std::ceil(std::log1p(-u) / std::log1p(-q));
  return value < 1.0 ? 1 : static_cast<sim::Cycle>(value);
}

bus::BusConfig busConfigFor(const AtmSwitchConfig& config) {
  bus::BusConfig bus_config = config.bus;
  bus_config.num_masters = config.num_ports;
  return bus_config;
}
}  // namespace

AtmSwitch::AtmSwitch(AtmSwitchConfig config,
                     std::unique_ptr<bus::IArbiter> arbiter)
    : config_(config),
      bus_(busConfigFor(config), std::move(arbiter)),
      rng_(config.seed),
      ports_(config.num_ports) {
  if (config_.num_ports == 0)
    throw std::invalid_argument("AtmSwitch: no ports");
  if (config_.cell_words == 0)
    throw std::invalid_argument("AtmSwitch: zero-word cells");
  if (config_.traffic.size() != config_.num_ports)
    throw std::invalid_argument("AtmSwitch: traffic arity != ports");
  if (config_.queue_capacity == 0)
    throw std::invalid_argument("AtmSwitch: zero queue capacity");

  for (std::size_t p = 0; p < ports_.size(); ++p) {
    ports_[p].on = true;
    ports_[p].state_left =
        config_.traffic[p].mean_off == 0
            ? 0  // always ON
            : drawDuration(rng_, config_.traffic[p].mean_on);
  }

  bus_.onCompletion([this](bus::MasterId master, const bus::Message& message,
                           sim::Cycle finish) {
    Port& port = ports_[static_cast<std::size_t>(master)];
    port.requesting = false;
    ++port.counters.cells_out;
    // message.tag carries the cell's switch-arrival cycle.
    port.counters.queue_latency_sum += finish - message.tag + 1;
  });

  kernel_.attach(*this);
  kernel_.attach(bus_);
}

void AtmSwitch::arrivals(sim::Cycle now) {
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    Port& port = ports_[p];
    const PortTraffic& traffic = config_.traffic[p];

    if (traffic.period > 0) {
      if (now % traffic.period == traffic.phase % traffic.period) {
        ++port.counters.cells_in;
        if (port.queue.size() >= config_.queue_capacity) {
          ++port.counters.cells_dropped;
        } else {
          port.queue.push_back(Cell{next_cell_id_++, now});
          port.counters.max_queue_depth =
              std::max(port.counters.max_queue_depth, port.queue.size());
        }
      }
      continue;
    }

    if (traffic.mean_off != 0) {
      if (port.state_left == 0) {
        port.on = !port.on;
        port.state_left = drawDuration(
            rng_, port.on ? traffic.mean_on : traffic.mean_off);
      }
      --port.state_left;
    }

    if (port.on && rng_.chance(traffic.on_rate)) {
      ++port.counters.cells_in;
      if (port.queue.size() >= config_.queue_capacity) {
        ++port.counters.cells_dropped;
      } else {
        port.queue.push_back(Cell{next_cell_id_++, now});
        port.counters.max_queue_depth =
            std::max(port.counters.max_queue_depth, port.queue.size());
      }
    }
  }
}

void AtmSwitch::issueRequests(sim::Cycle now) {
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    Port& port = ports_[p];
    if (port.requesting || port.queue.empty()) continue;
    const Cell cell = port.queue.front();
    port.queue.pop_front();
    bus::Message message;
    message.words = config_.cell_words;
    message.slave = 0;  // the shared payload memory
    message.arrival = now;
    message.tag = cell.arrival;
    bus_.push(static_cast<bus::MasterId>(p), message);
    port.requesting = true;
  }
}

void AtmSwitch::cycle(sim::Cycle now) {
  arrivals(now);
  issueRequests(now);
}

void AtmSwitch::run(sim::Cycle cycles, sim::Cycle warmup) {
  if (warmup > 0) {
    kernel_.run(warmup);
    bus_.clearStats();
    for (Port& port : ports_) port.counters = PortCounters{};
  }
  kernel_.run(cycles);
}

double AtmSwitch::bandwidthFraction(std::size_t port) const {
  return bus_.bandwidth().fraction(port);
}

double AtmSwitch::trafficShare(std::size_t port) const {
  return bus_.bandwidth().shareOfTraffic(port);
}

double AtmSwitch::cyclesPerWord(std::size_t port) const {
  return bus_.latency().cyclesPerWord(port);
}

double AtmSwitch::meanCellLatency(std::size_t port) const {
  const PortCounters& counters = ports_.at(port).counters;
  if (counters.cells_out == 0) return 0.0;
  return static_cast<double>(counters.queue_latency_sum) /
         static_cast<double>(counters.cells_out);
}

}  // namespace lb::atm
