#include "fault/fault.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lb::fault {

namespace {

/// SplitMix64 finalizer (same mixing constants as sim::SplitMix64): a
/// stateless bijective mix, so decision n at site s is random-access
/// computable without shared RNG state.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Per-site salts keep the six streams uncorrelated even for small seeds.
constexpr std::array<std::uint64_t, kSiteCount> kSiteSalt = {
    0x736f636b5f726431ULL,  // "sock_rd1"
    0x736f636b5f777231ULL,  // "sock_wr1"
    0x6a6f625f64656c61ULL,  // "job_dela"
    0x71756575655f6164ULL,  // "queue_ad"
    0x63616368655f6c64ULL,  // "cache_ld"
    0x63616368655f7374ULL,  // "cache_st"
};

double toUnit(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

double parseProbability(const std::string& key, const std::string& text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: " + key +
                                " expects a probability, got \"" + text +
                                "\"");
  }
  if (used != text.size() || !std::isfinite(value) || value < 0.0 ||
      value > 1.0)
    throw std::invalid_argument("fault plan: " + key +
                                " expects a probability in [0,1], got \"" +
                                text + "\"");
  return value;
}

std::uint64_t parseCount(const std::string& key, const std::string& text) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("fault plan: " + key +
                                " expects a non-negative integer, got \"" +
                                text + "\"");
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: " + key + " value \"" + text +
                                "\" is out of range");
  }
}

std::string formatProbability(double value) {
  std::ostringstream out;
  out << value;  // plan probabilities are human-written; default precision
  return out.str();
}

}  // namespace

const char* siteName(Site site) {
  switch (site) {
    case Site::kSocketRead:
      return "socket_read";
    case Site::kSocketWrite:
      return "socket_write";
    case Site::kJobExecute:
      return "job_execute";
    case Site::kQueueAdmit:
      return "queue_admit";
    case Site::kCacheLoad:
      return "cache_load";
    case Site::kCacheStore:
      return "cache_store";
  }
  return "unknown";
}

bool FaultPlan::quiet() const {
  return torn_read == 0.0 && torn_write == 0.0 && read_reset == 0.0 &&
         write_reset == 0.0 && job_delay == 0.0 && queue_reject == 0.0 &&
         cache_corrupt == 0.0 && cache_enospc == 0.0;
}

FaultPlan parseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;  // tolerate "a=1,,b=2" and trailing commas
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("fault plan: expected key=value, got \"" +
                                  item + "\"");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parseCount(key, value);
    } else if (key == "torn_read") {
      plan.torn_read = parseProbability(key, value);
    } else if (key == "torn_write") {
      plan.torn_write = parseProbability(key, value);
    } else if (key == "read_reset") {
      plan.read_reset = parseProbability(key, value);
    } else if (key == "write_reset") {
      plan.write_reset = parseProbability(key, value);
    } else if (key == "job_delay") {
      plan.job_delay = parseProbability(key, value);
    } else if (key == "job_delay_ms") {
      const std::uint64_t ms = parseCount(key, value);
      if (ms > 600000)
        throw std::invalid_argument(
            "fault plan: job_delay_ms must be <= 600000");
      plan.job_delay_ms = static_cast<std::uint32_t>(ms);
    } else if (key == "queue_reject") {
      plan.queue_reject = parseProbability(key, value);
    } else if (key == "cache_corrupt") {
      plan.cache_corrupt = parseProbability(key, value);
    } else if (key == "cache_enospc") {
      plan.cache_enospc = parseProbability(key, value);
    } else {
      throw std::invalid_argument("fault plan: unknown key \"" + key + "\"");
    }
  }
  return plan;
}

std::string formatFaultPlan(const FaultPlan& plan) {
  std::ostringstream out;
  out << "seed=" << plan.seed
      << ",torn_read=" << formatProbability(plan.torn_read)
      << ",torn_write=" << formatProbability(plan.torn_write)
      << ",read_reset=" << formatProbability(plan.read_reset)
      << ",write_reset=" << formatProbability(plan.write_reset)
      << ",job_delay=" << formatProbability(plan.job_delay)
      << ",job_delay_ms=" << plan.job_delay_ms
      << ",queue_reject=" << formatProbability(plan.queue_reject)
      << ",cache_corrupt=" << formatProbability(plan.cache_corrupt)
      << ",cache_enospc=" << formatProbability(plan.cache_enospc);
  return out.str();
}

std::uint64_t FaultStats::totalInjected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected) total += n;
  return total;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {}

double FaultInjector::draw(Site site) noexcept {
  const std::size_t s = static_cast<std::size_t>(site);
  const std::uint64_t n =
      sequence_[s].fetch_add(1, std::memory_order_relaxed);
  return toUnit(mix64(plan_.seed ^ kSiteSalt[s] ^ (n * 0xd1342543de82ef95ULL)));
}

bool FaultInjector::trial(Site site, double probability) noexcept {
  const bool hit = draw(site) < probability;
  if (hit)
    injected_[static_cast<std::size_t>(site)].fetch_add(
        1, std::memory_order_relaxed);
  return hit;
}

SocketFault FaultInjector::onSocketRead() noexcept {
  // One draw decides both outcomes so the stream advances once per read:
  // [0, read_reset) -> reset, [read_reset, read_reset+torn_read) -> short.
  const double u = draw(Site::kSocketRead);
  if (u < plan_.read_reset) {
    injected_[static_cast<std::size_t>(Site::kSocketRead)].fetch_add(
        1, std::memory_order_relaxed);
    return SocketFault::kReset;
  }
  if (u < plan_.read_reset + plan_.torn_read) {
    injected_[static_cast<std::size_t>(Site::kSocketRead)].fetch_add(
        1, std::memory_order_relaxed);
    return SocketFault::kShort;
  }
  return SocketFault::kNone;
}

SocketFault FaultInjector::onSocketWrite() noexcept {
  const double u = draw(Site::kSocketWrite);
  if (u < plan_.write_reset) {
    injected_[static_cast<std::size_t>(Site::kSocketWrite)].fetch_add(
        1, std::memory_order_relaxed);
    return SocketFault::kReset;
  }
  if (u < plan_.write_reset + plan_.torn_write) {
    injected_[static_cast<std::size_t>(Site::kSocketWrite)].fetch_add(
        1, std::memory_order_relaxed);
    return SocketFault::kShort;
  }
  return SocketFault::kNone;
}

std::uint32_t FaultInjector::jobDelayMs() noexcept {
  return trial(Site::kJobExecute, plan_.job_delay) ? plan_.job_delay_ms : 0;
}

bool FaultInjector::rejectAdmission() noexcept {
  return trial(Site::kQueueAdmit, plan_.queue_reject);
}

bool FaultInjector::corruptCacheLoad() noexcept {
  return trial(Site::kCacheLoad, plan_.cache_corrupt);
}

bool FaultInjector::failCacheStore() noexcept {
  return trial(Site::kCacheStore, plan_.cache_enospc);
}

std::uint64_t FaultInjector::corruptionPattern() noexcept {
  const std::size_t s = static_cast<std::size_t>(Site::kCacheLoad);
  const std::uint64_t n = sequence_[s].load(std::memory_order_relaxed);
  return mix64(plan_.seed ^ kSiteSalt[s] ^ ~n);
}

FaultStats FaultInjector::stats() const {
  FaultStats stats;
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    stats.decisions[s] = sequence_[s].load(std::memory_order_relaxed);
    stats.injected[s] = injected_[s].load(std::memory_order_relaxed);
  }
  return stats;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

}  // namespace lb::fault
