#pragma once
// Seeded, deterministic fault injection for the lbserve service stack.
//
// A FaultPlan is a plain struct of per-site fault probabilities plus one
// 64-bit seed; a FaultInjector turns the plan into a stream of injection
// decisions.  Determinism model: every injection *site* (socket read,
// socket write, job execute, queue admit, cache load, cache store) owns an
// independent decision stream — decision number n at site s is a pure
// function of (plan.seed, s, n), computed with the SplitMix64 finalizer.
// Two injectors built from the same plan therefore produce bit-identical
// decision streams, which is what makes a chaos-test failure replayable
// from nothing but the seed.  (Which *operation* consumes decision n
// follows arrival order at that site; a single-threaded driver replays
// exactly, a concurrent one replays the same multiset of faults.)
//
// The layer is strictly opt-in: every hook in the service stack takes a
// `FaultInjector*` that defaults to nullptr, and a null injector compiles
// down to one pointer test on each path — the same inertness discipline
// the obs layer pins with ScenarioRunTest.InstrumentationIsInert.
//
// Plans are written as comma-separated `key=value` specs (the `--fault-plan`
// flag of lbd), e.g.:
//
//   seed=42,torn_read=0.15,read_reset=0.05,job_delay=0.1,job_delay_ms=20
//
// See docs/robustness.md for the full schema.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace lb::fault {

/// What an injector tells a socket send/recv wrapper to do.
enum class SocketFault {
  kNone,   ///< proceed normally
  kShort,  ///< transfer at most one byte this call (torn read/write)
  kReset,  ///< fail the call as if the peer reset the connection
};

/// Injection sites; each owns an independent deterministic stream.
enum class Site : std::size_t {
  kSocketRead = 0,
  kSocketWrite,
  kJobExecute,
  kQueueAdmit,
  kCacheLoad,
  kCacheStore,
};
inline constexpr std::size_t kSiteCount = 6;

/// Human-readable site name ("socket_read", ...), for logs and metrics.
const char* siteName(Site site);

/// One reproducible chaos configuration.  All probabilities are in [0, 1];
/// 0 disables the fault.  Equality compares every field (used by the
/// spec-codec round-trip test).
struct FaultPlan {
  std::uint64_t seed = 1;

  double torn_read = 0.0;    ///< P(short socket read)
  double torn_write = 0.0;   ///< P(short socket write)
  double read_reset = 0.0;   ///< P(socket read fails as connection reset)
  double write_reset = 0.0;  ///< P(socket write fails as connection reset)

  double job_delay = 0.0;           ///< P(job execution is delayed)
  std::uint32_t job_delay_ms = 20;  ///< delay amount when injected

  double queue_reject = 0.0;  ///< P(job admission rejected: queue-full shed)

  double cache_corrupt = 0.0;  ///< P(disk cache load is corrupted)
  double cache_enospc = 0.0;   ///< P(disk cache store fails, as if ENOSPC)

  bool operator==(const FaultPlan&) const = default;

  /// True when every probability is zero (the plan injects nothing).
  bool quiet() const;
};

/// Parses a `key=value,key=value` spec into a plan.  Unknown keys, junk
/// values, and probabilities outside [0, 1] throw std::invalid_argument
/// naming the offending token.  The empty string is the default plan.
FaultPlan parseFaultPlan(const std::string& spec);

/// Renders a plan back into a spec string parseFaultPlan accepts
/// (every field, fixed order — the round-trip is exact).
std::string formatFaultPlan(const FaultPlan& plan);

/// Per-site counters of decisions taken and faults injected.
struct FaultStats {
  std::array<std::uint64_t, kSiteCount> decisions{};
  std::array<std::uint64_t, kSiteCount> injected{};
  std::uint64_t totalInjected() const;
};

/// Turns a FaultPlan into deterministic injection decisions.  All methods
/// are thread-safe and lock-free (one relaxed fetch_add per decision).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Decision for the next socket read / write at this site.
  SocketFault onSocketRead() noexcept;
  SocketFault onSocketWrite() noexcept;

  /// Milliseconds to delay the next job execution; 0 = no delay.
  std::uint32_t jobDelayMs() noexcept;

  /// True when the next job admission should be rejected (load shed).
  bool rejectAdmission() noexcept;

  /// True when the next disk cache load should be corrupted.  When it
  /// returns true, corruptionPattern() picks which byte to damage.
  bool corruptCacheLoad() noexcept;

  /// True when the next disk cache store should fail (simulated ENOSPC).
  bool failCacheStore() noexcept;

  /// Deterministic 64-bit pattern for the most recent corruption decision;
  /// callers use it to choose a byte offset and xor mask.
  std::uint64_t corruptionPattern() noexcept;

  FaultStats stats() const;

 private:
  /// Uniform [0, 1) draw n for `site`, n advancing per call.
  double draw(Site site) noexcept;
  bool trial(Site site, double probability) noexcept;

  FaultPlan plan_;
  std::array<std::atomic<std::uint64_t>, kSiteCount> sequence_{};
  std::array<std::atomic<std::uint64_t>, kSiteCount> injected_{};
};

/// 64-bit FNV-1a over arbitrary bytes — the same hash the scenario
/// content-address uses, exposed here so the cache can checksum entries
/// without duplicating the constants.
std::uint64_t fnv1a64(const std::string& bytes);

}  // namespace lb::fault
