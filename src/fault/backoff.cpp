#include "fault/backoff.hpp"

#include <algorithm>

namespace lb::fault {

namespace {

std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unitDraw(std::uint64_t seed, std::uint64_t n) noexcept {
  return static_cast<double>(
             mix64(seed ^ 0x6261636b6f666621ULL ^ (n * 0x9e3779b97f4a7c15ULL)) >>
             11) *
         0x1.0p-53;
}

}  // namespace

RetryPolicy::RetryPolicy(std::chrono::milliseconds base,
                         std::chrono::milliseconds cap, std::uint64_t seed)
    : base_(base.count() < 1 ? std::chrono::milliseconds(1) : base),
      cap_(cap < base_ ? base_ : cap),
      seed_(seed) {}

std::chrono::milliseconds RetryPolicy::delay(int attempt) const {
  // Re-derive the recurrence from attempt 0 each call: attempts are tiny
  // (single digits) and recomputation keeps delay() pure / random-access.
  const double base = static_cast<double>(base_.count());
  const double cap = static_cast<double>(cap_.count());
  double prev = base;
  double d = base;
  for (int k = 0; k <= attempt; ++k) {
    const double u = unitDraw(seed_, static_cast<std::uint64_t>(k));
    d = std::min(cap, base + u * (3.0 * prev - base));
    prev = d;
  }
  return std::chrono::milliseconds(
      static_cast<std::chrono::milliseconds::rep>(d));
}

std::chrono::milliseconds RetryPolicy::delayWithin(
    int attempt, std::chrono::milliseconds remaining) const {
  if (remaining.count() <= 0) return std::chrono::milliseconds(0);
  return std::min(delay(attempt), remaining);
}

std::vector<std::chrono::milliseconds> RetryPolicy::schedule(
    int attempts) const {
  std::vector<std::chrono::milliseconds> out;
  out.reserve(static_cast<std::size_t>(std::max(attempts, 0)));
  for (int k = 0; k < attempts; ++k) out.push_back(delay(k));
  return out;
}

}  // namespace lb::fault
