#pragma once
// Deterministic decorrelated-jitter retry backoff.
//
// The schedule follows the AWS "decorrelated jitter" recurrence
//
//   d(0)   ~ uniform[base, 3*base)
//   d(k+1) ~ uniform[base, 3*d(k)),  clamped to cap
//
// which spreads concurrent retriers apart (no thundering herd) while the
// *expected* delay grows geometrically until it saturates at the cap —
// monotone non-decreasing in expectation, which tests/property_test.cpp
// pins.  Unlike the textbook version the draws here come from the
// SplitMix64 finalizer over (seed, attempt), so delay(k) is a pure
// function: equal seeds give bit-identical schedules (replayable chaos
// runs), different seeds give decorrelated ones.

#include <chrono>
#include <cstdint>
#include <vector>

namespace lb::fault {

class RetryPolicy {
 public:
  /// `base` is the minimum delay, `cap` the saturation ceiling (clamped up
  /// to base when smaller); `seed` selects the jitter stream.
  RetryPolicy(std::chrono::milliseconds base, std::chrono::milliseconds cap,
              std::uint64_t seed);

  /// Delay before retry `attempt` (0-based).  Pure: same (policy, attempt)
  /// always returns the same value.  Always in [base, cap].
  std::chrono::milliseconds delay(int attempt) const;

  /// delay(attempt) clamped so it never exceeds the remaining deadline
  /// budget; a non-positive budget yields zero.
  std::chrono::milliseconds delayWithin(
      int attempt, std::chrono::milliseconds remaining) const;

  /// The first `attempts` delays (a convenience for tests and docs).
  std::vector<std::chrono::milliseconds> schedule(int attempts) const;

  std::chrono::milliseconds base() const { return base_; }
  std::chrono::milliseconds cap() const { return cap_; }
  std::uint64_t seed() const { return seed_; }

 private:
  std::chrono::milliseconds base_;
  std::chrono::milliseconds cap_;
  std::uint64_t seed_;
};

}  // namespace lb::fault
