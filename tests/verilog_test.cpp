// Tests for the synthesizable Verilog export of the static lottery manager.
// Without a Verilog simulator in the toolchain these validate structure:
// ports, LUT contents matching the C++ model, LFSR taps, and the grant
// logic idioms the module must contain.

#include <gtest/gtest.h>

#include <string>

#include "hw/lottery_manager_hw.hpp"
#include "hw/verilog_export.hpp"
#include "sim/rng.hpp"

namespace lb::hw {
namespace {

std::size_t countOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(VerilogExportTest, ModuleShellAndPorts) {
  const std::string rtl = exportStaticManagerVerilog({1, 2, 3, 4});
  EXPECT_NE(rtl.find("module lottery_manager ("), std::string::npos);
  EXPECT_NE(rtl.find("input  wire clk"), std::string::npos);
  EXPECT_NE(rtl.find("input  wire rst_n"), std::string::npos);
  EXPECT_NE(rtl.find("input  wire [3:0] req"), std::string::npos);
  EXPECT_NE(rtl.find("output reg  [3:0] gnt"), std::string::npos);
  EXPECT_NE(rtl.find("endmodule"), std::string::npos);
}

TEST(VerilogExportTest, CustomModuleName) {
  VerilogOptions options;
  options.module_name = "my_arbiter";
  options.include_header_comment = false;
  const std::string rtl = exportStaticManagerVerilog({1, 1}, 0xACE1, options);
  EXPECT_NE(rtl.find("module my_arbiter ("), std::string::npos);
  EXPECT_EQ(rtl.find("Auto-generated"), std::string::npos);
}

TEST(VerilogExportTest, LutHasOneCasePerRequestMap) {
  const std::string rtl = exportStaticManagerVerilog({1, 2, 3, 4});
  // 16 explicit case rows for 4 masters, plus the default row.
  EXPECT_EQ(countOccurrences(rtl, ": begin sum0 = "), 17u);
  EXPECT_NE(rtl.find("default: begin"), std::string::npos);
}

TEST(VerilogExportTest, LutRowsMatchCppModel) {
  const std::vector<std::uint32_t> tickets = {1, 3, 4};  // power-of-two total
  StaticLotteryManagerHw model(tickets);
  const std::string rtl = exportStaticManagerVerilog(tickets);
  // Spot-check the all-pending row: partial sums 1, 4, 8 in `width` bits.
  const auto& row = model.table().row(0b111);
  ASSERT_EQ(row.back(), 8u);
  // width = ceil(log2(9)) = 4 bits
  EXPECT_NE(rtl.find("111: begin sum0 = 4'b0001; sum1 = 4'b0100; "
                     "sum2 = 4'b1000; total = 4'b1000; end"),
            std::string::npos);
}

TEST(VerilogExportTest, LfsrUsesMaximalTaps) {
  const std::string rtl = exportStaticManagerVerilog({1, 2, 3, 4});
  // 16-bit register with the canonical 0xB400 Galois mask.
  EXPECT_NE(rtl.find("reg [15:0] lfsr"), std::string::npos);
  EXPECT_NE(rtl.find("16'b1011010000000000"), std::string::npos);
}

TEST(VerilogExportTest, GrantLogicIdioms) {
  const std::string rtl = exportStaticManagerVerilog({1, 2, 3, 4});
  // Comparator bank, lowest-set-bit priority select, registered grant.
  EXPECT_NE(rtl.find("assign fires[0] = (number < sum0);"),
            std::string::npos);
  EXPECT_NE(rtl.find("fires & (~fires + "), std::string::npos);
  EXPECT_NE(rtl.find("always @(posedge clk or negedge rst_n)"),
            std::string::npos);
}

TEST(VerilogExportTest, SeedZeroIsCoerced) {
  const std::string rtl = exportStaticManagerVerilog({1, 1}, 0);
  // Reset must not load the LFSR's absorbing all-zero state.
  EXPECT_NE(rtl.find("lfsr <= 16'b0000000000000001"), std::string::npos);
}

TEST(VerilogExportTest, Validation) {
  EXPECT_THROW(exportStaticManagerVerilog({}), std::invalid_argument);
  EXPECT_THROW(
      exportStaticManagerVerilog(std::vector<std::uint32_t>(13, 1)),
      std::invalid_argument);
}

TEST(VerilogExportTest, TestbenchChecksInvariants) {
  const std::string tb = exportManagerTestbench({1, 2, 3, 4});
  EXPECT_NE(tb.find("module lottery_manager_tb;"), std::string::npos);
  EXPECT_NE(tb.find("(gnt & (gnt - 1)) != 0"), std::string::npos);  // one-hot
  EXPECT_NE(tb.find("$past(req)"), std::string::npos);  // subset-of-req
  EXPECT_NE(tb.find("$finish"), std::string::npos);
}

TEST(DynamicVerilogTest, ModuleShellAndPorts) {
  const std::string rtl = exportDynamicManagerVerilog(4, 8);
  EXPECT_NE(rtl.find("module dyn_lottery_manager ("), std::string::npos);
  EXPECT_NE(rtl.find("input  wire start"), std::string::npos);
  EXPECT_NE(rtl.find("input  wire [31:0] tickets"), std::string::npos);
  EXPECT_NE(rtl.find("output reg  done"), std::string::npos);
  EXPECT_NE(rtl.find("endmodule"), std::string::npos);
}

TEST(DynamicVerilogTest, ContainsAdderTreeAndModulo) {
  const std::string rtl = exportDynamicManagerVerilog(3, 6);
  // Prefix sums chain t0, t0+t1, t0+t1+t2.
  EXPECT_NE(rtl.find("sum2 = t0 + t1 + t2;"), std::string::npos);
  // sum width = ticket bits (6) + ceil(log2 masters) (2) = 8 bits.
  EXPECT_NE(rtl.find("wire [7:0] total = sum2;"), std::string::npos);
  // Restoring-division idiom.
  EXPECT_NE(rtl.find("(shifted >= {1'b0, total_q})"), std::string::npos);
}

TEST(DynamicVerilogTest, MaskingFollowsRequestMap) {
  const std::string rtl = exportDynamicManagerVerilog(2, 4);
  EXPECT_NE(rtl.find("req[0] ?"), std::string::npos);
  EXPECT_NE(rtl.find("req[1] ?"), std::string::npos);
}

TEST(DynamicVerilogTest, Validation) {
  EXPECT_THROW(exportDynamicManagerVerilog(0), std::invalid_argument);
  EXPECT_THROW(exportDynamicManagerVerilog(13), std::invalid_argument);
  EXPECT_THROW(exportDynamicManagerVerilog(4, 0), std::invalid_argument);
  EXPECT_THROW(exportDynamicManagerVerilog(4, 25), std::invalid_argument);
}

TEST(LfsrWidthTest, WidthAtLeastSnapsToTabulatedWidths) {
  EXPECT_EQ(sim::GaloisLfsr::widthAtLeast(1), 4u);
  EXPECT_EQ(sim::GaloisLfsr::widthAtLeast(16), 16u);
  EXPECT_EQ(sim::GaloisLfsr::widthAtLeast(18), 18u);
  EXPECT_EQ(sim::GaloisLfsr::widthAtLeast(19), 20u);
  EXPECT_EQ(sim::GaloisLfsr::widthAtLeast(21), 24u);
  EXPECT_EQ(sim::GaloisLfsr::widthAtLeast(25), 32u);
  EXPECT_THROW(sim::GaloisLfsr::widthAtLeast(33), std::invalid_argument);
}

TEST(LfsrWidthTest, WideTicketTotalsStillConstruct) {
  // 100:1 scales to 507:5 (total 512, 10 bits) — still a 16-bit LFSR.
  StaticLotteryManagerHw manager({100, 1});
  EXPECT_EQ(manager.ticketBits(), 10u);
  for (int i = 0; i < 100; ++i) {
    const int winner = manager.drawIndex(0b11);
    EXPECT_TRUE(winner == 0 || winner == 1);
  }
}

}  // namespace
}  // namespace lb::hw
