// Differential fuzz for the quiescence-aware kernel (KernelMode::kFast).
//
// The fast path claims bit-identity with the naive stepper: same statistics,
// same executed grant trace, same RNG draw counts, for every arbiter.  This
// suite generates seeded random systems — random arbiter kind, master count,
// bus protocol knobs (preemption, pipelining, wait states), bursty ON/OFF
// traffic, dynamic ticket schedules and backlog policies — runs each under
// both kernel modes, and compares everything observable.  Three fixed-seed
// runs are additionally pinned to golden digests so a regression that breaks
// both modes the same way is still caught.
//
// The same contract extends across the kernel's two dispatch paths (sealed
// std::variant fast path vs the type-erased virtual edge) and across the two
// replication runners (sequential runReplicated vs the lockstep-batched
// sim::BatchedReplicaRunner): every cross must be bit-identical, on the bus
// and on the mesh, and the batched path must reproduce the same pinned
// golden digests as the scalar one.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "arbiters/round_robin.hpp"
#include "arbiters/simple.hpp"
#include "arbiters/static_priority.hpp"
#include "arbiters/tdma.hpp"
#include "arbiters/token_ring.hpp"
#include "arbiters/weighted_round_robin.hpp"
#include "core/lottery.hpp"
#include "core/ticket_policy.hpp"
#include "noc/mesh.hpp"
#include "sim/batched.hpp"
#include "sim/rng.hpp"
#include "traffic/generator.hpp"
#include "traffic/testbed.hpp"

namespace {

using namespace lb;

constexpr int kArbiterKinds = 11;

std::unique_ptr<bus::IArbiter> makeArbiter(int kind, std::size_t masters,
                                           std::uint64_t seed,
                                           std::uint32_t burst) {
  std::vector<std::uint32_t> weights;
  for (std::size_t m = 0; m < masters; ++m)
    weights.push_back(static_cast<std::uint32_t>(1 + (seed >> m) % 4));
  switch (kind) {
    case 0:
      return std::make_unique<core::LotteryArbiter>(
          weights, core::LotteryRng::kExact, seed);
    case 1:
      return std::make_unique<core::LotteryArbiter>(
          weights, core::LotteryRng::kLfsr, seed | 1);
    case 2:
      return std::make_unique<core::DynamicLotteryArbiter>(seed);
    case 3: {  // unique priorities required: a seed-rotated permutation
      std::vector<unsigned> priorities;
      for (std::size_t m = 0; m < masters; ++m)
        priorities.push_back(
            static_cast<unsigned>((m + seed) % masters));
      return std::make_unique<arb::StaticPriorityArbiter>(priorities);
    }
    case 4: {  // single-level TDMA: the hardest hint (wheel-scan waits)
      std::vector<unsigned> slots(weights.begin(), weights.end());
      return std::make_unique<arb::TdmaArbiter>(
          arb::TdmaArbiter::contiguousWheel(slots), masters,
          /*two_level=*/false);
    }
    case 5: {
      std::vector<unsigned> slots(weights.begin(), weights.end());
      return std::make_unique<arb::TdmaArbiter>(
          arb::TdmaArbiter::interleavedWheel(slots), masters,
          /*two_level=*/true);
    }
    case 6:
      return std::make_unique<arb::RoundRobinArbiter>(masters);
    case 7:
      return std::make_unique<arb::WeightedRoundRobinArbiter>(weights, burst);
    case 8:  // token ring with real hop latency: stall decisions mutate state
      return std::make_unique<arb::TokenRingArbiter>(
          masters, static_cast<unsigned>(seed % 4));
    case 9:
      return std::make_unique<arb::RandomArbiter>(masters, seed);
    default:
      return std::make_unique<arb::FcfsArbiter>(masters);
  }
}

struct FuzzSystem {
  int arbiter_kind = 0;
  std::uint64_t arbiter_seed = 1;
  bus::BusConfig config;
  std::vector<traffic::TrafficParams> traffic;
  bool ticket_schedule = false;
  bool backlog_policy = false;
  sim::Cycle cycles = 0;
};

FuzzSystem randomSystem(sim::Xoshiro256ss& rng) {
  FuzzSystem sys;
  sys.arbiter_kind = static_cast<int>(rng.next() % kArbiterKinds);
  sys.arbiter_seed = rng.next() | 1;
  const std::size_t masters = 2 + rng.next() % 5;
  sys.config.num_masters = masters;
  sys.config.max_burst_words = 4u << (rng.next() % 3);
  sys.config.pipelined_arbitration = rng.next() % 2 == 0;
  sys.config.arb_overhead_cycles = 1 + static_cast<std::uint32_t>(rng.next() % 3);
  sys.config.allow_preemption = rng.next() % 3 == 0;
  sys.config.slaves = {bus::SlaveConfig{
      "mem", static_cast<std::uint32_t>(rng.next() % 3)}};
  for (std::size_t m = 0; m < masters; ++m) {
    traffic::TrafficParams p;
    switch (rng.next() % 3) {
      case 0:
        p.size = traffic::SizeDist::fixed(
            1 + static_cast<std::uint32_t>(rng.next() % 16));
        break;
      case 1:
        p.size = traffic::SizeDist::uniform(
            1, 2 + static_cast<std::uint32_t>(rng.next() % 15));
        break;
      default:
        p.size = traffic::SizeDist::geometric(
            2 + static_cast<std::uint32_t>(rng.next() % 8), 32);
        break;
    }
    // Bias towards sparse traffic so the fast path actually has stretches
    // to skip; a third of the sources stay saturated.
    p.gap = rng.next() % 3 == 0
                ? traffic::GapDist::fixed(rng.next() % 4)
                : traffic::GapDist::geometric(16 + rng.next() % 512);
    if (rng.next() % 2 == 0) {  // bursty ON/OFF modulation
      p.mean_on = 20 + rng.next() % 200;
      p.mean_off = 20 + rng.next() % 2000;
    }
    p.max_outstanding = 1 + static_cast<std::uint32_t>(rng.next() % 4);
    p.first_arrival = rng.next() % 64;
    p.seed = rng.next() | 1;
    sys.traffic.push_back(p);
  }
  sys.ticket_schedule = rng.next() % 3 == 0;
  sys.backlog_policy = !sys.ticket_schedule && rng.next() % 3 == 0;
  sys.cycles = 20000 + rng.next() % 30000;
  return sys;
}

struct Outcome {
  traffic::TestbedResult result;
  std::vector<bus::GrantRecord> trace;
  std::uint64_t lottery_draws = 0;
  std::uint64_t ticket_updates = 0;
};

/// A built-but-not-yet-run fuzz system.  Heap-allocated so the setup /
/// teardown lambdas can capture a stable pointer; the batched tests keep
/// several alive at once and step their kernels through a
/// sim::BatchedReplicaRunner.
struct SystemHarness {
  FuzzSystem sys;
  std::unique_ptr<core::PeriodicTicketSchedule> schedule;
  std::unique_ptr<core::BacklogTicketPolicy> policy;
  const core::LotteryArbiter* exact = nullptr;
  const core::DynamicLotteryArbiter* dyn = nullptr;
  Outcome out;
  std::unique_ptr<traffic::TestbedInstance> instance;
};

std::unique_ptr<SystemHarness> buildSystem(const FuzzSystem& sys,
                                           sim::KernelMode mode, bool sealed) {
  auto harness = std::make_unique<SystemHarness>();
  harness->sys = sys;
  auto arbiter = makeArbiter(sys.arbiter_kind, sys.config.num_masters,
                             sys.arbiter_seed, sys.config.max_burst_words);
  harness->exact = dynamic_cast<const core::LotteryArbiter*>(arbiter.get());
  harness->dyn =
      dynamic_cast<const core::DynamicLotteryArbiter*>(arbiter.get());

  SystemHarness* raw = harness.get();
  traffic::TestbedOptions options;
  options.kernel_mode = mode;
  options.sealed = sealed;
  options.setup = [raw](bus::Bus& bus, sim::CycleKernel& kernel) {
    bus.setTraceEnabled(true);
    const std::size_t n = raw->sys.config.num_masters;
    if (raw->sys.ticket_schedule) {
      std::vector<core::PeriodicTicketSchedule::Entry> entries;
      for (sim::Cycle at = 1000; at < raw->sys.cycles; at += 7777) {
        std::vector<std::uint32_t> tickets(n, 1);
        tickets[(at / 7777) % n] = 8;
        entries.push_back({at, std::move(tickets)});
      }
      raw->schedule =
          std::make_unique<core::PeriodicTicketSchedule>(bus, entries);
      kernel.attach(*raw->schedule);
    } else if (raw->sys.backlog_policy) {
      raw->policy = std::make_unique<core::BacklogTicketPolicy>(
          bus, std::vector<std::uint32_t>(n, 1), 0.25, 32, 500);
      kernel.attach(*raw->policy);
    }
  };
  options.teardown = [raw](bus::Bus& bus) { raw->out.trace = bus.trace(); };
  harness->instance = std::make_unique<traffic::TestbedInstance>(
      sys.config, std::move(arbiter), sys.traffic, std::move(options));
  return harness;
}

Outcome finishSystem(SystemHarness& harness) {
  harness.out.result = harness.instance->finish(harness.sys.cycles);
  if (harness.exact != nullptr)
    harness.out.lottery_draws = harness.exact->draws();
  if (harness.dyn != nullptr) harness.out.lottery_draws = harness.dyn->draws();
  if (harness.policy != nullptr)
    harness.out.ticket_updates = harness.policy->updates();
  return std::move(harness.out);
}

Outcome runSystem(const FuzzSystem& sys, sim::KernelMode mode,
                  bool sealed = true) {
  auto harness = buildSystem(sys, mode, sealed);
  harness->instance->runWarmup();
  harness->instance->kernel().run(sys.cycles);
  return finishSystem(*harness);
}

void expectIdentical(const Outcome& naive, const Outcome& fast,
                     const std::string& label) {
  EXPECT_EQ(naive.result.bandwidth_fraction, fast.result.bandwidth_fraction)
      << label;
  EXPECT_EQ(naive.result.traffic_share, fast.result.traffic_share) << label;
  EXPECT_EQ(naive.result.unutilized_fraction, fast.result.unutilized_fraction)
      << label;
  EXPECT_EQ(naive.result.cycles_per_word, fast.result.cycles_per_word)
      << label;
  EXPECT_EQ(naive.result.mean_message_latency,
            fast.result.mean_message_latency)
      << label;
  EXPECT_EQ(naive.result.messages_completed, fast.result.messages_completed)
      << label;
  EXPECT_EQ(naive.result.grants, fast.result.grants) << label;
  EXPECT_EQ(naive.result.preemptions, fast.result.preemptions) << label;
  EXPECT_EQ(naive.lottery_draws, fast.lottery_draws) << label;
  EXPECT_EQ(naive.ticket_updates, fast.ticket_updates) << label;
  ASSERT_EQ(naive.trace.size(), fast.trace.size()) << label;
  for (std::size_t i = 0; i < naive.trace.size(); ++i) {
    EXPECT_EQ(naive.trace[i].master, fast.trace[i].master)
        << label << " grant " << i;
    EXPECT_EQ(naive.trace[i].start, fast.trace[i].start)
        << label << " grant " << i;
    EXPECT_EQ(naive.trace[i].words, fast.trace[i].words)
        << label << " grant " << i;
  }
}

/// FNV-1a over the full outcome, for the pinned goldens: the grant trace,
/// the counters, and the raw bit patterns of every double.
std::uint64_t digest(const Outcome& out) {
  std::uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFF;
      hash *= 1099511628211ull;
    }
  };
  const auto mix_doubles = [&mix](const std::vector<double>& values) {
    for (const double v : values) {
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof bits);
      mix(bits);
    }
  };
  for (const bus::GrantRecord& g : out.trace) {
    mix(static_cast<std::uint64_t>(g.master));
    mix(g.start);
    mix(g.words);
  }
  mix_doubles(out.result.bandwidth_fraction);
  mix_doubles(out.result.cycles_per_word);
  mix_doubles(out.result.mean_message_latency);
  for (const std::uint64_t m : out.result.messages_completed) mix(m);
  mix(out.result.grants);
  mix(out.result.preemptions);
  mix(out.lottery_draws);
  mix(out.ticket_updates);
  return hash;
}

std::string label(const FuzzSystem& sys, std::uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         " arbiter_kind=" + std::to_string(sys.arbiter_kind) +
         " masters=" + std::to_string(sys.config.num_masters) +
         " preempt=" + std::to_string(sys.config.allow_preemption) +
         " cycles=" + std::to_string(sys.cycles);
}

TEST(KernelDiffFuzzTest, RandomSystemsAreBitIdenticalAcrossModes) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    sim::Xoshiro256ss rng(seed * 0x9e3779b97f4a7c15ull);
    const FuzzSystem sys = randomSystem(rng);
    const Outcome naive = runSystem(sys, sim::KernelMode::kNaive);
    const Outcome fast = runSystem(sys, sim::KernelMode::kFast);
    expectIdentical(naive, fast, label(sys, seed));
  }
}

TEST(KernelDiffFuzzTest, RandomSystemsAreBitIdenticalAcrossDispatchPaths) {
  // Sealed (std::variant, devirtualized) vs type-erased virtual dispatch:
  // the kernel promises the fast path is an inlining optimization only.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    sim::Xoshiro256ss rng(seed * 0x9e3779b97f4a7c15ull);
    const FuzzSystem sys = randomSystem(rng);
    const Outcome sealed =
        runSystem(sys, sim::KernelMode::kFast, /*sealed=*/true);
    const Outcome virt =
        runSystem(sys, sim::KernelMode::kFast, /*sealed=*/false);
    expectIdentical(virt, sealed, label(sys, seed) + " dispatch");
  }
}

TEST(KernelDiffFuzzTest, EveryArbiterKindIsBitIdenticalAcrossModes) {
  // The sweep above samples kinds; this loop guarantees full coverage, with
  // bursty sparse traffic so quiescent stretches actually occur.
  for (int kind = 0; kind < kArbiterKinds; ++kind) {
    FuzzSystem sys;
    sys.arbiter_kind = kind;
    sys.arbiter_seed = 0xabcdefull + kind;
    sys.config.num_masters = 4;
    sys.config.slaves = {bus::SlaveConfig{"mem", 1}};
    sys.config.allow_preemption = kind % 2 == 0;
    sys.config.pipelined_arbitration = kind % 3 != 0;
    for (std::size_t m = 0; m < 4; ++m) {
      traffic::TrafficParams p;
      p.size = traffic::SizeDist::uniform(1, 16);
      p.gap = traffic::GapDist::geometric(100);
      p.mean_on = 50;
      p.mean_off = 400;
      p.seed = 100 + m;
      sys.traffic.push_back(p);
    }
    sys.cycles = 40000;
    const Outcome naive = runSystem(sys, sim::KernelMode::kNaive);
    const Outcome fast = runSystem(sys, sim::KernelMode::kFast);
    const Outcome virt =
        runSystem(sys, sim::KernelMode::kFast, /*sealed=*/false);
    expectIdentical(naive, fast, "kind=" + std::to_string(kind));
    expectIdentical(naive, virt, "kind=" + std::to_string(kind) + " virtual");
    EXPECT_GT(fast.result.grants, 0u) << "kind=" << kind;
  }
}

TEST(KernelDiffFuzzTest, BatchedReplicationMatchesSequentialForEveryKind) {
  // runReplicated vs runReplicatedBatched must aggregate bit-identically for
  // every arbiter kind.  The chunk deliberately does not divide the cycle
  // budget, so the lockstep loop's remainder slice is exercised too.
  const auto& cls = traffic::trafficClass("T2");
  for (int kind = 0; kind < kArbiterKinds; ++kind) {
    const traffic::ArbiterFactory factory = [kind](std::uint64_t seed) {
      return makeArbiter(kind, 4, seed | 1, 16);
    };
    const auto sequential =
        traffic::runReplicated(traffic::defaultBusConfig(4), factory, cls,
                               15000, 5, 900 + kind);
    traffic::BatchedReplicationOptions batch;
    batch.chunk = 997;
    batch.group = 2;
    const auto batched = traffic::runReplicatedBatched(
        traffic::defaultBusConfig(4), factory, cls, 15000, 5, 900 + kind,
        batch);
    const std::string who = "kind=" + std::to_string(kind);
    ASSERT_EQ(sequential.replications, batched.replications) << who;
    ASSERT_EQ(sequential.bandwidth_fraction.size(),
              batched.bandwidth_fraction.size())
        << who;
    for (std::size_t m = 0; m < sequential.bandwidth_fraction.size(); ++m) {
      const auto expect_metric = [&](const traffic::ReplicatedMetric& a,
                                     const traffic::ReplicatedMetric& b,
                                     const char* what) {
        EXPECT_EQ(a.mean, b.mean) << who << " master " << m << " " << what;
        EXPECT_EQ(a.stddev, b.stddev) << who << " master " << m << " " << what;
        EXPECT_EQ(a.min, b.min) << who << " master " << m << " " << what;
        EXPECT_EQ(a.max, b.max) << who << " master " << m << " " << what;
      };
      expect_metric(sequential.bandwidth_fraction[m],
                    batched.bandwidth_fraction[m], "bandwidth");
      expect_metric(sequential.cycles_per_word[m], batched.cycles_per_word[m],
                    "cycles/word");
    }
    EXPECT_EQ(sequential.unutilized_fraction.mean,
              batched.unutilized_fraction.mean)
        << who;
  }
}

// ---------------------------------------------------------------------------
// Mesh NoC differential fuzz
// ---------------------------------------------------------------------------
//
// Same contract over the mesh subsystem: random topologies, VC shapes,
// router pipeline depths, destination patterns, and per-port arbiter kinds;
// both kernel modes must agree on every per-source statistic, the full
// router grant trace, and the RNG draw counts of every router arbiter —
// which transitively covers routers, VC credit accounting, and NIs, since
// any divergence in those perturbs some grant or draw.

struct MeshFuzzSystem {
  noc::MeshConfig config;
  int arbiter_kind = 0;
  std::uint64_t arbiter_seed = 1;
  std::uint32_t burst = 16;
  std::vector<traffic::TrafficParams> traffic;
  sim::Cycle cycles = 0;
};

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

MeshFuzzSystem randomMeshSystem(sim::Xoshiro256ss& rng) {
  MeshFuzzSystem sys;
  sys.config.width = 2 + rng.next() % 3;
  sys.config.height = 2 + rng.next() % 3;
  sys.config.vc_count = 1 + static_cast<std::uint32_t>(rng.next() % 2);
  sys.config.vc_depth = 32u << (rng.next() % 2);
  sys.config.router_delay = 1 + static_cast<std::uint32_t>(rng.next() % 3);
  switch (rng.next() % 4) {
    case 0: sys.config.pattern = noc::Pattern::kUniform; break;
    case 1: sys.config.pattern = noc::Pattern::kNeighbor; break;
    case 2: sys.config.pattern = noc::Pattern::kHotspot; break;
    default:
      sys.config.pattern = sys.config.width == sys.config.height
                               ? noc::Pattern::kTranspose
                               : noc::Pattern::kUniform;
      break;
  }
  sys.config.pattern_seed = rng.next() | 1;
  sys.config.record_grant_trace = true;
  sys.arbiter_kind = static_cast<int>(rng.next() % kArbiterKinds);
  sys.arbiter_seed = rng.next() | 1;
  sys.burst = 4u << (rng.next() % 3);
  const std::size_t nodes = sys.config.width * sys.config.height;
  for (std::size_t n = 0; n < nodes; ++n) {
    traffic::TrafficParams p;
    // Packet sizes must fit a VC (the NI rejects oversized messages).
    p.size = rng.next() % 2 == 0
                 ? traffic::SizeDist::fixed(
                       1 + static_cast<std::uint32_t>(rng.next() % 16))
                 : traffic::SizeDist::uniform(
                       1, 2 + static_cast<std::uint32_t>(rng.next() % 15));
    // Sparse bias so the fast path has quiescent stretches to skip.
    p.gap = rng.next() % 3 == 0
                ? traffic::GapDist::fixed(rng.next() % 4)
                : traffic::GapDist::geometric(16 + rng.next() % 512);
    if (rng.next() % 2 == 0) {
      p.mean_on = 20 + rng.next() % 200;
      p.mean_off = 20 + rng.next() % 2000;
    }
    p.max_outstanding = 1 + static_cast<std::uint32_t>(rng.next() % 8);
    p.first_arrival = rng.next() % 64;
    p.seed = rng.next() | 1;
    sys.traffic.push_back(p);
  }
  sys.cycles = 15000 + rng.next() % 15000;
  return sys;
}

struct MeshOutcome {
  noc::NocStats stats;
  std::vector<noc::NocGrantRecord> trace;
  std::uint64_t draws = 0;
};

/// A built-but-not-yet-run mesh replica; the batched tests keep several
/// alive and step their kernels in lockstep.
struct MeshReplica {
  MeshFuzzSystem sys;
  std::unique_ptr<noc::MeshNetwork> mesh;
  std::unique_ptr<sim::CycleKernel> kernel;
  std::vector<std::unique_ptr<traffic::TrafficSource>> sources;
};

MeshReplica buildMeshReplica(const MeshFuzzSystem& sys, sim::KernelMode mode) {
  MeshReplica rep;
  rep.sys = sys;
  noc::MeshConfig config = sys.config;
  const int kind = sys.arbiter_kind;
  const std::uint64_t arbiter_seed = sys.arbiter_seed;
  const std::uint32_t burst = sys.burst;
  config.arbiter_factory = [kind, arbiter_seed, burst](noc::NodeId router,
                                                       int port) {
    // Stateless per-(router, port) seed: instantiation order independent.
    const std::uint64_t seed =
        mix64(arbiter_seed ^
              mix64(static_cast<std::uint64_t>(router) * noc::kNumPorts +
                    static_cast<std::uint64_t>(port) + 1)) |
        1;
    return makeArbiter(kind, noc::kNumPorts, seed, burst);
  };
  rep.mesh = std::make_unique<noc::MeshNetwork>(config);
  rep.kernel = std::make_unique<sim::CycleKernel>();
  rep.kernel->setMode(mode);
  for (std::size_t n = 0; n < rep.mesh->nodes(); ++n) {
    rep.sources.push_back(std::make_unique<traffic::TrafficSource>(
        rep.mesh->ni(static_cast<noc::NodeId>(n)), static_cast<int>(n),
        sys.traffic[n]));
    rep.kernel->attach(*rep.sources.back());
  }
  rep.mesh->attachTo(*rep.kernel);
  return rep;
}

MeshOutcome collectMeshOutcome(MeshReplica& rep) {
  MeshOutcome out;
  out.stats = rep.mesh->stats();
  out.trace = rep.mesh->grantTrace();
  for (std::size_t n = 0; n < rep.mesh->nodes(); ++n) {
    for (int port = 0; port < noc::kNumPorts; ++port) {
      const bus::IArbiter& arb =
          rep.mesh->router(static_cast<noc::NodeId>(n)).arbiter(port);
      if (const auto* a = dynamic_cast<const core::LotteryArbiter*>(&arb))
        out.draws += a->draws();
      if (const auto* a =
              dynamic_cast<const core::DynamicLotteryArbiter*>(&arb))
        out.draws += a->draws();
    }
  }
  return out;
}

MeshOutcome runMeshSystem(const MeshFuzzSystem& sys, sim::KernelMode mode) {
  MeshReplica rep = buildMeshReplica(sys, mode);
  rep.kernel->run(sys.cycles);
  return collectMeshOutcome(rep);
}

void expectMeshIdentical(const MeshOutcome& naive, const MeshOutcome& fast,
                         const std::string& label) {
  ASSERT_EQ(naive.stats.sources.size(), fast.stats.sources.size()) << label;
  for (std::size_t n = 0; n < naive.stats.sources.size(); ++n) {
    const auto& a = naive.stats.sources[n];
    const auto& b = fast.stats.sources[n];
    EXPECT_EQ(a.packets_injected, b.packets_injected) << label << " src " << n;
    EXPECT_EQ(a.flits_injected, b.flits_injected) << label << " src " << n;
    EXPECT_EQ(a.packets_delivered, b.packets_delivered)
        << label << " src " << n;
    EXPECT_EQ(a.flits_delivered, b.flits_delivered) << label << " src " << n;
    EXPECT_EQ(a.latency_sum, b.latency_sum) << label << " src " << n;
  }
  EXPECT_EQ(naive.stats.grants, fast.stats.grants) << label;
  EXPECT_EQ(naive.draws, fast.draws) << label;
  ASSERT_EQ(naive.trace.size(), fast.trace.size()) << label;
  for (std::size_t i = 0; i < naive.trace.size(); ++i) {
    const auto& a = naive.trace[i];
    const auto& b = fast.trace[i];
    EXPECT_TRUE(a.cycle == b.cycle && a.router == b.router &&
                a.output_port == b.output_port &&
                a.input_port == b.input_port && a.vc == b.vc &&
                a.source == b.source && a.tag == b.tag && a.flits == b.flits)
        << label << " grant " << i;
  }
}

std::string meshLabel(const MeshFuzzSystem& sys, std::uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         " mesh=" + std::to_string(sys.config.width) + "x" +
         std::to_string(sys.config.height) +
         " arbiter_kind=" + std::to_string(sys.arbiter_kind) +
         " vcs=" + std::to_string(sys.config.vc_count) +
         " rd=" + std::to_string(sys.config.router_delay) +
         " cycles=" + std::to_string(sys.cycles);
}

TEST(KernelDiffFuzzTest, RandomMeshSystemsAreBitIdenticalAcrossModes) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    sim::Xoshiro256ss rng(seed * 0xd1b54a32d192ed03ull);
    const MeshFuzzSystem sys = randomMeshSystem(rng);
    const MeshOutcome naive = runMeshSystem(sys, sim::KernelMode::kNaive);
    const MeshOutcome fast = runMeshSystem(sys, sim::KernelMode::kFast);
    expectMeshIdentical(naive, fast, meshLabel(sys, seed));
  }
}

TEST(KernelDiffFuzzTest, EveryArbiterKindIsBitIdenticalOnAMesh) {
  // Full arbiter-kind coverage on a fixed 3x3 with bursty sparse traffic.
  for (int kind = 0; kind < kArbiterKinds; ++kind) {
    MeshFuzzSystem sys;
    sys.config.width = 3;
    sys.config.height = 3;
    sys.config.record_grant_trace = true;
    sys.config.pattern = noc::Pattern::kUniform;
    sys.config.pattern_seed = 99;
    sys.arbiter_kind = kind;
    sys.arbiter_seed = 0xabcdefull + kind;
    for (std::size_t n = 0; n < 9; ++n) {
      traffic::TrafficParams p;
      p.size = traffic::SizeDist::uniform(1, 16);
      p.gap = traffic::GapDist::geometric(100);
      p.mean_on = 50;
      p.mean_off = 400;
      p.seed = 100 + n;
      sys.traffic.push_back(p);
    }
    sys.cycles = 30000;
    const MeshOutcome naive = runMeshSystem(sys, sim::KernelMode::kNaive);
    const MeshOutcome fast = runMeshSystem(sys, sim::KernelMode::kFast);
    expectMeshIdentical(naive, fast, "mesh kind=" + std::to_string(kind));
    EXPECT_GT(fast.stats.grants, 0u) << "mesh kind=" << kind;
  }
}

TEST(KernelDiffFuzzTest, BatchedMeshReplicasMatchSequentialStepping) {
  // Four random mesh systems (equalized cycle budgets) stepped one at a time
  // vs fresh copies stepped in lockstep by a BatchedReplicaRunner whose
  // chunk does not divide the budget: per-replica stats, grant traces and
  // draw counts must match exactly.
  constexpr sim::Cycle kCycles = 20000;
  std::vector<MeshFuzzSystem> systems;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::Xoshiro256ss rng(seed * 0xd1b54a32d192ed03ull);
    MeshFuzzSystem sys = randomMeshSystem(rng);
    sys.cycles = kCycles;
    systems.push_back(std::move(sys));
  }
  std::vector<MeshOutcome> sequential;
  for (const MeshFuzzSystem& sys : systems)
    sequential.push_back(runMeshSystem(sys, sim::KernelMode::kFast));

  std::vector<MeshReplica> replicas;
  for (const MeshFuzzSystem& sys : systems)
    replicas.push_back(buildMeshReplica(sys, sim::KernelMode::kFast));
  sim::BatchedReplicaRunner::Options options;
  options.chunk = 777;
  options.group = 3;
  sim::BatchedReplicaRunner runner(options);
  for (MeshReplica& rep : replicas) runner.add(*rep.kernel);
  runner.run(kCycles);
  for (std::size_t r = 0; r < replicas.size(); ++r)
    expectMeshIdentical(sequential[r], collectMeshOutcome(replicas[r]),
                        "batched mesh replica " + std::to_string(r));
}

/// The pinned fuzz-seed digests: catch a change that alters behavior in both
/// kernel modes (or both dispatch paths, or both replication runners) at
/// once, which the differential checks cannot see.  Update these only with a
/// CHANGES.md note explaining the behavioral change.
constexpr struct {
  std::uint64_t seed;
  std::uint64_t digest;
} kGoldens[] = {
    {3, 0xe78405cc4f1e7d59ull},   // fcfs, 5 masters, preemption
    {11, 0x8b5149160315eaa6ull},  // exact lottery, 4 masters
    {27, 0xf37419c8e3dbc0e2ull},  // static priority, 6 masters, preemption
};

TEST(KernelDiffFuzzTest, GoldenDigestsAreStable) {
  // Every (kernel mode, dispatch path) combination must reproduce the same
  // pinned digest — the naive-virtual run is the least-optimized reference,
  // the fast-sealed run is the production configuration.
  for (const auto& golden : kGoldens) {
    sim::Xoshiro256ss rng(golden.seed * 0x9e3779b97f4a7c15ull);
    const FuzzSystem sys = randomSystem(rng);
    const Outcome sealed =
        runSystem(sys, sim::KernelMode::kFast, /*sealed=*/true);
    const Outcome virt =
        runSystem(sys, sim::KernelMode::kFast, /*sealed=*/false);
    const Outcome naive =
        runSystem(sys, sim::KernelMode::kNaive, /*sealed=*/false);
    EXPECT_EQ(digest(sealed), golden.digest)
        << label(sys, golden.seed) << std::hex << " fast-sealed digest 0x"
        << digest(sealed);
    EXPECT_EQ(digest(virt), golden.digest)
        << label(sys, golden.seed) << std::hex << " fast-virtual digest 0x"
        << digest(virt);
    EXPECT_EQ(digest(naive), golden.digest)
        << label(sys, golden.seed) << std::hex << " naive-virtual digest 0x"
        << digest(naive);
  }
}

TEST(KernelDiffFuzzTest, BatchedGoldenDigestsAreStable) {
  // Replica 0 of a lockstep batch is the exact pinned system; replicas 1..3
  // are reseeded decoys sharing the batch.  Stepping all four through a
  // BatchedReplicaRunner must leave replica 0's digest equal to the golden —
  // the batched path cannot perturb a replica, no matter its batchmates.
  for (const auto& golden : kGoldens) {
    sim::Xoshiro256ss rng(golden.seed * 0x9e3779b97f4a7c15ull);
    const FuzzSystem base = randomSystem(rng);
    std::vector<std::unique_ptr<SystemHarness>> replicas;
    for (std::uint64_t r = 0; r < 4; ++r) {
      FuzzSystem sys = base;
      if (r > 0) {
        sys.arbiter_seed = mix64(base.arbiter_seed + r) | 1;
        for (traffic::TrafficParams& p : sys.traffic)
          p.seed = mix64(p.seed + r) | 1;
      }
      replicas.push_back(buildSystem(sys, sim::KernelMode::kFast,
                                     /*sealed=*/true));
    }
    sim::BatchedReplicaRunner::Options options;
    options.chunk = 997;  // deliberately does not divide the cycle budget
    options.group = 2;
    sim::BatchedReplicaRunner runner(options);
    for (auto& rep : replicas) runner.add(rep->instance->kernel());
    runner.run(base.cycles);
    const Outcome replica0 = finishSystem(*replicas[0]);
    EXPECT_EQ(digest(replica0), golden.digest)
        << label(base, golden.seed) << std::hex << " batched digest 0x"
        << digest(replica0);
  }
}

}  // namespace
