// Tests for the QoS architecture advisor.

#include <gtest/gtest.h>

#include <vector>

#include "advisor/advisor.hpp"
#include "traffic/classes.hpp"
#include "traffic/testbed.hpp"

namespace lb::advisor {
namespace {

std::vector<traffic::TrafficParams> saturatedTraffic() {
  std::vector<traffic::TrafficParams> params(4);
  for (std::size_t m = 0; m < 4; ++m) {
    params[m].size = traffic::SizeDist::fixed(16);
    params[m].gap = traffic::GapDist::fixed(0);
    params[m].max_outstanding = 4;
    params[m].seed = 30 + m;
  }
  return params;
}

TEST(AdvisorTest, Validation) {
  QosGoals goals;
  goals.min_bandwidth_share = {0.5, 0.5};  // arity 2 vs 4 masters
  goals.max_cycles_per_word = {0, 0};
  EXPECT_THROW(advise(goals, saturatedTraffic(),
                      traffic::defaultBusConfig(4), 1000),
               std::invalid_argument);

  goals.min_bandwidth_share = {0.5, 0.6, 0.0, 0.0};  // > 100%
  goals.max_cycles_per_word = {0, 0, 0, 0};
  EXPECT_THROW(advise(goals, saturatedTraffic(),
                      traffic::defaultBusConfig(4), 1000),
               std::invalid_argument);

  goals.min_bandwidth_share = {-0.1, 0.0, 0.0, 0.0};
  EXPECT_THROW(advise(goals, saturatedTraffic(),
                      traffic::defaultBusConfig(4), 1000),
               std::invalid_argument);
}

TEST(AdvisorTest, EvaluatesTheFullCandidateSpace) {
  QosGoals goals;
  goals.min_bandwidth_share = {0.3, 0.0, 0.0, 0.0};
  goals.max_cycles_per_word = {0, 0, 0, 0};
  const auto rec = advise(goals, saturatedTraffic(),
                          traffic::defaultBusConfig(4), 30000);
  ASSERT_EQ(rec.candidates.size(), 4u);
  EXPECT_EQ(rec.candidates[0].architecture, "lottery");
  EXPECT_EQ(rec.candidates[1].architecture, "weighted-rr");
  EXPECT_EQ(rec.candidates[2].architecture, "tdma-2level");
  EXPECT_EQ(rec.candidates[3].architecture, "static-priority");
}

TEST(AdvisorTest, BandwidthReservationsAreMetByWeightedArbiters) {
  QosGoals goals;
  goals.min_bandwidth_share = {0.45, 0.25, 0.0, 0.0};
  goals.max_cycles_per_word = {0, 0, 0, 0};
  const auto rec = advise(goals, saturatedTraffic(),
                          traffic::defaultBusConfig(4), 60000, 5);
  ASSERT_TRUE(rec.found);
  // The weighted candidates should satisfy; priority cannot guarantee the
  // second master's share against the top master under saturation.
  EXPECT_TRUE(rec.candidates[0].satisfied) << "lottery";
  EXPECT_TRUE(rec.candidates[1].satisfied) << "weighted-rr";
  EXPECT_GE(rec.best.measured.bandwidth_fraction[0], 0.45 - 1e-9);
  EXPECT_GE(rec.best.measured.bandwidth_fraction[1], 0.25 - 1e-9);
}

TEST(AdvisorTest, ImpossibleGoalsReportViolations) {
  // Master 0 wants 80% of the bus AND everyone else wants 1.2 cycles/word
  // under full saturation: nothing can satisfy this.
  QosGoals goals;
  goals.min_bandwidth_share = {0.8, 0.0, 0.0, 0.0};
  goals.max_cycles_per_word = {0, 1.2, 1.2, 1.2};
  const auto rec = advise(goals, saturatedTraffic(),
                          traffic::defaultBusConfig(4), 30000);
  EXPECT_FALSE(rec.found);
  for (const auto& candidate : rec.candidates) {
    EXPECT_FALSE(candidate.satisfied) << candidate.architecture;
    EXPECT_FALSE(candidate.violations.empty()) << candidate.architecture;
    EXPECT_LT(candidate.worst_margin, 0.0) << candidate.architecture;
  }
}

TEST(AdvisorTest, Table1StyleGoalsRejectStaticPriority) {
  // The paper's Table-1 situation: bandwidth floors for three best-effort
  // masters plus a latency bound on the fourth, under saturation.  Static
  // priority nails the latency but starves the floors; the weighted
  // disciplines satisfy everything.
  QosGoals goals;
  goals.min_bandwidth_share = {0.08, 0.15, 0.25, 0.0};
  goals.max_cycles_per_word = {0, 0, 0, 4.0};
  // The latency-critical master is closed-loop (one outstanding request);
  // the best-effort masters queue deep.
  auto params = saturatedTraffic();
  params[3].max_outstanding = 1;
  const auto rec =
      advise(goals, params, traffic::defaultBusConfig(4), 60000, 5);
  ASSERT_TRUE(rec.found);

  const CandidateReport* priority = nullptr;
  const CandidateReport* lottery = nullptr;
  for (const auto& candidate : rec.candidates) {
    if (candidate.architecture == "static-priority") priority = &candidate;
    if (candidate.architecture == "lottery") lottery = &candidate;
  }
  ASSERT_NE(priority, nullptr);
  ASSERT_NE(lottery, nullptr);
  EXPECT_TRUE(lottery->satisfied);
  EXPECT_FALSE(priority->satisfied);  // starves the bandwidth floors
  EXPECT_FALSE(rec.best.architecture == "static-priority");
}

TEST(AdvisorTest, PhaseLockedTrafficShowsTdmaPenalty) {
  // Under the phase-locked periodic class T6, the lottery's measured
  // latency for the top component beats TDMA's regardless of which side of
  // a goal they land on (the wheel the advisor derives is co-designed to
  // the burst size, which softens — but does not erase — the penalty).
  QosGoals goals;
  goals.min_bandwidth_share = {0.0, 0.0, 0.0, 0.0};
  goals.max_cycles_per_word = {0, 0, 0, 3.0};
  auto params = traffic::paramsFor(traffic::trafficClass("T6"), 4, 3);
  const auto rec =
      advise(goals, params, traffic::defaultBusConfig(4), 60000, 5);
  ASSERT_TRUE(rec.found);

  const CandidateReport* tdma = nullptr;
  const CandidateReport* lottery = nullptr;
  for (const auto& candidate : rec.candidates) {
    if (candidate.architecture == "tdma-2level") tdma = &candidate;
    if (candidate.architecture == "lottery") lottery = &candidate;
  }
  ASSERT_NE(tdma, nullptr);
  ASSERT_NE(lottery, nullptr);
  EXPECT_TRUE(lottery->satisfied);
  EXPECT_LT(lottery->measured.cycles_per_word[3],
            tdma->measured.cycles_per_word[3]);
}

TEST(AdvisorTest, MarginPrefersHeadroom) {
  QosGoals goals;
  goals.min_bandwidth_share = {0.2, 0.0, 0.0, 0.0};
  goals.max_cycles_per_word = {0, 0, 0, 0};
  const auto rec = advise(goals, saturatedTraffic(),
                          traffic::defaultBusConfig(4), 30000);
  ASSERT_TRUE(rec.found);
  // The winner's margin is the max among satisfying candidates.
  for (const auto& candidate : rec.candidates) {
    if (candidate.satisfied) {
      EXPECT_LE(candidate.worst_margin, rec.best.worst_margin + 1e-12);
    }
  }
}

}  // namespace
}  // namespace lb::advisor
