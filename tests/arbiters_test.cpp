// Unit tests for the baseline arbiters: static priority, round-robin,
// token ring, and two-level TDMA.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <numeric>
#include <vector>

#include "arbiters/round_robin.hpp"
#include "arbiters/static_priority.hpp"
#include "arbiters/tdma.hpp"
#include "arbiters/token_ring.hpp"
#include "bus/arbiter.hpp"

namespace lb::arb {
namespace {

using bus::Grant;
using bus::MasterRequest;
using bus::RequestView;

/// Builds a request snapshot from a pending bitmap.
std::vector<MasterRequest> requests(std::uint32_t map, std::size_t n,
                                    std::uint32_t words = 8) {
  std::vector<MasterRequest> reqs(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].pending = (map & (1u << i)) != 0;
    reqs[i].head_words_remaining = reqs[i].pending ? words : 0;
  }
  return reqs;
}

// ---------------------------------------------------------------------------
// StaticPriorityArbiter
// ---------------------------------------------------------------------------

TEST(StaticPriorityTest, GrantsHighestPriorityPending) {
  StaticPriorityArbiter arbiter({1, 4, 2, 3});  // master 1 is top priority
  auto reqs = requests(0b1111, 4);
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 0).master, 1);
  reqs = requests(0b1101, 4);  // master 1 idle
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 0).master, 3);
  reqs = requests(0b0101, 4);
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 0).master, 2);
  reqs = requests(0b0001, 4);
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 0).master, 0);
}

TEST(StaticPriorityTest, NoRequestNoGrant) {
  StaticPriorityArbiter arbiter({1, 2});
  auto reqs = requests(0, 2);
  EXPECT_FALSE(arbiter.arbitrate(RequestView(reqs), 0).valid());
}

TEST(StaticPriorityTest, RejectsDuplicateOrEmptyPriorities) {
  EXPECT_THROW(StaticPriorityArbiter({1, 1, 2}), std::invalid_argument);
  EXPECT_THROW(StaticPriorityArbiter({}), std::invalid_argument);
}

TEST(StaticPriorityTest, MasterCountMismatchIsLogicError) {
  StaticPriorityArbiter arbiter({1, 2});
  auto reqs = requests(0b111, 3);
  EXPECT_THROW(arbiter.arbitrate(RequestView(reqs), 0), std::logic_error);
}

TEST(StaticPriorityTest, IsDeterministicAcrossTime) {
  StaticPriorityArbiter arbiter({3, 1, 2});
  auto reqs = requests(0b111, 3);
  for (bus::Cycle t = 0; t < 100; ++t)
    EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), t).master, 0);
}

// ---------------------------------------------------------------------------
// RoundRobinArbiter
// ---------------------------------------------------------------------------

TEST(RoundRobinTest, RotatesAmongPendingMasters) {
  RoundRobinArbiter arbiter(4);
  auto reqs = requests(0b1111, 4);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    order.push_back(arbiter.arbitrate(RequestView(reqs), 0).master);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(RoundRobinTest, SkipsIdleMasters) {
  RoundRobinArbiter arbiter(4);
  auto reqs = requests(0b1010, 4);  // masters 1, 3
  std::vector<int> order;
  for (int i = 0; i < 4; ++i)
    order.push_back(arbiter.arbitrate(RequestView(reqs), 0).master);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 1, 3}));
}

TEST(RoundRobinTest, PointerPersistsAcrossIdlePhases) {
  RoundRobinArbiter arbiter(3);
  auto all = requests(0b111, 3);
  EXPECT_EQ(arbiter.arbitrate(RequestView(all), 0).master, 0);
  auto none = requests(0, 3);
  EXPECT_FALSE(arbiter.arbitrate(RequestView(none), 1).valid());
  EXPECT_EQ(arbiter.arbitrate(RequestView(all), 2).master, 1);
}

TEST(RoundRobinTest, ResetRestartsAtZero) {
  RoundRobinArbiter arbiter(2);
  auto reqs = requests(0b11, 2);
  arbiter.arbitrate(RequestView(reqs), 0);
  arbiter.reset();
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 0).master, 0);
}

// ---------------------------------------------------------------------------
// TokenRingArbiter
// ---------------------------------------------------------------------------

TEST(TokenRingTest, ZeroHopCostBehavesLikeRoundRobin) {
  TokenRingArbiter arbiter(3, 0);
  auto reqs = requests(0b111, 3);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i)
    order.push_back(arbiter.arbitrate(RequestView(reqs), 0).master);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(TokenRingTest, HopLatencyStallsTheBus) {
  TokenRingArbiter arbiter(4, 2);  // 2 cycles per hop
  auto reqs = requests(0b0100, 4);  // only master 2 pending; token at 0
  // Token must travel 2 hops = 4 cycles before master 2 can transmit.
  EXPECT_FALSE(arbiter.arbitrate(RequestView(reqs), 0).valid());
  EXPECT_FALSE(arbiter.arbitrate(RequestView(reqs), 1).valid());
  EXPECT_FALSE(arbiter.arbitrate(RequestView(reqs), 2).valid());
  EXPECT_FALSE(arbiter.arbitrate(RequestView(reqs), 3).valid());
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 4).master, 2);
}

TEST(TokenRingTest, TokenAdvancesPastServedMaster) {
  TokenRingArbiter arbiter(2, 0);
  auto reqs = requests(0b01, 2);
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 0).master, 0);
  EXPECT_EQ(arbiter.tokenHolder(), 1u);
}

// ---------------------------------------------------------------------------
// TdmaArbiter: wheel construction
// ---------------------------------------------------------------------------

TEST(TdmaWheelTest, ContiguousWheelLayout) {
  const auto wheel = TdmaArbiter::contiguousWheel({2, 1, 3});
  EXPECT_EQ(wheel, (std::vector<int>{0, 0, 1, 2, 2, 2}));
}

TEST(TdmaWheelTest, InterleavedWheelPreservesCounts) {
  const std::vector<unsigned> alloc = {1, 2, 3, 4};
  const auto wheel = TdmaArbiter::interleavedWheel(alloc);
  ASSERT_EQ(wheel.size(), 10u);
  std::array<unsigned, 4> counts{};
  for (const int owner : wheel) {
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 4);
    ++counts[static_cast<std::size_t>(owner)];
  }
  EXPECT_EQ(counts, (std::array<unsigned, 4>{1, 2, 3, 4}));
  // Interleaving: master 3 (4 slots of 10) never owns 3 slots in a row.
  for (std::size_t i = 0; i + 2 < wheel.size(); ++i)
    EXPECT_FALSE(wheel[i] == wheel[i + 1] && wheel[i] == wheel[i + 2]);
}

TEST(TdmaWheelTest, RejectsBadWheels) {
  EXPECT_THROW(TdmaArbiter({}, 2), std::invalid_argument);
  EXPECT_THROW(TdmaArbiter({0, 5}, 2), std::invalid_argument);
  EXPECT_THROW(TdmaArbiter({0, -2}, 2), std::invalid_argument);
  EXPECT_THROW(TdmaArbiter::contiguousWheel({0, 0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// TdmaArbiter: arbitration semantics
// ---------------------------------------------------------------------------

TEST(TdmaTest, SlotOwnerGetsSingleWordGrant) {
  TdmaArbiter arbiter(TdmaArbiter::contiguousWheel({1, 1, 1}), 3);
  auto reqs = requests(0b111, 3);
  for (bus::Cycle t = 0; t < 6; ++t) {
    const Grant grant = arbiter.arbitrate(RequestView(reqs), t);
    EXPECT_EQ(grant.master, static_cast<int>(t % 3));
    EXPECT_EQ(grant.max_words, 1u);
  }
}

TEST(TdmaTest, WheelPositionTracksAbsoluteTime) {
  TdmaArbiter arbiter(TdmaArbiter::contiguousWheel({1, 1}), 2);
  auto reqs = requests(0b11, 2);
  // Skipping cycles does not desynchronize the wheel.
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 0).master, 0);
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 5).master, 1);
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 6).master, 0);
}

TEST(TdmaTest, SecondLevelReclaimsIdleSlots) {
  // Wheel entirely owned by master 0, which is idle; masters 1 and 2 pend.
  TdmaArbiter arbiter(TdmaArbiter::contiguousWheel({4, 0, 0}), 3);
  auto reqs = requests(0b110, 3);
  std::vector<int> order;
  for (bus::Cycle t = 0; t < 4; ++t)
    order.push_back(arbiter.arbitrate(RequestView(reqs), t).master);
  // Round-robin among the pending masters.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(TdmaTest, SingleLevelWastesIdleSlots) {
  TdmaArbiter arbiter(TdmaArbiter::contiguousWheel({2, 2}), 2,
                      /*two_level=*/false);
  auto reqs = requests(0b10, 2);  // only master 1 pending
  EXPECT_FALSE(arbiter.arbitrate(RequestView(reqs), 0).valid());
  EXPECT_FALSE(arbiter.arbitrate(RequestView(reqs), 1).valid());
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 2).master, 1);
}

TEST(TdmaTest, PhaseShiftsTheWheel) {
  TdmaArbiter arbiter(TdmaArbiter::contiguousWheel({1, 1}), 2);
  arbiter.setPhase(1);
  auto reqs = requests(0b11, 2);
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 0).master, 1);
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 1).master, 0);
}

TEST(TdmaTest, RoundRobinPointerAdvancesOnlyOnReclaim) {
  // Paper Figure 2: the rr pointer moves from its *earlier position* to the
  // next pending request when a slot is reclaimed.
  TdmaArbiter arbiter(TdmaArbiter::contiguousWheel({1, 1, 1, 1}), 4);
  // Slot 0 (owner 0 idle): reclaim -> master 1; rr now past 1.
  auto reqs = requests(0b1110, 4);
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 0).master, 1);
  // Slot 1 (owner 1 pending): level-1 grant; rr untouched.
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 1).master, 1);
  // Slot 2 idle-owner? owner 2 pending: level-1 grant.
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 2).master, 2);
  // Slot 3 pending too.
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 3).master, 3);
  // Slot 0 again: reclaim continues round-robin from master 2.
  EXPECT_EQ(arbiter.arbitrate(RequestView(reqs), 4).master, 2);
}

TEST(TdmaTest, NoPendingNoGrant) {
  TdmaArbiter arbiter(TdmaArbiter::contiguousWheel({1, 1}), 2);
  auto reqs = requests(0, 2);
  for (bus::Cycle t = 0; t < 4; ++t)
    EXPECT_FALSE(arbiter.arbitrate(RequestView(reqs), t).valid());
}

// ---------------------------------------------------------------------------
// Cross-arbiter property: a grant always names a pending master
// ---------------------------------------------------------------------------

class GrantValidityTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GrantValidityTest, EveryArbiterGrantsOnlyPendingMasters) {
  const std::uint32_t map = GetParam();
  std::vector<std::unique_ptr<bus::IArbiter>> arbiters;
  arbiters.push_back(std::make_unique<StaticPriorityArbiter>(
      std::vector<unsigned>{2, 4, 1, 3}));
  arbiters.push_back(std::make_unique<RoundRobinArbiter>(4));
  arbiters.push_back(std::make_unique<TokenRingArbiter>(4, 0));
  arbiters.push_back(std::make_unique<TdmaArbiter>(
      TdmaArbiter::contiguousWheel({1, 2, 3, 4}), 4));

  auto reqs = requests(map, 4);
  for (auto& arbiter : arbiters) {
    for (bus::Cycle t = 0; t < 20; ++t) {
      const Grant grant = arbiter->arbitrate(RequestView(reqs), t);
      if (map == 0) {
        EXPECT_FALSE(grant.valid()) << arbiter->name();
      } else if (grant.valid()) {
        EXPECT_TRUE(map & (1u << grant.master))
            << arbiter->name() << " granted idle master " << grant.master;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRequestMaps, GrantValidityTest,
                         ::testing::Range(0u, 16u));

}  // namespace
}  // namespace lb::arb
